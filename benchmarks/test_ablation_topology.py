"""Ablation — convergence across topology shapes.

Section 6 guarantees convergence on *any* connected topology; this bench
measures the price of sparseness: rounds (and messages) to convergence on
complete / ring / grid / geometric / small-world graphs at equal n.
"""

from repro.analysis.reporting import banner, format_table
from repro.experiments.ablations import run_topology_ablation


def test_ablation_topology(benchmark, bench_scale, write_report):
    rows = benchmark.pedantic(
        run_topology_ablation, args=(bench_scale,), rounds=1, iterations=1
    )
    by_label = {row.label: row for row in rows}

    # Dense mixes fastest; every topology still converges (Theorem 1).
    assert by_label["complete"]["rounds"] <= by_label["grid"]["rounds"]
    assert by_label["complete"]["rounds"] <= by_label["ring"]["rounds"]
    for row in rows:
        assert row["disagreement"] < 2.0  # bounded even on the slowest shape

    table = format_table(
        ["topology", "n", "rounds", "messages", "final_disagreement"],
        [
            [row.label, int(row["n"]), int(row["rounds"]), int(row["messages"]), row["disagreement"]]
            for row in rows
        ],
    )
    write_report(
        "ablation_topology",
        f"{banner('Ablation — topology vs convergence speed')}\n{table}",
    )
