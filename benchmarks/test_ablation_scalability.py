"""Ablation — scalability in the network size n.

Sweeps n on the fully connected gossip topology and reports rounds to
convergence, per-node message counts, and wire bytes per message.  The
claims: per-node round counts grow slowly (gossip mixing), and message
size does not grow at all.
"""

from repro.analysis.reporting import banner, format_table
from repro.experiments.scalability import run_scalability


def test_ablation_scalability(benchmark, bench_scale, write_report):
    rows = benchmark.pedantic(
        run_scalability, args=(bench_scale,), rounds=1, iterations=1
    )

    # Bytes per message are identical at every n.
    assert len({row["bytes_per_message"] for row in rows}) == 1
    # Every size converges (runs end below the movement threshold).
    for row in rows:
        assert row["final_disagreement"] < 0.5
    # Rounds grow sub-linearly: the largest network needs nowhere near
    # proportionally more rounds than the smallest.
    smallest, largest = rows[0], rows[-1]
    if largest["n"] > smallest["n"]:
        ratio = largest["rounds"] / smallest["rounds"]
        assert ratio < (largest["n"] / smallest["n"])

    table = format_table(
        ["n", "rounds", "messages", "msgs/node", "bytes/msg", "final_disagreement"],
        [
            [int(row["n"]), int(row["rounds"]), int(row["messages"]),
             row["messages_per_node"], int(row["bytes_per_message"]),
             row["final_disagreement"]]
            for row in rows
        ],
    )
    write_report("ablation_scalability", f"{banner('Ablation — scalability in n')}\n{table}")
