"""Ablation — summary schemes on anisotropic data (Figure 1 at scale).

Centroids vs Gaussian Mixtures vs histograms classifying a tight cluster
next to a wide one.  The GM scheme should win (variance-aware
decisions); the histogram comparator — modelled on the related work the
paper contrasts with [11, 17] — should trail badly, which is exactly the
paper's argument for *classification* over distribution estimation.
"""

from repro.analysis.reporting import banner, format_table
from repro.experiments.ablations import run_scheme_ablation


def test_ablation_scheme(benchmark, bench_scale, write_report):
    rows = benchmark.pedantic(
        run_scheme_ablation, args=(bench_scale,), rounds=1, iterations=1
    )
    by_label = {row.label: row for row in rows}

    assert set(by_label) == {"centroid", "gaussian_mixture", "histogram"}
    # The paper's argument: Gaussians beat proximity-only and
    # histogram-based summaries at classification.
    assert (
        by_label["gaussian_mixture"]["weight_accuracy"]
        >= by_label["centroid"]["weight_accuracy"] - 0.05
    )
    assert (
        by_label["gaussian_mixture"]["weight_accuracy"]
        > by_label["histogram"]["weight_accuracy"]
    )

    table = format_table(
        ["scheme", "rounds", "weight_accuracy"],
        [[row.label, int(row["rounds"]), row["weight_accuracy"]] for row in rows],
    )
    write_report("ablation_scheme", f"{banner('Ablation — summary scheme')}\n{table}")
