"""Figure 1 — centroid vs Gaussian association of a new value.

Regenerates the paper's motivating example: the centroid criterion
(distance to collection average) picks the tight collection A, while the
Gaussian criterion (likelihood under the fitted normal) correctly picks
the wide collection B.
"""

from repro.analysis.reporting import banner, format_table
from repro.experiments.fig1 import run_fig1


def test_fig1_association(benchmark, write_report):
    result = benchmark(run_fig1)

    # The paper's claim: proximity misleads, variance corrects.
    assert result.centroid_choice == "A"
    assert result.gaussian_choice == "B"
    assert result.demonstrates_claim

    table = format_table(
        ["criterion", "collection A (tight)", "collection B (wide)", "choice"],
        [
            ["centroid distance", result.distance_to_a, result.distance_to_b, result.centroid_choice],
            ["Gaussian log-density", result.log_density_a, result.log_density_b, result.gaussian_choice],
        ],
    )
    report = "\n".join(
        [
            banner("Figure 1 — association of a new value"),
            f"new value at {result.new_value.tolist()}",
            table,
            f"paper's claim demonstrated: {result.demonstrates_claim}",
        ]
    )
    write_report("fig1_association", report)
