"""Robustness extension benches: contamination, crash rate, k mismatch.

These extend Figures 3/4 along the axes the paper's companion report [8]
analyses: how much contamination, how many crashes, and how much
configuration slack the robust-average application tolerates.
"""

from repro.analysis.reporting import banner, format_table
from repro.experiments.robustness import (
    run_crash_rate_sweep,
    run_k_mismatch,
    run_outlier_fraction_sweep,
)


def test_robustness_outlier_fraction(benchmark, bench_scale, write_report):
    rows = benchmark.pedantic(
        run_outlier_fraction_sweep, args=(bench_scale,), rounds=1, iterations=1
    )

    # Regular error grows roughly linearly with contamination...
    regular = [row["regular_error"] for row in rows]
    assert regular == sorted(regular)
    # ...while the robust estimator holds until far higher contamination.
    assert rows[-1]["robust_error"] < 0.5 * rows[-1]["regular_error"]

    table = format_table(
        ["outliers", "robust_error", "regular_error"],
        [[row.label, row["robust_error"], row["regular_error"]] for row in rows],
    )
    write_report(
        "robustness_outlier_fraction",
        f"{banner('Robustness — contamination level (delta=10)')}\n{table}",
    )


def test_robustness_crash_rate(benchmark, bench_scale, write_report):
    rows = benchmark.pedantic(
        run_crash_rate_sweep, args=(bench_scale,), rounds=1, iterations=1
    )

    survivors = [row["survivors"] for row in rows]
    assert survivors == sorted(survivors, reverse=True)
    # Even the heaviest crash regime leaves a usable estimate.
    assert all(row["robust_error"] < 1.0 for row in rows)

    table = format_table(
        ["crash_rate", "robust_error", "survivors"],
        [[row.label, row["robust_error"], int(row["survivors"])] for row in rows],
    )
    write_report(
        "robustness_crash_rate",
        f"{banner('Robustness — per-round crash rate (delta=10)')}\n{table}",
    )


def test_robustness_k_mismatch(benchmark, bench_scale, write_report):
    rows = benchmark.pedantic(
        run_k_mismatch, args=(bench_scale,), rounds=1, iterations=1
    )
    by_k = {int(row["k"]): row for row in rows}

    # Fragmentation slack: k=5 performs comparably to the intended k=2.
    assert by_k[5]["robust_error"] < 3.0 * by_k[2]["robust_error"] + 0.1

    table = format_table(
        ["k", "robust_error"],
        [[int(row["k"]), row["robust_error"]] for row in rows],
    )
    write_report(
        "robustness_k_mismatch",
        f"{banner('Robustness — collection budget mismatch (delta=10)')}\n{table}",
    )
