"""Extension bench — partition and heal.

The convergence theorem assumes a static connected topology; this bench
cuts the network in two for a window of rounds and shows that temporary
violations delay convergence without destroying it: cross-partition
disagreement stays elevated while the cut holds and collapses once links
heal.
"""

from repro.analysis.reporting import format_series
from repro.experiments.partitions import run_partition_heal


def test_partition_heal(benchmark, bench_scale, write_report):
    result = benchmark.pedantic(
        run_partition_heal,
        args=(bench_scale,),
        kwargs={"partition_start": 12, "partition_length": 15, "total_rounds": 60},
        rounds=1,
        iterations=1,
    )

    during = result.phase_mean(result.partition_start + 3, result.partition_end)
    after = result.phase_mean(50, 61)
    # While cut, the sides describe different data and visibly disagree;
    # after healing they reconcile to a common classification.
    assert during > 5.0 * after
    assert after < 0.1

    report = format_series(
        f"Partition and heal (n={result.n_nodes}, cut rounds "
        f"[{result.partition_start}, {result.partition_end}))",
        "round",
        list(result.rounds),
        {"cross_partition_disagreement": list(result.cross_disagreement)},
    )
    write_report("partition_heal", report)
