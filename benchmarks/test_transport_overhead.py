"""Transport-extraction overhead: the refactor must be free.

The tentpole claim of the transport seam is that moving the kernel's
transmit/deliver pipeline behind ``InMemoryTransport`` costs nothing:
the 100-node GM workload recorded *before* the refactor
(``benchmarks/results/BENCH_transport_baseline.json``, same machine,
best of 7) must still run within 2% after it.  That gate is asserted
here, and the result is recorded to
``benchmarks/results/BENCH_transport.json`` together with the price of
going on the wire: the same number of gossip frames the in-memory run
delivered, pushed through a real loopback-TCP transport pair
(length-prefixed framing, CRC verification, socket round trip), for an
in-memory vs TCP wall-clock comparison at matched message volume.

Run with::

    python -m pytest benchmarks/test_transport_overhead.py -q
"""

from __future__ import annotations

import json
import pathlib
import time

import numpy as np

from repro.core.serialization import codec_for_scheme, encode_payload
from repro.network.frames import DATA, encode_frame
from repro.network.membership import PeerInfo
from repro.network.tcp_transport import AsyncioTCPTransport
from repro.network.topology import complete
from repro.protocols.classification import build_classification_network
from repro.schemes.gm import GaussianMixtureScheme

BASELINE_PATH = (
    pathlib.Path(__file__).parent / "results" / "BENCH_transport_baseline.json"
)
RESULTS_PATH = pathlib.Path(__file__).parent / "results" / "BENCH_transport.json"

N = 100
K = 3
ROUNDS = 30
SEED = 11
REPEATS = 7
OVERHEAD_GATE = 1.02  # extraction may add at most 2%
CENTERS = np.array([[0.0, 0.0], [8.0, 8.0], [-8.0, 8.0]])


def _values() -> np.ndarray:
    rng = np.random.default_rng(SEED)
    return CENTERS[rng.integers(0, 3, size=N)]


def _run_in_memory() -> tuple[float, int]:
    """One timed run; returns (seconds, messages delivered)."""
    kernel, _ = build_classification_network(
        _values(),
        GaussianMixtureScheme(seed=0),
        k=K,
        graph=complete(N),
        seed=SEED,
    )
    start = time.perf_counter()
    kernel.run(ROUNDS)
    elapsed = time.perf_counter() - start
    return elapsed, kernel.metrics.messages_delivered


def _run_loopback_tcp(frame_count: int) -> float:
    """Push ``frame_count`` representative DATA frames through a real
    loopback-TCP transport pair and wait for the last delivery."""
    scheme = GaussianMixtureScheme(seed=0)
    codec = codec_for_scheme(scheme, CENTERS.shape[1])
    # A representative gossip payload: K full-covariance collections.
    node = build_classification_network(
        _values(), scheme, k=K, graph=complete(N), seed=SEED
    )[1][0]
    payload = node.make_message()
    frame = encode_frame(DATA, 0, encode_payload(payload, codec))

    sender = AsyncioTCPTransport(0)
    receiver = AsyncioTCPTransport(1)
    sender.start()
    receiver.start()
    try:
        peer = PeerInfo(1, "127.0.0.1", receiver.bound_port)
        start = time.perf_counter()
        for _ in range(frame_count):
            assert sender.send_frame(peer, frame)
        received = 0
        while received < frame_count:
            if receiver.poll(timeout=5.0) is None:
                raise AssertionError(
                    f"TCP stalled at {received}/{frame_count} frames"
                )
            received += 1
        return time.perf_counter() - start
    finally:
        sender.close()
        receiver.close()


def test_in_memory_extraction_stays_within_two_percent():
    baseline = json.loads(BASELINE_PATH.read_text())
    baseline_best = baseline["pre_refactor_seconds_best"]

    timings = []
    messages = 0
    for _ in range(REPEATS):
        elapsed, messages = _run_in_memory()
        timings.append(elapsed)
    best = min(timings)

    tcp_seconds = _run_loopback_tcp(messages)

    record = {
        "workload": dict(baseline["workload"]),
        "pre_refactor_seconds_best": baseline_best,
        "post_refactor_seconds_best": best,
        "post_refactor_seconds_all": timings,
        "overhead_ratio": best / baseline_best,
        "overhead_gate": OVERHEAD_GATE,
        "frames_delivered": messages,
        "loopback_tcp_seconds": tcp_seconds,
        "tcp_vs_memory_ratio": tcp_seconds / best,
        "repeats": REPEATS,
    }
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(record, indent=2) + "\n")

    assert best <= baseline_best * OVERHEAD_GATE, (
        f"InMemoryTransport extraction costs {best / baseline_best:.3f}x "
        f"the pre-refactor kernel (gate {OVERHEAD_GATE}x); "
        f"see {RESULTS_PATH}"
    )
