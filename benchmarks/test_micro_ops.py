"""Micro-benchmarks of the protocol's hot operations.

These time the primitives that dominate a real deployment's cost budget —
the per-message merge (EM reduction), the per-send split, and a full
gossip round — using pytest-benchmark's statistical timing (many rounds,
unlike the one-shot figure regenerations).
"""

import tracemalloc

import numpy as np
import pytest

from repro.core.collection import Collection
from repro.core.weights import Quantization
from repro.ml.em import fit_gmm_em
from repro.ml.reduction import reduce_mixture
from repro.network.topology import complete
from repro.protocols.classification import build_classification_network
from repro.protocols.push_sum import build_push_sum_network
from repro.schemes.gaussian import GaussianSummary
from repro.schemes.gm import GaussianMixtureScheme

from repro.data.generators import outlier_scenario


@pytest.fixture(scope="module")
def gaussian_collections():
    generator = np.random.default_rng(0)
    collections = []
    for center in ([0, 0], [8, 8]):
        for _ in range(7):
            mean = generator.normal(center, 0.5, size=2)
            collections.append(
                Collection(
                    summary=GaussianSummary(mean=mean, cov=0.2 * np.eye(2)),
                    quanta=int(generator.integers(1 << 10, 1 << 16)),
                )
            )
    return collections


def test_partition_em_reduction(benchmark, gaussian_collections):
    """One partition call: 14 collections reduced to k=2 by hard EM."""
    scheme = GaussianMixtureScheme(seed=0)
    lattice = Quantization()
    groups = benchmark(scheme.partition, gaussian_collections, 2, lattice)
    assert len(groups) <= 2


def test_mixture_reduction_raw(benchmark):
    """The numerical core: 20-component l-GM to 4-GM."""
    generator = np.random.default_rng(1)
    weights = generator.uniform(0.5, 2.0, 20)
    means = generator.normal(size=(20, 2)) * 6
    covs = np.stack([0.3 * np.eye(2)] * 20)

    def reduce_once():
        return reduce_mixture(weights, means, covs, 4, np.random.default_rng(2))

    result = benchmark(reduce_once)
    assert len(result.groups) <= 4


def test_classification_round_complete_graph(benchmark):
    """One full gossip round: 200 nodes, GM scheme, k=2."""
    scenario = outlier_scenario(10.0, n_good=190, n_outliers=10, seed=0)
    engine, _ = build_classification_network(
        scenario.values,
        GaussianMixtureScheme(seed=0),
        k=2,
        graph=complete(scenario.n),
        seed=0,
    )
    benchmark(engine.run_round)


def test_push_sum_round(benchmark):
    """One push-sum round at the same size, for comparison."""
    values = np.random.default_rng(0).normal(size=(200, 2))
    engine, _ = build_push_sum_network(values, complete(200), seed=0)
    benchmark(engine.run_round)


def test_receive_allocation_footprint():
    """Allocation budget of the zero-copy receive path.

    The packed tier's pitch is that a receive operates on views into the
    sender's column arrays instead of materialising per-collection
    objects.  This pins that property: one warm gossip round traced under
    tracemalloc must stay under a per-receive allocation ceiling.  The
    bound is calibrated empirically (~4 KiB/receive observed) with
    several-fold headroom, so it only trips on a structural regression
    (per-row object
    churn returning to the hot path), not on timing noise.
    """
    scenario = outlier_scenario(10.0, n_good=60, n_outliers=4, seed=0)
    engine, nodes = build_classification_network(
        scenario.values,
        GaussianMixtureScheme(seed=0),
        k=2,
        graph=complete(scenario.n),
        seed=0,
    )
    engine.run(3)  # warm: caches filled, classifications near agreement

    before = sum(node.stats.batches_received for node in nodes)
    tracemalloc.start()
    try:
        engine.run_round()
        current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    receives = sum(node.stats.batches_received for node in nodes) - before

    assert receives > 0
    per_receive_kib = peak / receives / 1024.0
    assert per_receive_kib < 24.0, (
        f"receive path allocated {per_receive_kib:.1f} KiB per receive "
        f"(peak {peak / 1024.0:.0f} KiB over {receives} receives)"
    )


def test_centralized_em_fit(benchmark):
    """Centralised EM on 500 points, k=3 (the comparator's cost)."""
    generator = np.random.default_rng(3)
    points = np.vstack(
        [generator.normal(c, 0.8, size=(167, 2)) for c in ([0, 0], [6, 0], [3, 5])]
    )

    def fit():
        return fit_gmm_em(points, 3, np.random.default_rng(4), max_iterations=50)

    result = benchmark(fit)
    assert result.model.n_components == 3
