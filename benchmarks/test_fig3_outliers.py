"""Figure 3 — robust averaging vs outlier separation (the delta sweep).

Regenerates Figure 3b's three series over the full delta sweep and checks
the paper's shape claims:

- the *regular* aggregation error grows linearly in delta (the 5% outlier
  mass drags the mean by ~0.05 delta);
- the *robust* error stays bounded and, once the collections separate,
  drops well below the regular error;
- the missed-outlier rate collapses once delta clears the separation
  threshold (the paper's cliff near delta ~ 5).
"""

import numpy as np

from repro.analysis.reporting import format_series
from repro.experiments.fig3 import run_fig3


def test_fig3_outlier_sweep(benchmark, bench_scale, write_report):
    result = benchmark.pedantic(
        run_fig3, args=(bench_scale,), kwargs={"seed": 3}, rounds=1, iterations=1
    )

    deltas = np.array(result.column("delta"))
    regular = np.array(result.column("regular_error"))
    robust = np.array(result.column("robust_error"))
    missed = np.array(result.column("missed_outliers_pct"))

    # Shape 1: regular error grows ~linearly in delta.  Check a strong
    # positive linear fit with slope near the 5%-outlier prediction.
    slope = np.polyfit(deltas, regular, 1)[0]
    assert 0.02 < slope < 0.10
    correlation = np.corrcoef(deltas, regular)[0, 1]
    assert correlation > 0.98

    # Shape 2: robust beats regular clearly once separated (delta >= 10).
    separated = deltas >= 10.0
    assert np.all(robust[separated] < regular[separated])

    # The finer-grained claims need statistical mass; the `fast` preset
    # (n=100, 5 outliers) is a smoke run, not a measurement.
    if bench_scale.n_nodes >= 200:
        assert robust[separated].max() < 0.6
        # Shape 3: the miss-rate cliff — high miss rate while the outlier
        # cluster overlaps the good one (small but nonzero delta; at
        # delta=0 the paper's density definition flags no outliers at
        # all), near-zero once far.
        overlapping = (deltas > 0.0) & (deltas <= 5.0)
        assert missed[overlapping].max() > 50.0
        assert missed[deltas >= 15.0].max() < 15.0

    report = format_series(
        f"Figure 3 — outlier separation sweep ({bench_scale.name} scale, "
        f"n={result.n_nodes}, f_min={result.f_min})",
        "delta",
        result.column("delta"),
        {
            "missed_outliers_%": result.column("missed_outliers_pct"),
            "robust_error": result.column("robust_error"),
            "regular_error": result.column("regular_error"),
            "rounds": result.column("rounds"),
        },
    )
    write_report("fig3_outliers", report)
