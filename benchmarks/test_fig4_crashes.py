"""Figure 4 — crash robustness and convergence speed.

Regenerates the four per-round error traces ({robust, regular} x
{no crashes, 5%-per-round crashes}) at delta = 10 and checks the paper's
claims:

- the robust protocol converges to a lower error than regular
  aggregation, with and without crashes;
- crashes barely change the curves (outlier removal is indifferent to
  them);
- convergence speed is equivalent: both protocols settle within a few
  tens of rounds.
"""

import numpy as np

from repro.analysis.reporting import format_series
from repro.experiments.fig4 import run_fig4


def test_fig4_crash_robustness(benchmark, bench_scale, write_report):
    result = benchmark.pedantic(
        run_fig4, args=(bench_scale,), kwargs={"rounds": 50, "seed": 4}, rounds=1, iterations=1
    )

    finals = result.final_errors()

    # Shape 1: robust < regular in the failure-free regime.
    assert finals["robust_no_crashes"] < finals["regular_no_crashes"]

    # The crash claims need survivors to average over: 50 rounds of 5%
    # crashes keep ~0.95^50 of the network, so the `fast` preset (n=100,
    # ~8 survivors) is a smoke run only.
    if bench_scale.n_nodes >= 200:
        assert finals["robust_with_crashes"] < finals["regular_with_crashes"]
        # Shape 2: crash indifference — the crashed curve ends within a
        # small factor of the clean one.
        assert finals["robust_with_crashes"] < 3.0 * max(finals["robust_no_crashes"], 0.05)
        assert finals["regular_with_crashes"] < 1.5 * finals["regular_no_crashes"] + 0.1

    # Shape 3: equivalent convergence speed — by round 20 both protocols
    # are already within 20% of their final error.
    robust = np.array(result.robust_no_crashes)
    regular = np.array(result.regular_no_crashes)
    assert abs(robust[19] - robust[-1]) < 0.2 * max(robust[-1], 0.05) + 0.05
    assert abs(regular[19] - regular[-1]) < 0.2 * max(regular[-1], 0.05) + 0.05

    report = format_series(
        f"Figure 4 — crash robustness (delta={result.delta}, "
        f"{bench_scale.name} scale, n={result.n_nodes}, p_crash=0.05/round)",
        "round",
        list(result.rounds),
        {
            "robust_no_crash": list(result.robust_no_crashes),
            "regular_no_crash": list(result.regular_no_crashes),
            "robust_crash": list(result.robust_with_crashes),
            "regular_crash": list(result.regular_with_crashes),
            "survivors": list(result.survivors_with_crashes),
        },
    )
    write_report("fig4_crashes", report)
