"""Mega-scale benchmark: the arena engine's nodes-vs-wall-clock curve.

Drives :class:`repro.mega.ArenaEngine` over discrete-valued GM data (the
byte-converging regime of ``BENCH_cache``: every node's value sits on
one of three centers, so merges are float-exact and the population
reaches structural quiescence) at 1k / 10k / 100k nodes, plus one
sharded 10k run to record multi-process overhead, and writes the curve
to ``benchmarks/results/BENCH_megascale.json``.

Two gates ride along:

- **parity** — at 1,000 nodes the arena's final classifications must be
  byte-identical to the per-node ``SimulationKernel``'s (same seed, same
  rounds), the ISSUE 8 correctness contract at benchmark scale;
- **budget** — the 100k-node run must finish within ``BUDGET_S``
  (minutes, not hours, on CI hardware).

Scale presets via ``REPRO_BENCH_SCALE``: ``fast`` stops at 10k (the CI
``megascale-smoke`` configuration), the default ``bench`` carries the
curve through 100k, ``paper`` adds 250k.

Run with::

    python -m pytest benchmarks/test_megascale.py -q
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import numpy as np

from repro.mega import ArenaEngine, ShardedArenaEngine
from repro.network.topology import complete
from repro.protocols.classification import build_classification_network
from repro.schemes.gm import GaussianMixtureScheme

RESULTS_PATH = pathlib.Path(__file__).parent / "results" / "BENCH_megascale.json"

K = 3
SEED = 11
MAX_ROUNDS = 200
PARITY_N = 1000
BUDGET_S = 600.0
CENTERS = np.array([[0.0, 0.0], [8.0, 8.0], [-8.0, 8.0]])

CURVE_SIZES = {
    "fast": [1000, 10000],
    "bench": [1000, 10000, 100000],
    "paper": [1000, 10000, 100000, 250000],
}


def _values(n: int) -> np.ndarray:
    rng = np.random.default_rng(11)
    return CENTERS[rng.integers(0, 3, size=n)]


def _arena_run(n: int, shards: int = 0) -> dict:
    values = _values(n)
    start = time.perf_counter()
    if shards:
        engine = ShardedArenaEngine(
            values, GaussianMixtureScheme(seed=0), K, seed=SEED, shards=shards, use_cache=True
        )
    else:
        engine = ArenaEngine(
            values, GaussianMixtureScheme(seed=0), K, seed=SEED, use_cache=True
        )
    executed = engine.run(MAX_ROUNDS, stop_on_quiescence=True)
    if shards:
        engine.collect()
    wall_s = time.perf_counter() - start
    stats = engine.stats.as_dict()
    assert engine.quiescent, f"n={n}: no quiescence within {MAX_ROUNDS} rounds"
    return {
        "nodes": n,
        "shards": shards,
        "rounds": executed,
        "quiescent_at": engine.quiescent_at,
        "wall_s": wall_s,
        "rounds_per_s": executed / wall_s,
        "node_rounds_per_s": n * executed / wall_s,
        "messages": stats["messages"],
        "receives": stats["receivers"],
        "dedup_hits": stats["memo_round_hits"] + stats["memo_lru_hits"] + stats["noop_hits"],
        "full_solves": stats["full_solves"],
    }


def test_megascale_curve():
    scale = os.environ.get("REPRO_BENCH_SCALE", "bench")
    sizes = CURVE_SIZES.get(scale, CURVE_SIZES["bench"])

    # Parity gate: the arena vs the per-node kernel, byte for byte.
    values = _values(PARITY_N)
    engine = ArenaEngine(
        values, GaussianMixtureScheme(seed=0), K, seed=SEED, use_cache=True
    )
    parity_rounds = engine.run(MAX_ROUNDS, stop_on_quiescence=True)
    kernel, nodes = build_classification_network(
        values,
        GaussianMixtureScheme(seed=0),
        k=K,
        graph=complete(PARITY_N),
        seed=SEED,
        merge_cache=True,
    )
    kernel.run(parity_rounds)
    scheme = nodes[0].scheme
    kernel_states = [
        tuple((scheme.summary_digest(c.summary), c.quanta) for c in node.classification)
        for node in nodes
    ]
    arena_states = [engine.state_digests(node) for node in range(PARITY_N)]
    assert arena_states == kernel_states, (
        f"arena/kernel parity broke at n={PARITY_N} after {parity_rounds} rounds"
    )

    curve = [_arena_run(n) for n in sizes]
    sharded = _arena_run(10000, shards=4)

    records = {
        "workload": (
            f"GM scheme, k={K}, complete graph, three-center discrete data, "
            f"run to structural quiescence (patience 3), seed {SEED}"
        ),
        "scale": scale,
        "parity": {
            "nodes": PARITY_N,
            "rounds": parity_rounds,
            "matches_kernel": True,
        },
        "curve": curve,
        "sharded_10k": sharded,
    }
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(records, indent=2, sort_keys=True) + "\n")

    for point in curve:
        assert point["wall_s"] <= BUDGET_S, (
            f"n={point['nodes']}: {point['wall_s']:.1f}s exceeds the "
            f"{BUDGET_S:.0f}s budget"
        )
