"""Mega-scale benchmark: the arena engine's nodes-vs-wall-clock curve.

Drives :class:`repro.mega.ArenaEngine` over discrete-valued GM data (the
byte-converging regime of ``BENCH_cache``: every node's value sits on
one of three centers, so merges are float-exact and the population
reaches structural quiescence) at 1k / 10k / 100k nodes, plus a
shard-scaling sweep over the :class:`repro.mega.ShardedArenaEngine`
shared-memory exchange, and writes everything to
``benchmarks/results/BENCH_megascale.json``.  Results are *merged* into
the existing JSON — curve entries by node count, shard-scaling entries
by ``(nodes, shards, exchange)`` — so a ``fast``-scale CI run refreshes
its own points without clobbering the recorded 100k / million-node
entries.

Three gates ride along:

- **parity** — at 1,000 nodes the arena's final classifications must be
  byte-identical to the per-node ``SimulationKernel``'s (same seed, same
  rounds), the ISSUE 8 correctness contract at benchmark scale;
- **budget** — the 100k-node run must finish within ``BUDGET_S``
  (minutes, not hours, on CI hardware);
- **shard speedup** — when the machine actually has >= 4 cores, the
  4-shard shared-memory run must be no slower than single-process at
  the sweep size (target >= 1.5x).  On smaller machines the gate is
  recorded as skipped with the core count — workers would time-slice
  one core, which measures the scheduler, not the exchange.

Scale presets via ``REPRO_BENCH_SCALE``: ``fast`` stops at 10k (the CI
``megascale-smoke`` configuration), the default ``bench`` carries the
curve through 100k, ``paper`` adds 250k, and ``mega`` adds the
1,000,000-node run to structural quiescence.

Run with::

    python -m pytest benchmarks/test_megascale.py -q
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import numpy as np

from repro.mega import ArenaEngine, ShardedArenaEngine
from repro.network.topology import complete
from repro.protocols.classification import build_classification_network
from repro.schemes.gm import GaussianMixtureScheme

RESULTS_PATH = pathlib.Path(__file__).parent / "results" / "BENCH_megascale.json"

K = 3
SEED = 11
MAX_ROUNDS = 200
PARITY_N = 1000
BUDGET_S = 600.0
MILLION_N = 1_000_000
MILLION_BUDGET_S = 3600.0
SPEEDUP_TARGET = 1.5
CENTERS = np.array([[0.0, 0.0], [8.0, 8.0], [-8.0, 8.0]])

CURVE_SIZES = {
    "fast": [1000, 10000],
    "bench": [1000, 10000, 100000],
    "paper": [1000, 10000, 100000, 250000],
    "mega": [1000, 10000, 100000],
}

#: Shard-scaling sweep per preset: (nodes, shard counts).  Shards=1 is
#: the protocol floor (one worker, no cross-shard traffic) and 0 the
#: single-process baseline the speedup gate compares against.
SHARD_SWEEP = {
    "fast": (10000, [1, 2, 4]),
    "bench": (100000, [1, 2, 4, 8]),
    "paper": (100000, [1, 2, 4, 8]),
    "mega": (100000, [1, 2, 4, 8]),
}


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _values(n: int) -> np.ndarray:
    rng = np.random.default_rng(11)
    return CENTERS[rng.integers(0, 3, size=n)]


def _arena_run(n: int, shards: int = 0, use_shm: bool = True) -> dict:
    values = _values(n)
    start = time.perf_counter()
    if shards:
        engine = ShardedArenaEngine(
            values, GaussianMixtureScheme(seed=0), K, seed=SEED,
            shards=shards, use_cache=True, use_shm=use_shm,
        )
    else:
        engine = ArenaEngine(
            values, GaussianMixtureScheme(seed=0), K, seed=SEED, use_cache=True
        )
    executed = engine.run(MAX_ROUNDS, stop_on_quiescence=True)
    if shards:
        engine.collect()
    wall_s = time.perf_counter() - start
    stats = engine.stats.as_dict()
    assert engine.quiescent, f"n={n}: no quiescence within {MAX_ROUNDS} rounds"
    record = {
        "nodes": n,
        "shards": shards,
        "exchange": engine.exchange if shards else "single",
        "rounds": executed,
        "quiescent_at": engine.quiescent_at,
        "wall_s": wall_s,
        "rounds_per_s": executed / wall_s,
        "node_rounds_per_s": n * executed / wall_s,
        "messages": stats["messages"],
        "receives": stats["receivers"],
        "dedup_hits": stats["memo_round_hits"] + stats["memo_lru_hits"] + stats["noop_hits"],
        "full_solves": stats["full_solves"],
    }
    if shards:
        record["phase_s"] = {
            name: round(value, 3) for name, value in engine.phase_seconds.items()
        }
    return record


def _merge_records(new: dict) -> dict:
    """Merge this run's records into the existing benchmark JSON.

    Curve points merge by node count and shard-scaling points by
    ``(nodes, shards, exchange)``; the ``million_node`` entry survives
    runs that did not regenerate it.  The legacy ``sharded_10k`` key is
    dropped — ``shard_scaling`` supersedes it.
    """
    old: dict = {}
    if RESULTS_PATH.exists():
        try:
            old = json.loads(RESULTS_PATH.read_text())
        except json.JSONDecodeError:  # pragma: no cover - corrupt file
            old = {}
    merged = dict(old)
    merged.pop("sharded_10k", None)
    for key, value in new.items():
        if key not in ("curve", "shard_scaling"):
            merged[key] = value
    curve = {entry["nodes"]: entry for entry in old.get("curve", [])}
    curve.update({entry["nodes"]: entry for entry in new.get("curve", [])})
    merged["curve"] = [curve[nodes] for nodes in sorted(curve)]
    scaling = {
        (entry["nodes"], entry["shards"], entry.get("exchange", "shm")): entry
        for entry in old.get("shard_scaling", [])
    }
    scaling.update(
        {
            (entry["nodes"], entry["shards"], entry["exchange"]): entry
            for entry in new.get("shard_scaling", [])
        }
    )
    merged["shard_scaling"] = [scaling[key] for key in sorted(scaling)]
    return merged


def test_megascale_curve():
    scale = os.environ.get("REPRO_BENCH_SCALE", "bench")
    sizes = CURVE_SIZES.get(scale, CURVE_SIZES["bench"])
    cores = _available_cores()

    # Parity gate: the arena vs the per-node kernel, byte for byte.
    values = _values(PARITY_N)
    engine = ArenaEngine(
        values, GaussianMixtureScheme(seed=0), K, seed=SEED, use_cache=True
    )
    parity_rounds = engine.run(MAX_ROUNDS, stop_on_quiescence=True)
    kernel, nodes = build_classification_network(
        values,
        GaussianMixtureScheme(seed=0),
        k=K,
        graph=complete(PARITY_N),
        seed=SEED,
        merge_cache=True,
    )
    kernel.run(parity_rounds)
    scheme = nodes[0].scheme
    kernel_states = [
        tuple((scheme.summary_digest(c.summary), c.quanta) for c in node.classification)
        for node in nodes
    ]
    arena_states = [engine.state_digests(node) for node in range(PARITY_N)]
    assert arena_states == kernel_states, (
        f"arena/kernel parity broke at n={PARITY_N} after {parity_rounds} rounds"
    )

    curve = [_arena_run(n) for n in sizes]

    # Shard-scaling sweep: single-process baseline plus 1/2/4/... shard
    # shared-memory runs at one size, and a 4-shard pipe point so the
    # exchange-tier gap itself is on record.
    sweep_nodes, shard_counts = SHARD_SWEEP.get(scale, SHARD_SWEEP["bench"])
    baseline = next(
        (point for point in curve if point["nodes"] == sweep_nodes), None
    )
    if baseline is None:
        baseline = _arena_run(sweep_nodes)
    shard_scaling = [baseline]
    shard_scaling += [_arena_run(sweep_nodes, shards=s) for s in shard_counts]
    if 4 in shard_counts:
        shard_scaling.append(_arena_run(sweep_nodes, shards=4, use_shm=False))

    # Speedup gate: only meaningful when 4 workers can actually run in
    # parallel; on fewer cores record the skip instead of measuring the
    # scheduler.
    four_shard = next(
        (p for p in shard_scaling if p["shards"] == 4 and p["exchange"] == "shm"),
        None,
    )
    if four_shard is not None and cores >= 4:
        speedup = baseline["wall_s"] / four_shard["wall_s"]
        gate = {
            "status": "enforced",
            "available_cores": cores,
            "speedup_4shard_vs_single": round(speedup, 3),
            "target": SPEEDUP_TARGET,
        }
        assert four_shard["wall_s"] <= baseline["wall_s"], (
            f"4-shard shm run ({four_shard['wall_s']:.1f}s) slower than "
            f"single-process ({baseline['wall_s']:.1f}s) on {cores} cores"
        )
    else:
        gate = {
            "status": "skipped",
            "available_cores": cores,
            "reason": (
                f"needs >= 4 cores for a meaningful parallel measurement, have {cores}"
                if cores < 4
                else "no 4-shard point in this sweep"
            ),
        }

    records = {
        "workload": (
            f"GM scheme, k={K}, complete graph, three-center discrete data, "
            f"run to structural quiescence (patience 3), seed {SEED}"
        ),
        "scale": scale,
        "parity": {
            "nodes": PARITY_N,
            "rounds": parity_rounds,
            "matches_kernel": True,
        },
        "curve": curve,
        "shard_scaling": shard_scaling,
        "shard_speedup_gate": gate,
    }

    if scale == "mega":
        # The first recorded million-node run: structural quiescence of
        # a 1,000,000-node GM population.  Sharded when the hardware can
        # host parallel workers, single-process otherwise.
        million_shards = 4 if cores >= 4 else 0
        million = _arena_run(MILLION_N, shards=million_shards)
        assert million["wall_s"] <= MILLION_BUDGET_S, (
            f"1M nodes: {million['wall_s']:.0f}s exceeds the "
            f"{MILLION_BUDGET_S:.0f}s budget"
        )
        records["million_node"] = million

    RESULTS_PATH.parent.mkdir(exist_ok=True)
    merged = _merge_records(records)
    RESULTS_PATH.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")

    for point in curve:
        assert point["wall_s"] <= BUDGET_S, (
            f"n={point['nodes']}: {point['wall_s']:.1f}s exceeds the "
            f"{BUDGET_S:.0f}s budget"
        )
