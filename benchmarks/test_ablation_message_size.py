"""Ablation — wire bytes per message, across schemes and network sizes.

Regenerates the paper's Section 2 efficiency claim as a measurement:
message size depends only on the dataset parameters (k, the value
dimension), never on the number of nodes.  Real converged payloads are
serialised through the binary wire format at two network sizes and the
byte counts compared — per scheme, including the lightweight
diagonal-Gaussian variant.
"""

from repro.analysis.reporting import banner, format_table
from repro.experiments.scalability import run_message_size_ablation


def test_ablation_message_size(benchmark, bench_scale, write_report):
    rows = benchmark.pedantic(
        run_message_size_ablation, args=(bench_scale,), rounds=1, iterations=1
    )
    by_label = {row.label: row for row in rows}

    # The headline claim: byte-identical messages at every network size.
    assert all(row["size_independent_of_n"] == 1.0 for row in rows)
    # The summary-richness ordering: centroid < diagonal < full Gaussian.
    byte_column = next(key for key in rows[0].metrics if key.startswith("bytes_at"))
    assert (
        by_label["centroid"][byte_column]
        < by_label["diagonal_gaussian"][byte_column]
        < by_label["gaussian_mixture"][byte_column]
    )

    headers = ["scheme", *[k for k in rows[0].metrics if k.startswith("bytes_at")], "n-independent"]
    table_rows = [
        [
            row.label,
            *[int(row[k]) for k in row.metrics if k.startswith("bytes_at")],
            bool(row["size_independent_of_n"]),
        ]
        for row in rows
    ]
    write_report(
        "ablation_message_size",
        f"{banner('Ablation — wire bytes per message (k=2, d=2)')}\n"
        + format_table(headers, table_rows),
    )
