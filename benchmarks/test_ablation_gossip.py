"""Ablation — gossip communication patterns (push / pull / push-pull).

Section 4.1 allows all three; this bench measures their cost/quality
trade-off on the complete graph.
"""

from repro.analysis.reporting import banner, format_table
from repro.experiments.ablations import run_gossip_variant_ablation


def test_ablation_gossip_variants(benchmark, bench_scale, write_report):
    rows = benchmark.pedantic(
        run_gossip_variant_ablation, args=(bench_scale,), rounds=1, iterations=1
    )
    by_label = {row.label: row for row in rows}

    assert set(by_label) == {"push", "pull", "pushpull"}
    # Push-pull moves ~2x the messages of push *per round* (its total can
    # be lower: the bilateral exchange converges in fewer rounds).
    pushpull_rate = by_label["pushpull"]["messages"] / by_label["pushpull"]["rounds"]
    push_rate = by_label["push"]["messages"] / by_label["push"]["rounds"]
    assert pushpull_rate > 1.5 * push_rate
    # All three converge.
    for row in rows:
        assert row["disagreement"] < 0.2

    table = format_table(
        ["variant", "rounds", "messages", "final_disagreement"],
        [[row.label, int(row["rounds"]), int(row["messages"]), row["disagreement"]] for row in rows],
    )
    write_report(
        "ablation_gossip",
        f"{banner('Ablation — gossip variant')}\n{table}",
    )
