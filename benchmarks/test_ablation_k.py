"""Ablation — the compression bound k.

k forces lossy in-network compression (merged collections can never be
separated again).  This bench sweeps k on the fence-fire workload and
measures the quality of the resulting density estimate.
"""

from repro.analysis.reporting import banner, format_table
from repro.experiments.ablations import run_k_ablation


def test_ablation_k(benchmark, bench_scale, write_report):
    rows = benchmark.pedantic(
        run_k_ablation, args=(bench_scale,), kwargs={"ks": (3, 5, 7, 10)}, rounds=1, iterations=1
    )
    by_k = {int(row["k"]): row for row in rows}

    # More collections => richer model => higher data likelihood.
    assert by_k[10]["loglik_per_value"] >= by_k[3]["loglik_per_value"]
    # The k bound is always respected.
    for k, row in by_k.items():
        assert row["collections"] <= k

    table = format_table(
        ["k", "rounds", "collections", "loglik/value", "source loglik/value"],
        [
            [int(row["k"]), int(row["rounds"]), int(row["collections"]),
             row["loglik_per_value"], row["loglik_source"]]
            for row in rows
        ],
    )
    write_report("ablation_k", f"{banner('Ablation — compression bound k')}\n{table}")
