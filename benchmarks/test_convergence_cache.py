"""Convergence-tail benchmark: the merge cache's speedup record.

A 1,000-node GM run over discrete-valued data (every node's value sits
exactly on one of three centers, so the converged state is byte-stable)
is driven to structural quiescence and then 50 rounds further — the
regime long-running experiments spend most of their wall-clock in, where
every receive re-derives a state the network has already computed.  Both
phases are timed with the merge cache on and off, and the resulting
states are checked byte-identical, then recorded to
``benchmarks/results/BENCH_cache.json``:

- ``gm_n1000_tail50`` — the 50 post-convergence rounds; the certified
  no-op short circuit must deliver at least a 3x speedup here;
- ``gm_n1000_end_to_end`` — the whole run including the convergence
  phase, recorded for the overall picture (no floor asserted: early
  rounds are cache-cold by construction).

Unlike ``BENCH_hotpath.json`` there is no pinned baseline: the cache-off
run is measured in the same process, so the comparison is like-for-like
on any machine.

Run with::

    python -m pytest benchmarks/test_convergence_cache.py -q
"""

from __future__ import annotations

import json
import pathlib
import time

import numpy as np

from repro.network.topology import complete
from repro.protocols.classification import build_classification_network
from repro.schemes.gm import GaussianMixtureScheme

RESULTS_PATH = pathlib.Path(__file__).parent / "results" / "BENCH_cache.json"

N = 1000
K = 3
TAIL_ROUNDS = 50
MAX_ROUNDS = 200
CENTERS = np.array([[0.0, 0.0], [8.0, 8.0], [-8.0, 8.0]])


def _values() -> np.ndarray:
    rng = np.random.default_rng(11)
    return CENTERS[rng.integers(0, 3, size=N)]


def _build(merge_cache: bool, **kwargs):
    return build_classification_network(
        _values(),
        GaussianMixtureScheme(seed=0),
        k=K,
        graph=complete(N),
        seed=11,
        merge_cache=merge_cache,
        **kwargs,
    )


def _state(nodes, scheme):
    return [
        [(c.quanta, scheme.summary_digest(c.summary)) for c in node.classification]
        for node in nodes
    ]


def test_convergence_tail_speedup():
    # Find the structural convergence round once (cache on: the probe's
    # schedule is identical either way, only its wall-clock differs).
    probe, _ = _build(True, stop_on_quiescence=True)
    convergence_round = probe.run(MAX_ROUNDS)
    assert probe.quiescent, f"no quiescence within {MAX_ROUNDS} rounds"

    timings: dict[bool, tuple[float, float]] = {}
    states: dict[bool, list] = {}
    counters: dict[bool, dict] = {}
    for cached in (True, False):
        kernel, nodes = _build(cached)
        start = time.perf_counter()
        kernel.run(convergence_round)
        converge_s = time.perf_counter() - start
        start = time.perf_counter()
        kernel.run(TAIL_ROUNDS)
        tail_s = time.perf_counter() - start
        timings[cached] = (converge_s, tail_s)
        states[cached] = _state(nodes, nodes[0].scheme)
        counters[cached] = {
            "cache_noop_hits": kernel.metrics.cache_noop_hits,
            "cache_hits": kernel.metrics.cache_hits,
            "cache_misses": kernel.metrics.cache_misses,
        }

    # The cache's byte-identity contract, at benchmark scale.
    assert states[True] == states[False]

    tail_speedup = timings[False][1] / timings[True][1]
    end_to_end = {cached: sum(pair) for cached, pair in timings.items()}
    records = {
        "gm_n1000_tail50": {
            "workload": (
                f"GM scheme, {N} nodes, complete graph, {TAIL_ROUNDS} rounds "
                f"after structural quiescence (round {convergence_round})"
            ),
            "cache_off_s": timings[False][1],
            "cache_on_s": timings[True][1],
            "speedup": tail_speedup,
            "cache_noop_hits": counters[True]["cache_noop_hits"],
            "cache_memo_hits": counters[True]["cache_hits"],
            "cache_misses": counters[True]["cache_misses"],
        },
        "gm_n1000_end_to_end": {
            "workload": (
                f"GM scheme, {N} nodes, complete graph, full run of "
                f"{convergence_round + TAIL_ROUNDS} rounds"
            ),
            "cache_off_s": end_to_end[False],
            "cache_on_s": end_to_end[True],
            "speedup": end_to_end[False] / end_to_end[True],
            "convergence_round": convergence_round,
        },
    }
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(records, indent=2, sort_keys=True) + "\n")

    assert tail_speedup >= 3.0, (
        f"post-convergence tail: {tail_speedup:.2f}x < required 3x "
        f"({timings[True][1]:.3f}s cached vs {timings[False][1]:.3f}s uncached)"
    )
