"""Ablation — distributed GM vs centralised EM and k-means.

The natural quality ceiling: how much estimate quality does staying
in-network cost versus shipping all values to one machine?  (The paper's
answer, and ours: essentially nothing on this workload.)
"""

from repro.analysis.reporting import banner, format_table
from repro.experiments.ablations import run_centralized_gap


def test_ablation_centralized(benchmark, bench_scale, write_report):
    rows = benchmark.pedantic(
        run_centralized_gap, args=(bench_scale,), rounds=1, iterations=1
    )
    by_label = {row.label: row for row in rows}

    gap = (
        by_label["centralized_em"]["loglik_per_value"]
        - by_label["distributed_gm"]["loglik_per_value"]
    )
    assert gap < 0.3  # the distributed estimate is competitive

    table = format_table(
        ["estimator", "loglik/value", "rounds"],
        [[row.label, row["loglik_per_value"], int(row["rounds"])] for row in rows],
    )
    write_report(
        "ablation_centralized",
        f"{banner('Ablation — distributed vs centralised estimation')}\n{table}",
    )
