"""Sweep orchestration throughput: serial versus pooled cells/minute.

Two grids, measuring two different things:

- **Orchestration grid** — ``debug`` cells that sleep a fixed interval.
  Sleeping cells are I/O-bound, so the pooled speedup here isolates the
  *orchestration machinery* (dispatch, queues, store writes) from
  simulation compute, and reaches ~``workers``x even on a single-core
  runner.  This is the grid the >= 2x pooled-speedup criterion is
  asserted on.
- **Simulation mini grid** — the real 16-cell ``mini`` spec (engine x
  topology x variant x n on the outlier workload).  Cells/minute is
  recorded for both execution modes and the per-cell results are
  asserted byte-identical; the pooled speedup on CPU-bound cells is
  only asserted when the runner actually has multiple cores.

Writes ``benchmarks/results/BENCH_sweep.json`` with cells/minute and
serial-vs-pooled speedup for both grids.
"""

from __future__ import annotations

import json
import os
import pathlib

from repro.sweep.spec import SweepSpec, canonical_json
from repro.sweep.specs import mini_spec
from repro.sweep.runner import run_sweep

RESULTS_PATH = pathlib.Path(__file__).parent / "results" / "BENCH_sweep.json"
POOL_WORKERS = 4

_records: dict[str, dict] = {}


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _sleep_grid() -> SweepSpec:
    return SweepSpec(
        name="orchestration",
        runner="debug",
        axes={"value": list(range(16))},
        fixed={"sleep_s": 0.25},
        timeout_s=60.0,
    )


def _record(name: str, serial, pooled, workers: int) -> dict:
    speedup = (
        serial.duration_s / pooled.duration_s if pooled.duration_s > 0 else float("inf")
    )
    record = {
        "cells": serial.total,
        "workers": workers,
        "serial_s": serial.duration_s,
        "pooled_s": pooled.duration_s,
        "serial_cells_per_minute": serial.cells_per_minute,
        "pooled_cells_per_minute": pooled.cells_per_minute,
        "pooled_speedup": speedup,
        "available_cores": _available_cores(),
    }
    _records[name] = record
    return record


def _flush() -> None:
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(_records, indent=2, sort_keys=True) + "\n")


def test_orchestration_grid_pooled_speedup():
    """Sleep-bound cells: the pool must deliver >= 2x on any machine."""
    serial = run_sweep(_sleep_grid())
    pooled = run_sweep(_sleep_grid(), workers=POOL_WORKERS)
    assert serial.completed == pooled.completed == 16
    assert serial.failed == pooled.failed == 0
    record = _record("orchestration_grid", serial, pooled, POOL_WORKERS)
    _flush()
    assert record["pooled_speedup"] >= 2.0, (
        f"pooled orchestration speedup {record['pooled_speedup']:.2f}x < 2x "
        f"({record['serial_s']:.2f}s serial vs {record['pooled_s']:.2f}s pooled)"
    )


def test_simulation_mini_grid_parity_and_throughput():
    """The real mini grid: byte-identical results, recorded cells/minute."""
    spec = mini_spec()
    serial = run_sweep(spec)
    pooled = run_sweep(spec, workers=POOL_WORKERS)
    assert serial.completed == pooled.completed == len(spec.expand())
    assert serial.failed == pooled.failed == 0
    for key in serial.results:
        assert canonical_json(serial.results[key]) == canonical_json(pooled.results[key])
    record = _record("simulation_mini_grid", serial, pooled, POOL_WORKERS)
    _flush()
    # CPU-bound cells cannot speed up without CPUs to run them on; only
    # hold the pool to the 2x bar when the hardware allows it.
    if record["available_cores"] >= 2:
        assert record["pooled_speedup"] >= 1.2, (
            f"pooled simulation speedup {record['pooled_speedup']:.2f}x on "
            f"{record['available_cores']} cores"
        )
