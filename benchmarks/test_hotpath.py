"""Hot-path micro-benchmarks: the packed/vectorized speedup record.

Times the three workloads the vectorized hot path targets and writes
``benchmarks/results/BENCH_hotpath.json`` with before/after fields:

- ``reduce_mixture`` on large mixtures (l = 2,000 and 4,000): the
  Cholesky scoring + segment-sum M-step rewrite;
- ``greedy_closest_pair_partition`` on large sets: the incremental
  distance-matrix rewrite (was O(l^3) Python rescans);
- one 1,000-node GM round-equivalent: the end-to-end effect of the
  packed node state and the partition fast path.

The ``baseline_s`` numbers were measured on the pre-vectorization tree
(commit ``d01dcab``) with *exactly* the harness below — same generators,
same seeds, same best-of-N policy — so ``speedup`` compares like with
like on the machine that recorded the baseline.  The assertions leave
headroom (the measured speedups are far larger) so the suite stays green
on slower CI runners.

Run with::

    python -m pytest benchmarks/test_hotpath.py -q
"""

from __future__ import annotations

import json
import pathlib
import time

import numpy as np
import pytest

from repro.core.weights import Quantization
from repro.ml.reduction import reduce_mixture
from repro.network.topology import complete
from repro.protocols.classification import build_classification_network
from repro.schemes.centroid import greedy_closest_pair_partition
from repro.schemes.gm import GaussianMixtureScheme

RESULTS_PATH = pathlib.Path(__file__).parent / "results" / "BENCH_hotpath.json"

#: Pre-change timings (see module docstring for provenance).
BASELINE_S = {
    "reduce_mixture_l2000": 0.2402,
    "reduce_mixture_l4000": 0.2988,
    "greedy_partition_n256": 20.645,
    "greedy_partition_n512": 89.468,
    "gm_round_equivalent_n1000": 1.8867,
}

_records: dict[str, dict] = {}


@pytest.fixture(scope="module", autouse=True)
def _write_results():
    """After all cases ran, persist the before/after record."""
    yield
    if _records:
        RESULTS_PATH.parent.mkdir(exist_ok=True)
        RESULTS_PATH.write_text(json.dumps(_records, indent=2, sort_keys=True) + "\n")


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _record(key: str, seconds: float, workload: str) -> dict:
    baseline = BASELINE_S[key]
    entry = {
        "workload": workload,
        "baseline_s": baseline,
        "after_s": seconds,
        "speedup": baseline / seconds,
    }
    _records[key] = entry
    return entry


def _make_components(l: int, d: int = 2, seed: int = 0):
    rng = np.random.default_rng(seed)
    centers = rng.normal(0, 50, size=(8, d))
    means = centers[rng.integers(0, 8, size=l)] + rng.normal(0, 1, size=(l, d))
    covs = np.einsum("ij,ik->ijk", rng.normal(0, 0.3, (l, d)), rng.normal(0, 0.3, (l, d)))
    covs = covs + 0.5 * np.eye(d)
    covs = (covs + covs.transpose(0, 2, 1)) / 2
    weights = rng.uniform(0.5, 2.0, size=l)
    return weights, means, covs


@pytest.mark.parametrize("l", [2000, 4000])
def test_reduce_mixture_micro(l):
    weights, means, covs = _make_components(l)
    rng = np.random.default_rng(1)
    seconds = _best_of(
        lambda: reduce_mixture(weights, means, covs, k=32, rng=rng, max_iterations=25)
    )
    entry = _record(
        f"reduce_mixture_l{l}",
        seconds,
        f"hard-EM reduction, l={l} d=2 k=32, <=25 iterations, best of 3",
    )
    assert entry["speedup"] >= 2.0, (
        f"reduce_mixture l={l}: {entry['speedup']:.2f}x < required 2x "
        f"({seconds:.4f}s vs baseline {entry['baseline_s']:.4f}s)"
    )


@pytest.mark.parametrize("n", [256, 512])
def test_greedy_partition_micro(n):
    rng = np.random.default_rng(2)
    positions = rng.normal(0, 10, size=(n, 2))
    weights = rng.uniform(1, 4, size=n)
    quanta = [16] * n
    lattice = Quantization(1 << 20)
    seconds = _best_of(
        lambda: greedy_closest_pair_partition(positions, weights, quanta, k=8, quantization=lattice)
    )
    entry = _record(
        f"greedy_partition_n{n}",
        seconds,
        f"greedy closest-pair partition, n={n} d=2 k=8, best of 3",
    )
    assert entry["speedup"] >= 2.0, (
        f"greedy partition n={n}: {entry['speedup']:.2f}x < required 2x"
    )


def test_gm_round_equivalent_n1000():
    n = 1000
    rng = np.random.default_rng(11)
    centers = np.array([[0.0, 0.0], [8.0, 8.0], [-8.0, 8.0]])
    values = centers[rng.integers(0, 3, size=n)] + rng.normal(0, 1.0, size=(n, 2))
    kernel, _ = build_classification_network(
        values, GaussianMixtureScheme(seed=0), k=5, graph=complete(n), seed=11
    )
    kernel.run(2)  # warmup: populate multi-collection state
    times = []
    for _ in range(5):
        start = time.perf_counter()
        kernel.run(1)
        times.append(time.perf_counter() - start)
    entry = _record(
        "gm_round_equivalent_n1000",
        min(times),
        "GM scheme, 1,000 nodes, complete graph, one round-equivalent, "
        "2 warmup rounds, min of 5",
    )
    assert entry["speedup"] >= 1.3, (
        f"1000-node GM round: {entry['speedup']:.2f}x < required 1.3x "
        f"({min(times):.4f}s vs baseline {entry['baseline_s']:.4f}s)"
    )
