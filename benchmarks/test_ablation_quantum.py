"""Ablation — the weight quantum q.

Section 4.1 quantises weights to multiples of q to rule out Zeno
executions and assumes q << 1/n.  This bench violates that assumption on
purpose: with a coarse lattice the split rule rounds aggressively and
relative weights wander, while exact conservation of total weight holds
at every resolution.
"""

from repro.analysis.reporting import banner, format_table
from repro.experiments.ablations import run_quantum_ablation


def test_ablation_quantum(benchmark, bench_scale, write_report):
    rows = benchmark.pedantic(
        run_quantum_ablation,
        args=(bench_scale,),
        kwargs={"quanta": (4, 16, 256, 1 << 20)},
        rounds=1,
        iterations=1,
    )

    # Weight conservation is exact on every lattice.
    assert all(row["total_quanta_conserved"] == 1.0 for row in rows)
    # Finer lattices track relative weights better.
    coarsest, finest = rows[0], rows[-1]
    assert coarsest["avg_balance_error"] > finest["avg_balance_error"]
    assert finest["avg_balance_error"] < 0.02

    table = format_table(
        ["quanta_per_unit (1/q)", "avg_balance_error", "weight_conserved"],
        [
            [int(row["quanta_per_unit"]), row["avg_balance_error"],
             bool(row["total_quanta_conserved"])]
            for row in rows
        ],
    )
    write_report("ablation_quantum", f"{banner('Ablation — weight quantum q')}\n{table}")
