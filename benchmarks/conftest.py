"""Benchmark-suite configuration.

Run with::

    pytest benchmarks/ --benchmark-only

Every figure benchmark regenerates the corresponding paper figure's data
series, asserts the paper's qualitative shape, and writes the full series
to ``benchmarks/results/<name>.txt`` (pytest captures stdout, so files are
the durable record; EXPERIMENTS.md is compiled from them).

The default scale is the ``bench`` preset (400 nodes — large enough that
every published shape reproduces clearly, small enough that the suite
finishes in minutes).  Set ``REPRO_BENCH_SCALE=paper`` for the full
1,000-node published configuration, or ``fast`` for a smoke run.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments.common import Scale, preset

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_scale() -> Scale:
    """The scale preset the whole benchmark session runs at."""
    return preset(os.environ.get("REPRO_BENCH_SCALE", "bench"))


@pytest.fixture(scope="session")
def write_report():
    """Persist one benchmark's regenerated series to benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _write(name: str, text: str) -> pathlib.Path:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        return path

    return _write
