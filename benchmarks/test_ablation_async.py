"""Ablation — fully asynchronous convergence (the Section 6 setting).

Runs the event-driven engine (Poisson clocks, random delays, round-robin
fairness) on dense and sparse topologies and reports the simulated time
and event count to a disagreement target.  The claim under test is
Theorem 1's: convergence needs no rounds and no synchrony, only fairness
and connectivity.
"""

import numpy as np

from repro.analysis.reporting import banner, format_table
from repro.experiments.scalability import run_async_ablation


def test_ablation_async(benchmark, bench_scale, write_report):
    rows = benchmark.pedantic(
        run_async_ablation, args=(bench_scale,), rounds=1, iterations=1
    )
    by_label = {row.label: row for row in rows}

    # Both topologies reach the target disagreement in finite time.
    for row in rows:
        assert np.isfinite(row["sim_time_to_target"])
    # Density buys speed, sparsity only costs time — never convergence.
    assert (
        by_label["complete"]["sim_time_to_target"]
        <= by_label["ring"]["sim_time_to_target"]
    )

    table = format_table(
        ["topology", "sim_time_to_target", "events", "messages", "final_disagreement"],
        [
            [row.label, row["sim_time_to_target"], int(row["events"]),
             int(row["messages"]), row["final_disagreement"]]
            for row in rows
        ],
    )
    write_report(
        "ablation_async",
        f"{banner('Ablation — asynchronous convergence')}\n{table}",
    )
