"""Telemetry overhead benchmark: sampling must be close to free.

A 1,000-node GM round-engine run (the ``BENCH_cache.json`` workload) is
timed three ways in the same process:

- ``off`` — no recorder attached (the default; the kernel's telemetry
  hook is a single ``None`` check per round);
- ``sampled`` — a :class:`TimeSeriesRecorder` with stride 10, the
  configuration sweeps are expected to run with;
- ``full`` — stride 1, every round sampled, recorded for the curve.

The acceptance floor: the sampled configuration costs at most 5% over
the telemetry-off baseline, and the final node states are byte-identical
across all three (telemetry is a pure observer).  Results land in
``benchmarks/results/BENCH_obs.json``.

Run with::

    python -m pytest benchmarks/test_obs_overhead.py -q
"""

from __future__ import annotations

import json
import pathlib
import time

import numpy as np

from repro.network.topology import complete
from repro.obs import TelemetryConfig, TimeSeriesRecorder
from repro.protocols.classification import build_classification_network
from repro.schemes.gm import GaussianMixtureScheme

RESULTS_PATH = pathlib.Path(__file__).parent / "results" / "BENCH_obs.json"

N = 1000
K = 3
ROUNDS = 30
CENTERS = np.array([[0.0, 0.0], [8.0, 8.0], [-8.0, 8.0]])

#: Acceptance ceiling for the sampled configuration, as a ratio.
MAX_SAMPLED_OVERHEAD = 1.05


def _values() -> np.ndarray:
    rng = np.random.default_rng(11)
    return CENTERS[rng.integers(0, 3, size=N)]


def _build(recorder):
    return build_classification_network(
        _values(),
        GaussianMixtureScheme(seed=0),
        k=K,
        graph=complete(N),
        seed=11,
        telemetry=recorder,
    )


def _state(nodes, scheme):
    return [
        [(c.quanta, scheme.summary_digest(c.summary)) for c in node.classification]
        for node in nodes
    ]


def test_sampled_telemetry_overhead():
    configs = {
        "off": lambda: None,
        "sampled": lambda: TimeSeriesRecorder(TelemetryConfig(stride=10)),
        "full": lambda: TimeSeriesRecorder(TelemetryConfig(stride=1)),
    }
    # Warm-up: JIT-free Python, but the first run pays allocator and
    # cache warmup; a short throwaway run levels the field.
    warmup, _ = _build(None)
    warmup.run(3)

    timings: dict[str, float] = {}
    states: dict[str, list] = {}
    samples: dict[str, int] = {}
    for label, make_recorder in configs.items():
        recorder = make_recorder()
        kernel, nodes = _build(recorder)
        start = time.perf_counter()
        kernel.run(ROUNDS)
        timings[label] = time.perf_counter() - start
        states[label] = _state(nodes, nodes[0].scheme)
        samples[label] = len(recorder) if recorder is not None else 0

    # Telemetry is a pure observer: byte-identical states, always.
    assert states["off"] == states["sampled"] == states["full"]
    assert samples["sampled"] == ROUNDS // 10
    assert samples["full"] == ROUNDS

    sampled_ratio = timings["sampled"] / timings["off"]
    full_ratio = timings["full"] / timings["off"]
    records = {
        "gm_n1000_telemetry_overhead": {
            "workload": (
                f"GM scheme, {N} nodes, complete graph, {ROUNDS} rounds, "
                "telemetry off vs stride-10 sampled vs stride-1 full"
            ),
            "off_s": timings["off"],
            "sampled_s": timings["sampled"],
            "full_s": timings["full"],
            "sampled_overhead_ratio": sampled_ratio,
            "full_overhead_ratio": full_ratio,
            "sampled_samples": samples["sampled"],
            "full_samples": samples["full"],
            "max_sampled_overhead": MAX_SAMPLED_OVERHEAD,
        },
    }
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(records, indent=2, sort_keys=True) + "\n")

    assert sampled_ratio <= MAX_SAMPLED_OVERHEAD, (
        f"stride-10 telemetry costs {(sampled_ratio - 1) * 100:.1f}% "
        f"over baseline (allowed {(MAX_SAMPLED_OVERHEAD - 1) * 100:.0f}%): "
        f"{timings['sampled']:.3f}s vs {timings['off']:.3f}s"
    )
