"""Kernel round-throughput baseline at the paper's 1,000-node scale.

Times one round-equivalent of the simulation kernel under each scheduler
on the published network size (Section 5.3: n = 1,000, complete graph),
using the push-sum protocol so the number measures the *kernel* —
transport, queueing, delivery batching — rather than EM.

Besides pytest-benchmark's own table, the module writes
``benchmarks/results/BENCH_kernel.json`` keyed by scheduler, so future
changes to the kernel hot path can be diffed against this baseline.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np
import pytest

from repro.network.factory import ENGINES
from repro.network.topology import complete
from repro.protocols.push_sum import build_push_sum_network

N = 1000
RESULTS_PATH = pathlib.Path(__file__).parent / "results" / "BENCH_kernel.json"

_records: dict[str, dict] = {}


@pytest.fixture(scope="module", autouse=True)
def _write_baseline():
    """After both scheduler cases ran, persist the JSON baseline."""
    yield
    if _records:
        RESULTS_PATH.parent.mkdir(exist_ok=True)
        RESULTS_PATH.write_text(json.dumps(_records, indent=2, sort_keys=True) + "\n")


@pytest.mark.parametrize("engine", ENGINES)
def test_round_equivalent_throughput(benchmark, engine):
    rng = np.random.default_rng(11)
    values = rng.normal(0.0, 1.0, size=N)
    kernel, nodes = build_push_sum_network(
        values, complete(N), seed=11, engine=engine
    )

    benchmark.pedantic(kernel.run, args=(1,), rounds=5, iterations=1, warmup_rounds=1)

    # The workload must have actually gossiped at paper scale.
    assert kernel.metrics.messages_sent >= N
    stats = benchmark.stats.stats
    _records[engine] = {
        "n_nodes": N,
        "workload": "push-sum, complete graph, one round-equivalent",
        "mean_s": stats.mean,
        "min_s": stats.min,
        "max_s": stats.max,
        "stddev_s": stats.stddev,
        "timed_rounds": stats.rounds,
        "messages_sent_total": kernel.metrics.messages_sent,
    }
