"""Figure 2 — GM classification of multidimensional (fence-fire) data.

Regenerates the experiment of Section 5.3.1: values from three Gaussians
in R^2, GM algorithm with k = 7, fully connected network, run to
convergence.  The shape claims checked:

- the three heaviest recovered components match the three source
  Gaussians (small mean distance, small weight error);
- the recovered mixture is a usable density estimate — its data
  log-likelihood is at least in the neighbourhood of centralised EM's.
"""

import numpy as np

from repro.analysis.reporting import banner, format_table
from repro.experiments.fig2 import run_fig2


def test_fig2_multidimensional(benchmark, bench_scale, write_report):
    result = benchmark.pedantic(
        run_fig2, args=(bench_scale,), kwargs={"k": 7, "seed": 2}, rounds=1, iterations=1
    )

    # Shape: three source components recovered in place.
    assert len(result.recovery.matches) == 3
    assert result.recovery.max_mean_distance < 1.5
    assert result.recovery.max_weight_error < 0.12
    # Shape: usable estimate — competitive with the centralised fit.
    assert result.log_likelihood_distributed >= result.log_likelihood_centralized - 0.3
    assert result.n_collections <= 7

    heavy = result.heavy_components
    component_rows = []
    for j in range(heavy.n_components):
        std = np.sqrt(np.diag(heavy.covs[j]))
        component_rows.append(
            [
                f"{heavy.weights[j]:.3f}",
                f"({heavy.means[j][0]:.2f}, {heavy.means[j][1]:.2f})",
                f"({std[0]:.2f}, {std[1]:.2f})",
            ]
        )
    match_rows = [
        [f"source[{m.true_index}]", m.mean_distance, m.weight_error, m.cov_frobenius_error]
        for m in result.recovery.matches
    ]
    report = "\n".join(
        [
            banner(f"Figure 2 — fence-fire classification ({bench_scale.name} scale)"),
            f"n_nodes={bench_scale.n_nodes}  k=7  rounds_to_convergence={result.rounds}",
            f"collections at probe node: {result.n_collections}",
            "",
            "three heaviest recovered components:",
            format_table(["weight", "mean (pos, temp)", "std (pos, temp)"], component_rows),
            "",
            "match against source mixture:",
            format_table(["component", "mean_dist", "weight_err", "cov_frob_err"], match_rows),
            "",
            "data log-likelihood per value:",
            format_table(
                ["model", "loglik/value"],
                [
                    ["distributed GM (node 0)", result.log_likelihood_distributed],
                    ["centralized EM", result.log_likelihood_centralized],
                    ["true source mixture", result.log_likelihood_source],
                ],
            ),
        ]
    )
    write_report("fig2_multidimensional", report)
