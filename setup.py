"""Setuptools shim.

All metadata lives in pyproject.toml; this file exists so the package can
be installed in environments whose setuptools predates PEP 660 editable
installs or lacks the ``wheel`` package (``python setup.py develop``).
"""

from setuptools import setup

setup()
