#!/usr/bin/env python
"""Grid-computing load balancing (the paper's introduction example).

Machines in a compute grid each know only their own load.  Classifying
the loads into "lightly loaded" and "heavily loaded" collections lets
every machine make a *local* decision — stop serving new requests iff its
own load is closer to the heavy collection — using only the gossiped
classification, never the full load vector.

The introduction's point: a machine at 60% load should stop taking work
when the collections sit at 10%/90% (it belongs with the heavy crowd) but
keep serving when they sit at 50%/80%.  This example runs both situations.

Run:  python examples/load_balancing.py
"""

import numpy as np

from repro import CentroidScheme, build_classification_network
from repro.data import load_scenario
from repro.network import topology

N_MACHINES = 120
ROUNDS = 25
PROBE_LOAD = 60.0


def classify_probe(light_mean: float, heavy_mean: float, seed: int) -> None:
    """Run one scenario and report the 60%-load machine's decision."""
    loads, _ = load_scenario(
        N_MACHINES, light_mean=light_mean, heavy_mean=heavy_mean, spread=5.0, seed=seed
    )
    loads[0] = PROBE_LOAD  # machine 0 is our 60%-loaded probe

    engine, nodes = build_classification_network(
        loads[:, None],
        CentroidScheme(),
        k=2,
        graph=topology.watts_strogatz(N_MACHINES, k=6, rewire=0.3, seed=seed),
        seed=seed,
    )
    engine.run(rounds=ROUNDS)

    # Machine 0's local view of the global load classification.
    classification = nodes[0].classification.sorted_by_weight()
    centroids = sorted(float(c.summary[0]) for c in classification)
    light, heavy = centroids[0], centroids[-1]
    stop = abs(PROBE_LOAD - heavy) < abs(PROBE_LOAD - light)

    print(f"cluster averages seen by machine 0: "
          f"light ~ {light:.0f}%, heavy ~ {heavy:.0f}%")
    decision = "STOP serving new requests" if stop else "KEEP serving new requests"
    print(f"machine 0 (at {PROBE_LOAD:.0f}% load) decides: {decision}\n")


print(f"{N_MACHINES} machines gossip their loads over a small-world network\n")

print("scenario 1: half the grid near 10%, half near 90%")
classify_probe(light_mean=10.0, heavy_mean=90.0, seed=21)

print("scenario 2: half the grid near 50%, half near 80%")
classify_probe(light_mean=50.0, heavy_mean=80.0, seed=22)
