#!/usr/bin/env python
"""Statistically robust averaging with outlier removal (Section 5.3.2).

A sensor network wants the average of its readings, but a handful of
sensors are malfunctioning (an animal sitting on an ambient temperature
sensor, in the paper's example).  Plain gossip averaging (push-sum) is
dragged toward the outliers; running the GM classification algorithm with
k = 2 separates the bad readings into their own collection, and the mean
of the *good* collection is a robust average.

Run:  python examples/robust_average.py [delta]
"""

import sys

import numpy as np

from repro import GaussianMixtureScheme, build_classification_network
from repro.analysis import average_error, robust_mean
from repro.data import outlier_scenario
from repro.network import topology
from repro.protocols import build_push_sum_network

delta = float(sys.argv[1]) if len(sys.argv) > 1 else 10.0
N = 200
ROUNDS = 30

scenario = outlier_scenario(delta, n_good=190, n_outliers=10, seed=5)
print(f"{scenario.n} sensors: 190 good readings ~ N(0, I), "
      f"10 outliers ~ N((0, {delta}), 0.1 I)")
print(f"true mean of the good distribution: {scenario.true_mean}")
naive_mean = scenario.values.mean(axis=0)
print(f"naive average of ALL readings:      {np.round(naive_mean, 3)}  "
      f"(dragged {np.linalg.norm(naive_mean):.3f} away)\n")

# Robust: GM classification with k=2, then read the heavy collection's mean.
engine, nodes = build_classification_network(
    scenario.values,
    GaussianMixtureScheme(seed=5),
    k=2,
    graph=topology.complete(scenario.n),
    seed=5,
)
engine.run(rounds=ROUNDS)
robust_error = average_error(
    (robust_mean(node.classification) for node in nodes), scenario.true_mean
)

# Regular: push-sum average aggregation under identical conditions.
push_engine, push_nodes = build_push_sum_network(
    scenario.values, topology.complete(scenario.n), seed=5
)
push_engine.run(rounds=ROUNDS)
regular_error = average_error(
    (node.estimate for node in push_nodes), scenario.true_mean
)

print(f"after {ROUNDS} rounds (average error over all nodes):")
print(f"  robust GM average (outliers removed): {robust_error:.4f}")
print(f"  regular push-sum average:             {regular_error:.4f}")
print(f"  improvement: {regular_error / max(robust_error, 1e-12):.1f}x")

example = nodes[0].classification.sorted_by_weight()
print("\nnode 0 sees the two collections as:")
for name, collection in zip(["good", "outliers"], example):
    share = collection.quanta / nodes[0].total_quanta
    print(f"  {name:8s}: {share:5.1%} of weight, "
          f"mean = {np.round(collection.summary.mean, 2)}")
