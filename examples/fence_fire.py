#!/usr/bin/env python
"""The fence-fire scenario (paper Section 5.3.1 / Figure 2).

Sensors are positioned along a fence by the woods; the right side of the
fence is close to a fire outbreak.  Each sensor reads a (position,
temperature) pair.  The Gaussian-Mixture algorithm classifies the readings
in-network with k = 7, and every node ends up with a Gaussian Mixture
describing the global temperature field — including the tilted, hot
component near the fire — without any sensor collecting the raw data.

Run:  python examples/fence_fire.py [n_sensors]
"""

import sys

import numpy as np

from repro import GaussianMixtureScheme, build_classification_network, classification_to_gmm
from repro.analysis import format_table, match_mixtures
from repro.data import fence_fire_mixture, fence_fire_values
from repro.network import topology

n_sensors = int(sys.argv[1]) if len(sys.argv) > 1 else 300

values, true_labels = fence_fire_values(n_sensors, seed=2)
print(f"{n_sensors} sensors on the fence; readings are (position, temperature)")

scheme = GaussianMixtureScheme(seed=2)
engine, nodes = build_classification_network(
    values, scheme, k=7, graph=topology.complete(n_sensors), seed=2
)
engine.run(rounds=35)

recovered = classification_to_gmm(nodes[0].classification).sorted_by_weight()
source = fence_fire_mixture()

print(f"\nnode 0's classification after 35 rounds "
      f"({recovered.n_components} collections):")
rows = []
for j in range(recovered.n_components):
    std = np.sqrt(np.diag(recovered.covs[j]))
    rows.append(
        [
            f"{recovered.weights[j]:.1%}",
            f"({recovered.means[j][0]:.1f}, {recovered.means[j][1]:.1f})",
            f"({std[0]:.2f}, {std[1]:.2f})",
        ]
    )
print(format_table(["weight", "mean (pos, temp)", "std (pos, temp)"], rows))

# How close are the three heaviest components to the true field?
from repro.ml.gmm import GaussianMixtureModel

take = min(3, recovered.n_components)
heavy = GaussianMixtureModel(
    recovered.weights[:take], recovered.means[:take], recovered.covs[:take]
)
recovery = match_mixtures(heavy, source)
print("\nrecovered vs true source components:")
rows = [
    [f"source[{m.true_index}]", f"{m.mean_distance:.3f}", f"{m.weight_error:.3f}"]
    for m in recovery.matches
]
print(format_table(["component", "mean distance", "weight error"], rows))

hot = recovered.means[np.argmax(recovered.means[:, 1])]
print(f"\nhottest detected region: position {hot[0]:.1f}, temperature {hot[1]:.1f} "
      "(the fire is at the right end of the fence)")
