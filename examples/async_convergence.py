#!/usr/bin/env python
"""Fully asynchronous convergence (the Section 6 setting).

The convergence theorem makes no round assumptions: nodes act on their own
Poisson clocks, messages take arbitrary (here random) delays, and the
topology is any connected graph — a sparse ring in this example, the
farthest setting from the paper's fully connected simulations.  This
example runs the event-driven engine and prints the inter-node
disagreement as wall-clock (simulated) time advances, showing it fall
toward zero; it also checks the weight-conservation invariant over the
global pool (nodes + in-flight messages), which Section 6.1's proof is
built on.

Run:  python examples/async_convergence.py
"""

import numpy as np

from repro import GaussianMixtureScheme, disagreement
from repro.core import ClassifierNode, Quantization
from repro.network import AsyncEngine, topology
from repro.protocols import ClassificationProtocol

N = 24
rng = np.random.default_rng(9)
values = np.vstack(
    [rng.normal([0, 0], 0.5, size=(N // 2, 2)), rng.normal([6, 6], 0.5, size=(N // 2, 2))]
)

scheme = GaussianMixtureScheme(seed=9)
quantization = Quantization()
nodes = [
    ClassifierNode(i, values[i], scheme, k=2, quantization=quantization)
    for i in range(N)
]
engine = AsyncEngine(
    topology.ring(N),
    {i: ClassificationProtocol(nodes[i]) for i in range(N)},
    seed=9,
    mean_interval=1.0,
    delay_range=(0.05, 3.0),  # messages may take 3x a send interval
)

print(f"{N} nodes on a ring, Poisson clocks, random delays up to 3.0\n")
print(f"{'sim time':>8}  {'events':>7}  {'in flight':>9}  {'disagreement':>12}")
for checkpoint in [10, 25, 50, 100, 200, 400, 800]:
    engine.run_until(float(checkpoint))
    gap = disagreement(nodes, scheme)
    print(f"{engine.now:8.0f}  {engine.metrics.events:7d}  "
          f"{len(engine.in_flight_payloads()):9d}  {gap:12.3e}")

# Weight conservation over the global pool (Section 6.1's invariant):
pool_quanta = sum(node.total_quanta for node in nodes)
for payload in engine.in_flight_payloads():
    pool_quanta += sum(collection.quanta for collection in payload)
expected = N * quantization.unit
print(f"\nglobal pool weight: {pool_quanta} quanta (expected {expected}) — "
      f"{'conserved exactly' if pool_quanta == expected else 'VIOLATED'}")

print("\nnode 0's final classification:")
for collection in nodes[0].classification.sorted_by_weight():
    share = collection.quanta / nodes[0].total_quanta
    print(f"  {share:5.1%} of weight, mean = {np.round(collection.summary.mean, 2)}")
