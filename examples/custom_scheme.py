#!/usr/bin/env python
"""Writing your own summary scheme — and proving it sound.

The generic algorithm (paper Section 4) is parameterised by a summary
scheme; anything satisfying requirements R1-R4 inherits the convergence
theorem.  This example defines a new scheme from scratch — collections
summarised by their axis-aligned *bounding boxes* — audits it with
``SchemeAuditor``, and then runs it distributively.

Bounding boxes satisfy the requirements exactly:
- R2: a single value's box is the degenerate box at that value;
- R3: boxes ignore weights entirely, so weight scaling is a no-op;
- R4: the box of a union is the elementwise min/max of the boxes.

Run:  python examples/custom_scheme.py
"""

import numpy as np

from repro.core import SchemeAuditor, SummaryScheme
from repro.network import topology
from repro.protocols import build_classification_network
from repro.schemes import greedy_closest_pair_partition


class BoundingBoxScheme(SummaryScheme):
    """Summaries are (lower, upper) corner pairs of axis-aligned boxes."""

    def val_to_summary(self, value):
        point = np.atleast_1d(np.asarray(value, dtype=float))
        return (point.copy(), point.copy())

    def merge_set(self, items):
        lowers = np.stack([low for (low, _), _ in items])
        uppers = np.stack([high for (_, high), _ in items])
        return (lowers.min(axis=0), uppers.max(axis=0))

    def distance(self, a, b):
        # L2 between box corner pairs: zero iff the boxes coincide.
        return float(
            np.linalg.norm(a[0] - b[0]) + np.linalg.norm(a[1] - b[1])
        )

    def partition(self, collections, k, quantization):
        centers = np.stack(
            [(c.summary[0] + c.summary[1]) / 2.0 for c in collections]
        )
        weights = np.array([float(c.quanta) for c in collections])
        quanta = [c.quanta for c in collections]
        return greedy_closest_pair_partition(centers, weights, quanta, k, quantization)


# ----------------------------------------------------------------------
# 1. Audit the scheme before trusting it.
# ----------------------------------------------------------------------
rng = np.random.default_rng(33)
sample_values = rng.normal(size=(8, 2)) * 3
report = SchemeAuditor(BoundingBoxScheme(), sample_values, seed=33).run(k=3)
print(report.summary())
assert report.passed, "a scheme failing the audit must not be deployed"

# ----------------------------------------------------------------------
# 2. Run it distributively: 40 sensors, two spatial regions.
# ----------------------------------------------------------------------
values = np.vstack(
    [rng.normal([0, 0], 1.0, size=(20, 2)), rng.normal([12, 12], 2.0, size=(20, 2))]
)
engine, nodes = build_classification_network(
    values, BoundingBoxScheme(), k=2, graph=topology.complete(40), seed=33
)
engine.run(rounds=30)

print("\nnode 0's classification (bounding boxes of the two regions):")
for collection in nodes[0].classification.sorted_by_weight():
    low, high = collection.summary
    share = collection.quanta / nodes[0].total_quanta
    print(f"  {share:5.1%} of weight: box [{np.round(low, 1)} .. {np.round(high, 1)}]")
