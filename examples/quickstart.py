#!/usr/bin/env python
"""Quickstart: distributed classification in ~40 lines.

64 sensors each take one 2-D reading drawn from two well-separated
clusters.  No node ever sees the full data set; gossiping split/merge
steps of the generic algorithm (Algorithm 1 of the paper) let every node
converge to the same two-collection classification of all 64 readings.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import GaussianMixtureScheme, build_classification_network, disagreement
from repro.network import topology

N_SENSORS = 64
ROUNDS = 30

# Each sensor's single reading: two clusters of 32 readings each.
rng = np.random.default_rng(42)
readings = np.vstack(
    [
        rng.normal([20.0, 5.0], 1.0, size=(32, 2)),  # cool region
        rng.normal([35.0, 9.0], 1.5, size=(32, 2)),  # warm region
    ]
)

# Build the network: one classifier node per sensor, gossiping over a
# fully connected topology, classifying into at most k=2 collections.
scheme = GaussianMixtureScheme(seed=42)
engine, nodes = build_classification_network(
    readings, scheme, k=2, graph=topology.complete(N_SENSORS), seed=42
)

engine.run(rounds=ROUNDS)

# Every node now holds (approximately) the same classification.
print(f"after {ROUNDS} gossip rounds ({engine.metrics.messages_sent} messages):")
for collection in nodes[0].classification.sorted_by_weight():
    share = collection.quanta / nodes[0].total_quanta
    mean = np.round(collection.summary.mean, 2)
    print(f"  collection: {share:5.1%} of weight, mean = {mean}")

print(f"max disagreement across all {N_SENSORS} nodes: "
      f"{disagreement(nodes, scheme):.2e}")
