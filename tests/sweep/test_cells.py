"""Built-in cell runners: the early-exit knob and runner resolution."""

import pytest

from repro.sweep.cells import classification_cell, resolve_runner


class TestResolveRunner:
    def test_short_name(self):
        assert resolve_runner("classification") is classification_cell

    def test_bad_reference_rejected(self):
        with pytest.raises(ValueError, match="runner reference"):
            resolve_runner("not-a-path")


class TestEarlyExit:
    BASE = {
        "seed": 4,
        "n": 12,
        "k": 2,
        "rounds": 10,
        "dataset": "outlier",
    }

    def test_default_omits_quiescence_fields(self):
        result = classification_cell(dict(self.BASE))
        assert "quiescent" not in result
        assert "rounds_saved" not in result

    @pytest.mark.parametrize("engine", ["rounds", "async"])
    def test_early_exit_reports_rounds_saved(self, engine):
        params = dict(self.BASE, early_exit=True, engine=engine)
        result = classification_cell(params)
        assert isinstance(result["quiescent"], bool)
        assert result["rounds_saved"] == 10 - result["rounds_run"]
        assert result["rounds_saved"] >= 0

    def test_early_exit_result_matches_full_run_when_not_quiescent(self):
        # Continuous-valued datasets never freeze bytes, so the probe
        # cannot fire and the early-exit cell must reproduce the plain
        # cell's measurements exactly.
        full = classification_cell(dict(self.BASE))
        early = classification_cell(dict(self.BASE, early_exit=True))
        assert not early["quiescent"]
        assert early["rounds_saved"] == 0
        for key, value in full.items():
            assert early[key] == value
