"""Sweep telemetry: per-cell convergence curves into the store.

``run_sweep(..., telemetry_stride=s)`` wraps every cell in an ambient
telemetry scope and persists the resulting rows into the store's
``timeseries`` table — identically for serial and pooled execution, and
without perturbing the cells' results.
"""

import pytest

from repro.sweep.runner import run_sweep
from repro.sweep.spec import SweepSpec
from repro.sweep.store import ResultStore


def classification_spec(**overrides):
    base = dict(
        name="telemetry-grid",
        runner="classification",
        axes={"n": [8, 12]},
        fixed={"rounds": 6, "dataset": "two_cluster"},
    )
    base.update(overrides)
    return SweepSpec(**base)


class TestSerialTelemetry:
    def test_curves_persisted_per_cell(self, tmp_path):
        store_path = str(tmp_path / "sweep.sqlite")
        report = run_sweep(
            classification_spec(), store=store_path, telemetry_stride=1
        )
        assert report.completed == 2
        with ResultStore(store_path) as store:
            for key in report.results:
                series = store.timeseries_series(
                    report.run_id, key, "distinct_fingerprints"
                )
                assert [r for r, _ in series] == [0, 1, 2, 3, 4, 5]

    def test_stride_thins_the_series(self, tmp_path):
        store_path = str(tmp_path / "sweep.sqlite")
        report = run_sweep(
            classification_spec(), store=store_path, telemetry_stride=3
        )
        with ResultStore(store_path) as store:
            key = next(iter(report.results))
            series = store.timeseries_series(report.run_id, key, "live")
            assert [r for r, _ in series] == [0, 3]

    def test_no_stride_means_no_rows(self, tmp_path):
        store_path = str(tmp_path / "sweep.sqlite")
        report = run_sweep(classification_spec(), store=store_path)
        with ResultStore(store_path) as store:
            assert store.timeseries(report.run_id) == []

    def test_results_unchanged_by_telemetry(self, tmp_path):
        plain = run_sweep(classification_spec())
        observed = run_sweep(
            classification_spec(),
            store=str(tmp_path / "sweep.sqlite"),
            telemetry_stride=1,
        )
        assert plain.results == observed.results


@pytest.mark.slow
class TestPooledTelemetry:
    def test_pooled_rows_match_serial(self, tmp_path):
        serial_path = str(tmp_path / "serial.sqlite")
        pooled_path = str(tmp_path / "pooled.sqlite")
        serial = run_sweep(
            classification_spec(), store=serial_path, telemetry_stride=2
        )
        pooled = run_sweep(
            classification_spec(),
            store=pooled_path,
            workers=2,
            telemetry_stride=2,
        )
        assert serial.results == pooled.results
        with ResultStore(serial_path) as a, ResultStore(pooled_path) as b:
            rows_a = a.timeseries(serial.run_id)
            rows_b = b.timeseries(pooled.run_id)
        assert rows_a == rows_b
        assert rows_a  # and the comparison was not vacuous
