"""The sweep CLI: run / status / export, end to end on real stores."""

import csv
import io
import json

import pytest

from repro.sweep.cli import main
from repro.sweep.spec import SweepSpec


@pytest.fixture
def spec_file(tmp_path):
    spec = SweepSpec(name="cli-grid", runner="debug", axes={"value": [0, 1, 2, 3]})
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(spec.to_json_dict()))
    return str(path)


def run_cli(*argv):
    return main(list(argv))


class TestRun:
    def test_run_spec_file_serial(self, spec_file, tmp_path, capsys):
        store = str(tmp_path / "s.sqlite")
        assert run_cli("run", spec_file, "--store", store, "--no-progress") == 0
        out = capsys.readouterr().out
        assert "sweep cli-grid" in out
        assert "completed" in out

    def test_run_builtin_name_resolves(self, tmp_path, capsys):
        store = str(tmp_path / "s.sqlite")
        code = run_cli(
            "run", "mini", "--store", store, "--limit", "1", "--no-progress"
        )
        assert code == 0
        assert "sweep mini" in capsys.readouterr().out

    def test_run_pooled(self, spec_file, tmp_path, capsys):
        store = str(tmp_path / "s.sqlite")
        assert (
            run_cli("run", spec_file, "--store", store, "--workers", "2", "--no-progress")
            == 0
        )

    def test_unknown_spec_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("run", "no-such-spec", "--no-progress")

    def test_failed_cells_set_exit_code(self, tmp_path, capsys):
        spec = SweepSpec(
            name="failing", runner="debug", cells=[{"label": "bad", "fail": True}]
        )
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_json_dict()))
        assert run_cli("run", str(path), "--no-progress") == 1
        assert "failed cells:" in capsys.readouterr().out


class TestStatusAndResume:
    def test_interrupt_then_resume_completes(self, spec_file, tmp_path, capsys):
        store = str(tmp_path / "s.sqlite")
        assert (
            run_cli("run", spec_file, "--store", store, "--limit", "2", "--no-progress")
            == 0
        )
        # Not every cell is done yet: check-complete fails.
        assert run_cli("status", "--store", store, "--check-complete") == 1
        capsys.readouterr()
        assert (
            run_cli("run", spec_file, "--store", store, "--resume", "--no-progress") == 0
        )
        out = capsys.readouterr().out
        assert "skipped (resume)" in out
        assert run_cli("status", "--store", store, "--check-complete") == 0

    def test_status_lists_tasks(self, spec_file, tmp_path, capsys):
        store = str(tmp_path / "s.sqlite")
        run_cli("run", spec_file, "--store", store, "--no-progress")
        capsys.readouterr()
        assert run_cli("status", "--store", store, "--tasks") == 0
        out = capsys.readouterr().out
        assert "value=0" in out
        assert "done" in out

    def test_status_on_empty_store(self, tmp_path, capsys):
        store = str(tmp_path / "empty.sqlite")
        assert run_cli("status", "--store", store) == 0
        assert run_cli("status", "--store", store, "--check-complete") == 1


class TestExport:
    def test_json_export(self, spec_file, tmp_path, capsys):
        store = str(tmp_path / "s.sqlite")
        run_cli("run", spec_file, "--store", store, "--no-progress")
        capsys.readouterr()
        assert run_cli("export", "--store", store, "--format", "json") == 0
        record = json.loads(capsys.readouterr().out)
        assert record["name"] == "cli-grid"
        assert len(record["cells"]) == 4
        assert all(cell["status"] == "done" for cell in record["cells"])

    def test_csv_export_to_file(self, spec_file, tmp_path):
        store = str(tmp_path / "s.sqlite")
        out_path = tmp_path / "cells.csv"
        run_cli("run", spec_file, "--store", store, "--no-progress")
        assert (
            run_cli(
                "export", "--store", store, "--format", "csv", "--output", str(out_path)
            )
            == 0
        )
        rows = list(csv.DictReader(io.StringIO(out_path.read_text())))
        assert len(rows) == 4
        assert {"key", "status", "params.value", "result.value"} <= set(rows[0])
        assert {row["params.value"] for row in rows} == {"0", "1", "2", "3"}

    def test_export_empty_store_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            run_cli("export", "--store", str(tmp_path / "empty.sqlite"))
