"""ResultStore: run registration, task state and resume bookkeeping."""

import pytest

from repro.sweep.spec import SweepSpec
from repro.sweep.store import ResultStore


def debug_spec():
    return SweepSpec(name="store-test", runner="debug", axes={"value": [1, 2, 3]})


def begin(store, run_id="run-1", resume=False, workers=0):
    spec = debug_spec()
    tasks = spec.expand()
    store.begin_run(run_id, spec, tasks, workers=workers, resume=resume)
    return spec, tasks


class TestRuns:
    def test_begin_registers_run_and_tasks(self):
        with ResultStore() as store:
            spec, tasks = begin(store)
            assert store.run_ids() == ["run-1"]
            assert store.run_info("run-1")["name"] == "store-test"
            assert store.run_info("run-1")["status"] == "running"
            assert [row.key for row in store.task_rows("run-1")] == [t.key for t in tasks]
            assert store.status_counts("run-1") == {"pending": 3}

    def test_duplicate_run_without_resume_rejected(self):
        with ResultStore() as store:
            begin(store)
            with pytest.raises(ValueError, match="already exists"):
                begin(store)

    def test_resume_is_idempotent_and_preserves_results(self):
        with ResultStore() as store:
            spec, tasks = begin(store)
            store.mark_running("run-1", tasks[0].key)
            store.mark_done("run-1", tasks[0].key, '{"x":1}', 0.1)
            begin(store, resume=True)
            assert store.keys_with_status("run-1", "done") == {tasks[0].key}
            assert store.results("run-1") == {tasks[0].key: {"x": 1}}

    def test_resume_requeues_stale_running_tasks(self):
        with ResultStore() as store:
            spec, tasks = begin(store)
            store.mark_running("run-1", tasks[1].key)
            # Simulate an interruption: the process died mid-task.
            begin(store, resume=True)
            assert store.status_counts("run-1") == {"pending": 3}
            # The attempt made before the interruption is still counted.
            assert store.attempts("run-1", tasks[1].key) == 1

    def test_spec_round_trips_through_the_run_row(self):
        with ResultStore() as store:
            spec, _ = begin(store)
            assert store.spec_for("run-1").expand() == spec.expand()

    def test_finish_run_sets_terminal_status(self):
        with ResultStore() as store:
            begin(store)
            store.finish_run("run-1", "complete")
            assert store.run_info("run-1")["status"] == "complete"

    def test_missing_run_raises(self):
        with ResultStore() as store:
            with pytest.raises(KeyError):
                store.run_info("nope")


class TestTaskState:
    def test_done_lifecycle(self):
        with ResultStore() as store:
            _, tasks = begin(store)
            key = tasks[0].key
            store.mark_running("run-1", key)
            store.mark_done("run-1", key, '{"v":2}', 1.5)
            row = {r.key: r for r in store.task_rows("run-1")}[key]
            assert row.status == "done"
            assert row.attempts == 1
            assert row.duration_s == 1.5
            assert store.result_json("run-1", key) == '{"v":2}'

    def test_failed_lifecycle_keeps_error(self):
        with ResultStore() as store:
            _, tasks = begin(store)
            key = tasks[0].key
            store.mark_running("run-1", key)
            store.mark_failed("run-1", key, "boom", 0.2)
            row = {r.key: r for r in store.task_rows("run-1")}[key]
            assert row.status == "failed"
            assert row.error == "boom"

    def test_requeue_preserves_attempts(self):
        with ResultStore() as store:
            _, tasks = begin(store)
            key = tasks[0].key
            store.mark_running("run-1", key)
            store.mark_pending("run-1", key, error="worker crashed")
            store.mark_running("run-1", key)
            assert store.attempts("run-1", key) == 2

    def test_stored_result_bytes_are_exact(self):
        # The store must never re-serialise: byte identity between serial
        # and pooled execution depends on it.
        payload = '{"a":0.30000000000000004,"b":[1,2]}'
        with ResultStore() as store:
            _, tasks = begin(store)
            store.mark_done("run-1", tasks[0].key, payload, 0.0)
            assert store.result_json("run-1", tasks[0].key) == payload


class TestExportAndPersistence:
    def test_export_rows_cover_every_task(self):
        with ResultStore() as store:
            _, tasks = begin(store)
            store.mark_running("run-1", tasks[0].key)
            store.mark_done("run-1", tasks[0].key, '{"x":1}', 0.1)
            records = store.export_rows("run-1")
            assert len(records) == 3
            by_key = {r["key"]: r for r in records}
            assert by_key[tasks[0].key]["result"] == {"x": 1}
            assert by_key[tasks[1].key]["result"] is None
            assert by_key[tasks[1].key]["status"] == "pending"
            assert by_key[tasks[0].key]["params"] == dict(tasks[0].params)

    def test_state_survives_reopening_the_file(self, tmp_path):
        path = str(tmp_path / "sweep.sqlite")
        with ResultStore(path) as store:
            _, tasks = begin(store)
            store.mark_running("run-1", tasks[0].key)
            store.mark_done("run-1", tasks[0].key, '{"x":1}', 0.1)
        with ResultStore(path) as store:
            assert store.run_ids() == ["run-1"]
            assert store.keys_with_status("run-1", "done") == {tasks[0].key}
            assert store.results("run-1") == {tasks[0].key: {"x": 1}}

    def test_two_runs_do_not_interfere(self):
        with ResultStore() as store:
            _, tasks = begin(store, run_id="a")
            begin(store, run_id="b")
            store.mark_running("a", tasks[0].key)
            store.mark_done("a", tasks[0].key, '{"x":1}', 0.1)
            assert store.status_counts("a")["done"] == 1
            assert store.status_counts("b") == {"pending": 3}
