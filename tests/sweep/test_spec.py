"""SweepSpec expansion, seed derivation and serialisation."""

import json

import pytest

from repro.sweep.spec import SweepSpec, canonical_json, derive_seed, format_param


def grid_spec(**overrides):
    base = dict(
        name="grid",
        runner="debug",
        base_seed=3,
        axes={"engine": ["rounds", "async"], "n": [10, 20]},
        fixed={"k": 2},
    )
    base.update(overrides)
    return SweepSpec(**base)


class TestExpansion:
    def test_grid_is_the_sorted_axes_cross_product(self):
        tasks = grid_spec().expand()
        # Axis names are sorted; each axis's values keep their listed order.
        assert [t.key for t in tasks] == [
            "engine=rounds/n=10",
            "engine=rounds/n=20",
            "engine=async/n=10",
            "engine=async/n=20",
        ]
        assert [t.index for t in tasks] == [0, 1, 2, 3]

    def test_fixed_params_reach_every_cell(self):
        for task in grid_spec().expand():
            assert task.params["k"] == 2

    def test_replicates_append_a_rep_axis(self):
        tasks = grid_spec(replicates=2).expand()
        assert len(tasks) == 8
        assert tasks[0].key == "engine=rounds/n=10/rep=0"
        assert tasks[1].key == "engine=rounds/n=10/rep=1"
        assert tasks[0].params["rep"] == 0

    def test_expansion_is_deterministic(self):
        assert grid_spec().expand() == grid_spec().expand()

    def test_explicit_cells_use_labels_as_keys(self):
        spec = SweepSpec(
            name="cells",
            runner="debug",
            cells=[{"label": "a", "value": 1}, {"label": "b", "value": 2}],
        )
        assert [t.key for t in spec.expand()] == ["a", "b"]

    def test_explicit_cell_runner_override(self):
        spec = SweepSpec(
            name="cells",
            runner="classification",
            cells=[{"label": "a", "runner": "debug", "value": 1}],
        )
        assert spec.expand()[0].runner == "debug"

    def test_duplicate_keys_rejected(self):
        spec = SweepSpec(
            name="dup", runner="debug", cells=[{"label": "x"}, {"label": "x"}]
        )
        with pytest.raises(ValueError, match="duplicate"):
            spec.expand()

    def test_policy_travels_to_tasks(self):
        task = grid_spec(timeout_s=5.0, max_retries=3).expand()[0]
        assert task.timeout_s == 5.0
        assert task.max_retries == 3


class TestSeeds:
    def test_derivation_is_stable(self):
        # Golden values: changing the derivation silently breaks resume
        # compatibility and serial/pooled parity, so pin them.
        assert derive_seed(0, "a") == derive_seed(0, "a")
        assert derive_seed(0, "a") != derive_seed(0, "b")
        assert derive_seed(0, "a") != derive_seed(1, "a")
        assert 0 <= derive_seed(123, "engine=rounds/n=10") < 2**32

    def test_task_seed_derived_from_base_seed_and_key(self):
        task = grid_spec().expand()[0]
        assert task.seed == derive_seed(3, task.key)

    def test_pinned_seed_wins(self):
        spec = SweepSpec(
            name="pin", runner="debug", cells=[{"label": "a", "seed": 99}]
        )
        assert spec.expand()[0].seed == 99

    def test_runner_params_injects_seed(self):
        task = grid_spec().expand()[0]
        params = task.runner_params()
        assert params["seed"] == task.seed
        assert "seed" not in task.params


class TestSerialisation:
    def test_round_trip(self):
        spec = grid_spec(replicates=2, timeout_s=10.0)
        again = SweepSpec.from_json_dict(json.loads(json.dumps(spec.to_json_dict())))
        assert again.expand() == spec.expand()
        assert again.spec_hash() == spec.spec_hash()

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep spec fields"):
            SweepSpec.from_json_dict({"name": "x", "axes": {"a": [1]}, "bogus": 1})

    def test_spec_hash_tracks_content(self):
        assert grid_spec().spec_hash() == grid_spec().spec_hash()
        assert grid_spec().spec_hash() != grid_spec(base_seed=4).spec_hash()

    def test_from_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(grid_spec().to_json_dict()))
        assert SweepSpec.from_file(str(path)).expand() == grid_spec().expand()


class TestValidation:
    def test_needs_axes_or_cells(self):
        with pytest.raises(ValueError, match="empty sweep"):
            SweepSpec(name="empty")

    def test_axes_and_cells_are_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            SweepSpec(name="both", axes={"a": [1]}, cells=[{"label": "x"}])

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError):
            grid_spec(replicates=0)
        with pytest.raises(ValueError):
            grid_spec(max_retries=-1)
        with pytest.raises(ValueError):
            grid_spec(timeout_s=0.0)


class TestCanonicalJson:
    def test_sorted_and_compact(self):
        assert canonical_json({"b": 1, "a": [1.5, True]}) == '{"a":[1.5,true],"b":1}'

    def test_format_param(self):
        assert format_param(0.1) == "0.1"
        assert format_param(True) == "true"
        assert format_param("x") == "x"
        assert format_param(10) == "10"
