"""run_sweep: serial/pooled parity, resume, fault tolerance.

The acceptance contract under test: a >= 16-cell sweep on 4 workers
produces byte-identical per-cell results versus serial execution, an
interrupted sweep completes under ``--resume`` without recomputing
finished cells, and injected worker crashes / hung cells degrade to
retries or ``failed`` rows — never an aborted sweep.
"""

import json

import pytest

from repro.obs.profiling import MetricsRegistry
from repro.sweep.runner import CRASH_FLAG_ENV, CRASH_TASK_ENV, run_sweep
from repro.sweep.spec import SweepSpec, canonical_json
from repro.sweep.specs import mini_spec
from repro.sweep.store import ResultStore


def debug_spec(n=6, **overrides):
    base = dict(name="debug-grid", runner="debug", axes={"value": list(range(n))})
    base.update(overrides)
    return SweepSpec(**base)


class TestSerial:
    def test_runs_every_cell(self):
        report = run_sweep(debug_spec())
        assert report.total == report.completed == 6
        assert report.failed == 0
        assert not report.interrupted
        assert sorted(report.results) == [f"value={v}" for v in range(6)]

    def test_results_echo_derived_seeds(self):
        spec = debug_spec()
        report = run_sweep(spec)
        for task in spec.expand():
            assert report.results[task.key]["seed"] == task.seed

    def test_cell_exception_is_recorded_not_raised(self):
        spec = SweepSpec(
            name="mixed",
            runner="debug",
            cells=[{"label": "ok", "value": 1}, {"label": "bad", "fail": True}],
        )
        report = run_sweep(spec)
        assert report.completed == 1
        assert report.failed == 1
        assert "injected cell failure" in report.failures["bad"]
        assert "ok" in report.results and "bad" not in report.results

    def test_limit_interrupts_and_resume_completes(self, tmp_path):
        path = str(tmp_path / "sweep.sqlite")
        first = run_sweep(debug_spec(), store=path, limit=2)
        assert first.completed == 2
        assert first.interrupted
        second = run_sweep(debug_spec(), store=path, resume=True)
        assert second.skipped == 2
        assert second.completed == 4
        assert not second.interrupted
        assert len(second.results) == 6

    def test_resume_does_not_recompute_finished_cells(self, tmp_path):
        path = str(tmp_path / "sweep.sqlite")
        run_sweep(debug_spec(), store=path, limit=2)
        run_sweep(debug_spec(), store=path, resume=True)
        with ResultStore(path) as store:
            run_id = store.run_ids()[0]
            rows = store.task_rows(run_id)
            assert all(row.attempts == 1 for row in rows)
            assert store.run_info(run_id)["status"] == "complete"

    def test_fresh_run_with_existing_id_rejected(self, tmp_path):
        path = str(tmp_path / "sweep.sqlite")
        run_sweep(debug_spec(), store=path)
        with pytest.raises(ValueError, match="already exists"):
            run_sweep(debug_spec(), store=path)

    def test_metrics_registry_sees_sweep_counters(self):
        registry = MetricsRegistry()
        run_sweep(debug_spec(n=3), registry=registry)
        assert registry.counters["sweep.completed"] == 3
        assert registry.timers["sweep.task"].count == 3


class TestPooled:
    def test_pooled_matches_serial_byte_for_byte(self, tmp_path):
        serial = run_sweep(debug_spec(n=8), store=str(tmp_path / "serial.sqlite"))
        pooled = run_sweep(
            debug_spec(n=8), store=str(tmp_path / "pooled.sqlite"), workers=3
        )
        assert pooled.completed == 8
        for key in serial.results:
            assert canonical_json(serial.results[key]) == canonical_json(pooled.results[key])

    def test_pooled_cell_exception_fails_without_retry(self, tmp_path):
        spec = SweepSpec(
            name="mixed",
            runner="debug",
            cells=[{"label": "ok", "value": 1}, {"label": "bad", "fail": True}],
            max_retries=2,
        )
        report = run_sweep(spec, workers=2, store=str(tmp_path / "s.sqlite"))
        assert report.completed == 1
        assert report.failed == 1
        assert report.retries == 0  # deterministic exceptions never retry

    def test_worker_crash_is_retried(self, tmp_path, monkeypatch):
        flag = tmp_path / "crashed.flag"
        monkeypatch.setenv(CRASH_TASK_ENV, "value=2")
        monkeypatch.setenv(CRASH_FLAG_ENV, str(flag))
        report = run_sweep(
            debug_spec(n=4, max_retries=2), workers=2, store=str(tmp_path / "s.sqlite")
        )
        assert flag.exists()  # the crash actually fired
        assert report.retries >= 1
        assert report.completed == 4
        assert report.failed == 0

    def test_exhausted_retries_mark_the_cell_failed(self, tmp_path, monkeypatch):
        # Crash on every attempt: remove the flag as soon as it appears so
        # the injection re-arms, exhausting max_retries.
        flag = tmp_path / "crashed.flag"
        monkeypatch.setenv(CRASH_TASK_ENV, "value=1")
        monkeypatch.setenv(CRASH_FLAG_ENV, str(flag))

        import repro.sweep.runner as runner_mod

        original = runner_mod._maybe_inject_crash

        def rearming(key):
            flag.unlink(missing_ok=True)
            original(key)

        monkeypatch.setattr(runner_mod, "_maybe_inject_crash", rearming)
        report = run_sweep(
            debug_spec(n=2, max_retries=1), workers=1, store=str(tmp_path / "s.sqlite")
        )
        assert report.failed == 1
        assert report.completed == 1
        assert "worker crashed" in report.failures["value=1"]

    def test_hung_cell_times_out_and_fails(self, tmp_path):
        spec = SweepSpec(
            name="hang",
            runner="debug",
            cells=[{"label": "fast", "value": 1}, {"label": "slow", "sleep_s": 60.0}],
            timeout_s=1.0,
            max_retries=0,
        )
        report = run_sweep(spec, workers=2, store=str(tmp_path / "s.sqlite"))
        assert report.completed == 1
        assert report.failed == 1
        assert "timeout" in report.failures["slow"]

    def test_pooled_resume_skips_serial_results(self, tmp_path):
        path = str(tmp_path / "sweep.sqlite")
        run_sweep(debug_spec(), store=path, limit=3)
        report = run_sweep(debug_spec(), store=path, resume=True, workers=2)
        assert report.skipped == 3
        assert report.completed == 3
        assert len(report.results) == 6

    def test_rejects_negative_workers(self):
        with pytest.raises(ValueError):
            run_sweep(debug_spec(), workers=-1)


@pytest.mark.slow
class TestMiniGridParity:
    def test_mini_grid_serial_vs_four_workers_byte_identical(self, tmp_path):
        """The acceptance criterion: 16 real simulation cells, 4 workers."""
        spec = mini_spec()
        assert len(spec.expand()) >= 16
        serial = run_sweep(spec, store=str(tmp_path / "serial.sqlite"))
        pooled = run_sweep(spec, store=str(tmp_path / "pooled.sqlite"), workers=4)
        assert serial.completed == pooled.completed == len(spec.expand())
        assert serial.failed == pooled.failed == 0
        with ResultStore(str(tmp_path / "serial.sqlite")) as s_store, ResultStore(
            str(tmp_path / "pooled.sqlite")
        ) as p_store:
            s_id, p_id = s_store.run_ids()[0], p_store.run_ids()[0]
            for task in spec.expand():
                s_bytes = s_store.result_json(s_id, task.key)
                p_bytes = p_store.result_json(p_id, task.key)
                assert s_bytes is not None and s_bytes == p_bytes
        # The parsed results agree too (what experiment drivers consume).
        assert json.loads(canonical_json(serial.results)) == json.loads(
            canonical_json(pooled.results)
        )
