"""Covariance hygiene utilities."""

import numpy as np
import pytest

from repro.ml.linalg import (
    cholesky_with_ridge,
    log_det_and_solve,
    mahalanobis_squared,
    regularize_covariance,
    symmetrize,
)


class TestSymmetrize:
    def test_already_symmetric_unchanged(self):
        matrix = np.array([[2.0, 0.5], [0.5, 1.0]])
        assert np.allclose(symmetrize(matrix), matrix)

    def test_asymmetry_removed(self):
        matrix = np.array([[1.0, 0.2], [0.4, 1.0]])
        result = symmetrize(matrix)
        assert np.allclose(result, result.T)
        assert result[0, 1] == pytest.approx(0.3)


class TestRegularize:
    def test_zero_matrix_becomes_positive_definite(self):
        result = regularize_covariance(np.zeros((3, 3)))
        eigenvalues = np.linalg.eigvalsh(result)
        assert np.all(eigenvalues > 0)

    def test_singular_matrix_becomes_positive_definite(self):
        singular = np.array([[1.0, 1.0], [1.0, 1.0]])
        eigenvalues = np.linalg.eigvalsh(regularize_covariance(singular))
        assert np.all(eigenvalues > 0)

    def test_well_conditioned_barely_changed(self):
        cov = np.array([[2.0, 0.3], [0.3, 1.5]])
        assert np.allclose(regularize_covariance(cov), cov, atol=1e-6)


class TestCholesky:
    def test_factor_reconstructs(self):
        cov = np.array([[4.0, 1.0], [1.0, 3.0]])
        lower = cholesky_with_ridge(cov)
        assert np.allclose(lower @ lower.T, cov, atol=1e-6)

    def test_zero_matrix_factors(self):
        lower = cholesky_with_ridge(np.zeros((2, 2)))
        assert np.all(np.isfinite(lower))

    def test_lower_triangular(self):
        lower = cholesky_with_ridge(np.eye(3) * 2.0)
        assert np.allclose(lower, np.tril(lower))


class TestLogDetAndSolve:
    def test_matches_slogdet_and_solve(self, rng):
        a = rng.normal(size=(3, 3))
        cov = a @ a.T + np.eye(3)
        rhs = rng.normal(size=3)
        log_det, solution = log_det_and_solve(cov, rhs)
        assert log_det == pytest.approx(np.linalg.slogdet(cov)[1], rel=1e-6)
        assert np.allclose(solution, np.linalg.solve(cov, rhs), atol=1e-8)


class TestMahalanobis:
    def test_identity_covariance_is_euclidean(self):
        points = np.array([[3.0, 4.0], [0.0, 0.0]])
        distances = mahalanobis_squared(points, np.zeros(2), np.eye(2))
        assert np.allclose(distances, [25.0, 0.0])

    def test_scaling_by_variance(self):
        points = np.array([[2.0]])
        distances = mahalanobis_squared(points, np.zeros(1), np.array([[4.0]]))
        assert distances[0] == pytest.approx(1.0)

    def test_single_point_accepted(self):
        distances = mahalanobis_squared(np.array([1.0, 1.0]), np.zeros(2), np.eye(2))
        assert distances.shape == (1,)
