"""Weighted k-means and k-means++ seeding."""

import numpy as np
import pytest

from repro.ml.kmeans import kmeans_plus_plus_init, weighted_kmeans


def clusters(rng, centers, per_cluster=50, spread=0.3):
    return np.vstack([rng.normal(c, spread, size=(per_cluster, len(c))) for c in centers])


class TestSeeding:
    def test_returns_k_rows(self, rng):
        points = clusters(rng, [[0, 0], [10, 10]])
        seeds = kmeans_plus_plus_init(points, 2, rng)
        assert seeds.shape == (2, 2)

    def test_seeds_spread_across_separated_clusters(self, rng):
        points = clusters(rng, [[0, 0], [50, 50]])
        seeds = kmeans_plus_plus_init(points, 2, rng)
        gap = np.linalg.norm(seeds[0] - seeds[1])
        assert gap > 25.0

    def test_rejects_k_above_n(self, rng):
        with pytest.raises(ValueError):
            kmeans_plus_plus_init(np.zeros((3, 2)), 4, rng)

    def test_rejects_k_below_one(self, rng):
        with pytest.raises(ValueError):
            kmeans_plus_plus_init(np.zeros((3, 2)), 0, rng)

    def test_identical_points_handled(self, rng):
        seeds = kmeans_plus_plus_init(np.ones((5, 2)), 3, rng)
        assert np.allclose(seeds, 1.0)


class TestLloyd:
    def test_recovers_separated_clusters(self, rng):
        points = clusters(rng, [[0, 0], [10, 10], [0, 10]])
        result = weighted_kmeans(points, 3, rng)
        for want in ([0, 0], [10, 10], [0, 10]):
            gaps = np.linalg.norm(result.centroids - np.array(want), axis=1)
            assert gaps.min() < 0.3

    def test_converged_flag(self, rng):
        points = clusters(rng, [[0, 0], [10, 10]])
        result = weighted_kmeans(points, 2, rng)
        assert result.converged

    def test_labels_match_nearest_centroid(self, rng):
        points = clusters(rng, [[0, 0], [10, 10]])
        result = weighted_kmeans(points, 2, rng)
        distances = np.linalg.norm(points[:, None, :] - result.centroids[None], axis=2)
        assert np.array_equal(result.labels, np.argmin(distances, axis=1))

    def test_weights_shift_centroid(self, rng):
        points = np.array([[0.0], [1.0]])
        result = weighted_kmeans(
            points, 1, rng, weights=np.array([3.0, 1.0]), initial_centroids=np.array([[0.5]])
        )
        assert result.centroids[0, 0] == pytest.approx(0.25)

    def test_inertia_zero_for_exact_fit(self, rng):
        points = np.array([[0.0, 0.0], [5.0, 5.0]])
        result = weighted_kmeans(points, 2, rng)
        assert result.inertia == pytest.approx(0.0, abs=1e-12)

    def test_rejects_misaligned_weights(self, rng):
        with pytest.raises(ValueError):
            weighted_kmeans(np.zeros((4, 2)), 2, rng, weights=np.ones(3))

    def test_rejects_wrong_initial_centroids(self, rng):
        with pytest.raises(ValueError):
            weighted_kmeans(np.zeros((4, 2)), 2, rng, initial_centroids=np.zeros((3, 2)))

    def test_deterministic_given_seed(self):
        points = clusters(np.random.default_rng(5), [[0, 0], [8, 8]])
        a = weighted_kmeans(points, 2, np.random.default_rng(9))
        b = weighted_kmeans(points, 2, np.random.default_rng(9))
        assert np.allclose(a.centroids, b.centroids)

    def test_duplicate_heavy_point_dominates(self, rng):
        """A point with weight n behaves like n copies of that point."""
        points = np.array([[0.0], [10.0]])
        heavy = weighted_kmeans(
            points, 1, rng, weights=np.array([9.0, 1.0]), initial_centroids=np.array([[5.0]])
        )
        replicated = weighted_kmeans(
            np.array([[0.0]] * 9 + [[10.0]]), 1, rng, initial_centroids=np.array([[5.0]])
        )
        assert heavy.centroids[0, 0] == pytest.approx(replicated.centroids[0, 0])
