"""Multivariate normal primitives, checked against scipy and Monte Carlo."""

import numpy as np
import pytest
from scipy import stats

from repro.ml.gaussian import (
    density,
    expected_log_density,
    kl_divergence,
    log_density,
    pool_moments,
    sample,
)

MEAN = np.array([1.0, -2.0])
COV = np.array([[2.0, 0.6], [0.6, 1.0]])


class TestLogDensity:
    def test_matches_scipy(self, rng):
        points = rng.normal(size=(20, 2))
        ours = log_density(points, MEAN, COV)
        reference = stats.multivariate_normal(MEAN, COV).logpdf(points)
        assert np.allclose(ours, reference, atol=1e-8)

    def test_single_point(self):
        value = log_density(np.array([1.0, -2.0]), MEAN, COV)
        assert value.shape == (1,)
        reference = stats.multivariate_normal(MEAN, COV).logpdf([1.0, -2.0])
        assert value[0] == pytest.approx(float(reference), abs=1e-8)

    def test_density_is_exp_of_log_density(self, rng):
        points = rng.normal(size=(5, 2))
        assert np.allclose(density(points, MEAN, COV), np.exp(log_density(points, MEAN, COV)))

    def test_zero_covariance_regularised_not_crashing(self):
        values = log_density(np.array([[0.0, 0.0]]), np.zeros(2), np.zeros((2, 2)))
        assert np.isfinite(values).all()


class TestSampling:
    def test_sample_moments(self, rng):
        draws = sample(rng, MEAN, COV, size=20000)
        assert np.allclose(draws.mean(axis=0), MEAN, atol=0.05)
        assert np.allclose(np.cov(draws.T), COV, atol=0.08)

    def test_sample_shape(self, rng):
        assert sample(rng, MEAN, COV, size=7).shape == (7, 2)


class TestKL:
    def test_identical_distributions_zero(self):
        assert kl_divergence(MEAN, COV, MEAN, COV) == pytest.approx(0.0, abs=1e-8)

    def test_nonnegative(self, rng):
        for _ in range(10):
            a = rng.normal(size=(2, 2))
            cov_a = a @ a.T + np.eye(2)
            b = rng.normal(size=(2, 2))
            cov_b = b @ b.T + np.eye(2)
            value = kl_divergence(rng.normal(size=2), cov_a, rng.normal(size=2), cov_b)
            assert value >= -1e-9

    def test_univariate_closed_form(self):
        # KL(N(0,1) || N(1,2)) = 0.5 (1/2 + 1/2 - 1 + ln 2)
        value = kl_divergence(
            np.array([0.0]), np.array([[1.0]]), np.array([1.0]), np.array([[2.0]])
        )
        expected = 0.5 * (0.5 + 0.5 - 1.0 + np.log(2.0))
        # The implementation adds a ~1e-9 stabilising ridge to covariances,
        # so agreement is to ~1e-6, not machine precision.
        assert value == pytest.approx(expected, rel=1e-6)


class TestExpectedLogDensity:
    def test_matches_monte_carlo(self, rng):
        inner_mean = np.array([0.5, 0.0])
        inner_cov = np.array([[0.8, 0.2], [0.2, 0.5]])
        closed_form = expected_log_density(inner_mean, inner_cov, MEAN, COV)
        draws = sample(rng, inner_mean, inner_cov, size=200000)
        monte_carlo = float(np.mean(log_density(draws, MEAN, COV)))
        assert closed_form == pytest.approx(monte_carlo, abs=0.02)

    def test_zero_inner_cov_equals_log_density(self):
        point = np.array([0.3, 0.7])
        expected = expected_log_density(point, np.zeros((2, 2)), MEAN, COV)
        direct = float(log_density(point, MEAN, COV)[0])
        assert expected == pytest.approx(direct, abs=1e-9)


class TestPoolMoments:
    def test_matches_pooled_samples(self, rng):
        """Moment-matching Gaussians == moments of the pooled raw values."""
        set_a = rng.normal([0, 0], 1.0, size=(400, 2))
        set_b = rng.normal([5, 1], 2.0, size=(600, 2))
        pooled = np.vstack([set_a, set_b])

        def moments(points):
            mean = points.mean(axis=0)
            centered = points - mean
            return mean, centered.T @ centered / len(points)

        mean_a, cov_a = moments(set_a)
        mean_b, cov_b = moments(set_b)
        mean, cov = pool_moments(
            [len(set_a), len(set_b)], np.stack([mean_a, mean_b]), np.stack([cov_a, cov_b])
        )
        expected_mean, expected_cov = moments(pooled)
        assert np.allclose(mean, expected_mean, atol=1e-10)
        assert np.allclose(cov, expected_cov, atol=1e-10)

    def test_single_component_identity(self):
        mean, cov = pool_moments([3.0], MEAN[None, :], COV[None, :, :])
        assert np.allclose(mean, MEAN)
        assert np.allclose(cov, COV)

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError):
            pool_moments([-1.0, 2.0], np.zeros((2, 2)), np.zeros((2, 2, 2)))

    def test_rejects_misaligned_inputs(self):
        with pytest.raises(ValueError):
            pool_moments([1.0], np.zeros((2, 2)), np.zeros((2, 2, 2)))

    def test_weight_scale_invariance(self):
        mean1, cov1 = pool_moments(
            [1.0, 3.0], np.array([[0.0], [4.0]]), np.zeros((2, 1, 1))
        )
        mean2, cov2 = pool_moments(
            [10.0, 30.0], np.array([[0.0], [4.0]]), np.zeros((2, 1, 1))
        )
        assert np.allclose(mean1, mean2)
        assert np.allclose(cov1, cov2)
