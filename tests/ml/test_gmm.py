"""GaussianMixtureModel behaviour."""

import numpy as np
import pytest

from repro.ml.gmm import GaussianMixtureModel


@pytest.fixture
def mixture():
    return GaussianMixtureModel(
        weights=np.array([0.7, 0.3]),
        means=np.array([[0.0, 0.0], [10.0, 10.0]]),
        covs=np.stack([np.eye(2), 2.0 * np.eye(2)]),
    )


class TestConstruction:
    def test_weights_normalised(self):
        model = GaussianMixtureModel(
            np.array([2.0, 2.0]), np.zeros((2, 1)), np.ones((2, 1, 1))
        )
        assert np.allclose(model.weights, [0.5, 0.5])

    def test_rejects_component_mismatch(self):
        with pytest.raises(ValueError):
            GaussianMixtureModel(np.array([1.0]), np.zeros((2, 1)), np.ones((2, 1, 1)))

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError):
            GaussianMixtureModel(np.array([-1.0, 2.0]), np.zeros((2, 1)), np.ones((2, 1, 1)))

    def test_single_cov_broadcast(self):
        model = GaussianMixtureModel(np.array([1.0]), np.zeros((1, 2)), np.eye(2))
        assert model.covs.shape == (1, 2, 2)

    def test_shape_accessors(self, mixture):
        assert mixture.n_components == 2
        assert mixture.dimension == 2


class TestDensities:
    def test_log_density_single_component_matches_normal(self):
        from repro.ml.gaussian import log_density

        model = GaussianMixtureModel(np.array([1.0]), np.array([[1.0, 2.0]]), np.eye(2))
        points = np.array([[0.0, 0.0], [1.0, 2.0]])
        assert np.allclose(
            model.log_density(points), log_density(points, np.array([1.0, 2.0]), np.eye(2))
        )

    def test_density_positive(self, mixture, rng):
        points = rng.normal(size=(10, 2))
        assert np.all(mixture.density(points) > 0)

    def test_mixture_density_is_weighted_sum(self, mixture):
        from repro.ml.gaussian import density

        point = np.array([[1.0, 1.0]])
        expected = 0.7 * density(point, mixture.means[0], mixture.covs[0]) + 0.3 * density(
            point, mixture.means[1], mixture.covs[1]
        )
        assert mixture.density(point)[0] == pytest.approx(float(expected[0]), rel=1e-9)

    def test_responsibilities_rows_sum_to_one(self, mixture, rng):
        points = rng.normal(size=(15, 2))
        responsibilities = mixture.responsibilities(points)
        assert np.allclose(responsibilities.sum(axis=1), 1.0)

    def test_classify_separated_points(self, mixture):
        labels = mixture.classify(np.array([[0.1, -0.1], [9.8, 10.2]]))
        assert labels.tolist() == [0, 1]

    def test_weighted_log_likelihood(self, mixture):
        points = np.array([[0.0, 0.0], [10.0, 10.0]])
        weights = np.array([2.0, 0.0])
        expected = 2.0 * mixture.log_density(points[:1])[0]
        assert mixture.log_likelihood(points, weights) == pytest.approx(expected)


class TestSampling:
    def test_label_proportions(self, mixture, rng):
        _, labels = mixture.sample(rng, 20000)
        assert np.mean(labels == 0) == pytest.approx(0.7, abs=0.02)

    def test_component_sample_moments(self, mixture, rng):
        points, labels = mixture.sample(rng, 20000)
        cluster = points[labels == 1]
        assert np.allclose(cluster.mean(axis=0), [10, 10], atol=0.1)


class TestHelpers:
    def test_from_components(self):
        model = GaussianMixtureModel.from_components(
            [(1.0, np.zeros(2), np.eye(2)), (3.0, np.ones(2), np.eye(2))]
        )
        assert np.allclose(model.weights, [0.25, 0.75])

    def test_sorted_by_weight(self, mixture):
        flipped = GaussianMixtureModel(
            np.array([0.3, 0.7]), mixture.means[::-1].copy(), mixture.covs[::-1].copy()
        )
        ordered = flipped.sorted_by_weight()
        assert ordered.weights[0] == pytest.approx(0.7)
        assert np.allclose(ordered.means[0], [0.0, 0.0])
