"""EM-based l-GM -> k-GM mixture reduction (the GM scheme's partition)."""

import numpy as np
import pytest

from repro.ml.gaussian import pool_moments
from repro.ml.reduction import reduce_mixture


def component_block(rng, center, count, spread=0.4):
    means = rng.normal(center, spread, size=(count, 2))
    covs = np.stack([0.05 * np.eye(2)] * count)
    weights = rng.uniform(0.5, 2.0, size=count)
    return weights, means, covs


class TestTrivialPath:
    def test_l_leq_k_keeps_singletons(self, rng):
        weights, means, covs = component_block(rng, [0, 0], 3)
        result = reduce_mixture(weights, means, covs, k=5, rng=rng)
        assert result.groups == ((0,), (1,), (2,))
        assert result.converged

    def test_k_one_merges_everything(self, rng):
        weights, means, covs = component_block(rng, [0, 0], 4)
        result = reduce_mixture(weights, means, covs, k=1, rng=rng)
        assert result.groups == ((0, 1, 2, 3),)
        mean, cov = pool_moments(weights, means, covs)
        assert np.allclose(result.model.means[0], mean)
        assert np.allclose(result.model.covs[0], cov, atol=1e-10)


class TestGrouping:
    def test_groups_partition_indices(self, rng):
        weights = rng.uniform(0.5, 2.0, size=10)
        means = rng.normal(size=(10, 2)) * 5
        covs = np.stack([0.1 * np.eye(2)] * 10)
        result = reduce_mixture(weights, means, covs, k=3, rng=rng)
        flattened = sorted(index for group in result.groups for index in group)
        assert flattened == list(range(10))
        assert len(result.groups) <= 3

    def test_separated_blocks_grouped_together(self, rng):
        w1, m1, c1 = component_block(rng, [0, 0], 5)
        w2, m2, c2 = component_block(rng, [20, 20], 5)
        result = reduce_mixture(
            np.concatenate([w1, w2]), np.vstack([m1, m2]), np.vstack([c1, c2]), k=2, rng=rng
        )
        groups = sorted(sorted(group) for group in result.groups)
        assert groups == [[0, 1, 2, 3, 4], [5, 6, 7, 8, 9]]

    def test_model_weights_are_group_sums(self, rng):
        w1, m1, c1 = component_block(rng, [0, 0], 4)
        w2, m2, c2 = component_block(rng, [15, 15], 4)
        weights = np.concatenate([w1, w2])
        result = reduce_mixture(
            weights, np.vstack([m1, m2]), np.vstack([c1, c2]), k=2, rng=rng
        )
        for group, model_weight in zip(result.groups, result.model.weights):
            expected = weights[list(group)].sum() / weights.sum()
            assert model_weight == pytest.approx(expected, rel=1e-9)

    def test_moment_matched_group_model(self, rng):
        w1, m1, c1 = component_block(rng, [0, 0], 4)
        w2, m2, c2 = component_block(rng, [15, 15], 4)
        weights = np.concatenate([w1, w2])
        means = np.vstack([m1, m2])
        covs = np.vstack([c1, c2])
        result = reduce_mixture(weights, means, covs, k=2, rng=rng)
        for j, group in enumerate(result.groups):
            idx = list(group)
            mean, cov = pool_moments(weights[idx], means[idx], covs[idx])
            assert np.allclose(result.model.means[j], mean, atol=1e-10)
            assert np.allclose(result.model.covs[j], cov, atol=1e-10)

    def test_zero_covariance_singletons_supported(self, rng):
        """Fresh input values arrive with exactly-zero covariance matrices."""
        means = np.vstack([rng.normal([0, 0], 0.3, (4, 2)), rng.normal([9, 9], 0.3, (4, 2))])
        covs = np.zeros((8, 2, 2))
        weights = np.ones(8)
        result = reduce_mixture(weights, means, covs, k=2, rng=rng)
        groups = sorted(sorted(group) for group in result.groups)
        assert groups == [[0, 1, 2, 3], [4, 5, 6, 7]]


class TestValidation:
    def test_rejects_misaligned_shapes(self, rng):
        with pytest.raises(ValueError):
            reduce_mixture(np.ones(3), np.zeros((2, 2)), np.zeros((2, 2, 2)), k=2, rng=rng)

    def test_rejects_k_below_one(self, rng):
        with pytest.raises(ValueError):
            reduce_mixture(np.ones(2), np.zeros((2, 2)), np.zeros((2, 2, 2)), k=0, rng=rng)

    def test_deterministic_given_seed(self):
        generator = np.random.default_rng(3)
        weights = generator.uniform(0.5, 2.0, size=12)
        means = generator.normal(size=(12, 2)) * 8
        covs = np.stack([0.2 * np.eye(2)] * 12)
        a = reduce_mixture(weights, means, covs, k=3, rng=np.random.default_rng(1))
        b = reduce_mixture(weights, means, covs, k=3, rng=np.random.default_rng(1))
        assert a.groups == b.groups
