"""Centralised weighted EM for Gaussian mixtures."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.em import fit_gmm_em
from repro.ml.gmm import GaussianMixtureModel


def two_blob_data(rng, n=300):
    return np.vstack(
        [rng.normal([0, 0], 0.7, size=(n // 2, 2)), rng.normal([8, 8], 1.2, size=(n // 2, 2))]
    )


class TestFitting:
    def test_recovers_separated_mixture(self, rng):
        points = two_blob_data(rng)
        result = fit_gmm_em(points, 2, rng)
        means = sorted(result.model.means.tolist())
        assert np.allclose(means[0], [0, 0], atol=0.3)
        assert np.allclose(means[1], [8, 8], atol=0.4)
        assert np.allclose(sorted(result.model.weights), [0.5, 0.5], atol=0.05)

    def test_monotone_log_likelihood(self, rng):
        points = two_blob_data(rng)
        result = fit_gmm_em(points, 3, rng)
        trace = np.array(result.log_likelihood_trace)
        assert np.all(np.diff(trace) >= -1e-6)

    @given(st.integers(min_value=0, max_value=50))
    @settings(max_examples=10, deadline=None)
    def test_monotone_log_likelihood_random_data(self, seed):
        """EM's defining property on arbitrary data: likelihood never drops."""
        generator = np.random.default_rng(seed)
        points = generator.normal(size=(60, 2)) * generator.uniform(0.5, 3.0)
        result = fit_gmm_em(points, 3, generator, max_iterations=30)
        trace = np.array(result.log_likelihood_trace)
        assert np.all(np.diff(trace) >= -1e-6)

    def test_converged_flag_on_easy_data(self, rng):
        points = two_blob_data(rng)
        result = fit_gmm_em(points, 2, rng, max_iterations=200)
        assert result.converged

    def test_single_component_matches_sample_moments(self, rng):
        points = rng.normal([3.0, -1.0], 1.5, size=(500, 2))
        result = fit_gmm_em(points, 1, rng)
        assert np.allclose(result.model.means[0], points.mean(axis=0), atol=1e-6)
        centered = points - points.mean(axis=0)
        sample_cov = centered.T @ centered / len(points)
        assert np.allclose(result.model.covs[0], sample_cov, atol=1e-4)


class TestWeighting:
    def test_weighted_fit_equals_replicated_points(self, rng):
        """A weight-w point is equivalent to w copies of the point."""
        base = np.array([[0.0, 0.0], [1.0, 0.5], [8.0, 8.0], [8.5, 7.5]])
        weights = np.array([3.0, 1.0, 2.0, 1.0])
        replicated = np.repeat(base, weights.astype(int), axis=0)

        initial = GaussianMixtureModel(
            np.array([0.5, 0.5]),
            np.array([[0.5, 0.2], [8.2, 7.8]]),
            np.stack([np.eye(2), np.eye(2)]),
        )
        weighted = fit_gmm_em(
            base, 2, rng, weights=weights, initial_model=initial, max_iterations=5
        )
        plain = fit_gmm_em(replicated, 2, rng, initial_model=initial, max_iterations=5)
        assert np.allclose(
            np.sort(weighted.model.means, axis=0), np.sort(plain.model.means, axis=0), atol=1e-8
        )

    def test_rejects_misaligned_weights(self, rng):
        with pytest.raises(ValueError):
            fit_gmm_em(np.zeros((5, 2)), 2, rng, weights=np.ones(4))

    def test_rejects_zero_total_weight(self, rng):
        with pytest.raises(ValueError):
            fit_gmm_em(np.zeros((5, 2)), 2, rng, weights=np.zeros(5))


class TestValidation:
    def test_rejects_more_components_than_points(self, rng):
        with pytest.raises(ValueError):
            fit_gmm_em(np.zeros((2, 2)), 3, rng)

    def test_initial_model_respected(self, rng):
        points = two_blob_data(rng)
        initial = GaussianMixtureModel(
            np.array([0.5, 0.5]),
            np.array([[0.0, 0.0], [8.0, 8.0]]),
            np.stack([np.eye(2), np.eye(2)]),
        )
        result = fit_gmm_em(points, 2, rng, initial_model=initial, max_iterations=1)
        # One iteration from a good start stays near the truth.
        means = sorted(result.model.means.tolist())
        assert np.allclose(means[0], [0, 0], atol=0.5)
