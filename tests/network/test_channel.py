"""Reliable asynchronous channels."""

import pytest

from repro.network.channel import Channel


class TestReliability:
    def test_send_then_deliver_returns_payload(self):
        channel = Channel(0, 1)
        message = channel.send("hello", send_time=0.0, deliver_time=1.0)
        assert channel.deliver(message) == "hello"

    def test_counts(self):
        channel = Channel(0, 1)
        m1 = channel.send("a", 0.0, 1.0)
        channel.send("b", 0.0, 2.0)
        channel.deliver(m1)
        assert channel.sent_count == 2
        assert channel.delivered_count == 1
        assert len(channel) == 1

    def test_in_flight_snapshot(self):
        channel = Channel(0, 1)
        channel.send("a", 0.0, 1.0)
        channel.send("b", 0.5, 2.0)
        payloads = [message.payload for message in channel.in_flight]
        assert payloads == ["a", "b"]

    def test_rejects_delivery_before_send(self):
        with pytest.raises(ValueError):
            Channel(0, 1).send("x", send_time=5.0, deliver_time=1.0)


class TestFifo:
    def test_fifo_clamps_overtaking_delivery(self):
        channel = Channel(0, 1, fifo=True)
        channel.send("slow", send_time=0.0, deliver_time=10.0)
        fast = channel.send("fast", send_time=1.0, deliver_time=2.0)
        assert fast.deliver_time == 10.0  # clamped behind the slow message

    def test_non_fifo_allows_overtaking(self):
        channel = Channel(0, 1, fifo=False)
        channel.send("slow", send_time=0.0, deliver_time=10.0)
        fast = channel.send("fast", send_time=1.0, deliver_time=2.0)
        assert fast.deliver_time == 2.0

    def test_iteration(self):
        channel = Channel(0, 1)
        channel.send("a", 0.0, 1.0)
        assert [message.payload for message in channel] == ["a"]
