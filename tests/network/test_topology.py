"""Topology builders: connectivity, labelling, validation."""

import networkx as nx
import pytest

from repro.network import topology


ALL_BUILDERS = [
    ("complete", lambda: topology.complete(12)),
    ("ring", lambda: topology.ring(12)),
    ("line", lambda: topology.line(12)),
    ("grid", lambda: topology.grid(3, 4)),
    ("torus", lambda: topology.torus(3, 4)),
    ("star", lambda: topology.star(12)),
    ("tree", lambda: topology.balanced_tree(2, 3)),
    ("geometric", lambda: topology.random_geometric(12, seed=1)),
    ("erdos_renyi", lambda: topology.erdos_renyi(12, seed=1)),
    ("small_world", lambda: topology.watts_strogatz(12, k=4, seed=1)),
]


@pytest.mark.parametrize("name,builder", ALL_BUILDERS)
class TestAllBuilders:
    def test_connected(self, name, builder):
        assert nx.is_connected(builder())

    def test_labels_are_zero_to_n(self, name, builder):
        graph = builder()
        assert set(graph.nodes) == set(range(graph.number_of_nodes()))

    def test_no_self_loops(self, name, builder):
        graph = builder()
        assert all(not graph.has_edge(node, node) for node in graph.nodes)


class TestShapes:
    def test_complete_edge_count(self):
        assert topology.complete(10).number_of_edges() == 45

    def test_ring_degree_two(self):
        graph = topology.ring(8)
        assert all(graph.degree(node) == 2 for node in graph.nodes)

    def test_line_has_two_endpoints(self):
        graph = topology.line(8)
        degrees = sorted(graph.degree(node) for node in graph.nodes)
        assert degrees[:2] == [1, 1]

    def test_grid_node_count(self):
        assert topology.grid(3, 5).number_of_nodes() == 15

    def test_torus_regular_degree(self):
        graph = topology.torus(4, 4)
        assert all(graph.degree(node) == 4 for node in graph.nodes)

    def test_star_hub(self):
        graph = topology.star(9)
        degrees = sorted((graph.degree(node) for node in graph.nodes), reverse=True)
        assert degrees[0] == 8


class TestValidationErrors:
    def test_small_ring_rejected(self):
        with pytest.raises(ValueError):
            topology.ring(2)

    def test_small_star_rejected(self):
        with pytest.raises(ValueError):
            topology.star(1)

    def test_small_line_rejected(self):
        with pytest.raises(ValueError):
            topology.line(1)

    def test_small_geometric_rejected(self):
        with pytest.raises(ValueError):
            topology.random_geometric(1)

    def test_disconnected_graph_rejected(self):
        graph = nx.Graph()
        graph.add_nodes_from([0, 1, 2, 3])
        graph.add_edge(0, 1)
        graph.add_edge(2, 3)
        with pytest.raises(ValueError, match="connected"):
            topology.validate_topology(graph)

    def test_self_loop_rejected(self):
        graph = nx.complete_graph(3)
        graph.add_edge(1, 1)
        with pytest.raises(ValueError, match="self-loops"):
            topology.validate_topology(graph)

    def test_bad_labels_rejected(self):
        graph = nx.Graph()
        graph.add_edge("a", "b")
        with pytest.raises(ValueError, match="labelled"):
            topology.validate_topology(graph)

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            topology.validate_topology(nx.Graph())


class TestNeighborsMap:
    def test_sorted_adjacency(self):
        mapping = topology.neighbors_map(topology.ring(5))
        assert mapping[0] == [1, 4]
        assert mapping[2] == [1, 3]

    def test_covers_all_nodes(self):
        mapping = topology.neighbors_map(topology.complete(6))
        assert set(mapping) == set(range(6))
        assert all(len(neighbors) == 5 for neighbors in mapping.values())


class TestGeometricGrowth:
    def test_tiny_radius_still_connected(self):
        """The builder grows the radius until the draw connects."""
        graph = topology.random_geometric(30, radius=0.01, seed=3)
        assert nx.is_connected(graph)
