"""Membership semantics: monotone peer union, fail-stop blacklisting."""

import pytest

from repro.network.membership import MembershipView, PeerInfo, seeds_to_peers


def _view(failure_timeout=10.0):
    clock = {"now": 0.0}
    view = MembershipView(
        self_info=PeerInfo(0, "127.0.0.1", 9000),
        failure_timeout=failure_timeout,
        clock=lambda: clock["now"],
    )
    return view, clock


class TestAdd:
    def test_peers_are_sorted_by_id(self):
        view, _ = _view()
        assert view.add(PeerInfo(3, "h", 3))
        assert view.add(PeerInfo(1, "h", 1))
        assert [p.node_id for p in view.peers()] == [1, 3]

    def test_self_and_duplicates_are_not_added(self):
        view, _ = _view()
        assert not view.add(PeerInfo(0, "127.0.0.1", 9000))
        peer = PeerInfo(2, "h", 2)
        assert view.add(peer)
        assert not view.add(peer)
        assert len(view) == 1

    def test_merge_counts_only_new_entries(self):
        view, _ = _view()
        view.add(PeerInfo(1, "h", 1))
        added = view.merge(
            [PeerInfo(1, "h", 1).as_entry(), PeerInfo(2, "h", 2).as_entry()]
        )
        assert added == 1
        assert len(view) == 2


class TestFailStop:
    def test_silent_peer_is_declared_dead(self):
        view, clock = _view(failure_timeout=5.0)
        view.add(PeerInfo(1, "h", 1))
        view.add(PeerInfo(2, "h", 2))
        clock["now"] = 3.0
        view.heard_from(2)
        clock["now"] = 6.0
        dead = view.detect_failures()
        assert [p.node_id for p in dead] == [1]
        assert [p.node_id for p in view.peers()] == [2]

    def test_dead_ids_never_resurrect(self):
        view, clock = _view(failure_timeout=1.0)
        view.add(PeerInfo(1, "h", 1))
        clock["now"] = 2.0
        assert view.detect_failures()
        # Fail-stop: a crashed node does not come back under this model.
        assert not view.add(PeerInfo(1, "h", 1))
        assert view.merge([PeerInfo(1, "h", 1).as_entry()]) == 0

    def test_heard_from_keeps_a_peer_alive(self):
        view, clock = _view(failure_timeout=5.0)
        view.add(PeerInfo(1, "h", 1))
        for now in (2.0, 4.0, 6.0):
            clock["now"] = now
            view.heard_from(1)
            assert view.detect_failures() == []

    def test_graceful_leave_allows_rejoin(self):
        view, _ = _view()
        view.add(PeerInfo(1, "h", 1))
        view.remove(1)
        assert len(view) == 0
        assert view.add(PeerInfo(1, "h", 1))


class TestGossip:
    def test_gossip_entries_include_self(self):
        view, _ = _view()
        view.add(PeerInfo(4, "h", 4))
        entries = view.gossip_entries()
        ids = {entry[0] for entry in entries}
        assert ids == {0, 4}

    def test_snapshot_is_jsonable(self):
        import json

        view, _ = _view()
        view.add(PeerInfo(4, "h", 4))
        json.dumps(view.snapshot())


class TestSeeds:
    def test_seed_parsing(self):
        assert seeds_to_peers(["10.0.0.1:9000", "localhost:9001"]) == [
            ("10.0.0.1", 9000),
            ("localhost", 9001),
        ]

    def test_bad_seed_is_an_error(self):
        with pytest.raises(ValueError):
            seeds_to_peers(["no-port-here"])
