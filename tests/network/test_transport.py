"""The transport seam: kernel delegation, stats mirroring, frame transports."""

import numpy as np
import pytest

from repro.network import frames, topology
from repro.network.frames import encode_frame
from repro.network.membership import PeerInfo
from repro.network.process_transport import ProcessTransport
from repro.network.tcp_transport import AsyncioTCPTransport
from repro.network.transport import InMemoryTransport, TRANSPORT_NAMES
from repro.protocols.classification import build_classification_network
from repro.schemes.centroid import CentroidScheme


def _values(n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, 2))


def _protocols(n, seed=0):
    from repro.core.node import ClassifierNode

    values = _values(n, seed)
    return {
        i: ClassifierNode(i, values[i], CentroidScheme(), k=2) for i in range(n)
    }


class TestInMemorySeam:
    def test_kernel_defaults_to_in_memory_transport(self):
        kernel, _ = build_classification_network(
            _values(6), CentroidScheme(), k=2, graph=topology.complete(6)
        )
        assert isinstance(kernel.transport, InMemoryTransport)
        assert kernel.transport.kernel is kernel
        assert kernel.transport.name == "memory"
        assert "memory" in TRANSPORT_NAMES

    def test_factory_threads_explicit_transport_through(self):
        from repro.network.factory import make_engine

        for engine_name in ("rounds", "async"):
            transport = InMemoryTransport()
            engine = make_engine(
                engine_name, topology.complete(4), _protocols(4), transport=transport
            )
            assert engine.transport is transport
            assert transport.kernel is engine

    def test_channels_property_delegates_to_transport(self):
        kernel, _ = build_classification_network(
            _values(6), CentroidScheme(), k=2, graph=topology.complete(6)
        )
        kernel.run(2)
        assert kernel.channels is kernel.transport.channels
        assert len(kernel.channels) > 0

    def test_stats_are_mirrored_into_metrics(self):
        kernel, _ = build_classification_network(
            _values(8), CentroidScheme(), k=2, graph=topology.complete(8)
        )
        kernel.run(5)
        stats = kernel.transport.stats
        # One in-memory frame per message envelope, in both directions.
        assert stats.frames_sent == kernel.metrics.messages_sent
        assert stats.frames_received == kernel.metrics.messages_delivered
        assert stats.bytes_sent == 0  # objects, never serialised
        assert kernel.metrics.frames_sent == stats.frames_sent
        assert kernel.metrics.frames_received == stats.frames_received
        assert kernel.metrics.peer_count == len(kernel.transport.channels)
        snapshot = kernel.metrics.as_dict()
        for key in ("frames_sent", "frames_received", "bytes_sent", "reconnects"):
            assert key in snapshot

    def test_frame_transport_is_rejected_by_the_kernel(self):
        from repro.network.factory import make_engine

        transport = ProcessTransport(0, {0: _FakeQueue()})
        with pytest.raises(TypeError, match="repro.network.runtime"):
            make_engine(
                "rounds", topology.complete(4), _protocols(4), transport=transport  # type: ignore[arg-type]
            )


class _FakeQueue:
    """Minimal stand-in for multiprocessing.Queue in single-process tests."""

    def __init__(self):
        import queue

        self._q = queue.Queue()

    def put(self, item):
        self._q.put(item)

    def get(self, timeout=None):
        import queue as _queue

        try:
            return self._q.get(timeout=timeout if timeout else 0.001)
        except _queue.Empty:
            raise _queue.Empty from None


class TestProcessTransport:
    def _pair(self):
        inboxes = {0: _FakeQueue(), 1: _FakeQueue()}
        return (
            ProcessTransport(0, inboxes),
            ProcessTransport(1, inboxes),
        )

    def test_frames_cross_and_are_verified(self):
        a, b = self._pair()
        frame = encode_frame(frames.DATA, 0, b"payload")
        assert a.send_frame(PeerInfo(1, "process", 1), frame)
        got = b.poll(timeout=0.5)
        assert got is not None and got.body == b"payload" and got.sender == 0
        assert a.stats.frames_sent == 1 and a.stats.bytes_sent == len(frame)
        assert b.stats.frames_received == 1 and b.stats.bytes_received == len(frame)

    def test_corrupt_item_is_dropped_and_counted(self):
        a, b = self._pair()
        frame = bytearray(encode_frame(frames.DATA, 0, b"payload"))
        frame[-1] ^= 0xFF
        assert a.send_frame(PeerInfo(1, "process", 1), bytes(frame))
        assert b.poll(timeout=0.5) is None
        assert b.frames_rejected == 1
        assert b.stats.frames_received == 0

    def test_forget_peer_makes_it_unreachable(self):
        a, _ = self._pair()
        peer = PeerInfo(1, "process", 1)
        a.forget_peer(peer)
        assert not a.send_frame(peer, encode_frame(frames.HEARTBEAT, 0))

    def test_closed_transport_refuses_traffic(self):
        a, _ = self._pair()
        a.close()
        assert not a.send_frame(PeerInfo(1, "process", 1), encode_frame(frames.HEARTBEAT, 0))
        assert a.poll(timeout=0.01) is None

    def test_missing_own_inbox_is_an_error(self):
        with pytest.raises(ValueError, match="no queue"):
            ProcessTransport(7, {0: _FakeQueue()})

    def test_drain_sweeps_queued_backlog_in_order(self):
        a, b = self._pair()
        peer = PeerInfo(1, "process", 1)
        for body in (b"one", b"two", b"three"):
            assert a.send_frame(peer, encode_frame(frames.DATA, 0, body))
        batch = b.drain(timeout=0.5)
        assert [frame.body for frame in batch] == [b"one", b"two", b"three"]
        assert b.stats.frames_received == 3
        # Backlog exhausted: a further drain times out empty.
        assert b.drain(timeout=0.01) == []

    def test_drain_times_out_empty(self):
        _, b = self._pair()
        assert b.drain(timeout=0.01) == []


class TestTcpTransport:
    def test_loopback_roundtrip_and_stats(self):
        a = AsyncioTCPTransport(0)
        b = AsyncioTCPTransport(1)
        a.start()
        b.start()
        try:
            peer = PeerInfo(1, "127.0.0.1", b.bound_port)
            frame = encode_frame(frames.DATA, 0, b"over tcp")
            assert a.send_frame(peer, frame)
            got = b.poll(timeout=5.0)
            assert got is not None
            assert got.kind == frames.DATA and got.body == b"over tcp"
            assert b.stats.frames_received == 1
            assert b.stats.bytes_received >= len(frame)
        finally:
            a.close()
            b.close()

    def test_ephemeral_port_is_reported(self):
        transport = AsyncioTCPTransport(3)
        transport.start()
        try:
            assert transport.bound_port and transport.bound_port > 0
            assert transport.describe()["transport"] == "tcp"
        finally:
            transport.close()

    def test_send_after_close_is_refused(self):
        transport = AsyncioTCPTransport(4)
        transport.start()
        transport.close()
        assert not transport.send_frame(
            PeerInfo(9, "127.0.0.1", 1), encode_frame(frames.HEARTBEAT, 4)
        )
