"""RunTracer: per-round structured observation."""

import numpy as np
import pytest

from repro.network.asynchronous import AsyncEngine
from repro.network.topology import complete
from repro.network.trace import RunTracer
from repro.obs import RingBufferSink
from repro.protocols.push_sum import PushSumProtocol, build_push_sum_network


def build_traced(n=10, seed=0):
    values = np.arange(n, dtype=float)[:, None]
    engine, protocols = build_push_sum_network(values, complete(n), seed=seed)
    truth = float(values.mean())
    tracer = RunTracer(
        {
            "max_error": lambda e: max(
                abs(protocols[i].estimate[0] - truth) for i in e.live_nodes
            ),
        }
    )
    return engine, tracer


class TestTracing:
    def test_one_record_per_round(self):
        engine, tracer = build_traced()
        engine.run(7, per_round=tracer)
        assert len(tracer.records) == 7
        assert tracer.rounds() == [1, 2, 3, 4, 5, 6, 7]

    def test_series_values_decrease(self):
        engine, tracer = build_traced()
        engine.run(25, per_round=tracer)
        series = tracer.series("max_error")
        assert series[-1] < series[0]
        assert tracer.final("max_error") == series[-1]

    def test_rounds_until_threshold(self):
        engine, tracer = build_traced()
        engine.run(40, per_round=tracer)
        hit = tracer.rounds_until("max_error", 0.01)
        assert hit is not None
        assert tracer.series("max_error")[hit - 1] <= 0.01

    def test_rounds_until_unreachable(self):
        engine, tracer = build_traced()
        engine.run(3, per_round=tracer)
        assert tracer.rounds_until("max_error", -1.0) is None

    def test_live_nodes_recorded(self):
        engine, tracer = build_traced()
        engine.run(2, per_round=tracer)
        engine.crash(0)
        engine.run(2, per_round=tracer)
        assert tracer.live_node_series() == [10, 10, 9, 9]

    def test_as_columns(self):
        engine, tracer = build_traced()
        engine.run(3, per_round=tracer)
        columns = tracer.as_columns()
        assert set(columns) == {"max_error"}
        assert len(columns["max_error"]) == 3


def build_async_traced(n=8, seed=0, event_sink=None):
    values = np.arange(n, dtype=float)[:, None]
    protocols = {i: PushSumProtocol(values[i]) for i in range(n)}
    engine = AsyncEngine(complete(n), protocols, seed=seed, event_sink=event_sink)
    truth = float(values.mean())
    tracer = RunTracer(
        {
            "max_error": lambda e: max(
                abs(protocols[i].estimate[0] - truth) for i in e.live_nodes
            ),
        }
    )
    return engine, tracer


class TestAsyncTracing:
    """Regression: the tracer used to crash on the async engine, which has
    no ``round_index`` attribute — it must fall back to the processed-event
    count and otherwise behave identically."""

    def test_tracer_attaches_via_per_event(self):
        engine, tracer = build_async_traced()
        executed = engine.run_events(120, per_event=tracer)
        assert len(tracer.records) == executed == 120

    def test_round_index_falls_back_to_event_count(self):
        engine, tracer = build_async_traced()
        engine.run_events(30, per_event=tracer)
        assert tracer.rounds() == list(range(1, 31))

    def test_series_converges(self):
        engine, tracer = build_async_traced()
        engine.run_events(600, per_event=tracer)
        series = tracer.series("max_error")
        assert series[-1] < series[0]

    def test_live_nodes_reflect_crashes(self):
        engine, tracer = build_async_traced()
        engine.run_events(5, per_event=tracer)
        engine.crash(0)
        engine.run_events(5, per_event=tracer)
        assert tracer.live_node_series() == [8] * 5 + [7] * 5

    def test_probe_events_emitted_to_engine_sink(self):
        sink = RingBufferSink()
        engine, tracer = build_async_traced(event_sink=sink)
        engine.run_events(10, per_event=tracer)
        probes = sink.of_kind("probe")
        assert len(probes) == 10
        assert all("max_error" in event.extra for event in probes)
        assert all(event.t is not None for event in probes)


class TestProbeEvents:
    def test_round_engine_probes_routed_to_sink(self):
        sink = RingBufferSink()
        engine, tracer = build_traced()
        engine.event_sink = sink
        engine.run(4, per_round=tracer)
        probes = sink.of_kind("probe")
        assert [event.round for event in probes] == [1, 2, 3, 4]
        assert [event.extra["max_error"] for event in probes] == tracer.series("max_error")

    def test_no_sink_means_no_probe_events(self):
        engine, tracer = build_traced()
        assert engine.event_sink is None
        engine.run(3, per_round=tracer)  # must not raise
        assert len(tracer.records) == 3


class TestValidation:
    def test_requires_probes(self):
        with pytest.raises(ValueError):
            RunTracer({})

    def test_unknown_series_rejected(self):
        tracer = RunTracer({"x": lambda e: 0.0})
        with pytest.raises(KeyError):
            tracer.series("y")

    def test_final_before_any_round_rejected(self):
        tracer = RunTracer({"x": lambda e: 0.0})
        with pytest.raises(ValueError):
            tracer.final("x")
