"""RunTracer: per-round structured observation."""

import numpy as np
import pytest

from repro.network.topology import complete
from repro.network.trace import RunTracer
from repro.protocols.push_sum import build_push_sum_network


def build_traced(n=10, seed=0):
    values = np.arange(n, dtype=float)[:, None]
    engine, protocols = build_push_sum_network(values, complete(n), seed=seed)
    truth = float(values.mean())
    tracer = RunTracer(
        {
            "max_error": lambda e: max(
                abs(protocols[i].estimate[0] - truth) for i in e.live_nodes
            ),
        }
    )
    return engine, tracer


class TestTracing:
    def test_one_record_per_round(self):
        engine, tracer = build_traced()
        engine.run(7, per_round=tracer)
        assert len(tracer.records) == 7
        assert tracer.rounds() == [1, 2, 3, 4, 5, 6, 7]

    def test_series_values_decrease(self):
        engine, tracer = build_traced()
        engine.run(25, per_round=tracer)
        series = tracer.series("max_error")
        assert series[-1] < series[0]
        assert tracer.final("max_error") == series[-1]

    def test_rounds_until_threshold(self):
        engine, tracer = build_traced()
        engine.run(40, per_round=tracer)
        hit = tracer.rounds_until("max_error", 0.01)
        assert hit is not None
        assert tracer.series("max_error")[hit - 1] <= 0.01

    def test_rounds_until_unreachable(self):
        engine, tracer = build_traced()
        engine.run(3, per_round=tracer)
        assert tracer.rounds_until("max_error", -1.0) is None

    def test_live_nodes_recorded(self):
        engine, tracer = build_traced()
        engine.run(2, per_round=tracer)
        engine.crash(0)
        engine.run(2, per_round=tracer)
        assert tracer.live_node_series() == [10, 10, 9, 9]

    def test_as_columns(self):
        engine, tracer = build_traced()
        engine.run(3, per_round=tracer)
        columns = tracer.as_columns()
        assert set(columns) == {"max_error"}
        assert len(columns["max_error"]) == 3


class TestValidation:
    def test_requires_probes(self):
        with pytest.raises(ValueError):
            RunTracer({})

    def test_unknown_series_rejected(self):
        tracer = RunTracer({"x": lambda e: 0.0})
        with pytest.raises(KeyError):
            tracer.series("y")

    def test_final_before_any_round_rejected(self):
        tracer = RunTracer({"x": lambda e: 0.0})
        with pytest.raises(ValueError):
            tracer.final("x")
