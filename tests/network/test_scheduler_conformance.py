"""Scheduler conformance: the paper's invariants hold on either schedule.

The kernel/scheduler split promises that the synchronous round schedule
(Section 5.3) and the Poisson asynchronous schedule (Section 6) are two
timings of the *same* algorithm.  These property tests pin that down:
for random seeds, gossip variants, crash plans and link outages, both
schedulers must preserve

- **weight conservation** — the total number of weight quanta in the
  global pool (live nodes plus in-flight messages) never changes except
  when a crash discards mass, and then it only decreases;
- **Lemma 2 monotonicity** — the per-axis maximal reference angle over
  the global pool is non-increasing along any execution.

Both invariants are stated over the pool of Section 6.1, so the
in-flight channel contents count — that is exactly what makes the
asynchronous schedule (where messages linger in channels across
observation points) a meaningful test and not a restatement of the
synchronous case.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.convergence import max_reference_angles, pool_collections
from repro.network.factory import ENGINES
from repro.network.kernel import GOSSIP_VARIANTS
from repro.network.failures import ScheduledCrashes
from repro.network.links import WindowedOutage, cut_edges
from repro.network.topology import complete
from repro.protocols.classification import build_classification_network
from repro.schemes.centroid import CentroidScheme

N = 8
UNITS = 6

# Each invariant is checked once per (engine, variant, seed, failure plan)
# draw; small networks and few examples keep the whole module in seconds
# while still crossing every scheduler/variant pair many times.
CONFORMANCE_SETTINGS = settings(max_examples=15, deadline=None)

engines = st.sampled_from(ENGINES)
variants = st.sampled_from(GOSSIP_VARIANTS)
seeds = st.integers(min_value=0, max_value=2**16)

# Crash at most half the network so the pool (and the angle maximum,
# which is undefined on an empty pool) always survives.
crash_plans = st.dictionaries(
    keys=st.integers(min_value=0, max_value=UNITS - 1),
    values=st.sets(st.integers(min_value=0, max_value=N - 1), max_size=2),
    max_size=2,
)

outage_windows = st.tuples(
    st.integers(min_value=0, max_value=UNITS - 1),
    st.integers(min_value=1, max_value=UNITS),
)


def _build(seed, engine, variant, failure_model=None, link_schedule=None):
    rng = np.random.default_rng(seed)
    values = np.vstack(
        [
            rng.normal([0.0, 0.0], 0.5, size=(N // 2, 2)),
            rng.normal([5.0, 5.0], 0.5, size=(N - N // 2, 2)),
        ]
    )
    return build_classification_network(
        values,
        CentroidScheme(),
        k=2,
        graph=complete(N),
        seed=seed,
        track_aux=True,
        variant=variant,
        failure_model=failure_model,
        link_schedule=link_schedule,
        engine=engine,
    )


def _pool(kernel, nodes):
    """The Section 6.1 global pool: live nodes plus channel contents."""
    live = [nodes[node_id] for node_id in kernel.live_nodes]
    in_flight = [
        collection
        for payload in kernel.in_flight_payloads()
        for collection in payload
    ]
    return pool_collections(live, in_flight)


def _total_quanta(kernel, nodes) -> int:
    return sum(collection.quanta for collection in _pool(kernel, nodes))


def _make_outage(window):
    start, length = window
    graph = complete(N)
    return WindowedOutage(cut_edges(graph, range(N // 2)), start=start, end=start + length)


class TestWeightConservation:
    @given(seed=seeds, engine=engines, variant=variants, window=outage_windows)
    @CONFORMANCE_SETTINGS
    def test_constant_without_crashes(self, seed, engine, variant, window):
        """No failures: the pooled quanta count is exactly invariant."""
        kernel, nodes = _build(
            seed, engine, variant, link_schedule=_make_outage(window)
        )
        initial = _total_quanta(kernel, nodes)
        for _ in range(UNITS):
            kernel.run(1)
            assert _total_quanta(kernel, nodes) == initial

    @given(
        seed=seeds,
        engine=engines,
        variant=variants,
        plan=crash_plans,
        window=outage_windows,
    )
    @CONFORMANCE_SETTINGS
    def test_monotone_under_crashes(self, seed, engine, variant, plan, window):
        """Crashes only ever remove quanta from the pool."""
        kernel, nodes = _build(
            seed,
            engine,
            variant,
            failure_model=ScheduledCrashes(plan),
            link_schedule=_make_outage(window),
        )
        previous = _total_quanta(kernel, nodes)
        for _ in range(UNITS):
            kernel.run(1)
            current = _total_quanta(kernel, nodes)
            assert current <= previous
            previous = current


class TestLemma2Monotonicity:
    @given(
        seed=seeds,
        engine=engines,
        variant=variants,
        plan=crash_plans,
        window=outage_windows,
    )
    @CONFORMANCE_SETTINGS
    def test_max_reference_angles_never_increase(
        self, seed, engine, variant, plan, window
    ):
        """Lemma 2's quantity is monotone on both schedules, even lossy ones."""
        kernel, nodes = _build(
            seed,
            engine,
            variant,
            failure_model=ScheduledCrashes(plan),
            link_schedule=_make_outage(window),
        )
        previous = max_reference_angles(_pool(kernel, nodes))
        for _ in range(UNITS):
            kernel.run(1)
            current = max_reference_angles(_pool(kernel, nodes))
            assert np.all(current <= previous + 1e-9)
            previous = current
