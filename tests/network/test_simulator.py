"""Shared network plumbing: Network base, selectors, liveness."""

import numpy as np
import pytest

from repro.network.simulator import Network, RandomSelector, RoundRobinSelector
from repro.network.topology import complete, ring
from repro.protocols.base import GossipProtocol


class EchoProtocol(GossipProtocol):
    """Minimal protocol: sends a counter, records what it hears."""

    def __init__(self):
        self.sent = 0
        self.heard = []

    def make_payload(self):
        self.sent += 1
        return ("ping", self.sent)

    def receive_batch(self, payloads):
        self.heard.append(list(payloads))


def make_network(n=4, graph=None, **kwargs):
    graph = graph if graph is not None else complete(n)
    protocols = {i: EchoProtocol() for i in range(graph.number_of_nodes())}
    return Network(graph, protocols, **kwargs)


class TestConstruction:
    def test_protocols_must_cover_nodes(self):
        with pytest.raises(ValueError):
            Network(complete(3), {0: EchoProtocol()})

    def test_live_nodes_initially_all(self):
        network = make_network(5)
        assert network.live_nodes == [0, 1, 2, 3, 4]


class TestLiveness:
    def test_crash_removes_node(self):
        network = make_network(4)
        network.crash(2)
        assert not network.is_live(2)
        assert network.live_nodes == [0, 1, 3]
        assert network.metrics.crashes == 1

    def test_double_crash_counted_once(self):
        network = make_network(4)
        network.crash(2)
        network.crash(2)
        assert network.metrics.crashes == 1

    def test_live_protocols_ordered(self):
        network = make_network(3)
        network.crash(0)
        live = network.live_protocols()
        assert live == [network.protocols[1], network.protocols[2]]


class TestSelectors:
    def test_round_robin_cycles_deterministically(self, rng):
        selector = RoundRobinSelector()
        neighbors = [3, 5, 9]
        picks = [selector.choose(0, neighbors, rng) for _ in range(6)]
        assert picks == [3, 5, 9, 3, 5, 9]

    def test_round_robin_tracks_per_node_pointers(self, rng):
        selector = RoundRobinSelector()
        assert selector.choose(0, [1, 2], rng) == 1
        assert selector.choose(7, [1, 2], rng) == 1  # independent pointer
        assert selector.choose(0, [1, 2], rng) == 2

    def test_random_selector_stays_in_neighbors(self, rng):
        selector = RandomSelector()
        neighbors = [2, 4, 6]
        for _ in range(50):
            assert selector.choose(0, neighbors, rng) in neighbors

    def test_random_selector_is_fair(self):
        """Every neighbour is chosen infinitely often (here: at all)."""
        selector = RandomSelector()
        generator = np.random.default_rng(0)
        neighbors = list(range(5))
        picks = {selector.choose(0, neighbors, generator) for _ in range(200)}
        assert picks == set(neighbors)


class TestPayloadSize:
    def test_sized_payload(self):
        assert Network.payload_size([1, 2, 3]) == 3

    def test_unsized_payload(self):
        assert Network.payload_size(42) == 1
