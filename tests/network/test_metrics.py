"""Instrumentation counters."""

import numpy as np
import pytest

from repro.network.asynchronous import AsyncEngine
from repro.network.metrics import NetworkMetrics
from repro.network.failures import ScheduledCrashes
from repro.network.topology import complete
from repro.protocols.push_sum import PushSumProtocol, build_push_sum_network


class TestCounters:
    def test_record_send_accumulates_payload_items(self):
        metrics = NetworkMetrics()
        metrics.record_send(payload_items=3)
        metrics.record_send(payload_items=2)
        assert metrics.messages_sent == 2
        assert metrics.payload_items_sent == 5

    def test_delivery_and_drop(self):
        metrics = NetworkMetrics()
        metrics.record_delivery()
        metrics.record_drop()
        metrics.record_drop()
        assert metrics.messages_delivered == 1
        assert metrics.messages_dropped == 2

    def test_close_round_traces_messages(self):
        metrics = NetworkMetrics()
        metrics.close_round(4)
        metrics.close_round(6)
        assert metrics.rounds == 2
        assert metrics.per_round_messages == [4, 6]

    def test_as_dict_keys(self):
        snapshot = NetworkMetrics().as_dict()
        assert {"rounds", "messages_sent", "messages_dropped", "crashes"} <= set(snapshot)

    def test_as_dict_carries_cache_counters(self):
        snapshot = NetworkMetrics().as_dict()
        assert {
            "cache_hits",
            "cache_misses",
            "cache_evictions",
            "cache_noop_hits",
            "quiescent_rounds",
        } <= set(snapshot)
        assert all(
            snapshot[key] == 0
            for key in (
                "cache_hits",
                "cache_misses",
                "cache_evictions",
                "cache_noop_hits",
                "quiescent_rounds",
            )
        )

    def test_sync_cache_mirrors_cache_counters(self):
        from repro.core.fingerprint import MergeCache

        cache = MergeCache(max_entries=4)
        cache.record_noop()
        cache.record_noop()
        metrics = NetworkMetrics()
        metrics.sync_cache(cache)
        assert metrics.cache_noop_hits == 2
        assert metrics.as_dict()["cache_noop_hits"] == 2


class TestAsDictDerivedStats:
    """as_dict used to omit per_round_messages entirely; it now carries the
    series plus the derived mean/max so result files capture message
    complexity without custom code."""

    def test_per_round_series_included_as_copy(self):
        metrics = NetworkMetrics()
        metrics.close_round(4)
        metrics.close_round(6)
        snapshot = metrics.as_dict()
        assert snapshot["per_round_messages"] == [4, 6]
        snapshot["per_round_messages"].append(99)
        assert metrics.per_round_messages == [4, 6]

    def test_mean_and_max(self):
        metrics = NetworkMetrics()
        metrics.close_round(4)
        metrics.close_round(6)
        metrics.close_round(8)
        snapshot = metrics.as_dict()
        assert snapshot["mean_messages_per_round"] == pytest.approx(6.0)
        assert snapshot["max_messages_per_round"] == 8

    def test_zero_rounds_yield_zero_stats(self):
        snapshot = NetworkMetrics().as_dict()
        assert snapshot["per_round_messages"] == []
        assert snapshot["mean_messages_per_round"] == 0.0
        assert snapshot["max_messages_per_round"] == 0


class TestEngineWiring:
    """Drop and crash counters must be fed by both engines."""

    def test_round_engine_counts_drops_to_crashed_nodes(self):
        values = np.arange(2, dtype=float)[:, None]
        engine, _ = build_push_sum_network(values, complete(2), seed=0)
        engine.crash(1)
        assert engine.metrics.crashes == 1
        engine.run(3)
        # Node 0's only neighbour is dead: every send is a drop.
        assert engine.metrics.messages_sent == 3
        assert engine.metrics.messages_dropped == 3
        assert engine.metrics.messages_delivered == 0

    def test_round_engine_counts_scheduled_crashes(self):
        values = np.arange(6, dtype=float)[:, None]
        engine, _ = build_push_sum_network(
            values, complete(6), seed=0, failure_model=ScheduledCrashes({0: [2], 1: [3]})
        )
        engine.run(3)
        assert engine.metrics.crashes == 2
        assert set(engine.live_nodes) == {0, 1, 4, 5}

    def test_async_engine_counts_drops_to_crashed_nodes(self):
        values = np.arange(2, dtype=float)[:, None]
        protocols = {i: PushSumProtocol(values[i]) for i in range(2)}
        engine = AsyncEngine(complete(2), protocols, seed=0)
        engine.crash(1)
        engine.run_events(100)
        assert engine.metrics.crashes == 1
        assert engine.metrics.messages_dropped > 0
        assert engine.metrics.messages_delivered == 0

    def test_counts_are_conserved(self):
        values = np.arange(8, dtype=float)[:, None]
        engine, _ = build_push_sum_network(
            values, complete(8), seed=1, failure_model=ScheduledCrashes({1: [0, 1]})
        )
        engine.run(5)
        metrics = engine.metrics
        assert metrics.messages_sent == (
            metrics.messages_delivered + metrics.messages_dropped
        )
        assert sum(metrics.per_round_messages) == metrics.messages_sent
