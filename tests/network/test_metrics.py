"""Instrumentation counters."""

from repro.network.metrics import NetworkMetrics


class TestCounters:
    def test_record_send_accumulates_payload_items(self):
        metrics = NetworkMetrics()
        metrics.record_send(payload_items=3)
        metrics.record_send(payload_items=2)
        assert metrics.messages_sent == 2
        assert metrics.payload_items_sent == 5

    def test_delivery_and_drop(self):
        metrics = NetworkMetrics()
        metrics.record_delivery()
        metrics.record_drop()
        metrics.record_drop()
        assert metrics.messages_delivered == 1
        assert metrics.messages_dropped == 2

    def test_close_round_traces_messages(self):
        metrics = NetworkMetrics()
        metrics.close_round(4)
        metrics.close_round(6)
        assert metrics.rounds == 2
        assert metrics.per_round_messages == [4, 6]

    def test_as_dict_keys(self):
        snapshot = NetworkMetrics().as_dict()
        assert {"rounds", "messages_sent", "messages_dropped", "crashes"} <= set(snapshot)
