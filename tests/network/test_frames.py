"""Frame protocol properties: reassembly across arbitrary chunking, and
hard rejection of truncated or corrupted traffic."""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import frames
from repro.network.frames import (
    FRAME_KINDS,
    Frame,
    FrameDecoder,
    FrameError,
    decode_peer_entries,
    encode_frame,
    encode_peer_entries,
)

kinds = st.sampled_from(FRAME_KINDS)
senders = st.integers(min_value=0, max_value=0xFFFFFFFF)
bodies = st.binary(max_size=512)


@st.composite
def frame_specs(draw):
    return (draw(kinds), draw(senders), draw(bodies))


class TestFrameRoundTrip:
    @given(frame_specs())
    @settings(max_examples=100, deadline=None)
    def test_single_frame_roundtrip(self, spec):
        kind, sender, body = spec
        decoded = FrameDecoder().feed(encode_frame(kind, sender, body))
        assert decoded == [Frame(kind=kind, sender=sender, body=body)]

    @given(st.lists(frame_specs(), min_size=1, max_size=8), st.data())
    @settings(max_examples=60, deadline=None)
    def test_stream_reassembly_across_arbitrary_chunking(self, specs, data):
        """Any split of a concatenated frame stream yields the same frames
        in order — the property a TCP reader actually needs."""
        stream = b"".join(encode_frame(*spec) for spec in specs)
        decoder = FrameDecoder()
        received = []
        position = 0
        while position < len(stream):
            step = data.draw(st.integers(min_value=1, max_value=len(stream) - position))
            received.extend(decoder.feed(stream[position : position + step]))
            position += step
        assert received == [Frame(*spec) for spec in specs]
        assert decoder.buffered == 0

    @given(frame_specs(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_truncated_frame_yields_nothing_and_waits(self, spec, data):
        blob = encode_frame(*spec)
        cut = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
        decoder = FrameDecoder()
        assert decoder.feed(blob[:cut]) == []
        assert decoder.buffered == cut
        # The remainder completes the frame — partial delivery resumes.
        assert decoder.feed(blob[cut:]) == [Frame(*spec)]


class TestFrameRejection:
    @given(frame_specs(), st.data())
    @settings(max_examples=80, deadline=None)
    def test_any_body_bitflip_is_rejected(self, spec, data):
        kind, sender, body = spec
        if not body:
            body = b"\x00"
        blob = bytearray(encode_frame(kind, sender, body))
        header_size = len(blob) - len(body)
        index = data.draw(st.integers(min_value=header_size, max_value=len(blob) - 1))
        blob[index] ^= data.draw(st.integers(min_value=1, max_value=255))
        with pytest.raises(FrameError):
            FrameDecoder().feed(bytes(blob))

    def test_bad_magic_is_rejected(self):
        blob = bytearray(encode_frame(frames.DATA, 1, b"x"))
        blob[0] ^= 0xFF
        with pytest.raises(FrameError, match="magic"):
            FrameDecoder().feed(bytes(blob))

    def test_bad_version_is_rejected(self):
        blob = bytearray(encode_frame(frames.DATA, 1, b"x"))
        blob[2] ^= 0xFF
        with pytest.raises(FrameError, match="version"):
            FrameDecoder().feed(bytes(blob))

    def test_unknown_kind_is_rejected(self):
        blob = bytearray(encode_frame(frames.DATA, 1, b"x"))
        blob[3] = 250
        with pytest.raises(FrameError, match="kind"):
            FrameDecoder().feed(bytes(blob))

    def test_oversize_length_is_rejected_before_allocation(self):
        header = struct.pack(
            "!HBBIII", frames.MAGIC, frames.FRAME_VERSION, frames.DATA, 0,
            frames.MAX_BODY_BYTES + 1, 0,
        )
        with pytest.raises(FrameError, match="length"):
            FrameDecoder().feed(header)

    def test_poisoned_decoder_refuses_further_input(self):
        blob = bytearray(encode_frame(frames.DATA, 1, b"x"))
        blob[-1] ^= 0xFF
        decoder = FrameDecoder()
        with pytest.raises(FrameError):
            decoder.feed(bytes(blob))
        with pytest.raises(FrameError, match="poisoned"):
            decoder.feed(encode_frame(frames.HEARTBEAT, 1))

    def test_encode_rejects_unknown_kind_and_wide_sender(self):
        with pytest.raises(FrameError):
            encode_frame(99, 0)
        with pytest.raises(FrameError):
            encode_frame(frames.DATA, 1 << 32)


peer_entries = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=0xFFFFFFFF),
        st.text(
            alphabet=st.characters(blacklist_categories=("Cs",)), max_size=40
        ),
        st.integers(min_value=0, max_value=0xFFFF),
    ),
    max_size=16,
)


class TestPeerEntries:
    @given(peer_entries)
    @settings(max_examples=80, deadline=None)
    def test_roundtrip(self, entries):
        assert decode_peer_entries(encode_peer_entries(entries)) == entries

    @given(peer_entries.filter(bool), st.data())
    @settings(max_examples=60, deadline=None)
    def test_truncation_rejected(self, entries, data):
        body = encode_peer_entries(entries)
        cut = data.draw(st.integers(min_value=0, max_value=len(body) - 1))
        with pytest.raises(FrameError):
            decode_peer_entries(body[:cut])

    @given(peer_entries)
    @settings(max_examples=40, deadline=None)
    def test_trailing_bytes_rejected(self, entries):
        with pytest.raises(FrameError):
            decode_peer_entries(encode_peer_entries(entries) + b"!")
