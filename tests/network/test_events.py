"""The deterministic discrete-event queue."""

import pytest

from repro.network.events import EventQueue


class TestOrdering:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        queue.push(3.0, "c")
        queue.push(1.0, "a")
        queue.push(2.0, "b")
        assert [queue.pop()[1] for _ in range(3)] == ["a", "b", "c"]

    def test_ties_break_in_insertion_order(self):
        queue = EventQueue()
        for item in ["first", "second", "third"]:
            queue.push(5.0, item)
        assert [queue.pop()[1] for _ in range(3)] == ["first", "second", "third"]

    def test_pop_returns_time(self):
        queue = EventQueue()
        queue.push(2.5, "x")
        time, item = queue.pop()
        assert time == 2.5 and item == "x"

    def test_unorderable_items_never_compared(self):
        queue = EventQueue()
        queue.push(1.0, object())
        queue.push(1.0, object())
        queue.pop()
        queue.pop()


class TestAccessors:
    def test_len_and_bool(self):
        queue = EventQueue()
        assert not queue and len(queue) == 0
        queue.push(1.0, "a")
        assert queue and len(queue) == 1

    def test_peek_time(self):
        queue = EventQueue()
        queue.push(4.0, "later")
        queue.push(2.0, "sooner")
        assert queue.peek_time() == 2.0
        assert len(queue) == 2  # peek does not remove

    def test_drain(self):
        queue = EventQueue()
        queue.push(2.0, "b")
        queue.push(1.0, "a")
        assert [item for _, item in queue.drain()] == ["a", "b"]
        assert not queue


class TestErrors:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, "x")

    def test_pop_empty_rejected(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_peek_empty_rejected(self):
        with pytest.raises(IndexError):
            EventQueue().peek_time()
