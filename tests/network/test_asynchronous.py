"""The event-driven asynchronous engine (the Section 6 setting)."""

import numpy as np
import pytest

from repro.network.asynchronous import AsyncEngine
from repro.network.topology import complete, ring
from repro.protocols.base import GossipProtocol
from repro.protocols.push_sum import PushSumProtocol


class CountingProtocol(GossipProtocol):
    def __init__(self):
        self.sent = 0
        self.received = 0

    def make_payload(self):
        self.sent += 1
        return "tick"

    def receive_batch(self, payloads):
        self.received += len(payloads)


def build(n=4, graph=None, protocol_factory=CountingProtocol, **kwargs):
    graph = graph if graph is not None else complete(n)
    protocols = {i: protocol_factory() for i in range(graph.number_of_nodes())}
    engine = AsyncEngine(graph, protocols, **kwargs)
    return engine, protocols


class TestConstruction:
    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            build(3, mean_interval=0.0)

    def test_rejects_invalid_delay_range(self):
        with pytest.raises(ValueError):
            build(3, delay_range=(2.0, 1.0))


class TestEventProcessing:
    def test_time_advances_monotonically(self):
        engine, _ = build(4, seed=1)
        times = []
        for _ in range(50):
            engine.step()
            times.append(engine.now)
        assert times == sorted(times)

    def test_every_node_eventually_sends_and_receives(self):
        engine, protocols = build(4, seed=1)
        engine.run_events(400)
        assert all(p.sent > 0 for p in protocols.values())
        assert all(p.received > 0 for p in protocols.values())

    def test_run_until_processes_all_earlier_events(self):
        engine, _ = build(4, seed=1)
        engine.run_until(20.0)
        assert engine.now >= 20.0

    def test_run_events_stop_condition(self):
        engine, _ = build(4, seed=1)
        executed = engine.run_events(1000, stop_condition=lambda e: e.metrics.events >= 10)
        assert executed == 10

    def test_crashed_node_goes_silent(self):
        engine, protocols = build(4, seed=1)
        engine.run_until(5.0)
        engine.crash(0)
        sent_before = protocols[0].sent
        received_before = protocols[0].received
        engine.run_until(50.0)
        # Fail-stop: the crashed node neither sends nor processes again;
        # in-flight messages addressed to it are dropped on arrival.
        assert protocols[0].sent == sent_before
        assert protocols[0].received == received_before
        assert engine.metrics.messages_dropped > 0

    def test_in_flight_payloads_visible(self):
        engine, _ = build(6, seed=2, delay_range=(5.0, 10.0))
        engine.run_until(3.0)  # sends happened, nothing delivered yet
        assert len(engine.in_flight_payloads()) > 0


class TestReliability:
    def test_push_sum_mass_conserved_through_channels(self):
        """Total (s, w) over nodes + in-flight messages never changes."""
        values = np.arange(6, dtype=float)[:, None]
        graph = ring(6)
        protocols = {i: PushSumProtocol(values[i]) for i in range(6)}
        engine = AsyncEngine(graph, protocols, seed=3, delay_range=(0.5, 4.0))
        for checkpoint in [5.0, 20.0, 60.0]:
            engine.run_until(checkpoint)
            total_s = sum(p.s[0] for p in protocols.values())
            total_w = sum(p.w for p in protocols.values())
            for payload in engine.in_flight_payloads():
                s, w = payload
                total_s += s[0]
                total_w += w
            assert total_s == pytest.approx(15.0, rel=1e-9)
            assert total_w == pytest.approx(6.0, rel=1e-9)

    def test_push_sum_converges_asynchronously(self):
        values = np.arange(8, dtype=float)[:, None]
        graph = complete(8)
        protocols = {i: PushSumProtocol(values[i]) for i in range(8)}
        engine = AsyncEngine(graph, protocols, seed=4)
        engine.run_until(200.0)
        for protocol in protocols.values():
            assert protocol.estimate[0] == pytest.approx(3.5, abs=0.05)


class TestFifoMode:
    def test_fifo_engine_runs(self):
        engine, protocols = build(4, seed=5, fifo=True)
        engine.run_events(200)
        assert all(p.received > 0 for p in protocols.values())
