"""NodeRuntime + NodeWebAPI driven in-process over queue-backed transports."""

import json
import queue
import threading
import urllib.error
import urllib.request

import numpy as np

from repro.core.node import ClassifierNode
from repro.core.serialization import codec_for_scheme
from repro.network.membership import MembershipView, PeerInfo
from repro.network.process_transport import ProcessTransport
from repro.network.runtime import NodeRuntime, cluster_means
from repro.network.webapi import NodeWebAPI
from repro.schemes.centroid import CentroidScheme


class _ThreadQueue:
    """queue.Queue with the multiprocessing.Queue get(timeout=) contract."""

    def __init__(self):
        self._q = queue.Queue()

    def put(self, item):
        self._q.put(item)

    def get(self, timeout=None):
        return self._q.get(timeout=timeout if timeout else 0.001)


def _runtime(node_id, n, values, inboxes, patience=3):
    scheme = CentroidScheme()
    node = ClassifierNode(node_id, values[node_id], scheme, k=2)
    codec = codec_for_scheme(scheme, values.shape[1])
    transport = ProcessTransport(node_id, inboxes)
    membership = MembershipView(self_info=PeerInfo(node_id, "process", node_id))
    for j in range(n):
        if j != node_id:
            membership.add(PeerInfo(j, "process", j))
    return NodeRuntime(
        node,
        codec,
        transport,
        membership,
        gossip_interval=0.01,
        heartbeat_interval=0.1,
        patience=patience,
        rng=np.random.default_rng(node_id + 1),
    )


def _fetch(port, path):
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}", timeout=5) as resp:
        return json.loads(resp.read())


class TestTwoNodeGossip:
    def test_nodes_exchange_payloads_and_reach_quiescence(self):
        n = 2
        values = np.array([[0.0, 0.0], [10.0, 10.0]])
        inboxes = {i: _ThreadQueue() for i in range(n)}
        runtimes = [_runtime(i, n, values, inboxes) for i in range(n)]
        threads = [
            threading.Thread(target=rt.run, kwargs={"duration": 10.0}, daemon=True)
            for rt in runtimes
        ]
        for thread in threads:
            thread.start()
        try:
            deadline = threading.Event()
            for _ in range(400):  # up to ~10s
                if all(rt.quiescent for rt in runtimes):
                    break
                deadline.wait(0.025)
            assert all(rt.quiescent for rt in runtimes)
            assert all(rt.payloads_received > 0 for rt in runtimes)
            # Both nodes classify the same: k=2 on two distant points.
            means = [cluster_means(rt.node) for rt in runtimes]
            assert np.allclose(means[0], means[1])
            assert np.allclose(means[0], [[0.0, 0.0], [10.0, 10.0]], atol=1e-9)
        finally:
            for rt in runtimes:
                rt.request_stop()
            for thread in threads:
                thread.join(timeout=5)

    def test_snapshot_reports_protocol_counters(self):
        values = np.array([[1.0, 2.0], [3.0, 4.0]])
        inboxes = {i: _ThreadQueue() for i in range(2)}
        rt = _runtime(0, 2, values, inboxes)
        snapshot = rt.snapshot()
        assert snapshot["node_id"] == 0
        assert snapshot["classification"]["k"] >= 1
        assert snapshot["membership"]["self"]["node_id"] == 0
        assert snapshot["transport"]["transport"] == "process"
        json.dumps(snapshot)  # must be wire-ready for the HTTP endpoint


class TestWebAPI:
    def test_endpoints_serve_runtime_state(self):
        values = np.array([[1.0, 2.0], [3.0, 4.0]])
        inboxes = {i: _ThreadQueue() for i in range(2)}
        rt = _runtime(0, 2, values, inboxes)
        web = NodeWebAPI(rt)
        web.start()
        thread = threading.Thread(target=rt.run, kwargs={"duration": 10.0}, daemon=True)
        thread.start()
        try:
            status = _fetch(web.port, "/status")
            assert status["node_id"] == 0
            assert "quiescent" in status and "summary_digest" in status

            classification = _fetch(web.port, "/classification")
            assert classification["k"] >= 1 and "means" in classification

            peers = _fetch(web.port, "/peers")
            assert peers["self"]["node_id"] == 0

            metrics = _fetch(web.port, "/metrics")
            assert metrics["transport"]["transport"] == "process"

            # Unknown paths 404 without killing the server.
            try:
                _fetch(web.port, "/nope")
                raised = False
            except urllib.error.HTTPError as err:
                raised = err.code == 404
            assert raised

            # POST /shutdown stops the runtime loop.
            request = urllib.request.Request(
                f"http://127.0.0.1:{web.port}/shutdown", method="POST"
            )
            with urllib.request.urlopen(request, timeout=5):
                pass
            thread.join(timeout=5)
            assert not thread.is_alive()
        finally:
            rt.request_stop()
            web.stop()
            thread.join(timeout=5)
