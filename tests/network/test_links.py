"""Link schedules and partition outages."""

import pytest

from repro.network.links import AlwaysUp, WindowedOutage, cut_edges
from repro.network.rounds import RoundEngine
from repro.network.topology import complete, line
from repro.protocols.base import GossipProtocol


class CountingProtocol(GossipProtocol):
    def __init__(self):
        self.received = 0

    def make_payload(self):
        return "x"

    def receive_batch(self, payloads):
        self.received += len(payloads)


class TestCutEdges:
    def test_complete_graph_bipartition(self):
        graph = complete(4)
        edges = cut_edges(graph, [0, 1])
        assert edges == {(0, 2), (0, 3), (1, 2), (1, 3)}

    def test_line_cut_is_single_edge(self):
        graph = line(4)
        assert cut_edges(graph, [0, 1]) == {(1, 2)}


class TestSchedules:
    def test_always_up(self):
        schedule = AlwaysUp()
        assert schedule.is_up(0, 1, 2)
        assert schedule.is_up(999, 5, 4)

    def test_windowed_outage_window(self):
        schedule = WindowedOutage([(1, 2)], start=5, end=10)
        assert schedule.is_up(4, 1, 2)      # before the window
        assert not schedule.is_up(5, 1, 2)  # window start
        assert not schedule.is_up(9, 2, 1)  # direction-insensitive
        assert schedule.is_up(10, 1, 2)     # window end (half-open)

    def test_other_edges_unaffected(self):
        schedule = WindowedOutage([(1, 2)], start=0, end=100)
        assert schedule.is_up(50, 0, 3)

    def test_rejects_inverted_window(self):
        with pytest.raises(ValueError):
            WindowedOutage([(0, 1)], start=5, end=4)


class TestEngineIntegration:
    def test_down_link_blocks_traffic(self):
        """On a 2-node line with its only edge down, nothing flows."""
        graph = line(2)
        protocols = {0: CountingProtocol(), 1: CountingProtocol()}
        engine = RoundEngine(
            graph,
            protocols,
            seed=0,
            link_schedule=WindowedOutage([(0, 1)], start=0, end=5),
        )
        engine.run(5)
        assert protocols[0].received == 0
        assert protocols[1].received == 0
        assert engine.metrics.messages_sent == 0

    def test_traffic_resumes_after_healing(self):
        graph = line(2)
        protocols = {0: CountingProtocol(), 1: CountingProtocol()}
        engine = RoundEngine(
            graph,
            protocols,
            seed=0,
            link_schedule=WindowedOutage([(0, 1)], start=0, end=5),
        )
        engine.run(10)
        assert engine.metrics.messages_sent == 10  # rounds 5-9, both nodes
