"""Kernel-level quiescence detection and the merge cache under failures.

Discrete-valued inputs (every node's value sits exactly on one of three
centers) make the converged state byte-stable: once all nodes hold the
same three summaries, splits and merges reproduce them exactly, so the
kernel's structural quiescence probe can fire.  Continuous inputs never
freeze bytes (weighted means keep drifting in the last ulps), which is
why quiescence is opt-in.
"""

import numpy as np
import pytest

from repro.network.failures import ScheduledCrashes
from repro.network.topology import complete
from repro.protocols.classification import build_classification_network
from repro.schemes.gm import GaussianMixtureScheme

CENTERS = np.array([[0.0, 0.0], [8.0, 8.0], [-8.0, 8.0]])


def _discrete_values(n: int, seed: int = 7) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return CENTERS[rng.integers(0, 3, size=n)]


def _build(n: int, engine: str, **kwargs):
    return build_classification_network(
        _discrete_values(n),
        GaussianMixtureScheme(seed=0),
        k=3,
        graph=complete(n),
        seed=5,
        engine=engine,
        **kwargs,
    )


def _summary_structure(nodes, live):
    """Per-live-node sorted summary-digest multiset (quanta ignored)."""
    return {i: tuple(sorted(nodes[i].summary_digests())) for i in sorted(live)}


def _full_state(nodes, live):
    """Per-live-node exact (quanta, summary bytes) sequence, in order."""
    return {
        i: [
            (c.quanta, c.summary.mean.tobytes(), c.summary.cov.tobytes())
            for c in nodes[i].classification
        ]
        for i in sorted(live)
    }


class TestQuiescenceDetection:
    @pytest.mark.parametrize("engine", ["rounds", "async"])
    def test_early_exit_matches_full_run_structure(self, engine):
        n = 24
        rounds = 120
        full, full_nodes = _build(n, engine)
        ran_full = full.run(rounds)
        assert ran_full == rounds
        assert not full.quiescent  # detection is opt-in

        early, early_nodes = _build(n, engine, stop_on_quiescence=True)
        ran_early = early.run(rounds)
        assert early.quiescent
        assert early.quiescent_at == ran_early
        assert ran_early < rounds  # rounds actually saved
        assert early.metrics.quiescent_rounds >= early.quiescence_patience

        # Post-quiescence only quanta move: the summary-digest structure of
        # the early-stopped run matches the full-length run exactly.
        assert _summary_structure(early_nodes, early.live_nodes) == _summary_structure(
            full_nodes, full.live_nodes
        )

    def test_patience_validated(self):
        with pytest.raises(ValueError, match="patience"):
            _build(8, "rounds", stop_on_quiescence=True, quiescence_patience=0)

    def test_quiescence_with_crashed_node(self):
        # A node that dies early takes its weight along; the survivors
        # still converge and the probe only consults live nodes.
        n = 16
        engine, nodes = _build(
            n,
            "rounds",
            stop_on_quiescence=True,
            failure_model=ScheduledCrashes({1: [3]}),
        )
        ran = engine.run(150)
        assert engine.quiescent
        assert ran < 150
        assert 3 not in engine.live_nodes
        structure = _summary_structure(nodes, engine.live_nodes)
        reference = next(iter(structure.values()))
        assert all(s == reference for s in structure.values())


class TestInFlightPayloads:
    def test_async_pool_conserves_total_weight(self):
        # Mid-run, weight lives at nodes *and* in channels; with the cache
        # on the two together must still account for every quantum.
        n = 10
        engine, nodes = _build(n, "async", merge_cache=True)
        engine.run_until(3.0)
        unit = nodes[0].quantization.unit
        at_nodes = sum(node.total_quanta for node in nodes)
        in_flight = sum(
            collection.quanta
            for payload in engine.in_flight_payloads()
            for collection in payload
        )
        assert at_nodes + in_flight == n * unit
        assert in_flight > 0  # the probe exercised a non-empty channel pool

    def test_round_engine_channels_drain_between_rounds(self):
        engine, _ = _build(8, "rounds", merge_cache=True)
        engine.run(5)
        assert engine.in_flight_payloads() == []


class TestFailuresWithCache:
    @pytest.mark.parametrize("engine", ["rounds", "async"])
    def test_crash_run_parity_cache_on_off(self, engine):
        # Messages addressed to a crashed node are dropped before any
        # receive runs, so they must neither seed nor consult the cache;
        # the surviving nodes' states must be byte-identical either way.
        n = 16
        rounds = 30
        crashes = {2: [3], 5: [7]}
        on, on_nodes = _build(
            n, engine, merge_cache=True, failure_model=ScheduledCrashes(crashes)
        )
        on.run(rounds)
        off, off_nodes = _build(
            n, engine, merge_cache=False, failure_model=ScheduledCrashes(crashes)
        )
        off.run(rounds)

        assert set(on.live_nodes) == set(off.live_nodes)
        assert on.metrics.messages_dropped == off.metrics.messages_dropped
        assert on.metrics.messages_dropped > 0  # the crashes really dropped mail
        assert _full_state(on_nodes, on.live_nodes) == _full_state(
            off_nodes, off.live_nodes
        )
        # The cache saw real traffic on the cached run and none otherwise.
        assert on.metrics.cache_misses + on.metrics.cache_noop_hits > 0
        assert off.metrics.cache_misses == 0
        assert off.metrics.cache_noop_hits == 0
