"""Seed determinism: one seed, one scheduler — one byte-exact trace.

Every stochastic choice in a run (peer selection, crash draws, Poisson
firing times, channel delays) flows from the single kernel RNG, and
every observable event funnels through the kernel's one emission site.
Replaying a configuration with the same seed must therefore reproduce
the JSONL event trace byte for byte — the property the seeded figure
tests and the obs replay tooling rely on.  A regression here means a
nondeterministic iteration order or an RNG draw that moved between code
paths, both of which silently break reproducibility long before any
numeric assertion notices.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.network.factory import ENGINES
from repro.network.failures import BernoulliCrashes
from repro.network.topology import complete
from repro.obs.events import JsonlSink
from repro.protocols.classification import build_classification_network
from repro.schemes.centroid import CentroidScheme
from repro.schemes.gm import GaussianMixtureScheme

N = 12
UNITS = 5


def _trace_bytes(path, seed: int, engine: str, variant: str = "push", scheme=None) -> bytes:
    rng = np.random.default_rng(7)
    values = rng.normal(0.0, 1.0, size=(N, 2))
    sink = JsonlSink(str(path))
    try:
        kernel, _ = build_classification_network(
            values,
            scheme if scheme is not None else CentroidScheme(),
            k=2,
            graph=complete(N),
            seed=seed,
            variant=variant,
            failure_model=BernoulliCrashes(0.05, min_survivors=4),
            event_sink=sink,
            engine=engine,
        )
        kernel.run(UNITS)
    finally:
        sink.close()
    return path.read_bytes()


@pytest.mark.parametrize("engine", ENGINES)
def test_same_seed_same_trace(tmp_path, engine):
    first = _trace_bytes(tmp_path / "a.jsonl", seed=123, engine=engine)
    second = _trace_bytes(tmp_path / "b.jsonl", seed=123, engine=engine)
    assert first, "run emitted no events — the trace check is vacuous"
    assert first == second


@pytest.mark.parametrize("engine", ENGINES)
def test_different_seeds_diverge(tmp_path, engine):
    first = _trace_bytes(tmp_path / "a.jsonl", seed=123, engine=engine)
    second = _trace_bytes(tmp_path / "b.jsonl", seed=124, engine=engine)
    assert first != second


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("scheme_name", ["centroid", "gm"])
def test_packed_and_object_paths_trace_identically(tmp_path, engine, scheme_name, monkeypatch):
    """The packed hot path is a representation change only: with the same
    seed, a run on the structure-of-arrays path must reproduce the object
    path's JSONL trace byte for byte (same events, same order, same
    payload counts)."""

    def make_scheme():
        return CentroidScheme() if scheme_name == "centroid" else GaussianMixtureScheme(seed=0)

    monkeypatch.setenv("REPRO_PACKED", "1")
    packed = _trace_bytes(tmp_path / "packed.jsonl", seed=123, engine=engine, scheme=make_scheme())
    monkeypatch.setenv("REPRO_PACKED", "0")
    plain = _trace_bytes(tmp_path / "object.jsonl", seed=123, engine=engine, scheme=make_scheme())
    assert packed, "run emitted no events — the parity check is vacuous"
    assert packed == plain


def test_schedulers_stamp_traces_differently(tmp_path):
    """The two schedules are distinguishable in the trace (round vs t)."""
    sync = _trace_bytes(tmp_path / "sync.jsonl", seed=5, engine="rounds")
    poisson = _trace_bytes(tmp_path / "async.jsonl", seed=5, engine="async")
    assert sync != poisson
    assert b'"t":' in poisson
