"""Crash-failure models."""

import numpy as np
import pytest

from repro.network.failures import BernoulliCrashes, NoFailures, ScheduledCrashes


class TestNoFailures:
    def test_never_crashes(self, rng):
        model = NoFailures()
        assert model.crashes_after_round(0, list(range(100)), rng) == []


class TestBernoulli:
    def test_probability_zero(self, rng):
        model = BernoulliCrashes(0.0)
        assert model.crashes_after_round(0, list(range(50)), rng) == []

    def test_probability_one_crashes_all_but_survivors(self, rng):
        model = BernoulliCrashes(1.0, min_survivors=3)
        crashed = model.crashes_after_round(0, list(range(10)), rng)
        assert len(crashed) == 7

    def test_rate_statistically_plausible(self, rng):
        model = BernoulliCrashes(0.05, min_survivors=1)
        total = 0
        for round_index in range(200):
            total += len(model.crashes_after_round(round_index, list(range(100)), rng))
        # 200 rounds x 100 nodes x 5% = 1000 expected crashes.
        assert 800 < total < 1200

    def test_min_survivors_enforced(self, rng):
        model = BernoulliCrashes(1.0, min_survivors=2)
        live = [4, 7]
        assert model.crashes_after_round(0, live, rng) == []

    def test_rejects_invalid_probability(self):
        with pytest.raises(ValueError):
            BernoulliCrashes(1.5)

    def test_rejects_zero_min_survivors(self):
        with pytest.raises(ValueError):
            BernoulliCrashes(0.5, min_survivors=0)


class TestScheduled:
    def test_crashes_at_planned_round(self, rng):
        model = ScheduledCrashes({2: [5, 6]})
        assert model.crashes_after_round(0, list(range(10)), rng) == []
        assert model.crashes_after_round(2, list(range(10)), rng) == [5, 6]

    def test_ignores_already_dead_nodes(self, rng):
        model = ScheduledCrashes({1: [5]})
        assert model.crashes_after_round(1, [0, 1, 2], rng) == []
