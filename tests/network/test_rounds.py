"""The round-based gossip engine (the paper's simulation methodology)."""

import pytest

from repro.network.failures import ScheduledCrashes
from repro.network.rounds import RoundEngine
from repro.network.simulator import RoundRobinSelector
from repro.network.topology import complete, line, ring
from repro.protocols.base import GossipProtocol


class RecordingProtocol(GossipProtocol):
    """Sends its id; records batches as they are delivered."""

    def __init__(self, node_id, payload=None):
        self.node_id = node_id
        self.payload = payload if payload is not None else node_id
        self.batches = []
        self.sends = 0

    def make_payload(self):
        self.sends += 1
        return self.payload

    def receive_batch(self, payloads):
        self.batches.append(list(payloads))


class SilentProtocol(GossipProtocol):
    """A node with nothing sendable (exercises payload=None)."""

    def make_payload(self):
        return None

    def receive_batch(self, payloads):
        raise AssertionError("nothing should ever arrive")


def build(n=4, graph=None, protocol_factory=RecordingProtocol, **kwargs):
    graph = graph if graph is not None else complete(n)
    protocols = {i: protocol_factory(i) for i in range(graph.number_of_nodes())}
    engine = RoundEngine(graph, protocols, **kwargs)
    return engine, protocols


class TestPushRound:
    def test_every_live_node_sends_once(self):
        engine, protocols = build(5, seed=1)
        engine.run_round()
        assert all(p.sends == 1 for p in protocols.values())
        assert engine.metrics.messages_sent == 5

    def test_batching_single_receive_call_per_round(self):
        """Multiple messages to one node arrive as ONE batch (Section 5.3)."""
        engine, protocols = build(6, seed=3)
        engine.run_round()
        total_messages = sum(len(batch) for p in protocols.values() for batch in p.batches)
        total_calls = sum(len(p.batches) for p in protocols.values())
        assert total_messages == 6
        assert total_calls <= 6  # batched: never more calls than messages

    def test_none_payload_skips_transmission(self):
        graph = complete(3)
        protocols = {i: SilentProtocol() for i in range(3)}
        engine = RoundEngine(graph, protocols, seed=0)
        engine.run_round()
        assert engine.metrics.messages_sent == 0

    def test_messages_to_crashed_nodes_dropped(self):
        engine, protocols = build(3, graph=line(3), seed=0)
        engine.crash(1)
        engine.run_round()
        # Nodes 0 and 2 can only talk to node 1 on a line; both drop.
        assert engine.metrics.messages_dropped == 2
        assert protocols[1].batches == []


class TestVariants:
    def test_invalid_variant_rejected(self):
        with pytest.raises(ValueError):
            build(3, variant="flood")

    def test_pull_makes_peer_respond(self):
        engine, protocols = build(4, seed=2, variant="pull")
        engine.run_round()
        # In pull, the chosen peers transmit; total messages equals the
        # number of successful pull requests.
        assert engine.metrics.messages_sent == 4
        heard = sum(len(batch) for p in protocols.values() for batch in p.batches)
        assert heard == 4

    def test_pushpull_doubles_traffic(self):
        engine, _ = build(4, seed=2, variant="pushpull")
        engine.run_round()
        assert engine.metrics.messages_sent == 8

    def test_pull_from_crashed_peer_yields_nothing(self):
        graph = line(3)
        protocols = {i: RecordingProtocol(i) for i in range(3)}
        engine = RoundEngine(graph, protocols, seed=0, variant="pull")
        engine.crash(1)
        engine.run_round()
        assert protocols[0].batches == []
        assert protocols[2].batches == []


class TestFailuresAndDriving:
    def test_scheduled_crash_applied_after_round(self):
        engine, _ = build(4, seed=0, failure_model=ScheduledCrashes({0: [3]}))
        engine.run_round()
        assert not engine.is_live(3)
        assert engine.metrics.crashes == 1

    def test_run_returns_rounds_executed(self):
        engine, _ = build(4, seed=0)
        assert engine.run(7) == 7
        assert engine.metrics.rounds == 7
        assert engine.round_index == 7

    def test_stop_condition_ends_early(self):
        engine, _ = build(4, seed=0)
        executed = engine.run(100, stop_condition=lambda e: e.round_index >= 3)
        assert executed == 3

    def test_per_round_callback_invoked(self):
        engine, _ = build(4, seed=0)
        observed = []
        engine.run(5, per_round=lambda e: observed.append(e.round_index))
        assert observed == [1, 2, 3, 4, 5]

    def test_round_robin_selector_on_ring(self):
        protocols = {i: RecordingProtocol(i) for i in range(4)}
        engine = RoundEngine(ring(4), protocols, seed=0, selector=RoundRobinSelector())
        engine.run(4)
        # Deterministic: each node alternates between its two neighbours.
        assert engine.metrics.messages_sent == 16
