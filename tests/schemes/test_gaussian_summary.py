"""Weighted-Gaussian summaries (Section 5.1)."""

import numpy as np
import pytest

from repro.core.classification import Classification
from repro.core.collection import Collection
from repro.schemes.gaussian import (
    GaussianSummary,
    classification_to_gmm,
    merge_gaussian_summaries,
    summary_from_value,
)


class TestGaussianSummary:
    def test_construction_normalises_shapes(self):
        summary = GaussianSummary(mean=[1.0, 2.0], cov=np.eye(2))
        assert summary.mean.shape == (2,)
        assert summary.cov.shape == (2, 2)
        assert summary.dimension == 2

    def test_rejects_mismatched_cov(self):
        with pytest.raises(ValueError):
            GaussianSummary(mean=[1.0, 2.0], cov=np.eye(3))

    def test_close_to(self):
        a = GaussianSummary(mean=[0.0], cov=[[1.0]])
        b = GaussianSummary(mean=[1e-12], cov=[[1.0]])
        c = GaussianSummary(mean=[0.5], cov=[[1.0]])
        assert a.close_to(b)
        assert not a.close_to(c)

    def test_immutable(self):
        summary = GaussianSummary(mean=[0.0], cov=[[1.0]])
        with pytest.raises(AttributeError):
            summary.mean = np.array([1.0])


class TestValToSummary:
    def test_zero_covariance(self):
        summary = summary_from_value([2.0, 3.0])
        assert np.allclose(summary.mean, [2.0, 3.0])
        assert np.allclose(summary.cov, 0.0)

    def test_scalar_value(self):
        summary = summary_from_value(5.0)
        assert summary.dimension == 1


class TestMerge:
    def test_matches_raw_value_moments(self, rng):
        """mergeSet == moments of the pooled underlying values (R4)."""
        set_a = rng.normal([0, 0], 1.0, size=(100, 2))
        set_b = rng.normal([4, 2], 0.5, size=(300, 2))

        def summarise(points):
            mean = points.mean(axis=0)
            centered = points - mean
            return GaussianSummary(mean=mean, cov=centered.T @ centered / len(points))

        merged = merge_gaussian_summaries(
            [(summarise(set_a), 100.0), (summarise(set_b), 300.0)]
        )
        expected = summarise(np.vstack([set_a, set_b]))
        assert merged.close_to(expected, tolerance=1e-9)

    def test_merge_of_two_points(self):
        merged = merge_gaussian_summaries(
            [(summary_from_value([0.0]), 1.0), (summary_from_value([2.0]), 1.0)]
        )
        assert merged.mean[0] == pytest.approx(1.0)
        assert merged.cov[0, 0] == pytest.approx(1.0)  # variance of {0, 2}

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            merge_gaussian_summaries([])


class TestClassificationToGmm:
    def test_conversion(self):
        classification = Classification(
            [
                Collection(summary=summary_from_value([0.0, 0.0]), quanta=3),
                Collection(summary=summary_from_value([5.0, 5.0]), quanta=1),
            ]
        )
        model = classification_to_gmm(classification)
        assert model.n_components == 2
        assert np.allclose(model.weights, [0.75, 0.25])
        assert np.allclose(model.means[1], [5.0, 5.0])
