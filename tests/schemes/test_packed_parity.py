"""Packed hot path vs object path: byte-identical classifications.

The packed structure-of-arrays path (``docs/performance.md``) is a pure
representation change: a node routed through ``partition_packed`` /
``merge_set_packed`` must produce *bit-for-bit* the same classifications
as the object-path conformance reference, because both feed identical
float values through the same shared numeric kernels and replicate the
same accumulation order.  These tests pin that contract per scheme, and
pin the ``identity_below_k`` fast-path declaration against the scheme's
actual ``partition``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.collection import Collection
from repro.core.node import ClassifierNode, packed_default
from repro.core.scheme import validate_partition
from repro.core.weights import Quantization
from repro.schemes.centroid import CentroidScheme
from repro.schemes.diagonal import DiagonalGaussianScheme
from repro.schemes.gaussian import GaussianSummary
from repro.schemes.gm import GaussianMixtureScheme
from repro.schemes.histogram import HistogramScheme

QUANT = Quantization(16)


def _make_scheme(name: str):
    if name == "centroid":
        return CentroidScheme()
    if name == "gm":
        return GaussianMixtureScheme(seed=0)
    if name == "diagonal":
        return DiagonalGaussianScheme(seed=0)
    if name == "histogram":
        return HistogramScheme(low=-10.0, high=10.0, bins=16)
    raise AssertionError(name)


def _make_value(name: str, rng: np.random.Generator):
    if name == "histogram":
        return float(rng.normal(0.0, 3.0))
    return rng.normal(0.0, 3.0, size=2)


SCHEME_NAMES = ["centroid", "gm", "diagonal", "histogram"]


def _summary_bytes(summary) -> bytes:
    if isinstance(summary, GaussianSummary):
        return summary.mean.tobytes() + summary.cov.tobytes()
    return np.asarray(summary, dtype=float).tobytes()


def _classification_bytes(node: ClassifierNode) -> list[tuple[int, bytes]]:
    return [
        (collection.quanta, _summary_bytes(collection.summary))
        for collection in node.classification
    ]


def _ping_pong(name: str, packed: bool, rounds: int = 8, k: int = 3):
    """A deterministic two-node gossip; returns per-round classifications."""
    rng = np.random.default_rng(42)
    scheme = _make_scheme(name)
    nodes = [
        ClassifierNode(
            i,
            _make_value(name, rng),
            scheme,
            k=k,
            quantization=QUANT,
            validate=True,
            packed=packed,
        )
        for i in range(2)
    ]
    history = []
    for _ in range(rounds):
        payload = nodes[0].make_message()
        if payload:
            nodes[1].receive(payload)
        payload = nodes[1].make_message()
        if payload:
            nodes[0].receive(payload)
        history.append([_classification_bytes(node) for node in nodes])
    return history, nodes


class TestPackedObjectParity:
    @pytest.mark.parametrize("name", SCHEME_NAMES)
    def test_ping_pong_classifications_byte_identical(self, name):
        packed_history, packed_nodes = _ping_pong(name, packed=True)
        object_history, object_nodes = _ping_pong(name, packed=False)
        assert packed_history == object_history
        # The representation flag is the only difference between the runs.
        assert all(node.packed for node in packed_nodes)
        assert not any(node.packed for node in object_nodes)

    @pytest.mark.parametrize("name", SCHEME_NAMES)
    def test_stats_counters_identical(self, name):
        _, packed_nodes = _ping_pong(name, packed=True)
        _, object_nodes = _ping_pong(name, packed=False)
        for packed_node, object_node in zip(packed_nodes, object_nodes):
            assert packed_node.stats.as_dict() == object_node.stats.as_dict()

    @pytest.mark.parametrize("name", SCHEME_NAMES)
    def test_packed_state_mirrors_collections(self, name):
        """After arbitrary receive/split traffic the cached PackedState
        must equal a fresh packing of the collection list."""
        _, nodes = _ping_pong(name, packed=True)
        for node in nodes:
            fresh = node._pack(node._collections)
            assert np.array_equal(fresh.quanta, node._packed.quanta)
            assert set(fresh.columns) == set(node._packed.columns)
            for key, column in fresh.columns.items():
                assert column.tobytes() == node._packed.columns[key].tobytes()


class TestIdentityBelowK:
    """The fast-path declaration must match the scheme's real partition."""

    @pytest.mark.parametrize("name", SCHEME_NAMES)
    @pytest.mark.parametrize("size", [1, 2, 4])
    def test_partition_is_identity_without_minimums(self, name, size):
        rng = np.random.default_rng(size)
        scheme = _make_scheme(name)
        assert scheme.identity_below_k
        collections = [
            Collection(
                summary=scheme.val_to_summary(_make_value(name, rng)),
                quanta=int(rng.integers(2, QUANT.unit + 1)),
            )
            for _ in range(size)
        ]
        groups = scheme.partition(collections, k=size, quantization=QUANT)
        assert groups == [[index] for index in range(size)]

    @pytest.mark.parametrize("name", SCHEME_NAMES)
    def test_fastpath_result_passes_validation(self, name):
        rng = np.random.default_rng(7)
        scheme = _make_scheme(name)
        node = ClassifierNode(
            0,
            _make_value(name, rng),
            scheme,
            k=4,
            quantization=QUANT,
            validate=True,  # validate_partition runs on the identity groups
            packed=True,
        )
        incoming = [
            Collection(summary=scheme.val_to_summary(_make_value(name, rng)), quanta=8)
            for _ in range(2)
        ]
        node.receive(incoming)
        assert node.stats.fastpath_hits == 1
        assert node.stats.partition_calls == 0
        # The pooled set is adopted unchanged, in index order.
        assert len(node.classification) == 3
        assert node.classification[1].summary is incoming[0].summary

    @pytest.mark.parametrize("name", SCHEME_NAMES)
    def test_minimum_weight_forces_real_partition(self, name):
        """With a lone one-quantum collection the identity partition could
        violate conformance rule 2, so the fast path must decline and the
        scheme's own partition must still return a valid grouping."""
        rng = np.random.default_rng(11)
        scheme = _make_scheme(name)
        node = ClassifierNode(
            0,
            _make_value(name, rng),
            scheme,
            k=4,
            quantization=QUANT,
            validate=True,
            packed=True,
        )
        node.receive(
            [Collection(summary=scheme.val_to_summary(_make_value(name, rng)), quanta=1)]
        )
        assert node.stats.fastpath_hits == 0
        assert node.stats.partition_calls == 1

    @pytest.mark.parametrize("name", SCHEME_NAMES)
    def test_partition_with_minimums_stays_conformant(self, name):
        rng = np.random.default_rng(13)
        scheme = _make_scheme(name)
        collections = [
            Collection(
                summary=scheme.val_to_summary(_make_value(name, rng)),
                quanta=1 if index % 2 else QUANT.unit,
            )
            for index in range(4)
        ]
        groups = scheme.partition(collections, k=4, quantization=QUANT)
        validate_partition(groups, collections, 4, QUANT)


class TestPackedDefault:
    def test_env_toggle(self, monkeypatch):
        monkeypatch.delenv("REPRO_PACKED", raising=False)
        assert packed_default() is True
        monkeypatch.setenv("REPRO_PACKED", "0")
        assert packed_default() is False
        monkeypatch.setenv("REPRO_PACKED", "off")
        assert packed_default() is False
        monkeypatch.setenv("REPRO_PACKED", "1")
        assert packed_default() is True

    def test_unsupported_scheme_falls_back(self):
        class ObjectOnly(CentroidScheme):
            supports_packed = False

        node = ClassifierNode(
            0, np.zeros(2), ObjectOnly(), k=2, quantization=QUANT, packed=True
        )
        assert not node.packed
        assert node._packed is None
        node.receive([Collection(summary=np.ones(2), quanta=8)])
        assert len(node.classification) == 2
