"""The Gaussian-Mixture instantiation: EM-driven partition decisions."""

import numpy as np
import pytest

from repro.core.collection import Collection
from repro.core.scheme import validate_partition
from repro.core.weights import Quantization
from repro.schemes.gaussian import GaussianSummary, summary_from_value
from repro.schemes.gm import GaussianMixtureScheme

LATTICE = Quantization(16)


def gaussian_collections(entries):
    """entries: list of (mean, cov_scale, quanta)."""
    return [
        Collection(
            summary=GaussianSummary(
                mean=np.asarray(mean, dtype=float),
                cov=scale * np.eye(len(mean)),
            ),
            quanta=quanta,
        )
        for mean, scale, quanta in entries
    ]


class TestPartition:
    def test_respects_k(self):
        scheme = GaussianMixtureScheme(seed=0)
        collections = gaussian_collections(
            [([0, 0], 0.1, 16), ([0.5, 0], 0.1, 16), ([9, 9], 0.1, 16), ([9.5, 9], 0.1, 16)]
        )
        groups = scheme.partition(collections, k=2, quantization=LATTICE)
        validate_partition(groups, collections, 2, LATTICE)

    def test_separated_clusters_split_correctly(self):
        scheme = GaussianMixtureScheme(seed=0)
        collections = gaussian_collections(
            [([0, 0], 0.1, 16), ([0.4, 0.1], 0.1, 16), ([12, 12], 0.1, 16), ([12.3, 11.8], 0.1, 16)]
        )
        groups = sorted(sorted(g) for g in scheme.partition(collections, k=2, quantization=LATTICE))
        assert groups == [[0, 1], [2, 3]]

    def test_below_k_left_unmerged(self):
        scheme = GaussianMixtureScheme(seed=0)
        collections = gaussian_collections([([0, 0], 0.1, 16), ([30, 30], 0.1, 16)])
        groups = scheme.partition(collections, k=5, quantization=LATTICE)
        assert sorted(sorted(g) for g in groups) == [[0], [1]]

    def test_variance_overrides_centroid_proximity(self):
        """Figure 1's decision, made by the partition itself: a value
        between a tight and a wide collection groups with the wide one."""
        collections = [
            Collection(  # tight collection at the origin
                summary=GaussianSummary(mean=[0.0, 0.0], cov=0.02 * np.eye(2)), quanta=64
            ),
            Collection(  # wide collection at (6, 0)
                summary=GaussianSummary(mean=[6.0, 0.0], cov=16.0 * np.eye(2)), quanta=64
            ),
            # A single new value: closer to the tight centroid (2.9 < 3.1)
            # yet ~20 standard deviations from it and well inside the wide
            # collection's spread.
            Collection(summary=summary_from_value([2.9, 0.0]), quanta=4),
        ]
        for seed in range(4):  # the decision must not hinge on EM seeding
            scheme = GaussianMixtureScheme(seed=seed)
            groups = scheme.partition(collections, k=2, quantization=LATTICE)
            by_member = {index: sorted(group) for group in groups for index in group}
            assert by_member[2] == [1, 2]  # grouped with the wide collection

    def test_minimum_weight_singleton_repaired(self):
        scheme = GaussianMixtureScheme(seed=0)
        collections = gaussian_collections(
            [([0, 0], 0.1, 16), ([1, 0], 0.1, 16), ([40, 40], 0.1, 1)]
        )
        groups = scheme.partition(collections, k=3, quantization=LATTICE)
        validate_partition(groups, collections, 3, LATTICE)

    def test_deterministic_given_seed(self):
        collections = gaussian_collections(
            [([0, 0], 0.2, 16), ([1, 1], 0.2, 16), ([8, 8], 0.2, 16), ([9, 9], 0.2, 16)]
        )
        a = GaussianMixtureScheme(seed=7).partition(collections, k=2, quantization=LATTICE)
        b = GaussianMixtureScheme(seed=7).partition(collections, k=2, quantization=LATTICE)
        assert a == b


class TestSummaryFunctions:
    def test_val_to_summary(self):
        scheme = GaussianMixtureScheme()
        summary = scheme.val_to_summary([1.0, 2.0])
        assert np.allclose(summary.mean, [1.0, 2.0])
        assert np.allclose(summary.cov, 0.0)

    def test_distance_is_mean_distance(self):
        scheme = GaussianMixtureScheme()
        a = GaussianSummary(mean=[0.0, 0.0], cov=np.eye(2))
        b = GaussianSummary(mean=[3.0, 4.0], cov=5.0 * np.eye(2))
        assert scheme.distance(a, b) == pytest.approx(5.0)

    def test_merge_set_moment_match(self):
        scheme = GaussianMixtureScheme()
        merged = scheme.merge_set(
            [(summary_from_value([0.0]), 1.0), (summary_from_value([4.0]), 3.0)]
        )
        assert merged.mean[0] == pytest.approx(3.0)
        # variance: 0.25 * 9 + 0.75 * 1 = 3
        assert merged.cov[0, 0] == pytest.approx(3.0)
