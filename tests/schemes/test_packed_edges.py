"""Packed-state edge cases: minimum weights, ``k=1``, empty batches.

The zero-copy packed tier moves the receive pipeline onto shared column
arrays, so its degenerate shapes — everything at one quantum, a single
allowed collection, nothing delivered — deserve their own pins alongside
the randomized parity suites.  Each case runs through the public
``pack_values`` / ``unpack_summary`` seam and the node receive path in
both representations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.collection import Collection
from repro.core.node import ClassifierNode
from repro.core.weights import Quantization
from repro.schemes.centroid import CentroidScheme
from repro.schemes.diagonal import DiagonalGaussianScheme
from repro.schemes.gaussian import GaussianSummary
from repro.schemes.gm import GaussianMixtureScheme
from repro.schemes.histogram import HistogramScheme

QUANT = Quantization(16)
SCHEME_NAMES = ["centroid", "gm", "diagonal", "histogram"]


def _scheme(name: str):
    if name == "centroid":
        return CentroidScheme()
    if name == "gm":
        return GaussianMixtureScheme(seed=0)
    if name == "diagonal":
        return DiagonalGaussianScheme(seed=0)
    return HistogramScheme(-10.0, 10.0, bins=8)


def _value(name: str, rng: np.random.Generator):
    return float(rng.normal()) if name == "histogram" else rng.normal(size=2)


def _summary_bytes(summary) -> bytes:
    if isinstance(summary, GaussianSummary):
        return summary.mean.tobytes() + summary.cov.tobytes()
    return np.asarray(summary, dtype=float).tobytes()


def _state(node: ClassifierNode) -> list[tuple[int, bytes]]:
    return [(c.quanta, _summary_bytes(c.summary)) for c in node.classification]


class TestPackValuesRoundTrip:
    @pytest.mark.parametrize("name", SCHEME_NAMES)
    def test_unpack_recovers_value_summaries(self, name):
        rng = np.random.default_rng(3)
        scheme = _scheme(name)
        values = [_value(name, rng) for _ in range(5)]
        columns = scheme.pack_values(values)
        for index, value in enumerate(values):
            unpacked = scheme.unpack_summary(columns, index)
            reference = scheme.val_to_summary(value)
            assert _summary_bytes(unpacked) == _summary_bytes(reference)

    @pytest.mark.parametrize("name", SCHEME_NAMES)
    def test_single_value_pack(self, name):
        """A one-row pack (the smallest node) survives the round trip."""
        rng = np.random.default_rng(4)
        scheme = _scheme(name)
        value = _value(name, rng)
        columns = scheme.pack_values([value])
        assert _summary_bytes(scheme.unpack_summary(columns, 0)) == _summary_bytes(
            scheme.val_to_summary(value)
        )


class TestEmptyIncoming:
    @pytest.mark.parametrize("name", SCHEME_NAMES)
    @pytest.mark.parametrize("packed", [True, False])
    def test_empty_receive_is_a_noop(self, name, packed):
        rng = np.random.default_rng(5)
        node = ClassifierNode(
            0, _value(name, rng), _scheme(name), k=3, quantization=QUANT, packed=packed
        )
        before = _state(node)
        node.receive([])
        assert _state(node) == before
        assert node.stats.partition_calls == 0

    def test_empty_packed_batch_is_a_noop(self):
        rng = np.random.default_rng(6)
        node = ClassifierNode(
            0, _value("gm", rng), _scheme("gm"), k=3, quantization=QUANT, packed=True
        )
        before = _state(node)
        node.receive_packed([])
        assert _state(node) == before

    def test_one_quantum_node_sends_nothing(self):
        """At the lattice minimum nothing is splittable: the message is
        empty (falsy), which the protocol converts into no send at all."""
        rng = np.random.default_rng(7)
        node = ClassifierNode(
            0,
            _value("gm", rng),
            _scheme("gm"),
            k=3,
            quantization=Quantization(1),
            packed=True,
        )
        payload = node.make_message()
        assert not payload
        assert _state(node) == [(1, _state(node)[0][1])]  # nothing was split away


class TestOneQuantumCollections:
    @pytest.mark.parametrize("name", SCHEME_NAMES)
    def test_minimum_weight_receive_parity(self, name):
        """All-minimum pools force rule-2 merging; packed and object
        paths must agree byte for byte on the merged result."""
        rng = np.random.default_rng(8)
        value = _value(name, rng)
        incoming_values = [_value(name, rng) for _ in range(4)]
        states = []
        for packed in (True, False):
            scheme = _scheme(name)
            node = ClassifierNode(
                0, value, scheme, k=3, quantization=QUANT, packed=packed, validate=True
            )
            incoming = [
                Collection(summary=scheme.val_to_summary(v), quanta=1)
                for v in incoming_values
            ]
            node.receive(incoming)
            states.append(_state(node))
            # Rule 2: one-quantum collections can never survive alone when
            # anything else is present to merge with.
            assert len(node.classification) <= 3
        assert states[0] == states[1]


class TestKEqualsOne:
    @pytest.mark.parametrize("name", SCHEME_NAMES)
    def test_everything_merges_to_one_collection(self, name):
        rng = np.random.default_rng(9)
        value = _value(name, rng)
        incoming_values = [_value(name, rng) for _ in range(3)]
        states = []
        for packed in (True, False):
            scheme = _scheme(name)
            node = ClassifierNode(
                0, value, scheme, k=1, quantization=QUANT, packed=packed, validate=True
            )
            incoming = [
                Collection(summary=scheme.val_to_summary(v), quanta=int(QUANT.unit))
                for v in incoming_values
            ]
            node.receive(incoming)
            states.append(_state(node))
            assert len(node.classification) == 1
            total = QUANT.unit * (1 + len(incoming_values))
            assert node.classification[0].quanta == total
        assert states[0] == states[1]

    def test_k_one_gossip_stays_single(self):
        """Two k=1 nodes exchanging messages always hold one collection."""
        rng = np.random.default_rng(10)
        scheme = GaussianMixtureScheme(seed=0)
        nodes = [
            ClassifierNode(
                i, rng.normal(size=2), scheme, k=1, quantization=QUANT, packed=True
            )
            for i in range(2)
        ]
        for _ in range(6):
            payload = nodes[0].make_message()
            if payload:
                nodes[1].receive(payload)
            payload = nodes[1].make_message()
            if payload:
                nodes[0].receive(payload)
            assert all(len(node.classification) == 1 for node in nodes)
