"""Fixed-bin histogram summaries (the related-work comparator)."""

import numpy as np
import pytest

from repro.core.collection import Collection
from repro.core.scheme import validate_partition
from repro.core.weights import Quantization
from repro.schemes.histogram import HistogramScheme

LATTICE = Quantization(16)


class TestConstruction:
    def test_edges(self):
        scheme = HistogramScheme(low=0.0, high=10.0, bins=5)
        assert np.allclose(scheme.edges, [0, 2, 4, 6, 8, 10])

    def test_rejects_inverted_range(self):
        with pytest.raises(ValueError):
            HistogramScheme(low=5.0, high=1.0)

    def test_rejects_single_bin(self):
        with pytest.raises(ValueError):
            HistogramScheme(low=0.0, high=1.0, bins=1)


class TestValToSummary:
    def test_one_hot(self):
        scheme = HistogramScheme(low=0.0, high=10.0, bins=5)
        summary = scheme.val_to_summary(3.0)
        assert summary.tolist() == [0, 1, 0, 0, 0]
        assert summary.sum() == 1.0

    def test_below_range_clamped_to_first_bin(self):
        scheme = HistogramScheme(low=0.0, high=10.0, bins=5)
        assert scheme.val_to_summary(-100.0)[0] == 1.0

    def test_above_range_clamped_to_last_bin(self):
        scheme = HistogramScheme(low=0.0, high=10.0, bins=5)
        assert scheme.val_to_summary(100.0)[-1] == 1.0

    def test_boundary_value_in_upper_bin(self):
        scheme = HistogramScheme(low=0.0, high=10.0, bins=5)
        assert scheme.val_to_summary(10.0)[-1] == 1.0

    def test_vector_input_uses_first_component(self):
        scheme = HistogramScheme(low=0.0, high=10.0, bins=5)
        assert np.allclose(scheme.val_to_summary(np.array([3.0])), scheme.val_to_summary(3.0))


class TestMerge:
    def test_weighted_proportions(self):
        scheme = HistogramScheme(low=0.0, high=10.0, bins=5)
        a = scheme.val_to_summary(1.0)  # bin 0
        b = scheme.val_to_summary(9.0)  # bin 4
        merged = scheme.merge_set([(a, 3.0), (b, 1.0)])
        assert merged[0] == pytest.approx(0.75)
        assert merged[4] == pytest.approx(0.25)
        assert merged.sum() == pytest.approx(1.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            HistogramScheme(low=0.0, high=1.0).merge_set([])


class TestDistance:
    def test_total_variation_bounds(self):
        scheme = HistogramScheme(low=0.0, high=10.0, bins=5)
        a = scheme.val_to_summary(1.0)
        b = scheme.val_to_summary(9.0)
        assert scheme.distance(a, a) == 0.0
        assert scheme.distance(a, b) == 1.0  # disjoint support

    def test_partial_overlap(self):
        scheme = HistogramScheme(low=0.0, high=10.0, bins=5)
        a = scheme.val_to_summary(1.0)
        mixed = scheme.merge_set([(a, 1.0), (scheme.val_to_summary(9.0), 1.0)])
        assert scheme.distance(a, mixed) == pytest.approx(0.5)


class TestPartition:
    def test_respects_rules(self):
        scheme = HistogramScheme(low=0.0, high=10.0, bins=5)
        collections = [
            Collection(summary=scheme.val_to_summary(v), quanta=q)
            for v, q in [(1.0, 16), (1.5, 16), (9.0, 16), (8.5, 1)]
        ]
        groups = scheme.partition(collections, k=2, quantization=LATTICE)
        validate_partition(groups, collections, 2, LATTICE)


class TestMeanEstimate:
    def test_midpoint_mean(self):
        scheme = HistogramScheme(low=0.0, high=10.0, bins=5)
        summary = scheme.val_to_summary(3.0)  # bin 1: midpoint 3.0
        assert scheme.mean_estimate(summary) == pytest.approx(3.0)

    def test_mixed_mean(self):
        scheme = HistogramScheme(low=0.0, high=10.0, bins=5)
        merged = scheme.merge_set(
            [(scheme.val_to_summary(1.0), 1.0), (scheme.val_to_summary(9.0), 1.0)]
        )
        assert scheme.mean_estimate(merged) == pytest.approx(5.0)
