"""The diagonal-covariance Gaussian scheme (lightweight-sensor variant)."""

import numpy as np
import pytest

from repro.core.collection import Collection
from repro.core.scheme import validate_partition
from repro.core.weights import Quantization
from repro.network.topology import complete
from repro.protocols.classification import build_classification_network
from repro.schemes.diagonal import DiagonalGaussianScheme, diagonalize
from repro.schemes.gaussian import GaussianSummary, summary_from_value
from repro.schemes.gm import GaussianMixtureScheme

LATTICE = Quantization(16)


class TestDiagonalize:
    def test_zeros_off_diagonal(self):
        summary = GaussianSummary(mean=[0.0, 0.0], cov=[[1.0, 0.8], [0.8, 2.0]])
        projected = diagonalize(summary)
        assert projected.cov[0, 1] == 0.0
        assert projected.cov[0, 0] == 1.0
        assert projected.cov[1, 1] == 2.0


class TestSummaryFunctions:
    def test_val_to_summary_zero_cov(self):
        scheme = DiagonalGaussianScheme()
        summary = scheme.val_to_summary([3.0, 4.0])
        assert np.allclose(summary.cov, 0.0)

    def test_merge_keeps_diagonal_family(self):
        scheme = DiagonalGaussianScheme()
        a = GaussianSummary(mean=[0.0, 0.0], cov=np.diag([1.0, 2.0]))
        b = GaussianSummary(mean=[4.0, 0.0], cov=np.diag([0.5, 1.0]))
        merged = scheme.merge_set([(a, 1.0), (b, 1.0)])
        assert merged.cov[0, 1] == 0.0

    def test_merge_per_dimension_moments_exact(self):
        """Diagonal moment matching equals 1-D moment matching per axis.

        This is why R4 holds exactly within the diagonal family.
        """
        scheme = DiagonalGaussianScheme()
        merged = scheme.merge_set(
            [(summary_from_value([0.0, 10.0]), 1.0), (summary_from_value([4.0, 20.0]), 3.0)]
        )
        # x: mean 3, var 0.25*9 + 0.75*1 = 3.  y: mean 17.5, var 18.75.
        assert merged.mean[0] == pytest.approx(3.0)
        assert merged.cov[0, 0] == pytest.approx(3.0)
        assert merged.mean[1] == pytest.approx(17.5)
        assert merged.cov[1, 1] == pytest.approx(0.25 * 56.25 + 0.75 * 6.25)

    def test_distance_matches_full_scheme(self):
        diagonal = DiagonalGaussianScheme()
        full = GaussianMixtureScheme()
        a = GaussianSummary(mean=[0.0, 0.0], cov=np.eye(2))
        b = GaussianSummary(mean=[3.0, 4.0], cov=np.eye(2))
        assert diagonal.distance(a, b) == full.distance(a, b) == pytest.approx(5.0)


class TestPartition:
    def test_respects_rules(self):
        scheme = DiagonalGaussianScheme(seed=0)
        collections = [
            Collection(summary=summary_from_value([0.0, 0.0]), quanta=16),
            Collection(summary=summary_from_value([0.2, 0.1]), quanta=16),
            Collection(summary=summary_from_value([9.0, 9.0]), quanta=16),
            Collection(summary=summary_from_value([9.3, 8.7]), quanta=1),
        ]
        groups = scheme.partition(collections, k=2, quantization=LATTICE)
        validate_partition(groups, collections, 2, LATTICE)
        groups = sorted(sorted(g) for g in groups)
        assert groups == [[0, 1], [2, 3]]


class TestEndToEnd:
    def test_converges_like_full_scheme(self):
        rng = np.random.default_rng(5)
        values = np.vstack(
            [rng.normal([0, 0], 0.5, size=(12, 2)), rng.normal([7, 7], 0.5, size=(12, 2))]
        )
        engine, nodes = build_classification_network(
            values, DiagonalGaussianScheme(seed=5), k=2, graph=complete(24), seed=5
        )
        engine.run(35)
        classification = nodes[0].classification
        assert len(classification) == 2
        means = sorted(np.asarray(c.summary.mean).tolist() for c in classification)
        assert np.allclose(means[0], [0, 0], atol=0.5)
        assert np.allclose(means[1], [7, 7], atol=0.5)
        for collection in classification:
            assert collection.summary.cov[0, 1] == 0.0  # stays diagonal
