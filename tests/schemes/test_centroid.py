"""The centroids instantiation (Algorithm 2)."""

import numpy as np
import pytest

from repro.core.collection import Collection
from repro.core.scheme import validate_partition
from repro.core.weights import Quantization
from repro.schemes.centroid import CentroidScheme, greedy_closest_pair_partition

LATTICE = Quantization(16)


def collections_at(positions, quantas):
    return [
        Collection(summary=np.asarray(p, dtype=float), quanta=q)
        for p, q in zip(positions, quantas)
    ]


class TestValToSummary:
    def test_identity_on_vectors(self):
        scheme = CentroidScheme()
        assert np.allclose(scheme.val_to_summary([1.0, 2.0]), [1.0, 2.0])

    def test_scalar_promoted_to_vector(self):
        scheme = CentroidScheme()
        summary = scheme.val_to_summary(3.0)
        assert summary.shape == (1,)

    def test_rejects_matrix_values(self):
        with pytest.raises(ValueError):
            CentroidScheme().val_to_summary(np.zeros((2, 2)))


class TestMergeSet:
    def test_weighted_average(self):
        scheme = CentroidScheme()
        merged = scheme.merge_set([(np.array([0.0]), 1.0), (np.array([6.0]), 2.0)])
        assert merged[0] == pytest.approx(4.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            CentroidScheme().merge_set([])

    def test_rejects_zero_total_weight(self):
        with pytest.raises(ValueError):
            CentroidScheme().merge_set([(np.array([0.0]), 0.0)])


class TestDistance:
    def test_l2(self):
        scheme = CentroidScheme()
        assert scheme.distance(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == 5.0

    def test_zero_for_identical(self):
        scheme = CentroidScheme()
        assert scheme.distance(np.array([1.0]), np.array([1.0])) == 0.0


class TestPartition:
    def test_respects_k_bound(self):
        scheme = CentroidScheme()
        collections = collections_at([[0], [1], [10], [11], [20]], [16] * 5)
        groups = scheme.partition(collections, k=2, quantization=LATTICE)
        validate_partition(groups, collections, 2, LATTICE)
        assert len(groups) <= 2

    def test_merges_closest_pairs_first(self):
        scheme = CentroidScheme()
        collections = collections_at([[0.0], [0.5], [100.0]], [16] * 3)
        groups = scheme.partition(collections, k=2, quantization=LATTICE)
        groups = sorted(sorted(g) for g in groups)
        assert groups == [[0, 1], [2]]

    def test_no_merge_needed_below_k(self):
        scheme = CentroidScheme()
        collections = collections_at([[0.0], [50.0]], [16, 16])
        groups = scheme.partition(collections, k=4, quantization=LATTICE)
        assert sorted(sorted(g) for g in groups) == [[0], [1]]

    def test_minimum_weight_collection_always_merged(self):
        scheme = CentroidScheme()
        # The weight-q collection sits far from everything, but rule 2
        # still forces it into some group.
        collections = collections_at([[0.0], [1.0], [1000.0]], [16, 16, 1])
        groups = scheme.partition(collections, k=3, quantization=LATTICE)
        validate_partition(groups, collections, 3, LATTICE)
        for group in groups:
            if 2 in group:
                assert len(group) >= 2

    def test_single_collection_passthrough(self):
        scheme = CentroidScheme()
        collections = collections_at([[0.0]], [1])
        groups = scheme.partition(collections, k=2, quantization=LATTICE)
        assert groups == [[0]]


class TestGreedyPartitionFunction:
    def test_merged_groups_tracked_by_weighted_centroid(self):
        # Three points: 0 and 2 merge into centroid 1; then 1 vs 10 stays.
        positions = np.array([[0.0], [2.0], [10.0]])
        weights = np.array([1.0, 1.0, 1.0])
        groups = greedy_closest_pair_partition(
            positions, weights, [16, 16, 16], k=2, quantization=LATTICE
        )
        assert sorted(sorted(g) for g in groups) == [[0, 1], [2]]

    def test_rejects_empty_input(self):
        with pytest.raises(ValueError):
            greedy_closest_pair_partition(
                np.zeros((0, 1)), np.zeros(0), [], k=2, quantization=LATTICE
            )

    def test_k_one_merges_all(self):
        positions = np.array([[0.0], [5.0], [100.0]])
        groups = greedy_closest_pair_partition(
            positions, np.ones(3), [16] * 3, k=1, quantization=LATTICE
        )
        assert sorted(groups[0]) == [0, 1, 2]
