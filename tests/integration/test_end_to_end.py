"""End-to-end distributed classification: the Definition 4 guarantee.

All nodes take inputs, gossip, and must converge to a *common*
classification of the complete input set — across schemes and topologies,
with exact system-wide weight conservation throughout.
"""

import numpy as np
import pytest

from repro.core.convergence import classification_distance, disagreement
from repro.core.weights import Quantization
from repro.ml.kmeans import weighted_kmeans
from repro.network import topology
from repro.protocols.classification import build_classification_network
from repro.schemes.centroid import CentroidScheme
from repro.schemes.gm import GaussianMixtureScheme

from tests.conftest import two_cluster_values

N = 24


def converge(values, scheme, k, graph, rounds, seed=0, **kwargs):
    engine, nodes = build_classification_network(
        values, scheme, k=k, graph=graph, seed=seed, **kwargs
    )
    engine.run(rounds)
    return engine, nodes


class TestCommonClassification:
    @pytest.mark.parametrize(
        "graph_builder,rounds",
        [
            (lambda: topology.complete(N), 40),
            (lambda: topology.ring(N), 2500),
            (lambda: topology.grid(4, 6), 800),
            (lambda: topology.watts_strogatz(N, k=4, seed=1), 400),
        ],
        ids=["complete", "ring", "grid", "small_world"],
    )
    def test_gm_scheme_all_nodes_agree(self, graph_builder, rounds):
        values = two_cluster_values(N, seed=1)
        scheme = GaussianMixtureScheme(seed=1)
        _, nodes = converge(values, scheme, k=2, graph=graph_builder(), rounds=rounds)
        assert disagreement(nodes, scheme) < 0.05

    def test_centroid_scheme_agreement(self):
        values = two_cluster_values(N, seed=2)
        scheme = CentroidScheme()
        _, nodes = converge(values, scheme, k=2, graph=topology.complete(N), rounds=40)
        assert disagreement(nodes, scheme) < 1e-3

    def test_classification_reflects_true_clusters(self):
        values = two_cluster_values(N, seed=3)
        scheme = GaussianMixtureScheme(seed=3)
        _, nodes = converge(values, scheme, k=2, graph=topology.complete(N), rounds=40)
        classification = nodes[0].classification
        means = sorted(
            np.asarray(collection.summary.mean).tolist()
            for collection in classification
        )
        assert np.allclose(means[0], [0, 0], atol=0.5)
        assert np.allclose(means[1], [8, 8], atol=0.5)
        # Balanced clusters: half the weight in each collection.
        assert np.allclose(classification.relative_weights(), 0.5, atol=0.05)

    def test_agreement_with_centralized_kmeans(self):
        """The distributed centroid classification lands on the same
        cluster means as centralised k-means over all inputs."""
        values = two_cluster_values(N, seed=4)
        scheme = CentroidScheme()
        _, nodes = converge(values, scheme, k=2, graph=topology.complete(N), rounds=40)
        central = weighted_kmeans(values, 2, np.random.default_rng(0))
        distributed = sorted(
            np.asarray(collection.summary).tolist() for collection in nodes[0].classification
        )
        centralized = sorted(central.centroids.tolist())
        for got, want in zip(distributed, centralized):
            assert np.allclose(got, want, atol=0.25)


class TestConservation:
    def test_total_weight_invariant_every_round(self):
        values = two_cluster_values(N, seed=5)
        engine, nodes = build_classification_network(
            values, GaussianMixtureScheme(seed=5), k=2, graph=topology.complete(N), seed=5
        )
        expected = N * Quantization().unit
        for _ in range(30):
            engine.run_round()
            assert sum(node.total_quanta for node in nodes) == expected

    def test_weight_lost_only_to_crashes(self):
        values = two_cluster_values(N, seed=6)
        engine, nodes = build_classification_network(
            values, GaussianMixtureScheme(seed=6), k=2, graph=topology.complete(N), seed=6
        )
        engine.run(5)
        engine.crash(3)
        engine.run(10)
        live_quanta = sum(
            nodes[node_id].total_quanta for node_id in engine.live_nodes
        )
        # Whatever the survivors hold plus what died with node 3 and what
        # was dropped in transit accounts exactly for the initial total.
        assert live_quanta <= N * Quantization().unit
        assert live_quanta > 0


class TestGossipVariants:
    @pytest.mark.parametrize("variant", ["push", "pull", "pushpull"])
    def test_all_variants_converge(self, variant):
        values = two_cluster_values(N, seed=7)
        scheme = GaussianMixtureScheme(seed=7)
        _, nodes = converge(
            values, scheme, k=2, graph=topology.complete(N), rounds=50, variant=variant
        )
        assert disagreement(nodes, scheme) < 0.05


class TestDeterminism:
    def test_identical_seeds_identical_runs(self):
        values = two_cluster_values(N, seed=8)
        runs = []
        for _ in range(2):
            scheme = GaussianMixtureScheme(seed=8)
            _, nodes = converge(values, scheme, k=2, graph=topology.complete(N), rounds=15, seed=8)
            runs.append(nodes)
        for node_a, node_b in zip(*runs):
            distance = classification_distance(
                node_a.classification, node_b.classification, GaussianMixtureScheme(seed=8)
            )
            assert distance == pytest.approx(0.0, abs=1e-12)
