"""Edge configurations: extreme but legal parameter corners.

The paper's model allows any connected topology (including two nodes),
any k >= 1, and any value dimension; these tests pin the corners the
mainline experiments never visit.
"""

import numpy as np
import pytest

from repro.core import ClassifierNode, Quantization, disagreement
from repro.network.topology import complete, line
from repro.protocols.classification import build_classification_network
from repro.schemes.centroid import CentroidScheme
from repro.schemes.gm import GaussianMixtureScheme


class TestTinyNetworks:
    def test_two_nodes_on_a_line(self):
        values = np.array([[0.0], [10.0]])
        scheme = CentroidScheme()
        engine, nodes = build_classification_network(
            values, scheme, k=2, graph=line(2), seed=0
        )
        engine.run(30)
        # Both nodes converge to the same two-collection classification.
        assert disagreement(nodes, scheme) < 1e-6
        summaries = sorted(float(c.summary[0]) for c in nodes[0].classification)
        assert summaries == pytest.approx([0.0, 10.0])

    def test_single_node_is_trivially_converged(self):
        node = ClassifierNode(0, np.array([5.0]), CentroidScheme(), k=3)
        # A node with no peers just holds its own value forever.
        assert len(node.classification) == 1
        assert np.allclose(node.classification[0].summary, [5.0])


class TestKOne:
    def test_k1_gm_collapses_to_global_moments(self):
        """k = 1 forces everything into one Gaussian: the global moments."""
        rng = np.random.default_rng(3)
        values = rng.normal(2.0, 1.5, size=(20, 1))
        scheme = GaussianMixtureScheme(seed=3)
        engine, nodes = build_classification_network(
            values, scheme, k=1, graph=complete(20), seed=3
        )
        engine.run(40)
        summary = nodes[0].classification[0].summary
        # Convergence is asymptotic: after 40 rounds the residual weight
        # imbalance is ~1e-5 relative, so compare at that resolution.
        assert summary.mean[0] == pytest.approx(float(values.mean()), abs=1e-4)
        centered = values - values.mean()
        assert summary.cov[0, 0] == pytest.approx(
            float((centered**2).mean()), abs=1e-4
        )


class TestHigherDimensions:
    def test_three_dimensional_values(self):
        rng = np.random.default_rng(4)
        values = np.vstack(
            [rng.normal([0, 0, 0], 0.4, size=(8, 3)), rng.normal([5, 5, 5], 0.4, size=(8, 3))]
        )
        scheme = GaussianMixtureScheme(seed=4)
        engine, nodes = build_classification_network(
            values, scheme, k=2, graph=complete(16), seed=4
        )
        engine.run(30)
        classification = nodes[0].classification
        assert len(classification) == 2
        assert classification[0].summary.dimension == 3

    def test_one_dimensional_values(self):
        values = np.linspace(0, 1, 10)[:, None]
        scheme = CentroidScheme()
        engine, nodes = build_classification_network(
            values, scheme, k=1, graph=complete(10), seed=5
        )
        engine.run(25)
        assert nodes[0].classification[0].summary[0] == pytest.approx(0.5, abs=1e-6)


class TestCoarseLattices:
    def test_single_quantum_per_node_still_runs(self):
        """q = 1 (one quantum per whole value): nothing is ever sendable,
        so every node keeps exactly its own value — degenerate but legal."""
        values = np.array([[0.0], [1.0], [2.0]])
        scheme = CentroidScheme()
        engine, nodes = build_classification_network(
            values, scheme, k=2, graph=complete(3), seed=6,
            quantization=Quantization(1),
        )
        engine.run(10)
        assert engine.metrics.messages_sent == 0
        for i, node in enumerate(nodes):
            assert np.allclose(node.classification[0].summary, values[i])

    def test_two_quanta_lattice_converges_roughly(self):
        values = np.array([[0.0], [0.5], [8.0], [8.5]])
        scheme = CentroidScheme()
        engine, nodes = build_classification_network(
            values, scheme, k=2, graph=complete(4), seed=7,
            quantization=Quantization(4),
        )
        engine.run(20)
        total = sum(node.total_quanta for node in nodes)
        assert total == 16  # conservation even on a 4-quanta lattice
