"""Fuzzing the protocol: random operation sequences preserve all invariants.

Hypothesis drives arbitrary interleavings of the two protocol operations
(split-and-send, receive-and-merge) across a small set of nodes, with
messages delayed arbitrarily (held in a pending pool and delivered in any
order).  This simulates the adversarial scheduler of the asynchronous
model more aggressively than the engines do.  After every single
operation the suite checks:

- system-wide weight conservation (nodes + pending messages), exactly;
- the k bound on every node's classification;
- positive weights everywhere;
- Lemma 1 for the centroid scheme: every collection's summary equals the
  weighted average of the inputs its auxiliary vector says it contains.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.node import ClassifierNode
from repro.core.weights import Quantization
from repro.schemes.centroid import CentroidScheme
from repro.schemes.gm import GaussianMixtureScheme

N_NODES = 5
K = 2
VALUES = np.array([[0.0, 0.0], [1.0, 2.0], [8.0, 8.0], [9.0, 7.0], [0.5, 1.0]])

# An operation is (kind, node, target): kind 0 = node sends (message goes
# to the pending pool, addressed to target), kind 1 = deliver the oldest
# pending message addressed to target (no-op if none).
operations = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1),
        st.integers(min_value=0, max_value=N_NODES - 1),
        st.integers(min_value=0, max_value=N_NODES - 1),
    ),
    min_size=1,
    max_size=60,
)


def build_nodes(scheme):
    quantization = Quantization(1 << 16)
    return [
        ClassifierNode(
            i,
            VALUES[i],
            scheme,
            k=K,
            quantization=quantization,
            track_aux=True,
            n_inputs=N_NODES,
            validate=True,
        )
        for i in range(N_NODES)
    ], quantization


def run_schedule(nodes, schedule):
    """Apply the operation sequence; returns the pending-message pool."""
    pending = []  # list of (destination, payload)
    for kind, node, target in schedule:
        if kind == 0:
            payload = nodes[node].make_message()
            if payload:
                pending.append((target, payload))
        else:
            for index, (destination, payload) in enumerate(pending):
                if destination == target:
                    nodes[target].receive(payload)
                    del pending[index]
                    break
    return pending


def total_quanta(nodes, pending):
    total = sum(node.total_quanta for node in nodes)
    for _, payload in pending:
        total += sum(collection.quanta for collection in payload)
    return total


class TestFuzzCentroid:
    @given(operations)
    @settings(max_examples=40, deadline=None)
    def test_invariants_hold_under_any_schedule(self, schedule):
        scheme = CentroidScheme()
        nodes, quantization = build_nodes(scheme)
        pending = run_schedule(nodes, schedule)

        # Exact conservation over the global pool.
        assert total_quanta(nodes, pending) == N_NODES * quantization.unit

        for node in nodes:
            classification = node.classification
            assert len(classification) <= K
            for collection in classification:
                assert collection.quanta > 0
                # Lemma 1: summary == f(aux).
                weights = collection.aux.components
                expected = (weights[:, None] * VALUES).sum(axis=0) / weights.sum()
                assert np.allclose(collection.summary, expected, atol=1e-6)

    @given(operations)
    @settings(max_examples=20, deadline=None)
    def test_aux_provenance_complete(self, schedule):
        """Every input's weight is fully accounted for across the pool."""
        scheme = CentroidScheme()
        nodes, quantization = build_nodes(scheme)
        pending = run_schedule(nodes, schedule)
        per_input = np.zeros(N_NODES)
        for node in nodes:
            for collection in node.classification:
                per_input += collection.aux.components
        for _, payload in pending:
            for collection in payload:
                per_input += collection.aux.components
        assert np.allclose(per_input, quantization.unit, rtol=1e-9)


class TestFuzzGaussian:
    @given(operations)
    @settings(max_examples=15, deadline=None)
    def test_gm_scheme_survives_any_schedule(self, schedule):
        scheme = GaussianMixtureScheme(seed=0)
        nodes, quantization = build_nodes(scheme)
        pending = run_schedule(nodes, schedule)
        assert total_quanta(nodes, pending) == N_NODES * quantization.unit
        for node in nodes:
            assert len(node.classification) <= K
            for collection in node.classification:
                cov = collection.summary.cov
                # Covariances stay symmetric positive semidefinite.
                assert np.allclose(cov, cov.T, atol=1e-9)
                assert np.linalg.eigvalsh(cov).min() > -1e-8
