"""Telemetry must be a pure observer: byte-identical runs on or off.

The determinism contract of the v2 observability layer: attaching a
:class:`TimeSeriesRecorder` (or the ambient :func:`telemetry` scope)
never consumes kernel randomness and never mutates protocol state, so
the simulation trajectory — node summaries, quanta, transport counters,
event stream — is exactly the same with telemetry on or off, on both
schedulers.
"""

import json

import numpy as np
import pytest

from repro.network.topology import complete
from repro.obs import (
    JsonlSink,
    RingBufferSink,
    TelemetryConfig,
    TimeSeriesRecorder,
    telemetry,
)
from repro.protocols.classification import build_classification_network
from repro.schemes.gm import GaussianMixtureScheme

CENTERS = np.array([[0.0, 0.0], [8.0, 8.0], [-8.0, 8.0]])


def _values(n: int, seed: int = 7) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return CENTERS[rng.integers(0, 3, size=n)]


def _build(n: int, engine: str, **kwargs):
    return build_classification_network(
        _values(n),
        GaussianMixtureScheme(seed=0),
        k=3,
        graph=complete(n),
        seed=5,
        engine=engine,
        **kwargs,
    )


def _full_state(nodes, live):
    return {
        i: [
            (c.quanta, c.summary.mean.tobytes(), c.summary.cov.tobytes())
            for c in nodes[i].classification
        ]
        for i in sorted(live)
    }


class TestStateParity:
    @pytest.mark.parametrize("engine", ["rounds", "async"])
    def test_final_state_identical_telemetry_on_or_off(self, engine):
        plain, plain_nodes = _build(16, engine)
        recorder = TimeSeriesRecorder()
        observed, observed_nodes = _build(16, engine, telemetry=recorder)
        rounds = 20
        assert plain.run(rounds) == observed.run(rounds)
        assert len(recorder) == rounds  # telemetry actually ran
        assert _full_state(plain_nodes, plain.live_nodes) == (
            _full_state(observed_nodes, observed.live_nodes)
        )
        assert plain.metrics.messages_sent == observed.metrics.messages_sent
        assert plain.metrics.payload_items_sent == (
            observed.metrics.payload_items_sent
        )
        # The kernels' RNGs advanced identically: the next draw matches.
        assert plain.rng.random() == observed.rng.random()

    @pytest.mark.parametrize("engine", ["rounds", "async"])
    def test_ambient_scope_parity(self, engine):
        plain, plain_nodes = _build(12, engine)
        with telemetry(TelemetryConfig(stride=3)) as hub:
            observed, observed_nodes = _build(12, engine)
        plain.run(10)
        observed.run(10)
        assert hub.rows()  # the scope recorded something
        assert _full_state(plain_nodes, plain.live_nodes) == (
            _full_state(observed_nodes, observed.live_nodes)
        )


class TestTraceParity:
    @pytest.mark.parametrize("engine", ["rounds", "async"])
    def test_traces_differ_only_by_telemetry_events(self, engine, tmp_path):
        """With telemetry on, the JSONL trace is the telemetry-off trace
        plus interleaved ``telemetry`` lines — nothing else moves."""
        paths = {}
        for label, recorder in (
            ("off", None),
            ("on", TimeSeriesRecorder()),
        ):
            path = tmp_path / f"{label}.jsonl"
            with JsonlSink(str(path)) as sink:
                kernel, _ = _build(
                    12, engine, telemetry=recorder, event_sink=sink
                )
                kernel.run(8)
            paths[label] = path

        def filtered(path):
            return [
                line
                for line in path.read_text().splitlines()
                if json.loads(line)["kind"] != "telemetry"
            ]

        assert filtered(paths["on"]) == filtered(paths["off"])
        telemetry_lines = [
            line
            for line in paths["on"].read_text().splitlines()
            if json.loads(line)["kind"] == "telemetry"
        ]
        assert len(telemetry_lines) == 8


class TestQuiescenceFinalSnapshot:
    def test_early_exit_emits_metrics_snapshot_and_flushes(self, tmp_path):
        path = tmp_path / "quiesce.jsonl"
        sink = JsonlSink(str(path))
        kernel, _ = _build(
            16, "rounds", stop_on_quiescence=True, event_sink=sink
        )
        executed = kernel.run(120)
        assert executed < 120  # it did exit early
        # Flushed, not just buffered: the trace is complete on disk while
        # the sink is still open.
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        sink.close()
        final = lines[-1]
        assert final["kind"] == "metrics"
        assert final["extra"]["rounds"] == kernel.metrics.rounds
        assert final["extra"]["messages_sent"] == kernel.metrics.messages_sent
        # Determinism gates compare cache-on/off traces: no cache counters.
        assert not any(key.startswith("cache") for key in final["extra"])

    def test_full_run_has_no_metrics_snapshot(self):
        sink = RingBufferSink()
        kernel, _ = _build(10, "rounds", event_sink=sink)
        kernel.run(5)
        assert sink.of_kind("metrics") == []


class TestRoundAlignment:
    @pytest.mark.parametrize("engine", ["rounds", "async"])
    def test_round_close_and_telemetry_share_the_round_counter(self, engine):
        """Satellite: both schedulers emit the unified 0-based
        round-equivalent counter, and telemetry samples align with it."""
        sink = RingBufferSink()
        recorder = TimeSeriesRecorder(TelemetryConfig(stride=2))
        kernel, _ = _build(10, engine, telemetry=recorder, event_sink=sink)
        kernel.run(7)
        closes = sink.of_kind("round_close")
        assert [e.round for e in closes] == list(range(7))
        assert [e.extra["epoch"] for e in closes] == list(range(7))
        assert [s["round"] for s in recorder.samples] == [0, 2, 4, 6]
        samples = sink.of_kind("telemetry")
        assert [e.round for e in samples] == [0, 2, 4, 6]
