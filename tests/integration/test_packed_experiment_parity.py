"""Experiment-level packed/object parity: identical figure outputs.

The acceptance bar for the packed hot path is not unit-level equality but
*experiment-level* byte parity: a figure run with ``REPRO_PACKED=1`` must
produce exactly the same result object as the same run with the packed
path disabled, on both gossip engines.  Figure 4 exercises the full
receive/partition/merge pipeline (GM scheme, crashes, both protocols);
Figure 1 is a purely local computation and pins the trivial case.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import Scale
from repro.experiments.fig1 import run_fig1
from repro.experiments.fig4 import run_fig4

SMOKE = Scale(name="smoke", n_nodes=40, max_rounds=12, deltas=(10.0,))


def _fig4(monkeypatch, packed: str, engine: str):
    monkeypatch.setenv("REPRO_PACKED", packed)
    scale = SMOKE.with_overrides(engine=engine)
    return run_fig4(scale, delta=10.0, rounds=10, seed=4)


@pytest.mark.slow
@pytest.mark.parametrize("engine", ["rounds", "async"])
def test_fig4_output_identical_under_packed_toggle(monkeypatch, engine):
    packed = _fig4(monkeypatch, "1", engine)
    plain = _fig4(monkeypatch, "0", engine)
    # Fig4Result is tuples of floats: == here means bit-identical traces.
    assert packed == plain
    # Guard against a vacuous pass (e.g. all-zero error traces).
    assert any(error > 0 for error in packed.robust_no_crashes)


def test_fig1_output_identical_under_packed_toggle(monkeypatch):
    monkeypatch.setenv("REPRO_PACKED", "1")
    packed = run_fig1()
    monkeypatch.setenv("REPRO_PACKED", "0")
    plain = run_fig1()
    assert packed.new_value.tobytes() == plain.new_value.tobytes()
    assert packed.centroid_choice == plain.centroid_choice
    assert packed.gaussian_choice == plain.gaussian_choice
    assert packed.distance_to_a == plain.distance_to_a
    assert packed.distance_to_b == plain.distance_to_b
    assert packed.log_density_a == plain.log_density_a
    assert packed.log_density_b == plain.log_density_b
