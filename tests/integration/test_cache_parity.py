"""Byte-identity of cached runs: final states and full event traces.

The merge cache's contract is that a cache hit — memo replay or
certified no-op — produces exactly what the uncached pipeline would
have produced.  These tests pin the contract at the level CI's
determinism gate relies on: per-node (quanta, summary) states across
every fingerprinting scheme and both schedulers, and complete event
traces once the cache's own ``cache`` events and the wall-clock
``span`` events are filtered out.
"""

import numpy as np
import pytest

from repro.network.topology import complete
from repro.network.trace import RunTracer
from repro.obs.events import RingBufferSink
from repro.protocols.classification import build_classification_network
from repro.schemes.centroid import CentroidScheme
from repro.schemes.diagonal import DiagonalGaussianScheme
from repro.schemes.gm import GaussianMixtureScheme
from repro.schemes.histogram import HistogramScheme

N = 18
ROUNDS = 20


def _values(scheme_name: str, n: int = N) -> np.ndarray:
    rng = np.random.default_rng(3)
    if scheme_name == "histogram":
        return rng.uniform(0.0, 10.0, size=n)
    half = n // 2
    return np.vstack(
        [
            rng.normal([0.0, 0.0], 0.6, size=(half, 2)),
            rng.normal([8.0, 8.0], 0.6, size=(n - half, 2)),
        ]
    )


def _scheme(scheme_name: str):
    if scheme_name == "gm":
        return GaussianMixtureScheme(seed=0)
    if scheme_name == "diagonal":
        return DiagonalGaussianScheme(seed=0)
    if scheme_name == "centroid":
        return CentroidScheme()
    return HistogramScheme(low=0.0, high=10.0, bins=24)


def _run(scheme_name: str, engine: str, merge_cache: bool, sink=None):
    scheme = _scheme(scheme_name)
    kernel, nodes = build_classification_network(
        _values(scheme_name),
        scheme,
        k=2,
        graph=complete(N),
        seed=9,
        engine=engine,
        merge_cache=merge_cache,
        event_sink=sink,
    )
    kernel.run(ROUNDS)
    return kernel, nodes, scheme


def _state(nodes, scheme):
    # A digest is a content hash of the packed summary bytes, so digest
    # equality in collection order *is* byte equality of the state.
    return [
        [(c.quanta, scheme.summary_digest(c.summary)) for c in node.classification]
        for node in nodes
    ]


class TestStateParity:
    @pytest.mark.parametrize("engine", ["rounds", "async"])
    @pytest.mark.parametrize("scheme_name", ["gm", "diagonal", "centroid", "histogram"])
    def test_cache_on_equals_cache_off(self, scheme_name, engine):
        _, on_nodes, scheme = _run(scheme_name, engine, merge_cache=True)
        _, off_nodes, _ = _run(scheme_name, engine, merge_cache=False)
        assert _state(on_nodes, scheme) == _state(off_nodes, scheme)


class TestTraceParity:
    """The determinism gate: identical traces modulo cache/span events."""

    @pytest.mark.parametrize("engine", ["rounds", "async"])
    def test_traced_run_identical_modulo_cache_events(self, engine):
        traces = {}
        for merge_cache in (True, False):
            sink = RingBufferSink(capacity=1 << 20)
            kernel, nodes, _ = _run("gm", engine, merge_cache, sink=sink)
            traces[merge_cache] = [
                event.to_json_dict()
                for event in sink.events
                if event.kind not in ("cache", "span")
            ]
        assert traces[True] == traces[False]
        assert len(traces[True]) > 0

    def test_probe_series_identical(self):
        # Convergence probes compute floats from node state; byte-equal
        # states must give bit-equal probe values.
        series = {}
        for merge_cache in (True, False):
            scheme = _scheme("gm")
            kernel, nodes = build_classification_network(
                _values("gm"),
                scheme,
                k=2,
                graph=complete(N),
                seed=9,
                merge_cache=merge_cache,
            )
            tracer = RunTracer(
                {
                    "max_quanta": lambda e: max(
                        nodes[i].total_quanta for i in e.live_nodes
                    )
                }
            )
            kernel.run(ROUNDS, per_round=tracer)
            series[merge_cache] = [
                record.probes["max_quanta"] for record in tracer.records
            ]
        assert series[True] == series[False]
