"""Runs under crash failures stay well-defined and useful (Figure 4's claim)."""

import numpy as np
import pytest

from repro.analysis.accuracy import average_error
from repro.analysis.outliers import robust_mean
from repro.core.convergence import disagreement
from repro.data.generators import outlier_scenario
from repro.network.failures import BernoulliCrashes, ScheduledCrashes
from repro.network.topology import complete
from repro.protocols.classification import build_classification_network
from repro.protocols.push_sum import build_push_sum_network
from repro.schemes.gm import GaussianMixtureScheme

from tests.conftest import two_cluster_values

N = 40


class TestCrashSurvival:
    def test_survivors_still_converge(self):
        values = two_cluster_values(N, seed=1)
        scheme = GaussianMixtureScheme(seed=1)
        engine, nodes = build_classification_network(
            values,
            scheme,
            k=2,
            graph=complete(N),
            seed=1,
            failure_model=BernoulliCrashes(0.05, min_survivors=8),
        )
        engine.run(40)
        live = [nodes[node_id] for node_id in engine.live_nodes]
        assert len(live) >= 8
        assert disagreement(live, scheme) < 0.2

    def test_crash_of_collection_holder_loses_only_its_share(self):
        """Crashing nodes removes weight but never corrupts survivors."""
        values = two_cluster_values(N, seed=2)
        scheme = GaussianMixtureScheme(seed=2)
        engine, nodes = build_classification_network(
            values, scheme, k=2, graph=complete(N), seed=2,
            failure_model=ScheduledCrashes({3: [0, 1, 2, 3, 4]}),
        )
        engine.run(30)
        live = [nodes[node_id] for node_id in engine.live_nodes]
        total_live = sum(node.total_quanta for node in live)
        assert 0 < total_live <= N * nodes[0].quantization.unit
        # Survivors still recover the two cluster means.
        means = sorted(
            np.asarray(c.summary.mean).tolist() for c in live[0].classification
        )
        assert np.allclose(means[0], [0, 0], atol=0.6)
        assert np.allclose(means[1], [8, 8], atol=0.6)


class TestRobustAverageUnderCrashes:
    def test_outlier_removal_survives_crashes(self):
        scenario = outlier_scenario(10.0, n_good=76, n_outliers=4, seed=3)
        scheme = GaussianMixtureScheme(seed=3)
        engine, nodes = build_classification_network(
            scenario.values,
            scheme,
            k=2,
            graph=complete(scenario.n),
            seed=3,
            failure_model=BernoulliCrashes(0.05, min_survivors=10),
        )
        engine.run(30)
        live = [nodes[node_id] for node_id in engine.live_nodes]
        robust = average_error(
            (robust_mean(node.classification) for node in live), scenario.true_mean
        )

        push_engine, push_nodes = build_push_sum_network(
            scenario.values,
            complete(scenario.n),
            seed=3,
            failure_model=BernoulliCrashes(0.05, min_survivors=10),
        )
        push_engine.run(30)
        regular = average_error(
            (push_nodes[node_id].estimate for node_id in push_engine.live_nodes),
            scenario.true_mean,
        )
        assert robust < regular
