"""Asynchronous end-to-end runs: the convergence theorem's own setting."""

import numpy as np
import pytest

from repro.core import ClassifierNode, Quantization
from repro.core.convergence import disagreement
from repro.network.asynchronous import AsyncEngine
from repro.network.simulator import RoundRobinSelector
from repro.network.topology import complete, ring
from repro.protocols.classification import ClassificationProtocol
from repro.schemes.gm import GaussianMixtureScheme

from tests.conftest import two_cluster_values

N = 16


def build_async(values, scheme, k, graph, seed=0, **kwargs):
    nodes = [
        ClassifierNode(i, values[i], scheme, k=k, quantization=Quantization())
        for i in range(len(values))
    ]
    engine = AsyncEngine(
        graph,
        {i: ClassificationProtocol(nodes[i]) for i in range(len(values))},
        seed=seed,
        **kwargs,
    )
    return engine, nodes


class TestAsynchronousConvergence:
    def test_converges_on_complete_graph(self):
        values = two_cluster_values(N, seed=1)
        scheme = GaussianMixtureScheme(seed=1)
        engine, nodes = build_async(values, scheme, k=2, graph=complete(N), seed=1)
        engine.run_until(200.0)
        assert disagreement(nodes, scheme) < 0.05

    def test_converges_on_ring_with_long_delays(self):
        values = two_cluster_values(N, seed=2)
        scheme = GaussianMixtureScheme(seed=2)
        engine, nodes = build_async(
            values, scheme, k=2, graph=ring(N), seed=2, delay_range=(0.5, 5.0)
        )
        engine.run_until(1500.0)
        assert disagreement(nodes, scheme) < 0.2

    def test_round_robin_fairness_default(self):
        values = two_cluster_values(N, seed=3)
        scheme = GaussianMixtureScheme(seed=3)
        engine, _ = build_async(values, scheme, k=2, graph=ring(N), seed=3)
        assert isinstance(engine.selector, RoundRobinSelector)


class TestGlobalPoolInvariants:
    def test_weight_conserved_including_in_flight(self):
        """Section 6.1's pool: collections at nodes AND inside channels."""
        values = two_cluster_values(N, seed=4)
        scheme = GaussianMixtureScheme(seed=4)
        engine, nodes = build_async(
            values, scheme, k=2, graph=complete(N), seed=4, delay_range=(0.5, 4.0)
        )
        expected = N * Quantization().unit
        for checkpoint in [5.0, 20.0, 80.0]:
            engine.run_until(checkpoint)
            total = sum(node.total_quanta for node in nodes)
            for payload in engine.in_flight_payloads():
                total += sum(collection.quanta for collection in payload)
            assert total == expected

    def test_collection_count_bounded_by_k(self):
        values = two_cluster_values(N, seed=5)
        scheme = GaussianMixtureScheme(seed=5)
        engine, nodes = build_async(values, scheme, k=3, graph=complete(N), seed=5)
        engine.run_until(100.0)
        assert all(len(node.classification) <= 3 for node in nodes)
