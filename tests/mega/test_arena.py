"""Arena and interner mechanics: construction, interning, slicing.

The arena's whole design rests on one bijection — within an interner, a
dense id ⟺ a packed-row byte pattern ⟺ a content digest — so these
tests pin the byte-exactness of interning round trips, the validity of
shared ids across ``take_nodes`` slices, and the conservation invariants
(`counts` bounded by ``k``, row quanta summing to the unit).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.weights import Quantization
from repro.mega.arena import NetworkArena, SummaryInterner
from repro.schemes.centroid import CentroidScheme
from repro.schemes.gm import GaussianMixtureScheme


@pytest.fixture
def values() -> np.ndarray:
    return np.random.default_rng(5).normal(size=(20, 2))


def test_from_values_shapes_and_invariants(values):
    scheme = GaussianMixtureScheme(seed=0)
    arena = NetworkArena.from_values(values, scheme, k=3)
    assert arena.n == 20
    assert arena.counts.tolist() == [1] * 20
    assert arena.quanta.shape == (20, 3)
    assert arena.ids.shape == (20, 3)
    assert arena.columns["mean"].shape == (20, 3, 2)
    assert arena.columns["cov"].shape == (20, 3, 2, 2)
    unit = Quantization().unit
    assert arena.total_quanta() == 20 * unit
    assert bool(np.all(arena.quanta[:, 0] == unit))


def test_from_values_initial_summaries_roundtrip(values):
    scheme = GaussianMixtureScheme(seed=0)
    arena = NetworkArena.from_values(values, scheme, k=3)
    for node in range(arena.n):
        (collection,) = arena.node_collections(node)
        np.testing.assert_array_equal(collection.summary.mean, values[node])
        np.testing.assert_array_equal(collection.summary.cov, np.zeros((2, 2)))
        assert collection.digest == scheme.summary_digest(collection.summary)


def test_duplicate_values_share_ids():
    values = np.array([[1.0, 2.0], [3.0, 4.0], [1.0, 2.0], [1.0, 2.0]])
    arena = NetworkArena.from_values(values, CentroidScheme(), k=2)
    ids = arena.ids[:, 0]
    assert ids[0] == ids[2] == ids[3]
    assert ids[0] != ids[1]
    assert len(arena.interner) == 2


def test_interner_roundtrip_bytes_exact():
    scheme = GaussianMixtureScheme(seed=0)
    rng = np.random.default_rng(9)
    packed = {
        "mean": rng.normal(size=(6, 2)),
        "cov": rng.normal(size=(6, 2, 2)),
    }
    interner = SummaryInterner(scheme, {"mean": (2,), "cov": (2, 2)})
    ids = interner.intern_rows(packed, 6)
    for row, summary_id in enumerate(ids):
        decoded = interner.row_arrays(int(summary_id))
        np.testing.assert_array_equal(decoded["mean"], packed["mean"][row])
        np.testing.assert_array_equal(decoded["cov"], packed["cov"][row])
        # The intern key is the sorted-column byte concatenation.
        expected = (
            np.ascontiguousarray(packed["cov"][row]).tobytes()
            + np.ascontiguousarray(packed["mean"][row]).tobytes()
        )
        assert interner.key_bytes(int(summary_id)) == expected


def test_interner_single_row_matches_bulk():
    scheme = CentroidScheme()
    rng = np.random.default_rng(2)
    packed = {"position": rng.normal(size=(4, 3))}
    bulk = SummaryInterner(scheme, {"position": (3,)})
    bulk_ids = bulk.intern_rows(packed, 4)
    single = SummaryInterner(scheme, {"position": (3,)})
    single_ids = [single.intern_row(packed, row) for row in range(4)]
    assert bulk_ids.tolist() == single_ids
    for a, b in zip(bulk_ids, single_ids):
        assert bulk.key_bytes(int(a)) == single.key_bytes(int(b))


def test_interner_shape_mismatch_rejected():
    interner = SummaryInterner(CentroidScheme(), {"position": (3,)})
    with pytest.raises(ValueError, match="shape"):
        interner.intern_rows({"position": np.zeros((4, 2))}, 4)


def test_take_nodes_shares_interner_and_owns_slabs(values):
    arena = NetworkArena.from_values(values, CentroidScheme(), k=2)
    part = arena.take_nodes(5, 12)
    assert part.n == 7
    assert part.interner is arena.interner
    # Ids remain valid against the shared interner.
    for node in range(part.n):
        assert part.state_digests(node) == arena.state_digests(5 + node)
    # Slabs are owned: mutating the slice never touches the parent.
    part.quanta[:] = 0
    part.columns["position"][:] = -1.0
    assert arena.total_quanta() == 20 * Quantization().unit
    assert not np.any(arena.columns["position"] == -1.0)


def test_unsupported_scheme_rejected():
    class NoPacked(CentroidScheme):
        @property
        def supports_packed(self) -> bool:
            return False

    with pytest.raises(ValueError, match="packed"):
        NetworkArena.from_values(np.zeros((4, 2)), NoPacked(), k=2)


def test_zero_values_rejected():
    with pytest.raises(ValueError, match="zero values"):
        NetworkArena.from_values(np.zeros((0, 2)), CentroidScheme(), k=2)
