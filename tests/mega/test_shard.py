"""The sharded engine: parity, quiescence, fault tolerance.

Sharding must be observationally invisible — ``shards=1`` equals
``shards=4`` equals the single-process engine byte for byte, because the
pairing draw is replicated (not communicated) and bundles are applied in
ascending source-shard order, which reconstructs the transport's global
ascending-sender delivery order.  Parity and crash tests run on both
exchange tiers (shared-memory slabs and the pickled-pipe fallback); the
fault-tolerance tests use the deterministic crash knobs
(``REPRO_MEGA_CRASH_SHARD``/``_FLAG``) to kill a worker at exact
protocol points — including mid-``deliver``, which exercises the slab
snapshot/replay path — and require byte-identical results after
recovery.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mega import ArenaEngine, ShardedArenaEngine
from repro.mega.shard import CRASH_FLAG_ENV, CRASH_SHARD_ENV
from repro.schemes.centroid import CentroidScheme
from repro.schemes.gm import GaussianMixtureScheme

N = 60
ROUNDS = 10

EXCHANGES = pytest.mark.parametrize(
    "use_shm", [True, False], ids=["shm", "pipe"]
)


@pytest.fixture
def values() -> np.ndarray:
    return np.random.default_rng(3).normal(size=(N, 2))


def _single_states(values, scheme, k, seed, rounds, **kwargs):
    engine = ArenaEngine(values, scheme, k, seed=seed, **kwargs)
    engine.run(rounds)
    return [engine.state_digests(node) for node in range(N)]


@EXCHANGES
@pytest.mark.parametrize("shards", [1, 3, 4])
def test_sharded_matches_single_process(values, shards, use_shm):
    expected = _single_states(values, GaussianMixtureScheme(seed=0), 3, 0, ROUNDS, use_cache=True)
    with ShardedArenaEngine(
        values, GaussianMixtureScheme(seed=0), 3, seed=0, shards=shards,
        use_cache=True, use_shm=use_shm,
    ) as engine:
        engine.run(ROUNDS)
        arena = engine.collect()
        assert [arena.state_digests(node) for node in range(N)] == expected


@EXCHANGES
def test_sharded_matches_single_on_ring(values, use_shm):
    expected = _single_states(
        values, CentroidScheme(), 3, 5, ROUNDS, topology="ring", use_cache=True
    )
    with ShardedArenaEngine(
        values, CentroidScheme(), 3, seed=5, shards=3, topology="ring",
        use_cache=True, use_shm=use_shm,
    ) as engine:
        engine.run(ROUNDS)
        arena = engine.collect()
        assert [arena.state_digests(node) for node in range(N)] == expected


def test_sharded_quiescence_matches_single():
    centers = np.array([[0.0, 0.0], [8.0, 8.0], [-8.0, 8.0]])
    values = centers[np.random.default_rng(11).integers(0, 3, size=200)]
    single = ArenaEngine(values, GaussianMixtureScheme(seed=0), 3, seed=11, use_cache=True)
    executed_single = single.run(100, stop_on_quiescence=True)
    with ShardedArenaEngine(
        values, GaussianMixtureScheme(seed=0), 3, seed=11, shards=3, use_cache=True
    ) as engine:
        executed_sharded = engine.run(100, stop_on_quiescence=True)
        assert executed_sharded == executed_single
        assert engine.quiescent_at == single.quiescent_at
        arena = engine.collect()
        assert [arena.state_digests(i) for i in range(200)] == [
            single.state_digests(i) for i in range(200)
        ]


def test_sharded_stats_match_single(values):
    single = ArenaEngine(values, GaussianMixtureScheme(seed=0), 3, seed=0, use_cache=True)
    single.run(ROUNDS)
    with ShardedArenaEngine(
        values, GaussianMixtureScheme(seed=0), 3, seed=0, shards=3, use_cache=True
    ) as engine:
        engine.run(ROUNDS)
        stats = engine.stats
        # Messages and receives are structural (fixed by the shared
        # draw), so they match exactly; cache-hit split differs because
        # each worker dedups only within its shard.
        assert stats.rounds == single.stats.rounds
        assert stats.messages == single.stats.messages
        assert stats.receivers == single.stats.receivers
        engine.collect()


def test_shard_solver_stats_cover_all_receives(values):
    with ShardedArenaEngine(
        values, GaussianMixtureScheme(seed=0), 3, seed=0, shards=3, use_cache=True
    ) as engine:
        engine.run(ROUNDS)
        per_shard = engine.shard_solver_stats()
        assert len(per_shard) == 3
        assert sum(entry["receivers"] for entry in per_shard) == engine.stats.receivers
        assert sum(entry["full_solves"] for entry in per_shard) == engine.stats.full_solves
        for entry in per_shard:
            assert entry["cache_hits"] == entry["receivers"] - entry["full_solves"]
            assert 0.0 <= entry["solver_hit_rate"] <= 1.0
        engine.collect()


@EXCHANGES
@pytest.mark.parametrize("crash_at", ["1:0", "1:4", "0:9", "1:4:deliver"])
def test_worker_crash_recovers_with_identical_state(
    values, crash_at, use_shm, monkeypatch, tmp_path
):
    expected = _single_states(values, GaussianMixtureScheme(seed=0), 3, 0, ROUNDS, use_cache=True)
    flag = tmp_path / "crash.flag"
    monkeypatch.setenv(CRASH_SHARD_ENV, crash_at)
    monkeypatch.setenv(CRASH_FLAG_ENV, str(flag))
    with ShardedArenaEngine(
        values,
        GaussianMixtureScheme(seed=0),
        3,
        seed=0,
        shards=3,
        use_cache=True,
        use_shm=use_shm,
        checkpoint_every=4,
        worker_timeout=120.0,
    ) as engine:
        engine.run(ROUNDS)
        arena = engine.collect()
        assert flag.exists(), "the crash was never injected — the test is vacuous"
        assert engine._restarts == 1
        assert [arena.state_digests(node) for node in range(N)] == expected


def test_restart_budget_enforced(values, monkeypatch, tmp_path):
    monkeypatch.setenv(CRASH_SHARD_ENV, "0:2")
    monkeypatch.setenv(CRASH_FLAG_ENV, str(tmp_path / "crash.flag"))
    engine = ShardedArenaEngine(
        values,
        GaussianMixtureScheme(seed=0),
        3,
        seed=0,
        shards=2,
        max_restarts=0,
        worker_timeout=120.0,
    )
    try:
        with pytest.raises(RuntimeError, match="restart budget"):
            engine.run(ROUNDS)
    finally:
        engine.close()


def test_run_after_collect_rejected(values):
    engine = ShardedArenaEngine(values, CentroidScheme(), 3, seed=0, shards=2)
    engine.run(2)
    engine.collect()
    with pytest.raises(RuntimeError, match="collected"):
        engine.run_round()


def test_invalid_shard_counts(values):
    with pytest.raises(ValueError, match="shards"):
        ShardedArenaEngine(values, CentroidScheme(), 3, shards=0)
    with pytest.raises(ValueError, match=f"cannot split {N} nodes"):
        ShardedArenaEngine(values, CentroidScheme(), 3, shards=N + 1)
