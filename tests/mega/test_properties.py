"""Property suite: pack → shard → exchange → unpack is lossless and order-stable.

The sharded engine moves classification state through three byte-level
transformations — packing values into columns, slicing slabs across
shard boundaries, and re-interning rows that crossed a process boundary
(the checkpoint/assembly path uses exactly the same machinery).  For
arbitrary finite inputs, every one of those trips must return byte-for-
byte identical summaries in the original order, for all four schemes;
any drift would silently break the engine's parity contract.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.weights import Quantization
from repro.mega.arena import NetworkArena, SummaryInterner
from repro.mega.shard import _arena_from_slabs
from repro.schemes.centroid import CentroidScheme
from repro.schemes.diagonal import DiagonalGaussianScheme
from repro.schemes.gm import GaussianMixtureScheme
from repro.schemes.histogram import HistogramScheme

finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e6, max_value=1e6
)

SCHEME_FACTORIES = {
    "gm": (lambda: GaussianMixtureScheme(seed=0), 2),
    "centroid": (lambda: CentroidScheme(), 2),
    "diagonal": (lambda: DiagonalGaussianScheme(seed=0), 2),
    "histogram": (lambda: HistogramScheme(low=-1e6, high=1e6, bins=16), 1),
}


@st.composite
def value_sets(draw):
    """(scheme name, values array) with scheme-appropriate dimension."""
    name = draw(st.sampled_from(sorted(SCHEME_FACTORIES)))
    _, dimension = SCHEME_FACTORIES[name]
    count = draw(st.integers(min_value=2, max_value=24))
    rows = draw(
        st.lists(
            st.tuples(*([finite_floats] * dimension)),
            min_size=count,
            max_size=count,
        )
    )
    return name, np.asarray(rows, dtype=float)


@given(value_sets())
@settings(max_examples=40, deadline=None)
def test_pack_values_matches_scalar_packing(case):
    """Batch packing must be byte-identical to the per-summary path."""
    name, values = case
    scheme = SCHEME_FACTORIES[name][0]()
    batch = scheme.pack_values(values)
    scalar = scheme.pack_summaries([scheme.val_to_summary(value) for value in values])
    assert sorted(batch) == sorted(scalar)
    for column in batch:
        np.testing.assert_array_equal(batch[column], scalar[column])


@given(value_sets())
@settings(max_examples=40, deadline=None)
def test_pack_unpack_roundtrip_is_lossless(case):
    """unpack_summary(pack_values(v))[i] repacks to the same bytes, per row."""
    name, values = case
    scheme = SCHEME_FACTORIES[name][0]()
    packed = scheme.pack_values(values)
    for row in range(len(values)):
        summary = scheme.unpack_summary(packed, row)
        repacked = scheme.pack_summaries([summary])
        for column in packed:
            assert repacked[column][0].tobytes() == packed[column][row].tobytes()


@given(value_sets(), st.integers(min_value=1, max_value=5))
@settings(max_examples=40, deadline=None)
def test_shard_slice_and_reassemble_preserves_state(case, shards):
    """take_nodes slices, slab concat, re-intern: original state, original order."""
    name, values = case
    scheme = SCHEME_FACTORIES[name][0]()
    arena = NetworkArena.from_values(values, scheme, k=3)
    shards = min(shards, arena.n)
    boundaries = np.concatenate(
        [[0], np.cumsum([len(chunk) for chunk in np.array_split(np.arange(arena.n), shards)])]
    )
    slices = [
        arena.take_nodes(int(boundaries[i]), int(boundaries[i + 1])) for i in range(shards)
    ]
    # The exchange: each slice's slabs cross a process boundary as bare
    # bytes and are re-interned on the far side (shard.py's assembly path).
    rebuilt = _arena_from_slabs(
        scheme,
        arena.k,
        Quantization(),
        np.concatenate([part.counts for part in slices]),
        np.concatenate([part.quanta for part in slices]),
        {
            name_: np.concatenate([part.columns[name_] for part in slices])
            for name_ in arena.columns
        },
    )
    assert rebuilt.n == arena.n
    for node in range(arena.n):
        assert rebuilt.state_digests(node) == arena.state_digests(node)


@given(value_sets())
@settings(max_examples=40, deadline=None)
def test_intern_rows_is_injective_on_content(case):
    """Same bytes ⟺ same id; distinct bytes ⟺ distinct ids — and the
    decode returns the exact bytes, so interning crosses process
    boundaries losslessly."""
    name, values = case
    scheme = SCHEME_FACTORIES[name][0]()
    packed = scheme.pack_values(values)
    interner = SummaryInterner(scheme, {k: v.shape[1:] for k, v in packed.items()})
    ids = interner.intern_rows(packed, len(values))
    again = interner.intern_rows(packed, len(values))
    np.testing.assert_array_equal(ids, again)
    keys = {}
    for row, summary_id in enumerate(ids.tolist()):
        key = b"".join(
            np.ascontiguousarray(packed[name_][row]).tobytes()
            for name_ in sorted(packed)
        )
        if key in keys:
            assert summary_id == keys[key]
        else:
            keys[key] = summary_id
    assert len(set(keys.values())) == len(keys)
    for summary_id in set(ids.tolist()):
        decoded = interner.row_arrays(summary_id)
        assert interner.intern_rows(
            {k: v[None, ...] for k, v in decoded.items()}, 1
        )[0] == summary_id
