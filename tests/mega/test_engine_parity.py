"""Byte-parity: the arena engine IS the per-node kernel, batched.

The contract (ISSUE 8): at overlapping sizes, same seeds, all four
schemes, the arena engine's classifications equal the per-node
``SimulationKernel``'s byte for byte — same summary digests, same
quanta, same collection order.  Everything the arena does differently
(vectorised pairing, slab routing, problem dedup, certified no-ops over
interned ids) must be observationally invisible.

These tests compare the full ordered ``(digest, quanta)`` state of every
node, which catches ordering bugs an unordered comparison would forgive
(the EM seed order and greedy partition order are deterministic and must
be reproduced exactly).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mega import ArenaEngine
from repro.network.simulator import RoundRobinSelector
from repro.network.topology import TOPOLOGY_BUILDERS
from repro.protocols.classification import build_classification_network
from repro.schemes.centroid import CentroidScheme
from repro.schemes.diagonal import DiagonalGaussianScheme
from repro.schemes.gm import GaussianMixtureScheme
from repro.schemes.histogram import HistogramScheme

N = 60
ROUNDS = 12


def _values(dimension: int) -> np.ndarray:
    return np.random.default_rng(3).normal(size=(N, dimension))


def _kernel_states(values, scheme, k, seed, rounds, topology="complete", selector=None):
    graph = TOPOLOGY_BUILDERS[topology](len(values))
    kernel, nodes = build_classification_network(
        values, scheme, k, graph=graph, seed=seed, selector=selector, merge_cache=True
    )
    kernel.run(rounds)
    digest = scheme.summary_digest
    return [
        tuple((digest(c.summary), c.quanta) for c in node.classification)
        for node in nodes
    ]


def _engine_states(engine: ArenaEngine):
    return [engine.state_digests(node) for node in range(engine.arena.n)]


SCHEMES = [
    pytest.param(lambda: GaussianMixtureScheme(seed=0), 3, 2, id="gm"),
    pytest.param(lambda: CentroidScheme(), 3, 2, id="centroid"),
    pytest.param(lambda: DiagonalGaussianScheme(seed=0), 2, 2, id="diagonal"),
    pytest.param(lambda: HistogramScheme(low=-4.0, high=4.0, bins=12), 3, 1, id="histogram"),
]


@pytest.mark.parametrize("make_scheme, k, dimension", SCHEMES)
@pytest.mark.parametrize("seed", [0, 7])
def test_engine_matches_kernel(make_scheme, k, dimension, seed):
    values = _values(dimension)
    expected = _kernel_states(values, make_scheme(), k, seed, ROUNDS)
    engine = ArenaEngine(values, make_scheme(), k, seed=seed, use_cache=True)
    engine.run(ROUNDS)
    assert _engine_states(engine) == expected


@pytest.mark.parametrize("topology", ["ring", "star", "line"])
def test_engine_matches_kernel_on_sparse_topologies(topology):
    values = _values(2)
    scheme_a, scheme_b = GaussianMixtureScheme(seed=0), GaussianMixtureScheme(seed=0)
    expected = _kernel_states(values, scheme_a, 3, 5, ROUNDS, topology=topology)
    engine = ArenaEngine(values, scheme_b, 3, seed=5, topology=topology, use_cache=True)
    engine.run(ROUNDS)
    assert _engine_states(engine) == expected


def test_engine_matches_kernel_with_round_robin_selector():
    # RoundRobinSelector is stateful per node, so the engine must fall
    # back to the kernel's scalar draw loop — and still match exactly.
    values = _values(2)
    expected = _kernel_states(
        values, CentroidScheme(), 3, 2, ROUNDS, selector=RoundRobinSelector()
    )
    engine = ArenaEngine(
        values, CentroidScheme(), 3, seed=2, selector=RoundRobinSelector(), use_cache=True
    )
    engine.run(ROUNDS)
    assert _engine_states(engine) == expected


def test_engine_matches_kernel_without_merge_cache():
    values = _values(2)
    graph = TOPOLOGY_BUILDERS["complete"](N)
    kernel, nodes = build_classification_network(
        values, GaussianMixtureScheme(seed=0), 3, graph=graph, seed=4, merge_cache=False
    )
    kernel.run(ROUNDS)
    scheme = GaussianMixtureScheme(seed=0)
    engine = ArenaEngine(values, scheme, 3, seed=4, use_cache=False)
    engine.run(ROUNDS)
    digest = scheme.summary_digest
    expected = [
        tuple((digest(c.summary), c.quanta) for c in node.classification)
        for node in nodes
    ]
    assert _engine_states(engine) == expected


def test_quanta_conserved_across_rounds():
    values = _values(2)
    engine = ArenaEngine(values, GaussianMixtureScheme(seed=0), 3, seed=0)
    total = engine.arena.total_quanta()
    for _ in range(5):
        engine.run_round()
        assert engine.arena.total_quanta() == total


def test_quiescence_on_discrete_values():
    centers = np.array([[0.0, 0.0], [8.0, 8.0], [-8.0, 8.0]])
    values = centers[np.random.default_rng(11).integers(0, 3, size=200)]
    engine = ArenaEngine(values, GaussianMixtureScheme(seed=0), 3, seed=11, use_cache=True)
    executed = engine.run(100, stop_on_quiescence=True)
    assert engine.quiescent
    assert engine.quiescent_at == executed < 100
    # Converged: every node holds the same summary multiset.
    reference = set(engine.arena.ids[0, : int(engine.arena.counts[0])].tolist())
    for node in range(engine.arena.n):
        count = int(engine.arena.counts[node])
        assert set(engine.arena.ids[node, :count].tolist()) == reference


def test_stats_account_for_every_receiver():
    values = _values(2)
    engine = ArenaEngine(values, GaussianMixtureScheme(seed=0), 3, seed=1, use_cache=True)
    engine.run(8)
    stats = engine.stats
    assert stats.rounds == 8
    assert stats.receivers > 0
    handled = (
        stats.memo_round_hits
        + stats.memo_lru_hits
        + stats.noop_hits
        + stats.fastpath_hits
        + stats.full_solves
    )
    # Every receiver either hit a memo or ran one of the solve paths.
    assert stats.memo_round_hits + stats.memo_lru_hits <= stats.receivers
    assert handled == stats.receivers


def test_pull_variant_rejected():
    with pytest.raises(ValueError, match="push"):
        ArenaEngine(_values(2), CentroidScheme(), 3, variant="pull")
