"""Slab pack/unpack and the shared-memory exchange lifecycle.

The slab layer has two independent contracts, tested separately:

* **Round-trip fidelity** (hypothesis): whatever rows a writer packs —
  empty outbox, a single row, an exact max-fill, any shape mix — the
  reader gets back bit-identical, through both the zero-copy view path
  and the ``copy=True`` snapshot path, and across the two buffers of a
  double-buffered segment.
* **Lifecycle hygiene**: every segment an engine creates is unlinked by
  ``close()``/``collect()``/context-exit — verified by re-attaching by
  name and requiring ``FileNotFoundError`` — and a mid-``__init__``
  failure never strands a half-created set.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.packed import (
    SLAB_HEADER_BYTES,
    read_payload_slab,
    slab_region_bytes,
    write_payload_slab,
)
from repro.mega import ShardedArenaEngine, SlabExchange, SlabExchangeSpec
from repro.schemes.centroid import CentroidScheme

#: Column layouts mirroring the real schemes: GM (mean + cov), diagonal
#: (mean + var), centroid/histogram-like single matrix, and a scalar
#: column exercising the ``shape=()`` degenerate case.
SPEC_VARIANTS = [
    [("cov", (2, 2)), ("mean", (2,))],
    [("mean", (3,)), ("var", (3,))],
    [("centroid", (2,))],
    [("weight", ())],
]


def _random_payload(rng: np.random.Generator, rows: int, column_specs):
    dest = rng.integers(0, 1 << 40, size=rows, dtype=np.int64)
    quanta = rng.integers(1, 1 << 30, size=rows, dtype=np.int64)
    columns = {
        name: rng.normal(size=(rows,) + tuple(shape))
        for name, shape in column_specs
    }
    return dest, quanta, columns


@settings(max_examples=60, deadline=None)
@given(
    spec_index=st.integers(0, len(SPEC_VARIANTS) - 1),
    capacity=st.integers(0, 24),
    data=st.data(),
)
def test_slab_round_trip(spec_index, capacity, data):
    column_specs = SPEC_VARIANTS[spec_index]
    rows = data.draw(st.integers(0, capacity))
    round_index = data.draw(st.integers(0, 1 << 40))
    seed = data.draw(st.integers(0, 2**32 - 1))
    rng = np.random.default_rng(seed)
    dest, quanta, columns = _random_payload(rng, rows, column_specs)

    row_floats = sum(int(np.prod(shape)) if shape else 1 for _, shape in column_specs)
    offset = data.draw(st.sampled_from([0, slab_region_bytes(capacity, row_floats)]))
    buf = bytearray(offset + slab_region_bytes(capacity, row_floats))

    write_payload_slab(
        buf, offset, capacity, round_index, dest, quanta, columns, column_specs
    )
    for copy in (False, True):
        got_round, got_rows, got_dest, got_quanta, got_columns = read_payload_slab(
            buf, offset, capacity, column_specs, copy=copy
        )
        assert got_round == round_index
        assert got_rows == rows
        np.testing.assert_array_equal(got_dest, dest)
        np.testing.assert_array_equal(got_quanta, quanta)
        assert set(got_columns) == {name for name, _ in column_specs}
        for name, shape in column_specs:
            assert got_columns[name].shape == (rows,) + tuple(shape)
            np.testing.assert_array_equal(got_columns[name], columns[name])


def test_slab_max_fill_and_overflow():
    column_specs = [("mean", (2,))]
    capacity = 8
    buf = bytearray(slab_region_bytes(capacity, 2))
    rng = np.random.default_rng(0)

    dest, quanta, columns = _random_payload(rng, capacity, column_specs)
    write_payload_slab(buf, 0, capacity, 3, dest, quanta, columns, column_specs)
    got_round, got_rows, got_dest, _, _ = read_payload_slab(
        buf, 0, capacity, column_specs
    )
    assert (got_round, got_rows) == (3, capacity)
    np.testing.assert_array_equal(got_dest, dest)

    dest, quanta, columns = _random_payload(rng, capacity + 1, column_specs)
    with pytest.raises(ValueError, match="slab overflow"):
        write_payload_slab(buf, 0, capacity, 4, dest, quanta, columns, column_specs)


def test_corrupt_header_rejected():
    column_specs = [("mean", (2,))]
    capacity = 4
    buf = bytearray(slab_region_bytes(capacity, 2))
    np.frombuffer(buf, dtype=np.int64, count=2)[0] = capacity + 7
    with pytest.raises(ValueError, match="corrupt slab header"):
        read_payload_slab(buf, 0, capacity, column_specs)


def _spec(shards: int = 3, shard_size: int = 5) -> SlabExchangeSpec:
    bounds = np.arange(shards + 1, dtype=np.int64) * shard_size
    return SlabExchangeSpec(bounds, 3, {"mean": (2,), "cov": (2, 2)}, "testtoken")


def test_spec_geometry():
    spec = _spec()
    assert spec.row_floats == 6
    assert spec.capacity(0) == 15
    assert spec.region_bytes(0) == SLAB_HEADER_BYTES + 15 * 8 * 8
    assert spec.segment_bytes(0) == 2 * spec.region_bytes(0)
    # Region indices skip the source's own slot.
    assert spec.region_offset(0, 1) == 0
    assert spec.region_offset(0, 2) == spec.region_bytes(0)
    assert spec.region_offset(2, 0) == 0
    assert spec.region_offset(2, 1) == spec.region_bytes(2)
    with pytest.raises(ValueError, match="no outbox region for itself"):
        spec.region_offset(1, 1)
    assert len(spec.segment_names()) == 2 * spec.shards


def test_exchange_double_buffer_round_trip():
    spec = _spec(shards=2, shard_size=4)
    exchange = SlabExchange(spec, create=True)
    try:
        rng = np.random.default_rng(7)
        # Two consecutive rounds land in opposite parities; writing
        # round r+1 must not disturb the still-readable round r.
        payloads = {}
        for round_index in (6, 7):
            dest, quanta, columns = _random_payload(rng, 3, spec.column_specs)
            payloads[round_index] = (dest, quanta, columns)
            exchange.write(0, round_index & 1, 1, round_index, dest, quanta, columns)
        for round_index in (6, 7):
            dest, quanta, columns = payloads[round_index]
            got_dest, got_quanta, got_columns = exchange.read(
                0, round_index & 1, 1, round_index, 3, copy=True
            )
            np.testing.assert_array_equal(got_dest, dest)
            np.testing.assert_array_equal(got_quanta, quanta)
            for name in got_columns:
                np.testing.assert_array_equal(got_columns[name], columns[name])
        with pytest.raises(RuntimeError, match="protocol violation"):
            exchange.read(0, 0, 1, round_index=99, rows=3)
    finally:
        exchange.destroy()
    for name in spec.segment_names():
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


def _assert_unlinked(names):
    assert names, "engine reported no segments — the leak guard is vacuous"
    for name in names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


def test_engine_close_releases_segments():
    values = np.random.default_rng(0).normal(size=(30, 2))
    engine = ShardedArenaEngine(values, CentroidScheme(), 3, seed=0, shards=3, use_shm=True)
    names = list(engine.segment_names)
    engine.run(3)
    engine.close()
    _assert_unlinked(names)


def test_engine_collect_and_context_exit_release_segments():
    values = np.random.default_rng(1).normal(size=(30, 2))
    with ShardedArenaEngine(
        values, CentroidScheme(), 3, seed=0, shards=2, use_shm=True
    ) as engine:
        names = list(engine.segment_names)
        engine.run(2)
        engine.collect()
    _assert_unlinked(names)


def test_engine_init_failure_leaves_no_segments(monkeypatch):
    values = np.random.default_rng(2).normal(size=(30, 2))
    created = []
    original = SlabExchange.__init__

    def tracking_init(self, spec, create):
        original(self, spec, create)
        if create:
            created.extend(self.segment_names)

    monkeypatch.setattr(SlabExchange, "__init__", tracking_init)
    monkeypatch.setattr(
        ShardedArenaEngine,
        "_spawn",
        lambda self, shard: (_ for _ in ()).throw(OSError("spawn failed")),
    )
    with pytest.raises(OSError, match="spawn failed"):
        ShardedArenaEngine(values, CentroidScheme(), 3, seed=0, shards=2, use_shm=True)
    _assert_unlinked(created)
