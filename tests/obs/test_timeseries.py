"""The per-round telemetry pipeline: recorder, hub, and ambient scope."""

import math

import numpy as np
import pytest

from repro.network.topology import complete, ring
from repro.obs import (
    RingBufferSink,
    TelemetryConfig,
    TelemetryHub,
    TimeSeriesRecorder,
    current_hub,
    telemetry,
)
from repro.protocols.classification import build_classification_network
from repro.protocols.push_sum import build_push_sum_network
from repro.schemes.centroid import CentroidScheme
from repro.schemes.gm import GaussianMixtureScheme


def small_network(n=8, seed=7, scheme=None, **kwargs):
    values = np.arange(n, dtype=float)[:, None]
    return build_classification_network(
        values,
        scheme if scheme is not None else CentroidScheme(),
        k=2,
        graph=complete(n),
        seed=seed,
        **kwargs,
    )


class TestTelemetryConfig:
    def test_defaults(self):
        config = TelemetryConfig()
        assert config.stride == 1
        assert config.max_samples == 100_000
        assert config.emit_events is True

    @pytest.mark.parametrize("stride", [0, -1])
    def test_stride_must_be_positive(self, stride):
        with pytest.raises(ValueError, match="stride"):
            TelemetryConfig(stride=stride)

    def test_max_samples_must_be_positive(self):
        with pytest.raises(ValueError, match="max_samples"):
            TelemetryConfig(max_samples=0)


class TestStrideSampling:
    def test_stride_one_samples_every_round(self):
        recorder = TimeSeriesRecorder()
        engine, _ = small_network(telemetry=recorder)
        engine.run(6)
        assert len(recorder) == 6
        assert [s["round"] for s in recorder.samples] == list(range(6))

    def test_stride_three_samples_every_third_round(self):
        recorder = TimeSeriesRecorder(TelemetryConfig(stride=3))
        engine, _ = small_network(telemetry=recorder)
        engine.run(10)
        assert [s["round"] for s in recorder.samples] == [0, 3, 6, 9]
        assert recorder.rounds_observed == 10
        assert recorder.rounds_sampled == 4

    def test_max_samples_bounds_memory(self):
        recorder = TimeSeriesRecorder(TelemetryConfig(max_samples=4))
        engine, _ = small_network(telemetry=recorder)
        engine.run(10)
        assert len(recorder) == 4
        # Oldest samples fall off the front.
        assert [s["round"] for s in recorder.samples] == [6, 7, 8, 9]

    def test_series_and_last(self):
        recorder = TimeSeriesRecorder()
        engine, _ = small_network(telemetry=recorder)
        engine.run(5)
        assert recorder.series("round") == [0, 1, 2, 3, 4]
        assert recorder.last()["round"] == 4

    def test_empty_recorder(self):
        recorder = TimeSeriesRecorder()
        assert recorder.last() is None
        assert recorder.samples == []
        assert recorder.series("round") == []


class TestConvergenceGauges:
    def test_distinct_fingerprints_reach_one_and_weight_is_conserved(self):
        """The fig4 acceptance shape: the convergence gauge falls to 1 at
        the fixpoint while total weight stays exactly constant."""
        rng = np.random.default_rng(11)
        centers = np.array([[0.0], [5.0], [10.0]])
        values = centers[rng.integers(0, 3, size=24)]
        recorder = TimeSeriesRecorder()
        engine, _ = build_classification_network(
            values, GaussianMixtureScheme(seed=11), k=3, graph=complete(24),
            seed=11, telemetry=recorder,
        )
        engine.run(15)
        fingerprints = recorder.series("distinct_fingerprints")
        assert fingerprints[0] > 1
        assert fingerprints[-1] == 1
        totals = set(recorder.series("total_quanta"))
        assert len(totals) == 1  # mass conservation, every single round
        assert recorder.last()["quiescent_fraction"] == 1.0

    def test_message_windows_are_deltas_not_totals(self):
        recorder = TimeSeriesRecorder()
        engine, _ = small_network(n=6, telemetry=recorder)
        engine.run(8)
        windows = recorder.series("messages_window")
        assert sum(windows) == engine.metrics.messages_sent
        # On a complete graph every live node sends once per round.
        assert all(w == 6 for w in windows)

    def test_bytes_window_uses_wire_codec(self):
        recorder = TimeSeriesRecorder()
        engine, _ = small_network(n=6, telemetry=recorder)
        engine.run(3)
        sizes = recorder.series("bytes_window")
        assert all(isinstance(size, int) and size > 0 for size in sizes)

    def test_push_sum_gauges_are_nan_not_crash(self):
        """Protocols without classifier nodes degrade to honest NaNs."""
        values = np.arange(8, dtype=float)[:, None]
        recorder = TimeSeriesRecorder()
        engine, _ = build_push_sum_network(
            values, complete(8), seed=1, telemetry=recorder
        )
        engine.run(4)
        assert len(recorder) == 4
        sample = recorder.last()
        assert math.isnan(sample["distinct_fingerprints"])
        assert math.isnan(sample["total_quanta"])
        # Transport counters still work: they come from NetworkMetrics.
        assert sample["messages_window"] > 0

    def test_cache_ratios_present_with_merge_cache(self):
        recorder = TimeSeriesRecorder()
        engine, _ = small_network(n=8, merge_cache=True, telemetry=recorder)
        engine.run(10)
        ratio = recorder.last()["cache_hit_ratio"]
        assert 0.0 <= ratio <= 1.0

    def test_cache_ratio_nan_without_cache(self):
        recorder = TimeSeriesRecorder()
        engine, _ = small_network(n=6, merge_cache=False, telemetry=recorder)
        engine.run(2)
        assert math.isnan(recorder.last()["cache_hit_ratio"])


class TestEventEmission:
    def test_samples_mirrored_as_telemetry_events(self):
        sink = RingBufferSink()
        recorder = TimeSeriesRecorder()
        engine, _ = small_network(telemetry=recorder, event_sink=sink)
        engine.run(5)
        events = sink.of_kind("telemetry")
        assert len(events) == 5
        assert [e.round for e in events] == [0, 1, 2, 3, 4]
        assert events[-1].extra["live"] == 8

    def test_emit_events_false_keeps_sink_clean(self):
        sink = RingBufferSink()
        recorder = TimeSeriesRecorder(TelemetryConfig(emit_events=False))
        engine, _ = small_network(telemetry=recorder, event_sink=sink)
        engine.run(5)
        assert sink.of_kind("telemetry") == []
        assert len(recorder) == 5  # still recorded, just not streamed


class TestAmbientScope:
    def test_kernels_pick_up_ambient_hub(self):
        with telemetry(TelemetryConfig(stride=2)) as hub:
            engine, _ = small_network()
            assert engine.telemetry is hub.recorders[0]
        engine.run(6)
        assert [s["round"] for s in hub.recorders[0].samples] == [0, 2, 4]

    def test_no_scope_means_no_recorder(self):
        engine, _ = small_network()
        assert engine.telemetry is None

    def test_explicit_recorder_wins_over_ambient(self):
        mine = TimeSeriesRecorder()
        with telemetry() as hub:
            engine, _ = small_network(telemetry=mine)
        assert engine.telemetry is mine
        assert hub.recorders == []

    def test_scopes_nest_and_restore(self):
        assert current_hub() is None
        with telemetry() as outer:
            assert current_hub() is outer
            with telemetry() as inner:
                assert current_hub() is inner
            assert current_hub() is outer
        assert current_hub() is None

    def test_hub_rows_tag_engine_ordinals(self):
        with telemetry() as hub:
            first, _ = small_network(seed=1)
            second, _ = small_network(seed=2, n=6)
        first.run(3)
        second.run(2)
        rows = hub.rows()
        assert len(rows) == 5
        assert sorted({row["engine"] for row in rows}) == [0, 1]
        assert [r["round"] for r in rows if r["engine"] == 1] == [0, 1]


class TestHub:
    def test_explicit_hub_reused(self):
        hub = TelemetryHub(TelemetryConfig(stride=5))
        with telemetry(hub=hub) as active:
            assert active is hub
            recorder = hub.new_recorder()
            assert recorder.config.stride == 5

    def test_ring_topology_also_converges_in_gauges(self):
        # Two exact value clusters: the fixpoint is a shared 2-summary set.
        values = np.array([[0.0]] * 5 + [[10.0]] * 5)
        recorder = TimeSeriesRecorder()
        engine, _ = build_classification_network(
            values, GaussianMixtureScheme(seed=3), k=2, graph=ring(10), seed=3,
            telemetry=recorder,
        )
        engine.run(60)
        assert recorder.series("distinct_fingerprints")[-1] == 1
