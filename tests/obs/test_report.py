"""The telemetry report CLI (python -m repro.obs.report)."""

import json

import numpy as np
import pytest

from repro.network.failures import ScheduledCrashes
from repro.network.topology import complete
from repro.network.trace import RunTracer
from repro.obs import JsonlSink
from repro.obs.report import load_events, main, render_report
from repro.protocols.push_sum import build_push_sum_network


@pytest.fixture
def crash_trace(tmp_path):
    """A small push-sum run with scheduled crashes, traced to JSONL."""
    path = tmp_path / "trace.jsonl"
    n = 12
    values = np.arange(n, dtype=float)[:, None]
    truth = float(values.mean())
    with JsonlSink(str(path)) as sink:
        engine, protocols = build_push_sum_network(
            values,
            complete(n),
            seed=3,
            failure_model=ScheduledCrashes({2: [0], 4: [7]}),
        )
        engine.event_sink = sink
        tracer = RunTracer(
            {
                "max_error": lambda e: max(
                    abs(protocols[i].estimate[0] - truth) for i in e.live_nodes
                )
            }
        )
        engine.run(10, per_round=tracer)
    return path, engine


class TestLoadEvents:
    def test_parses_all_lines(self, crash_trace):
        path, engine = crash_trace
        events = load_events(str(path))
        assert len(events) == len(path.read_text().splitlines())
        assert all("kind" in event for event in events)

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "gaps.jsonl"
        path.write_text('{"kind": "send"}\n\n{"kind": "crash", "node": 1}\n')
        assert [event["kind"] for event in load_events(str(path))] == ["send", "crash"]

    def test_invalid_json_names_the_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "send"}\nnot json\n')
        with pytest.raises(ValueError, match=r":2:"):
            load_events(str(path))

    def test_record_without_kind_rejected(self, tmp_path):
        path = tmp_path / "nokind.jsonl"
        path.write_text('{"node": 3}\n')
        with pytest.raises(ValueError, match="kind"):
            load_events(str(path))


class TestRenderReport:
    def test_empty_trace_renders(self):
        text = render_report([])
        assert "no events recorded" in text

    def test_census_counts_every_kind(self, crash_trace):
        path, engine = crash_trace
        text = render_report(load_events(str(path)))
        assert "Event census" in text
        assert "round_close" in text

    def test_message_complexity_matches_engine_metrics(self, crash_trace):
        path, engine = crash_trace
        events = load_events(str(path))
        sends = sum(1 for event in events if event["kind"] == "send")
        drops = sum(1 for event in events if event["kind"] == "drop")
        closes = [event for event in events if event["kind"] == "round_close"]
        assert sends == engine.metrics.messages_sent
        assert drops == engine.metrics.messages_dropped
        assert [event["extra"]["messages"] for event in closes] == (
            engine.metrics.per_round_messages
        )
        text = render_report(events)
        assert "Message complexity" in text
        assert "Per-round message counts" in text

    def test_crash_timeline_present(self, crash_trace):
        path, engine = crash_trace
        text = render_report(load_events(str(path)))
        assert "Crash timeline (2 crashes)" in text
        assert "round 2" in text and "round 4" in text

    def test_convergence_curve_from_probe_events(self, crash_trace):
        path, engine = crash_trace
        text = render_report(load_events(str(path)))
        assert "Convergence curves" in text
        assert "max_error" in text

    def test_cache_section_from_cache_events(self):
        events = [
            {"kind": "cache", "node": 1, "extra": {"path": "memo"}},
            {"kind": "cache", "node": 2, "extra": {"path": "noop"}},
            {"kind": "cache", "node": 5, "extra": {"path": "noop"}},
            {"kind": "cache", "round": 12, "extra": {"path": "quiescent", "streak": 3}},
            {"kind": "merge", "node": 1},
        ]
        text = render_report(events)
        assert "Merge cache" in text
        assert "memoised_receives" in text
        assert "certified_noop_receives" in text
        assert "quiescence_detected_at" in text
        assert "round 12" in text

    def test_cache_section_says_no_data_without_cache_events(self):
        text = render_report([{"kind": "send"}])
        cache_section = text.split("Merge cache", 1)[1]
        assert "(no data)" in cache_section.split("\n\n", 1)[0]

    def test_span_section_lists_slowest(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        records = [
            {"kind": "span", "extra": {"name": "em.fit", "duration": 0.5}},
            {"kind": "span", "extra": {"name": "em.fit", "duration": 0.1}},
            {"kind": "span", "extra": {"name": "engine.round", "duration": 0.2}},
        ]
        path.write_text("".join(json.dumps(record) + "\n" for record in records))
        text = render_report(load_events(str(path)), top=2)
        assert "Profiled spans" in text
        assert "Top 2 slowest spans" in text
        # em.fit totals 0.6s and must rank above engine.round's 0.2s.
        assert text.index("em.fit") < text.index("engine.round")


class TestDegenerateTraces:
    """Satellite coverage: empty, cache-less and crashed-early traces must
    render the full report skeleton with "(no data)" sections, never a
    KeyError."""

    SECTION_TITLES = [
        "Event census",
        "Message complexity",
        "Convergence time series",
        "Convergence curves",
        "EM iterations",
        "Partition fast path",
        "Merge cache",
        "Crash timeline",
        "Per-node timelines",
        "Profiled spans",
        "Final metrics snapshot",
    ]

    def test_empty_trace_renders_every_section(self):
        text = render_report([])
        for title in self.SECTION_TITLES:
            assert title in text
        assert text.count("(no data)") >= 9

    def test_cache_disabled_trace_has_no_data_cache_section(self, crash_trace):
        path, _ = crash_trace  # push-sum run: no cache events at all
        text = render_report(load_events(str(path)))
        cache_section = text.split("Merge cache", 1)[1].split("\n\n", 1)[0]
        assert "(no data)" in cache_section

    def test_crashed_early_trace_renders(self):
        # A run that died after a handful of transport events: no
        # round_close, no probes, no spans, records missing optional keys.
        events = [
            {"kind": "send", "node": 0, "peer": 1, "round": 0},
            {"kind": "deliver", "node": 0, "peer": 1, "round": 0},
            {"kind": "crash", "node": 1},
            {"kind": "send"},
        ]
        text = render_report(events)
        assert "Crash timeline (1 crashes)" in text
        for title in self.SECTION_TITLES:
            assert title in text

    def test_minimal_records_never_keyerror(self):
        events = [{"kind": kind} for kind in (
            "send", "deliver", "drop", "merge", "split", "crash",
            "round_close", "em_step", "probe", "span", "fastpath",
            "cache", "telemetry", "metrics",
        )]
        text = render_report(events)
        assert "Event census" in text


class TestTelemetrySection:
    def test_telemetry_series_rendered(self):
        events = [
            {
                "kind": "telemetry",
                "round": r,
                "extra": {
                    "round": r,
                    "live": 10,
                    "distinct_fingerprints": 10 - r,
                    "quiescent_fraction": 0.1 * (r + 1),
                    "total_quanta": 1024,
                    "messages_window": 10,
                    "bytes_window": 520,
                },
            }
            for r in range(3)
        ]
        text = render_report(events)
        assert "Convergence time series" in text
        assert "distinct_fingerprints" in text
        assert "total_quanta" in text


class TestCollapsedStacks:
    def test_collapsed_file_written(self, tmp_path):
        from repro.obs.report import write_collapsed

        events = [
            {"kind": "span", "extra": {"name": "b", "duration": 0.2, "self": 0.2, "stack": "a;b"}},
            {"kind": "span", "extra": {"name": "a", "duration": 0.5, "self": 0.3, "stack": "a"}},
            {"kind": "span", "extra": {"name": "a", "duration": 0.1}},  # v1 record
        ]
        out = tmp_path / "profile.folded"
        assert write_collapsed(events, str(out)) == 2
        lines = out.read_text().splitlines()
        assert "a;b 200000" in lines
        # 0.3 exclusive + 0.1 legacy (self defaults to duration).
        assert "a 400000" in lines

    def test_main_collapsed_flag(self, crash_trace, tmp_path, capsys):
        path, _ = crash_trace
        out = tmp_path / "profile.folded"
        assert main([str(path), "--collapsed", str(out)]) == 0
        assert out.exists()
        assert "collapsed stacks" in capsys.readouterr().out


class TestMain:
    def test_reports_to_stdout(self, crash_trace, capsys):
        path, _ = crash_trace
        assert main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "Event census" in out
        assert "Message complexity" in out

    def test_missing_file_is_an_error(self, tmp_path, capsys):
        assert main([str(tmp_path / "absent.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_malformed_file_is_an_error(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("{broken\n")
        assert main([str(path)]) == 2
        assert "error:" in capsys.readouterr().err
