"""Telemetry exporters: JSONL, Prometheus text, and the sweep store."""

import json
import math

import numpy as np
import pytest

from repro.network.topology import complete
from repro.obs import TimeSeriesRecorder
from repro.obs.exporters import (
    export_to_store,
    to_jsonl_lines,
    to_prometheus_text,
    write_jsonl,
    write_prometheus,
)
from repro.protocols.classification import build_classification_network
from repro.schemes.centroid import CentroidScheme
from repro.sweep.store import ResultStore

ROWS = [
    {"engine": 0, "round": 0, "live": 8, "distinct_fingerprints": 5,
     "quiescent_fraction": 0.25, "bytes_window": 416},
    {"engine": 0, "round": 1, "live": 8, "distinct_fingerprints": 1,
     "quiescent_fraction": 1.0, "bytes_window": math.nan},
]


@pytest.fixture
def recorded_rows():
    """Real recorder rows from a short centroid run."""
    values = np.arange(8, dtype=float)[:, None]
    recorder = TimeSeriesRecorder()
    engine, _ = build_classification_network(
        values, CentroidScheme(), k=2, graph=complete(8), seed=5,
        telemetry=recorder,
    )
    engine.run(6)
    return recorder.samples


class TestJsonl:
    def test_one_compact_line_per_row(self):
        lines = to_jsonl_lines(ROWS)
        assert len(lines) == 2
        assert all("\n" not in line and ": " not in line for line in lines)

    def test_nan_becomes_null(self):
        record = json.loads(to_jsonl_lines(ROWS)[1])
        assert record["bytes_window"] is None
        assert record["quiescent_fraction"] == 1.0

    def test_round_trips_through_json(self):
        records = [json.loads(line) for line in to_jsonl_lines(ROWS)]
        assert [r["round"] for r in records] == [0, 1]

    def test_write_jsonl(self, tmp_path, recorded_rows):
        path = tmp_path / "telemetry.jsonl"
        assert write_jsonl(recorded_rows, str(path)) == 6
        lines = path.read_text().splitlines()
        assert len(lines) == 6
        assert json.loads(lines[-1])["round"] == 5


class TestPrometheus:
    def test_type_headers_and_prefix(self):
        text = to_prometheus_text(ROWS)
        assert "# TYPE repro_live gauge" in text
        assert "# TYPE repro_distinct_fingerprints gauge" in text

    def test_identity_keys_become_labels_not_gauges(self):
        text = to_prometheus_text(ROWS)
        assert 'repro_live{engine="0",round="0"} 8' in text
        assert "# TYPE repro_round" not in text
        assert "# TYPE repro_engine" not in text

    def test_nan_samples_are_skipped(self):
        text = to_prometheus_text(ROWS)
        assert 'repro_bytes_window{engine="0",round="0"} 416' in text
        assert 'round="1"} nan' not in text

    def test_empty_rows_render_empty(self):
        assert to_prometheus_text([]) == ""

    def test_write_prometheus_counts_samples(self, tmp_path, recorded_rows):
        path = tmp_path / "telemetry.prom"
        written = write_prometheus(recorded_rows, str(path))
        text = path.read_text()
        assert written == sum(
            1 for line in text.splitlines() if line and not line.startswith("#")
        )
        assert written > 0
        assert "# TYPE repro_messages_window gauge" in text


class TestStoreExport:
    def test_rows_land_in_timeseries_table(self, recorded_rows):
        with ResultStore(":memory:") as store:
            points = export_to_store(store, "run1", "cell-a", recorded_rows)
            assert points > 0
            series = store.timeseries_series(
                "run1", "cell-a", "distinct_fingerprints"
            )
            assert [r for r, _ in series] == [0, 1, 2, 3, 4, 5]

    def test_engine_override_tags_rows(self):
        with ResultStore(":memory:") as store:
            export_to_store(store, "run1", "cell-a", ROWS, engine=7)
            rows = store.timeseries("run1", key="cell-a")
            assert {row["engine"] for row in rows} == {7}

    def test_nan_stored_as_null(self):
        with ResultStore(":memory:") as store:
            export_to_store(store, "run1", "cell-a", ROWS)
            series = dict(
                store.timeseries_series("run1", "cell-a", "bytes_window")
            )
            assert series[0] == 416
            assert series[1] is None

    def test_same_rows_reexported_replace_not_duplicate(self):
        with ResultStore(":memory:") as store:
            export_to_store(store, "run1", "cell-a", ROWS)
            export_to_store(store, "run1", "cell-a", ROWS)
            rows = store.timeseries("run1", key="cell-a")
            names = [(r["round"], r["name"]) for r in rows]
            assert len(names) == len(set(names))
