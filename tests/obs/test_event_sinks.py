"""Structured events, sinks, and the ambient tracing context."""

import json

import pytest

from repro.obs import (
    EVENT_KINDS,
    CompositeSink,
    Event,
    JsonlSink,
    RingBufferSink,
    current_sink,
    set_sink,
    tracing,
)


class TestEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Event(kind="teleport")

    def test_known_kinds_accepted(self):
        for kind in EVENT_KINDS:
            assert Event(kind=kind).kind == kind

    def test_json_dict_drops_none_fields(self):
        event = Event(kind="send", node=3, peer=7, round=2, items=4)
        record = event.to_json_dict()
        assert record == {"kind": "send", "node": 3, "peer": 7, "round": 2, "items": 4}
        assert "t" not in record and "extra" not in record

    def test_json_dict_round_trips(self):
        event = Event(kind="round_close", round=5, extra={"messages": 9, "live": 10})
        parsed = json.loads(json.dumps(event.to_json_dict()))
        assert parsed["kind"] == "round_close"
        assert parsed["extra"] == {"messages": 9, "live": 10}


class TestRingBufferSink:
    def test_retains_in_order(self):
        sink = RingBufferSink()
        sink.emit(Event(kind="send", node=0))
        sink.emit(Event(kind="deliver", node=0))
        assert [event.kind for event in sink.events] == ["send", "deliver"]
        assert len(sink) == 2

    def test_capacity_evicts_oldest(self):
        sink = RingBufferSink(capacity=3)
        for index in range(5):
            sink.emit(Event(kind="send", node=index))
        assert [event.node for event in sink.events] == [2, 3, 4]

    def test_of_kind_filters(self):
        sink = RingBufferSink()
        sink.emit(Event(kind="send"))
        sink.emit(Event(kind="crash", node=1))
        sink.emit(Event(kind="send"))
        assert len(sink.of_kind("send")) == 2
        assert sink.of_kind("crash")[0].node == 1

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)


class TestJsonlSink:
    def test_writes_one_line_per_event(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(str(path)) as sink:
            sink.emit(Event(kind="send", node=1, peer=2, round=0, items=3))
            sink.emit(Event(kind="crash", node=2, round=0))
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["kind"] == "send"
        assert json.loads(lines[1]) == {"kind": "crash", "node": 2, "round": 0}
        assert sink.emitted == 2

    def test_creates_empty_file_immediately(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        sink = JsonlSink(str(path))
        sink.close()
        assert path.exists() and path.read_text() == ""

    def test_close_is_idempotent_and_blocks_emit(self, tmp_path):
        sink = JsonlSink(str(tmp_path / "t.jsonl"))
        sink.close()
        sink.close()
        with pytest.raises(ValueError):
            sink.emit(Event(kind="send"))


class TestCompositeSink:
    def test_fans_out_to_all_children(self):
        first, second = RingBufferSink(), RingBufferSink()
        composite = CompositeSink(first, second)
        composite.emit(Event(kind="merge", node=4))
        assert len(first) == len(second) == 1

    def test_requires_children(self):
        with pytest.raises(ValueError):
            CompositeSink()


class TestTracingContext:
    def test_default_is_none(self):
        assert current_sink() is None

    def test_tracing_installs_and_restores(self):
        sink = RingBufferSink()
        with tracing(sink) as active:
            assert active is sink
            assert current_sink() is sink
        assert current_sink() is None

    def test_tracing_nests(self):
        outer, inner = RingBufferSink(), RingBufferSink()
        with tracing(outer):
            with tracing(inner):
                assert current_sink() is inner
            assert current_sink() is outer

    def test_tracing_closes_sink(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with tracing(JsonlSink(str(path))) as sink:
            sink.emit(Event(kind="send"))
        with pytest.raises(ValueError):
            sink.emit(Event(kind="send"))

    def test_set_sink_returns_previous(self):
        sink = RingBufferSink()
        assert set_sink(sink) is None
        try:
            assert current_sink() is sink
        finally:
            assert set_sink(None) is sink
