"""The live run monitor: incremental tailing and line rendering."""

import io
import json
import math

from repro.obs.monitor import StreamFollower, follow, main, render_event


def write_lines(path, records, mode="a"):
    with open(path, mode, encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")


class TestStreamFollower:
    def test_reads_complete_lines_incrementally(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_lines(path, [{"kind": "telemetry", "round": 0}])
        follower = StreamFollower(str(path))
        assert [r["round"] for r in follower.poll()] == [0]
        assert follower.poll() == []  # nothing new
        write_lines(path, [{"kind": "telemetry", "round": 1}])
        assert [r["round"] for r in follower.poll()] == [1]

    def test_partial_trailing_line_held_back(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"kind":"telemetry","round":0}\n{"kind":"tele')
        follower = StreamFollower(str(path))
        assert [r["round"] for r in follower.poll()] == [0]
        # The writer finishes the line; the two halves reassemble.
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('metry","round":1}\n')
        assert [r["round"] for r in follower.poll()] == [1]
        assert follower.skipped == 0

    def test_malformed_lines_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('not json\n{"kind":"crash","node":3}\n{"no_kind":1}\n')
        follower = StreamFollower(str(path))
        records = follower.poll()
        assert [r["kind"] for r in records] == ["crash"]
        assert follower.skipped == 2

    def test_missing_file_returns_empty(self, tmp_path):
        follower = StreamFollower(str(tmp_path / "absent.jsonl"))
        assert follower.poll() == []


class TestRenderEvent:
    def test_telemetry_line(self):
        line = render_event({
            "kind": "telemetry", "round": 4,
            "extra": {"round": 4, "live": 96, "distinct_fingerprints": 3,
                      "quiescent_fraction": 0.875, "messages_window": 96,
                      "bytes_window": 4992, "cache_hit_ratio": 0.7},
        })
        assert "round      4" in line
        assert "live    96" in line
        assert "classes    3" in line
        assert "agree  87.5%" in line
        assert "4.9 KiB" in line
        assert "cache 70%" in line

    def test_nan_gauges_are_omitted_not_fatal(self):
        line = render_event({
            "kind": "telemetry", "round": 0,
            "extra": {"round": 0, "live": 8,
                      "distinct_fingerprints": math.nan,
                      "quiescent_fraction": math.nan,
                      "messages_window": 8, "bytes_window": math.nan,
                      "cache_hit_ratio": math.nan},
        })
        assert "classes" not in line
        assert "msgs      8" in line

    def test_crash_and_quiescence_and_metrics_lines(self):
        assert "crash node=5" in render_event(
            {"kind": "crash", "node": 5, "round": 3}
        )
        quiescent = render_event({
            "kind": "cache", "round": 9,
            "extra": {"path": "quiescent", "streak": 3},
        })
        assert "quiescent at round 9" in quiescent
        final = render_event({
            "kind": "metrics",
            "extra": {"rounds": 12, "messages_sent": 96, "crashes": 1},
        })
        assert "final:" in final and "rounds=12" in final

    def test_uninteresting_kinds_render_none(self):
        for kind in ("send", "deliver", "merge", "span", "round_close"):
            assert render_event({"kind": kind}) is None


class TestFollow:
    def test_once_renders_current_contents(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_lines(path, [
            {"kind": "telemetry", "round": 0, "extra": {"round": 0, "live": 4}},
            {"kind": "send", "node": 1},
            {"kind": "crash", "node": 2, "round": 1},
        ])
        out = io.StringIO()
        assert follow(str(path), out, once=True) == 2
        lines = out.getvalue().splitlines()
        assert lines[0].startswith("round")
        assert "crash" in lines[1]

    def test_max_idle_terminates_follow_mode(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_lines(path, [{"kind": "crash", "node": 0}])
        out = io.StringIO()
        rendered = follow(str(path), out, interval=0.01, max_idle=0.05)
        assert rendered == 1


class TestMain:
    def test_once_mode_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        write_lines(path, [
            {"kind": "telemetry", "round": 0, "extra": {"round": 0, "live": 4}},
        ])
        assert main([str(path), "--once"]) == 0
        assert "live     4" in capsys.readouterr().out

    def test_once_missing_file_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "absent.jsonl"), "--once"]) == 2
        assert "error" in capsys.readouterr().err

    def test_once_without_telemetry_says_so(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        write_lines(path, [{"kind": "send", "node": 0}])
        assert main([str(path), "--once"]) == 0
        assert "no telemetry lines" in capsys.readouterr().out
