"""Timer spans and the metrics registry."""

import time

import pytest

from repro.network.metrics import NetworkMetrics
from repro.obs import (
    MetricsRegistry,
    RingBufferSink,
    TimerStats,
    current_registry,
    disable_profiling,
    enable_profiling,
    profiling,
    span,
    tracing,
)
from repro.obs.profiling import _NULL_SPAN


class TestTimerStats:
    def test_record_accumulates(self):
        stats = TimerStats()
        stats.record(0.25)
        stats.record(1.0)
        assert stats.count == 2
        assert stats.total == pytest.approx(1.25)
        assert stats.minimum == pytest.approx(0.25)
        assert stats.maximum == pytest.approx(1.0)
        assert stats.mean == pytest.approx(0.625)

    def test_histogram_buckets_cover_all_samples(self):
        stats = TimerStats()
        for duration in (1e-6, 3e-6, 0.1, 0.2, 0.4):
            stats.record(duration)
        buckets = stats.histogram()
        assert sum(count for _, _, count in buckets) == 5
        for low, high, _ in buckets:
            assert high == pytest.approx(2 * low)

    def test_zero_duration_and_empty_stats(self):
        stats = TimerStats()
        assert stats.mean == 0.0
        assert stats.as_dict()["min"] == 0.0
        stats.record(0.0)
        assert stats.count == 1
        assert stats.minimum == 0.0


class TestMetricsRegistry:
    def test_counters(self):
        registry = MetricsRegistry()
        registry.inc("merges")
        registry.inc("merges", 4)
        assert registry.counters["merges"] == 5

    def test_absorbs_network_metrics_scalars_only(self):
        metrics = NetworkMetrics()
        metrics.record_send(3)
        metrics.record_delivery()
        metrics.close_round(1)
        registry = MetricsRegistry()
        registry.absorb_network(metrics)
        assert registry.counters["network.messages_sent"] == 1
        assert registry.counters["network.payload_items_sent"] == 3
        assert registry.counters["network.rounds"] == 1
        # The per-round list is not a scalar and must be skipped.
        assert "network.per_round_messages" not in registry.counters

    def test_summary_rows_sorted_by_total(self):
        registry = MetricsRegistry()
        registry.record_span("slow", 1.0)
        registry.record_span("fast", 0.1)
        rows = registry.summary_rows()
        assert [row[0] for row in rows] == ["slow", "fast"]

    def test_as_dict_shape(self):
        registry = MetricsRegistry()
        registry.inc("x")
        registry.record_span("y", 0.5)
        snapshot = registry.as_dict()
        assert snapshot["counters"] == {"x": 1}
        assert snapshot["timers"]["y"]["count"] == 1


class TestSpan:
    def test_disabled_span_is_shared_noop(self):
        assert current_registry() is None
        assert span("anything") is _NULL_SPAN
        with span("anything"):
            pass  # must not raise, must not allocate a registry

    def test_profiling_records_duration(self):
        with profiling() as registry:
            with span("work"):
                time.sleep(0.002)
        stats = registry.timers["work"]
        assert stats.count == 1
        assert stats.total >= 0.002
        assert current_registry() is None

    def test_profiling_restores_previous_registry(self):
        outer = enable_profiling()
        try:
            with profiling() as inner:
                assert current_registry() is inner
            assert current_registry() is outer
        finally:
            disable_profiling()

    def test_span_emits_event_when_tracing(self):
        sink = RingBufferSink()
        with tracing(sink):
            with span("traced.work"):
                pass
        spans = sink.of_kind("span")
        assert len(spans) == 1
        assert spans[0].extra["name"] == "traced.work"
        assert spans[0].extra["duration"] >= 0.0

    def test_span_records_even_when_body_raises(self):
        with profiling() as registry:
            with pytest.raises(RuntimeError):
                with span("failing"):
                    raise RuntimeError("boom")
        assert registry.timers["failing"].count == 1


class TestStackAttribution:
    """v2 sampling profiler: nested spans, exclusive time, collapsed stacks."""

    def test_nested_spans_build_stacks(self):
        with profiling() as registry:
            with span("outer"):
                with span("inner"):
                    pass
        assert ("outer",) in registry.stacks
        assert ("outer", "inner") in registry.stacks

    def test_exclusive_time_subtracts_children(self):
        with profiling() as registry:
            with span("outer"):
                with span("inner"):
                    time.sleep(0.01)
        rows = {row[0]: row for row in registry.phase_rows()}
        name, count, inclusive, exclusive = rows["outer"]
        assert count == 1
        assert inclusive >= 0.01
        assert exclusive < inclusive  # the child's time is not outer's own

    def test_exclusive_never_negative(self):
        with profiling() as registry:
            with span("a"):
                with span("b"):
                    pass
        for stack, stats in registry.stacks.items():
            assert stats.total >= 0.0

    def test_collapsed_stack_lines(self):
        with profiling() as registry:
            with span("a"):
                with span("b"):
                    pass
        lines = registry.collapsed_stacks()
        assert any(line.startswith("a ") for line in lines)
        assert any(line.startswith("a;b ") for line in lines)
        for line in lines:
            path, _, micros = line.rpartition(" ")
            assert path and int(micros) >= 0

    def test_write_collapsed(self, tmp_path):
        out = tmp_path / "profile.folded"
        with profiling() as registry:
            with span("x"):
                pass
        registry.write_collapsed(str(out))
        assert out.read_text().startswith("x ")

    def test_span_events_carry_stack_and_exclusive(self):
        sink = RingBufferSink()
        with tracing(sink):
            with span("parent"):
                with span("child"):
                    pass
        by_name = {e.extra["name"]: e for e in sink.of_kind("span")}
        assert by_name["child"].extra["stack"] == "parent;child"
        assert by_name["parent"].extra["stack"] == "parent"
        assert by_name["parent"].extra["self"] <= by_name["parent"].extra["duration"]

    def test_stack_state_clean_after_exception(self):
        with profiling() as registry:
            with pytest.raises(RuntimeError):
                with span("outer"):
                    with span("inner"):
                        raise RuntimeError("boom")
            # A fresh span must be a new root, not a child of "outer".
            with span("fresh"):
                pass
        assert ("fresh",) in registry.stacks
        assert ("outer", "fresh") not in registry.stacks

    def test_sibling_spans_share_parent(self):
        with profiling() as registry:
            with span("root"):
                with span("left"):
                    pass
                with span("right"):
                    pass
        assert ("root", "left") in registry.stacks
        assert ("root", "right") in registry.stacks

    def test_as_dict_includes_stacks(self):
        with profiling() as registry:
            with span("a"):
                pass
        assert "stacks" in registry.as_dict()
        assert registry.as_dict()["stacks"]["a"]["count"] == 1
