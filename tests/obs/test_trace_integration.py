"""End-to-end tracing: both engines, the classification protocol, and EM.

The acceptance check of the observability layer: a Figure-4-style crash
run under a JSONL sink must produce an event log from which the report
machinery reconstructs rounds, per-round message counts and the crash
timeline *exactly* as the engine's own ``NetworkMetrics`` recorded them.
"""

from collections import Counter

import numpy as np
import pytest

from repro.data.generators import outlier_scenario
from repro.ml.em import fit_gmm_em
from repro.network.asynchronous import AsyncEngine
from repro.network.failures import BernoulliCrashes
from repro.network.topology import complete
from repro.obs import JsonlSink, RingBufferSink, tracing
from repro.obs.report import load_events, render_report
from repro.protocols.classification import build_classification_network
from repro.protocols.push_sum import PushSumProtocol
from repro.schemes.gm import GaussianMixtureScheme


@pytest.fixture(scope="module")
def fig4_style_trace(tmp_path_factory):
    """A robust-GM crash run (the Figure 4 configuration, shrunk) traced to JSONL."""
    path = tmp_path_factory.mktemp("obs") / "fig4.jsonl"
    scenario = outlier_scenario(10.0, n_good=18, n_outliers=2, seed=4)
    # Ambient tracing, exactly what `--trace` does: the engine, the nodes
    # and the profiling spans all pick the sink up without plumbing.
    with tracing(JsonlSink(str(path))):
        engine, nodes = build_classification_network(
            scenario.values,
            GaussianMixtureScheme(seed=4),
            k=2,
            graph=complete(scenario.n),
            seed=4,
            failure_model=BernoulliCrashes(0.05),
        )
        engine.run(12)
    return path, engine


class TestRoundEngineTraceConsistency:
    def test_transport_counts_match_network_metrics_exactly(self, fig4_style_trace):
        path, engine = fig4_style_trace
        census = Counter(event["kind"] for event in load_events(str(path)))
        metrics = engine.metrics
        assert census["send"] == metrics.messages_sent
        assert census["deliver"] == metrics.messages_delivered
        assert census["drop"] == metrics.messages_dropped
        assert census["crash"] == metrics.crashes
        assert census["round_close"] == metrics.rounds == 12

    def test_per_round_messages_match_exactly(self, fig4_style_trace):
        path, engine = fig4_style_trace
        closes = [e for e in load_events(str(path)) if e["kind"] == "round_close"]
        assert [e["round"] for e in closes] == list(range(12))
        assert [e["extra"]["messages"] for e in closes] == (
            engine.metrics.per_round_messages
        )

    def test_payload_items_match_exactly(self, fig4_style_trace):
        path, engine = fig4_style_trace
        sends = [e for e in load_events(str(path)) if e["kind"] == "send"]
        assert sum(e["items"] for e in sends) == engine.metrics.payload_items_sent

    def test_crash_timeline_is_within_run_and_counts_survivors(self, fig4_style_trace):
        path, engine = fig4_style_trace
        events = load_events(str(path))
        crashes = [e for e in events if e["kind"] == "crash"]
        assert all(0 <= e["round"] < 12 for e in crashes)
        final_close = [e for e in events if e["kind"] == "round_close"][-1]
        assert final_close["extra"]["live"] == len(engine.live_nodes)
        assert len(crashes) == 20 - len(engine.live_nodes)

    def test_split_and_merge_events_recorded(self, fig4_style_trace):
        path, engine = fig4_style_trace
        events = load_events(str(path))
        census = Counter(event["kind"] for event in events)
        assert census["split"] > 0 and census["merge"] > 0
        # Node-level totals must agree with the nodes' own stats counters.
        merges_by_event = census["merge"]
        assert merges_by_event == sum(
            1 for e in events if e["kind"] == "merge" and e["node"] is not None
        )

    def test_report_renders_all_major_sections(self, fig4_style_trace):
        path, engine = fig4_style_trace
        text = render_report(load_events(str(path)))
        for section in ("Event census", "Message complexity", "Crash timeline",
                        "Per-node timelines", "Profiled spans"):
            assert section in text


class TestAsyncEngineTraceConsistency:
    def build(self, sink, n=8, seed=2):
        values = np.arange(n, dtype=float)[:, None]
        protocols = {i: PushSumProtocol(values[i]) for i in range(n)}
        return AsyncEngine(complete(n), protocols, seed=seed, event_sink=sink)

    def test_transport_counts_match_metrics(self):
        sink = RingBufferSink()
        engine = self.build(sink)
        engine.run_events(300)
        census = Counter(event.kind for event in sink.events)
        assert census["send"] == engine.metrics.messages_sent
        assert census["deliver"] == engine.metrics.messages_delivered
        assert census["drop"] == engine.metrics.messages_dropped

    def test_events_carry_time_stamps(self):
        sink = RingBufferSink()
        engine = self.build(sink)
        engine.run_events(100)
        times = [event.t for event in sink.events if event.kind == "send"]
        assert times and all(t is not None for t in times)
        assert times == sorted(times)

    def test_crash_produces_drop_events(self):
        sink = RingBufferSink()
        engine = self.build(sink)
        engine.crash(0)
        engine.run_events(300)
        assert sink.of_kind("crash")[0].node == 0
        assert engine.metrics.messages_dropped > 0
        assert len(sink.of_kind("drop")) == engine.metrics.messages_dropped


class TestAmbientTracing:
    def test_engines_pick_up_ambient_sink(self):
        values = np.arange(6, dtype=float)[:, None]
        sink = RingBufferSink()
        with tracing(sink):
            protocols = {i: PushSumProtocol(values[i]) for i in range(6)}
            engine = AsyncEngine(complete(6), protocols, seed=0)
            assert engine.event_sink is sink
        engine.run_events(50)
        assert len(sink.of_kind("send")) == engine.metrics.messages_sent

    def test_em_fit_emits_em_steps_under_tracing(self, rng):
        points = np.vstack(
            [rng.normal(c, 0.5, size=(40, 2)) for c in ([0, 0], [6, 6])]
        )
        sink = RingBufferSink()
        with tracing(sink):
            result = fit_gmm_em(points, 2, rng, max_iterations=25)
        steps = sink.of_kind("em_step")
        assert len(steps) == len(result.log_likelihood_trace) - 1
        likelihoods = [event.extra["log_likelihood"] for event in steps]
        assert likelihoods == sorted(likelihoods)  # EM's monotone likelihood
        spans = [event.extra["name"] for event in sink.of_kind("span")]
        assert "em.fit" in spans

    def test_no_ambient_sink_means_no_events(self, rng):
        points = rng.normal(size=(30, 2))
        result = fit_gmm_em(points, 2, rng, max_iterations=10)
        assert result.iterations >= 1  # ran fine with tracing fully off
