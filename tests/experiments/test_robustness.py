"""Robustness extension experiments (tiny scale)."""

import numpy as np
import pytest

from repro.experiments.common import Scale
from repro.experiments.robustness import (
    run_crash_rate_sweep,
    run_k_mismatch,
    run_outlier_fraction_sweep,
)

TINY = Scale(name="tiny", n_nodes=80, max_rounds=25)


class TestOutlierFractionSweep:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_outlier_fraction_sweep(TINY, seed=31, fractions=(0.05, 0.20))

    def test_regular_error_grows_with_contamination(self, rows):
        assert rows[1]["regular_error"] > rows[0]["regular_error"]

    def test_robust_stays_below_regular_at_high_contamination(self, rows):
        high = rows[-1]
        assert high["robust_error"] < high["regular_error"]

    def test_row_labels(self, rows):
        assert [row.label for row in rows] == ["5%", "20%"]


class TestCrashRateSweep:
    def test_survivors_shrink_with_rate(self):
        rows = run_crash_rate_sweep(TINY, seed=32, rates=(0.0, 0.10), rounds=20)
        assert rows[0]["survivors"] == 80
        assert rows[1]["survivors"] < 40
        # The surviving estimate stays useful even at 10%/round.
        assert rows[1]["robust_error"] < 1.0


class TestKMismatch:
    def test_extra_collections_harmless(self):
        rows = run_k_mismatch(TINY, seed=33, ks=(2, 4))
        by_k = {int(row["k"]): row for row in rows}
        # The heaviest-collection read-out tolerates fragmentation: going
        # from the intended k=2 to k=4 must not blow the error up.
        assert by_k[4]["robust_error"] < 3.0 * by_k[2]["robust_error"] + 0.1
