"""Ablation experiments at tiny scale: structure and directional claims."""

import pytest

from repro.experiments.ablations import (
    run_centralized_gap,
    run_gossip_variant_ablation,
    run_k_ablation,
    run_quantum_ablation,
    run_scheme_ablation,
    run_topology_ablation,
)
from repro.experiments.common import Scale

TINY = Scale(name="tiny", n_nodes=24, max_rounds=20)


class TestTopologyAblation:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_topology_ablation(TINY, seed=11)

    def test_all_topologies_present(self, rows):
        labels = {row.label for row in rows}
        assert labels == {"complete", "ring", "grid", "geometric", "small_world"}

    def test_complete_is_fastest(self, rows):
        by_label = {row.label: row for row in rows}
        assert by_label["complete"]["rounds"] <= by_label["ring"]["rounds"]


class TestGossipVariantAblation:
    def test_variants_and_message_counts(self):
        rows = run_gossip_variant_ablation(TINY, seed=12)
        by_label = {row.label: row for row in rows}
        assert set(by_label) == {"push", "pull", "pushpull"}
        # Push-pull moves twice the messages per round of push.
        assert by_label["pushpull"]["messages"] > 1.5 * by_label["push"]["messages"]


class TestKAblation:
    def test_likelihood_improves_with_k(self):
        rows = run_k_ablation(TINY, seed=13, ks=(3, 7))
        by_k = {int(row["k"]): row for row in rows}
        assert by_k[7]["loglik_per_value"] >= by_k[3]["loglik_per_value"] - 1e-9
        assert by_k[3]["collections"] <= 3
        assert by_k[7]["collections"] <= 7


class TestQuantumAblation:
    def test_fine_lattice_more_accurate(self):
        rows = run_quantum_ablation(TINY, seed=14, quanta=(4, 1 << 20))
        coarse, fine = rows[0], rows[1]
        assert coarse["avg_balance_error"] > fine["avg_balance_error"]

    def test_weight_always_conserved(self):
        rows = run_quantum_ablation(TINY, seed=14, quanta=(4, 256))
        assert all(row["total_quanta_conserved"] == 1.0 for row in rows)


class TestSchemeAblation:
    def test_gm_beats_histogram_on_anisotropic_data(self):
        rows = run_scheme_ablation(TINY, seed=15)
        by_label = {row.label: row for row in rows}
        assert (
            by_label["gaussian_mixture"]["weight_accuracy"]
            > by_label["histogram"]["weight_accuracy"]
        )

    def test_accuracies_are_fractions(self):
        rows = run_scheme_ablation(TINY, seed=15)
        assert all(0.0 <= row["weight_accuracy"] <= 1.0 for row in rows)


class TestCentralizedGap:
    def test_distributed_close_to_centralized(self):
        rows = run_centralized_gap(TINY, seed=16)
        by_label = {row.label: row for row in rows}
        gap = by_label["centralized_em"]["loglik_per_value"] - by_label[
            "distributed_gm"
        ]["loglik_per_value"]
        # The distributed estimate (k=7 collections) should not trail the
        # centralised fit by more than a modest margin.
        assert gap < 0.5
