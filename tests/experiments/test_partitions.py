"""Partition-and-heal experiment (tiny scale)."""

import pytest

from repro.experiments.common import Scale
from repro.experiments.partitions import run_partition_heal

TINY = Scale(name="tiny", n_nodes=40, max_rounds=40)


class TestPartitionHeal:
    @pytest.fixture(scope="class")
    def result(self):
        return run_partition_heal(
            TINY, seed=41, partition_start=10, partition_length=10, total_rounds=40
        )

    def test_trace_shape(self, result):
        assert len(result.rounds) == 40
        assert result.partition_start == 10
        assert result.partition_end == 20

    def test_sides_disagree_while_partitioned(self, result):
        during = result.phase_mean(result.partition_start + 3, result.partition_end)
        after = result.phase_mean(33, 41)
        assert during > 5.0 * after

    def test_reconciliation_after_healing(self, result):
        assert result.phase_mean(33, 41) < 0.1

    def test_phase_mean_validates_window(self, result):
        with pytest.raises(ValueError):
            result.phase_mean(500, 510)
