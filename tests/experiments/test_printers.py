"""The CLI's figure printers: output structure at tiny scale."""

import pytest

from repro.experiments.common import Scale
from repro.experiments.run import (
    _print_fig1,
    _print_fig2,
    _print_fig3,
    _print_fig4,
    _print_partition_heal,
)

TINY = Scale(name="tiny", n_nodes=40, max_rounds=15, deltas=(0.0, 10.0))


class TestFigurePrinters:
    def test_fig1_printer(self, capsys):
        _print_fig1(TINY)
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "centroid rule associates the new value with: A" in out
        assert "Gaussian rule associates the new value with: B" in out

    def test_fig2_printer(self, capsys):
        _print_fig2(TINY)
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "source[0]" in out
        assert "distributed GM" in out
        assert "centralized EM" in out

    def test_fig3_printer(self, capsys):
        _print_fig3(TINY)
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "missed_outliers_%" in out
        assert "robust_error" in out
        # One data row per delta in the preset.
        data_lines = [
            line for line in out.splitlines() if line and line[0].isdigit()
        ]
        assert len(data_lines) == len(TINY.deltas)

    def test_fig4_printer(self, capsys):
        _print_fig4(TINY.with_overrides(max_rounds=8))
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "robust_no_crash" in out
        assert "survivors" in out

    def test_partition_heal_printer(self, capsys):
        _print_partition_heal(TINY.with_overrides(n_nodes=24))
        out = capsys.readouterr().out
        assert "Partition and heal" in out
        assert "cross_partition_disagreement" in out
