"""The experiment CLI (python -m repro.experiments.run).

Every subcommand (and ``all``) is smoke-run on both engines.  The
``fast`` preset still takes minutes for the full registry, so these
tests monkeypatch it down to a tiny network — same code paths, seconds
of runtime — and assert exit 0 plus non-empty printed tables.
"""

import pytest

from repro.experiments import common
from repro.experiments.common import Scale
from repro.experiments.run import COMMANDS, main

#: A seconds-scale stand-in for the "fast" preset: every subcommand's
#: internal caps (min(n_nodes, ...)) collapse to 16 nodes, and the loose
#: tolerance lets the sparse-topology convergence runs settle quickly.
TINY_SMOKE = Scale(
    name="fast",
    n_nodes=16,
    max_rounds=10,
    deltas=(0.0, 10.0),
    convergence_tolerance=5e-3,
)


@pytest.fixture
def tiny_fast(monkeypatch):
    monkeypatch.setitem(common._PRESETS, "fast", TINY_SMOKE)


class TestCli:
    def test_fig1_runs(self, capsys):
        assert main(["fig1", "--scale", "fast"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "demonstrates the paper's claim: True" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig1", "--scale", "huge"])

    def test_negative_workers_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig1", "--scale", "fast", "--workers", "-1"])

    def test_command_registry_covers_figures_and_ablations(self):
        assert {"fig1", "fig2", "fig3", "fig4"} <= set(COMMANDS)
        assert any(name.startswith("ablation-") for name in COMMANDS)


@pytest.mark.slow
class TestCliSmoke:
    @pytest.mark.parametrize("engine", ["rounds", "async"])
    @pytest.mark.parametrize("command", sorted(COMMANDS))
    def test_every_subcommand_runs_on_both_engines(
        self, tiny_fast, capsys, command, engine
    ):
        assert main([command, "--scale", "fast", "--engine", engine]) == 0
        out = capsys.readouterr().out
        assert out.strip(), f"{command} on {engine} printed nothing"
        # Every printer emits either a banner/table rule or a series header.
        assert "=" in out or "|" in out

    @pytest.mark.parametrize("engine", ["rounds", "async"])
    def test_all_runs_every_command(self, tiny_fast, capsys, engine):
        assert main(["all", "--scale", "fast", "--engine", engine]) == 0
        out = capsys.readouterr().out
        for fragment in ("Figure 1", "Figure 2", "Figure 3", "Figure 4", "Ablation"):
            assert fragment in out

    def test_workers_flag_produces_identical_output(self, tiny_fast, capsys):
        assert main(["fig4", "--scale", "fast"]) == 0
        serial_out = capsys.readouterr().out
        assert main(["fig4", "--scale", "fast", "--workers", "2"]) == 0
        pooled_out = capsys.readouterr().out
        assert serial_out == pooled_out
