"""The experiment CLI (python -m repro.experiments.run)."""

import pytest

from repro.experiments.run import COMMANDS, main


class TestCli:
    def test_fig1_runs(self, capsys):
        assert main(["fig1", "--scale", "fast"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "demonstrates the paper's claim: True" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig1", "--scale", "huge"])

    def test_command_registry_covers_figures_and_ablations(self):
        assert {"fig1", "fig2", "fig3", "fig4"} <= set(COMMANDS)
        assert any(name.startswith("ablation-") for name in COMMANDS)
