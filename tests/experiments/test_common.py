"""Scale presets and the convergence-driven runner."""

import numpy as np
import pytest

from repro.experiments.common import BENCH, FAST, PAPER, Scale, preset, run_until_convergence
from repro.network.topology import complete
from repro.schemes.centroid import CentroidScheme

from tests.conftest import two_cluster_values


class TestPresets:
    def test_paper_matches_publication(self):
        assert PAPER.n_nodes == 1000

    def test_lookup(self):
        assert preset("fast") is FAST
        assert preset("bench") is BENCH
        assert preset("paper") is PAPER

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="unknown scale"):
            preset("gigantic")

    def test_with_overrides_is_copy(self):
        modified = FAST.with_overrides(n_nodes=7)
        assert modified.n_nodes == 7
        assert FAST.n_nodes == 100


class TestRunner:
    def test_stops_early_when_settled(self):
        values = two_cluster_values(20, seed=0)
        scale = Scale(name="tiny", n_nodes=20, max_rounds=200, convergence_tolerance=1e-5)
        _, nodes, rounds = run_until_convergence(
            values, CentroidScheme(), k=2, scale=scale, seed=0
        )
        assert rounds < 200  # converged well before the cap
        assert len(nodes) == 20

    def test_respects_round_cap(self):
        values = two_cluster_values(16, seed=0)
        scale = Scale(name="tiny", n_nodes=16, max_rounds=3, convergence_tolerance=0.0)
        engine, _, rounds = run_until_convergence(
            values, CentroidScheme(), k=2, scale=scale, seed=0
        )
        assert rounds == 3
        assert engine.metrics.rounds == 3

    def test_custom_graph_accepted(self):
        values = two_cluster_values(12, seed=0)
        scale = Scale(name="tiny", n_nodes=12, max_rounds=5)
        engine, _, _ = run_until_convergence(
            values, CentroidScheme(), k=2, scale=scale, seed=0, graph=complete(12)
        )
        assert engine.graph.number_of_nodes() == 12
