"""The figure experiments at fast scale: every bench code path under pytest.

These are the same functions the benchmark suite runs at larger scale; the
assertions here encode the *shape* claims of the paper's evaluation.
"""

import numpy as np
import pytest

from repro.experiments.common import Scale
from repro.experiments.fig1 import run_fig1
from repro.experiments.fig2 import run_fig2
from repro.experiments.fig3 import run_fig3_row
from repro.experiments.fig4 import run_fig4

TINY = Scale(name="tiny", n_nodes=80, max_rounds=25, deltas=(0.0, 10.0))


class TestFig1:
    def test_demonstrates_the_paper_claim(self):
        result = run_fig1()
        assert result.centroid_choice == "A"
        assert result.gaussian_choice == "B"
        assert result.demonstrates_claim

    def test_distances_and_densities_consistent(self):
        result = run_fig1()
        assert result.distance_to_a < result.distance_to_b
        assert result.log_density_b > result.log_density_a


class TestFig2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig2(TINY, k=7, seed=2)

    def test_three_source_components_recovered(self, result):
        assert len(result.recovery.matches) == 3
        assert result.recovery.max_mean_distance < 2.0

    def test_recovered_weights_roughly_correct(self, result):
        assert result.recovery.max_weight_error < 0.15

    def test_distributed_likelihood_near_centralized(self, result):
        """The distributed estimate must be a usable density model: within
        a modest margin of centralised EM on the same data."""
        assert result.log_likelihood_distributed >= result.log_likelihood_centralized - 0.5

    def test_collection_budget_respected(self, result):
        assert result.n_collections <= 7


class TestFig3:
    def test_far_outliers_removed(self):
        row = run_fig3_row(12.0, scale=TINY, seed=3)
        # Robust beats regular clearly once the outliers are separable.
        assert row.robust_error < row.regular_error
        assert row.missed_outliers_pct < 50.0

    def test_no_outliers_baseline(self):
        row = run_fig3_row(0.0, scale=TINY, seed=3)
        # With delta=0 there is nothing to remove: both estimators land
        # close to the truth and close to each other.
        assert row.robust_error < 0.4
        assert abs(row.robust_error - row.regular_error) < 0.2

    def test_regular_error_grows_with_delta(self):
        near = run_fig3_row(0.0, scale=TINY, seed=3)
        far = run_fig3_row(16.0, scale=TINY, seed=3)
        assert far.regular_error > near.regular_error + 0.3


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig4(TINY, delta=10.0, rounds=22, seed=4)

    def test_robust_beats_regular_at_the_end(self, result):
        finals = result.final_errors()
        assert finals["robust_no_crashes"] < finals["regular_no_crashes"]
        assert finals["robust_with_crashes"] < finals["regular_with_crashes"]

    def test_crashes_do_not_break_convergence(self, result):
        finals = result.final_errors()
        # Crash indifference: same order of magnitude as the clean run.
        assert finals["robust_with_crashes"] < 3.0 * max(finals["robust_no_crashes"], 0.1)

    def test_error_decreases_from_first_round(self, result):
        assert result.robust_no_crashes[-1] < result.robust_no_crashes[0]
        assert result.regular_no_crashes[-1] < result.regular_no_crashes[0]

    def test_survivors_monotone_nonincreasing(self, result):
        survivors = result.survivors_with_crashes
        assert all(b <= a for a, b in zip(survivors, survivors[1:]))
        assert result.rounds == tuple(range(1, 23))
