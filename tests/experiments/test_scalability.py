"""Message-size, scalability and asynchronous experiments (tiny scale)."""

import numpy as np
import pytest

from repro.experiments.common import Scale
from repro.experiments.scalability import (
    measured_payload_bytes,
    run_async_ablation,
    run_message_size_ablation,
    run_scalability,
)

TINY = Scale(name="tiny", n_nodes=48, max_rounds=20)


class TestMessageSize:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_message_size_ablation(TINY, seed=21)

    def test_all_schemes_measured(self, rows):
        labels = {row.label for row in rows}
        assert labels == {"centroid", "diagonal_gaussian", "gaussian_mixture"}

    def test_size_independent_of_n(self, rows):
        """The paper's Section 2 claim, in bytes."""
        assert all(row["size_independent_of_n"] == 1.0 for row in rows)

    def test_scheme_size_ordering(self, rows):
        by_label = {row.label: row for row in rows}
        byte_columns = [key for key in rows[0].metrics if key.startswith("bytes_at")]
        column = byte_columns[0]
        assert (
            by_label["centroid"][column]
            < by_label["diagonal_gaussian"][column]
            < by_label["gaussian_mixture"][column]
        )


class TestMeasuredPayloadBytes:
    def test_measurement_conserves_weight(self):
        from repro.network.topology import complete
        from repro.protocols.classification import build_classification_network
        from repro.schemes.gm import GaussianMixtureScheme

        rng = np.random.default_rng(0)
        values = rng.normal(size=(12, 2))
        scheme = GaussianMixtureScheme(seed=0)
        engine, nodes = build_classification_network(
            values, scheme, k=2, graph=complete(12), seed=0
        )
        engine.run(10)
        before = sum(node.total_quanta for node in nodes)
        size = measured_payload_bytes(nodes, scheme, dimension=2)
        assert size > 0
        assert sum(node.total_quanta for node in nodes) == before


class TestScalability:
    def test_sweep_structure(self):
        rows = run_scalability(TINY, seed=22, sizes=(24, 48))
        assert [row.label for row in rows] == ["n=24", "n=48"]
        for row in rows:
            assert row["final_disagreement"] < 0.5
            assert row["bytes_per_message"] > 0

    def test_bytes_per_message_constant_in_n(self):
        rows = run_scalability(TINY, seed=22, sizes=(24, 48))
        sizes = {row["bytes_per_message"] for row in rows}
        assert len(sizes) == 1


class TestAsyncAblation:
    def test_both_topologies_reach_target(self):
        rows = run_async_ablation(TINY, seed=23, target_disagreement=0.2)
        by_label = {row.label: row for row in rows}
        assert set(by_label) == {"complete", "ring"}
        for row in rows:
            assert np.isfinite(row["sim_time_to_target"])
        # Dense converges no later than sparse.
        assert (
            by_label["complete"]["sim_time_to_target"]
            <= by_label["ring"]["sim_time_to_target"]
        )
