"""Collections: weighted summaries with optional provenance."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.collection import Collection
from repro.core.mixture import MixtureVector
from repro.core.weights import Quantization


class TestConstruction:
    def test_basic(self):
        collection = Collection(summary="s", quanta=4)
        assert collection.summary == "s"
        assert collection.quanta == 4
        assert collection.aux is None

    def test_rejects_zero_weight(self):
        with pytest.raises(ValueError):
            Collection(summary="s", quanta=0)

    def test_rejects_float_weight(self):
        with pytest.raises(ValueError):
            Collection(summary="s", quanta=1.5)

    def test_weight_conversion(self):
        collection = Collection(summary="s", quanta=3)
        assert collection.weight(Quantization(4)) == 0.75


class TestSplit:
    def test_shares_carry_same_summary(self):
        collection = Collection(summary=("mu", "sigma"), quanta=10)
        kept, sent = collection.split(Quantization(4))
        assert kept.summary is collection.summary
        assert sent.summary is collection.summary

    def test_weight_conservation(self):
        collection = Collection(summary="s", quanta=11)
        kept, sent = collection.split(Quantization(4))
        assert kept.quanta + sent.quanta == 11

    def test_single_quantum_returns_no_sent_share(self):
        collection = Collection(summary="s", quanta=1)
        kept, sent = collection.split(Quantization(4))
        assert kept is collection
        assert sent is None

    def test_aux_split_proportionally(self):
        aux = MixtureVector(np.array([6.0, 3.0]))
        collection = Collection(summary="s", quanta=9, aux=aux)
        kept, sent = collection.split(Quantization(4))
        assert kept.quanta == 5 and sent.quanta == 4
        assert np.allclose(kept.aux.components, np.array([6.0, 3.0]) * 5 / 9)
        assert np.allclose(sent.aux.components, np.array([6.0, 3.0]) * 4 / 9)

    def test_aux_l1_tracks_weight_after_split(self):
        aux = MixtureVector(np.array([4.0, 4.0]))
        collection = Collection(summary="s", quanta=8, aux=aux)
        kept, sent = collection.split(Quantization(4))
        assert kept.aux.l1 == pytest.approx(kept.quanta)
        assert sent.aux.l1 == pytest.approx(sent.quanta)

    @given(st.integers(min_value=1, max_value=10**9))
    def test_split_conserves_for_any_weight(self, quanta):
        collection = Collection(summary=None, quanta=quanta)
        kept, sent = collection.split(Quantization())
        total = kept.quanta + (sent.quanta if sent is not None else 0)
        assert total == quanta
