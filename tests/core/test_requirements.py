"""Machine checks of the instantiation requirements R1-R4 (Section 4.2.1).

Each scheme is checked against an *explicit* implementation of the mapping
``f`` from mixture-space vectors to summaries (computed directly from the
underlying value set), which is exactly how the paper defines the
requirements:

R2  ``val_to_summary(val_i) == f(e_i)``
R3  ``f`` (and hence ``merge_set``) is invariant to weight scaling
R4  merging summaries commutes with merging collections
R1  summaries are Lipschitz in the mixture-space angle

These are the preconditions of Lemma 1 and Theorem 1, so they are the
most load-bearing tests in the repository.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.gaussian import pool_moments
from repro.schemes.centroid import CentroidScheme
from repro.schemes.gaussian import GaussianSummary
from repro.schemes.gm import GaussianMixtureScheme
from repro.schemes.histogram import HistogramScheme

N_VALUES = 6

# A fixed, irregular value set shared by all property tests.
VALUES_2D = np.array(
    [[0.0, 0.0], [1.0, 3.0], [-2.0, 1.5], [4.0, -1.0], [2.5, 2.5], [-1.0, -3.0]]
)
VALUES_1D = np.array([[-4.0], [-1.5], [0.0], [1.0], [2.5], [6.0]])


def centroid_f(vector: np.ndarray) -> np.ndarray:
    """Explicit f for the centroid scheme: the weighted average."""
    return (vector[:, None] * VALUES_2D).sum(axis=0) / vector.sum()


def gaussian_f(vector: np.ndarray) -> GaussianSummary:
    """Explicit f for the Gaussian scheme: pooled moments of the values."""
    covs = np.zeros((N_VALUES, 2, 2))
    mean, cov = pool_moments(vector, VALUES_2D, covs)
    return GaussianSummary(mean=mean, cov=cov)


def histogram_f(scheme: HistogramScheme, vector: np.ndarray) -> np.ndarray:
    """Explicit f for the histogram scheme: weighted bin proportions."""
    histogram = np.zeros(scheme.bins)
    for value, weight in zip(VALUES_1D[:, 0], vector):
        histogram[scheme._bin_of(float(value))] += weight
    return histogram / vector.sum()


def angle_between(v1: np.ndarray, v2: np.ndarray) -> float:
    """The mixture-space pseudo-metric d_M: the angle between vectors."""
    cosine = float(v1 @ v2 / (np.linalg.norm(v1) * np.linalg.norm(v2)))
    return math.acos(min(1.0, max(-1.0, cosine)))


positive_vectors = st.lists(
    st.floats(min_value=0.05, max_value=1.0), min_size=N_VALUES, max_size=N_VALUES
).map(lambda components: np.array(components))

vector_lists = st.lists(positive_vectors, min_size=2, max_size=4)


# ----------------------------------------------------------------------
# R2: values map to their summaries
# ----------------------------------------------------------------------
class TestR2:
    def test_centroid(self):
        scheme = CentroidScheme()
        for i in range(N_VALUES):
            unit = np.eye(N_VALUES)[i]
            assert np.allclose(scheme.val_to_summary(VALUES_2D[i]), centroid_f(unit))

    def test_gaussian(self):
        scheme = GaussianMixtureScheme()
        for i in range(N_VALUES):
            unit = np.eye(N_VALUES)[i]
            summary = scheme.val_to_summary(VALUES_2D[i])
            assert summary.close_to(gaussian_f(unit), tolerance=1e-12)

    def test_histogram(self):
        scheme = HistogramScheme(low=-8.0, high=8.0, bins=16)
        for i in range(N_VALUES):
            unit = np.eye(N_VALUES)[i]
            assert np.allclose(scheme.val_to_summary(VALUES_1D[i]), histogram_f(scheme, unit))


# ----------------------------------------------------------------------
# R3: weight-scale invariance
# ----------------------------------------------------------------------
class TestR3:
    @given(positive_vectors, st.floats(min_value=0.01, max_value=100.0))
    def test_centroid_f_scale_invariant(self, vector, alpha):
        assert np.allclose(centroid_f(vector), centroid_f(alpha * vector))

    @given(positive_vectors, st.floats(min_value=0.01, max_value=100.0))
    def test_gaussian_f_scale_invariant(self, vector, alpha):
        assert gaussian_f(vector).close_to(gaussian_f(alpha * vector), tolerance=1e-8)

    @given(vector_lists, st.floats(min_value=0.01, max_value=100.0))
    def test_merge_set_scale_invariant(self, vectors, alpha):
        """Scaling all weights in merge_set leaves the result unchanged."""
        scheme = CentroidScheme()
        items = [(centroid_f(v), float(v.sum())) for v in vectors]
        scaled = [(summary, alpha * weight) for summary, weight in items]
        assert np.allclose(scheme.merge_set(items), scheme.merge_set(scaled))


# ----------------------------------------------------------------------
# R4: merging summaries == summarising the merged collection
# ----------------------------------------------------------------------
class TestR4:
    @given(vector_lists)
    @settings(max_examples=50)
    def test_centroid(self, vectors):
        scheme = CentroidScheme()
        items = [(centroid_f(v), float(v.sum())) for v in vectors]
        merged = scheme.merge_set(items)
        expected = centroid_f(np.sum(vectors, axis=0))
        assert np.allclose(merged, expected, atol=1e-10)

    @given(vector_lists)
    @settings(max_examples=50)
    def test_gaussian(self, vectors):
        scheme = GaussianMixtureScheme()
        items = [(gaussian_f(v), float(v.sum())) for v in vectors]
        merged = scheme.merge_set(items)
        expected = gaussian_f(np.sum(vectors, axis=0))
        assert merged.close_to(expected, tolerance=1e-8)

    @given(vector_lists)
    @settings(max_examples=50)
    def test_histogram(self, vectors):
        scheme = HistogramScheme(low=-8.0, high=8.0, bins=16)
        items = [(histogram_f(scheme, v), float(v.sum())) for v in vectors]
        merged = scheme.merge_set(items)
        expected = histogram_f(scheme, np.sum(vectors, axis=0))
        assert np.allclose(merged, expected, atol=1e-10)


# ----------------------------------------------------------------------
# R1: summaries are Lipschitz in the mixture-space angle
# ----------------------------------------------------------------------
class TestR1:
    def test_parallel_vectors_have_identical_summaries(self):
        """d_M = 0 (same direction) must imply d_S = 0."""
        scheme = CentroidScheme()
        vector = np.array([0.3, 0.1, 0.25, 0.2, 0.4, 0.15])
        assert scheme.distance(centroid_f(vector), centroid_f(3.0 * vector)) == pytest.approx(0.0)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_sampled_lipschitz_bound_centroid(self, seed):
        """Empirical ratio d_S/d_M stays bounded over random vector pairs.

        With components bounded away from zero, the Lipschitz constant of
        the weighted average in the vector angle is bounded by a modest
        multiple of the value-set diameter; 50x diameter is a generous
        envelope that would still catch a broken (non-continuous) scheme.
        """
        scheme = CentroidScheme()
        generator = np.random.default_rng(seed)
        diameter = max(
            np.linalg.norm(a - b) for a in VALUES_2D for b in VALUES_2D
        )
        bound = 50.0 * diameter
        for _ in range(200):
            v1 = generator.uniform(0.05, 1.0, N_VALUES)
            v2 = generator.uniform(0.05, 1.0, N_VALUES)
            d_m = angle_between(v1, v2)
            if d_m < 1e-4:
                continue
            d_s = scheme.distance(centroid_f(v1), centroid_f(v2))
            assert d_s <= bound * d_m

    def test_small_perturbation_small_summary_change(self):
        """Continuity: an epsilon change in the vector moves f by O(epsilon)."""
        vector = np.array([0.5, 0.3, 0.7, 0.2, 0.4, 0.6])
        for epsilon in (1e-2, 1e-4, 1e-6):
            perturbed = vector + epsilon
            shift = float(np.linalg.norm(centroid_f(vector) - centroid_f(perturbed)))
            assert shift <= 100.0 * epsilon
