"""Wire serialisation: roundtrips, fixed sizes, error paths."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.collection import Collection
from repro.core.serialization import (
    CentroidCodec,
    DiagonalGaussianCodec,
    GaussianCodec,
    HistogramCodec,
    codec_for_scheme,
    decode_payload,
    encode_payload,
    payload_size_bytes,
)
from repro.schemes.centroid import CentroidScheme
from repro.schemes.diagonal import DiagonalGaussianScheme
from repro.schemes.gaussian import GaussianSummary
from repro.schemes.gm import GaussianMixtureScheme
from repro.schemes.histogram import HistogramScheme


class TestCentroidCodec:
    def test_roundtrip(self):
        codec = CentroidCodec(3)
        summary = np.array([1.5, -2.0, 1e-12])
        decoded = codec.decode_summary(codec.encode_summary(summary))
        assert np.array_equal(decoded, summary)

    def test_fixed_size(self):
        codec = CentroidCodec(4)
        assert len(codec.encode_summary(np.zeros(4))) == codec.summary_size() == 32

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            CentroidCodec(2).encode_summary(np.zeros(3))

    def test_rejects_bad_dimension(self):
        with pytest.raises(ValueError):
            CentroidCodec(0)

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False,
                              min_value=-1e12, max_value=1e12),
                    min_size=2, max_size=2))
    @settings(max_examples=50)
    def test_roundtrip_property(self, components):
        codec = CentroidCodec(2)
        summary = np.array(components)
        assert np.array_equal(codec.decode_summary(codec.encode_summary(summary)), summary)


class TestGaussianCodec:
    def test_roundtrip_preserves_symmetry(self):
        codec = GaussianCodec(2)
        summary = GaussianSummary(mean=[1.0, 2.0], cov=[[2.0, 0.7], [0.7, 1.0]])
        decoded = codec.decode_summary(codec.encode_summary(summary))
        assert decoded.close_to(summary, tolerance=0.0)
        assert np.array_equal(decoded.cov, decoded.cov.T)

    def test_size_is_triangle(self):
        # d=3: 3 mean + 6 upper-triangle = 9 floats = 72 bytes.
        assert GaussianCodec(3).summary_size() == 72

    def test_rejects_wrong_type(self):
        with pytest.raises(TypeError):
            GaussianCodec(2).encode_summary(np.zeros(2))

    def test_rejects_dimension_mismatch(self):
        summary = GaussianSummary(mean=[0.0], cov=[[1.0]])
        with pytest.raises(ValueError):
            GaussianCodec(2).encode_summary(summary)


class TestDiagonalCodec:
    def test_roundtrip_diagonal(self):
        codec = DiagonalGaussianCodec(2)
        summary = GaussianSummary(mean=[1.0, -1.0], cov=np.diag([0.5, 2.0]))
        decoded = codec.decode_summary(codec.encode_summary(summary))
        assert decoded.close_to(summary, tolerance=0.0)

    def test_smaller_than_full_gaussian(self):
        for d in (2, 3, 8):
            assert DiagonalGaussianCodec(d).summary_size() < GaussianCodec(d).summary_size() or d <= 1

    def test_off_diagonals_dropped(self):
        codec = DiagonalGaussianCodec(2)
        summary = GaussianSummary(mean=[0.0, 0.0], cov=[[1.0, 0.9], [0.9, 1.0]])
        decoded = codec.decode_summary(codec.encode_summary(summary))
        assert decoded.cov[0, 1] == 0.0


class TestHistogramCodec:
    def test_roundtrip(self):
        codec = HistogramCodec(5)
        summary = np.array([0.2, 0.0, 0.5, 0.3, 0.0])
        assert np.array_equal(codec.decode_summary(codec.encode_summary(summary)), summary)

    def test_rejects_wrong_bins(self):
        with pytest.raises(ValueError):
            HistogramCodec(4).encode_summary(np.zeros(5))


class TestPayloads:
    def payload(self):
        return [
            Collection(summary=np.array([0.0, 0.0]), quanta=123456789),
            Collection(summary=np.array([5.0, -5.0]), quanta=1),
        ]

    def test_roundtrip(self):
        codec = CentroidCodec(2)
        blob = encode_payload(self.payload(), codec)
        decoded = decode_payload(blob, codec)
        assert len(decoded) == 2
        assert decoded[0].quanta == 123456789
        assert np.array_equal(decoded[1].summary, [5.0, -5.0])

    def test_size_formula_exact(self):
        codec = CentroidCodec(2)
        blob = encode_payload(self.payload(), codec)
        assert len(blob) == payload_size_bytes(2, codec)

    def test_codec_mismatch_rejected(self):
        blob = encode_payload(self.payload(), CentroidCodec(2))
        with pytest.raises(ValueError, match="codec"):
            decode_payload(blob, GaussianCodec(2))

    def test_trailing_bytes_rejected(self):
        codec = CentroidCodec(2)
        blob = encode_payload(self.payload(), codec) + b"\x00"
        with pytest.raises(ValueError, match="trailing"):
            decode_payload(blob, codec)

    def test_empty_payload(self):
        codec = CentroidCodec(2)
        assert decode_payload(encode_payload([], codec), codec) == []

    def test_large_quanta_supported(self):
        """Default lattice weights (2^40 quanta/unit, many units) fit."""
        codec = CentroidCodec(1)
        payload = [Collection(summary=np.array([1.0]), quanta=1000 * (1 << 40))]
        decoded = decode_payload(encode_payload(payload, codec), codec)
        assert decoded[0].quanta == 1000 * (1 << 40)


class TestCodecSelection:
    def test_scheme_dispatch(self):
        assert isinstance(codec_for_scheme(CentroidScheme(), 2), CentroidCodec)
        assert isinstance(codec_for_scheme(GaussianMixtureScheme(), 2), GaussianCodec)
        assert isinstance(
            codec_for_scheme(DiagonalGaussianScheme(), 2), DiagonalGaussianCodec
        )
        histogram_codec = codec_for_scheme(HistogramScheme(low=0, high=1, bins=7), 1)
        assert isinstance(histogram_codec, HistogramCodec)
        assert histogram_codec.bins == 7

    def test_unknown_scheme_rejected(self):
        with pytest.raises(TypeError):
            codec_for_scheme(object(), 2)


class TestEndToEndWire:
    def test_real_gossip_payload_roundtrips(self):
        """A payload produced by a live node survives the wire intact."""
        from repro.core.node import ClassifierNode
        from repro.core.weights import Quantization

        scheme = GaussianMixtureScheme(seed=0)
        node = ClassifierNode(0, np.array([1.0, 2.0]), scheme, k=3, quantization=Quantization())
        payload = node.make_message()
        codec = codec_for_scheme(scheme, dimension=2)
        decoded = decode_payload(encode_payload(payload, codec), codec)
        assert len(decoded) == len(payload)
        for original, restored in zip(payload, decoded):
            assert restored.quanta == original.quanta
            assert restored.summary.close_to(original.summary, tolerance=0.0)
