"""The Classification container (Definition 2)."""

import numpy as np
import pytest

from repro.core.classification import Classification
from repro.core.collection import Collection
from repro.core.weights import Quantization


def make(quantas):
    return Classification([Collection(summary=i, quanta=q) for i, q in enumerate(quantas)])


class TestContainer:
    def test_len_iter_getitem(self):
        classification = make([1, 2, 3])
        assert len(classification) == 3
        assert [c.quanta for c in classification] == [1, 2, 3]
        assert classification[1].quanta == 2

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Classification([])


class TestWeights:
    def test_total_quanta(self):
        assert make([1, 2, 3]).total_quanta == 6

    def test_total_weight(self):
        assert make([2, 2]).total_weight(Quantization(4)) == 1.0

    def test_relative_weights_sum_to_one(self):
        relative = make([1, 2, 5]).relative_weights()
        assert np.isclose(relative.sum(), 1.0)
        assert np.allclose(relative, [1 / 8, 2 / 8, 5 / 8])

    def test_summaries(self):
        assert make([1, 1]).summaries() == [0, 1]


class TestOrdering:
    def test_heaviest(self):
        assert make([3, 9, 2]).heaviest().quanta == 9

    def test_sorted_by_weight(self):
        ordered = make([3, 9, 2]).sorted_by_weight()
        assert [c.quanta for c in ordered] == [9, 3, 2]
