"""Property-based wire-format tests: arbitrary payloads survive the round trip.

Covers every payload kind and all four codecs (centroid, full Gaussian,
diagonal Gaussian, histogram), plus the negative space: truncated and
bit-flipped messages must be *rejected*, never partially decoded — a
half-applied payload would corrupt the weight-conservation invariant.
"""

import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.collection import Collection
from repro.core.serialization import (
    CentroidCodec,
    DiagonalGaussianCodec,
    GaussianCodec,
    HistogramCodec,
    decode_payload,
    encode_payload,
    payload_size_bytes,
)
from repro.schemes.gaussian import GaussianSummary

finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e9, max_value=1e9
)


@st.composite
def gaussian_collections(draw):
    """A payload of 1-6 random 2-D Gaussian collections."""
    count = draw(st.integers(min_value=1, max_value=6))
    collections = []
    for _ in range(count):
        mean = np.array(draw(st.tuples(finite_floats, finite_floats)))
        # Build a PSD covariance from a random factor.
        a = np.array(
            [
                draw(st.tuples(finite_floats, finite_floats)),
                draw(st.tuples(finite_floats, finite_floats)),
            ]
        ) / 1e5
        cov = a @ a.T
        quanta = draw(st.integers(min_value=1, max_value=1 << 50))
        collections.append(
            Collection(summary=GaussianSummary(mean=mean, cov=cov), quanta=quanta)
        )
    return collections


class TestGaussianWireProperties:
    @given(gaussian_collections())
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_is_lossless(self, payload):
        codec = GaussianCodec(2)
        decoded = decode_payload(encode_payload(payload, codec), codec)
        assert len(decoded) == len(payload)
        for original, restored in zip(payload, decoded):
            assert restored.quanta == original.quanta
            assert np.array_equal(restored.summary.mean, original.summary.mean)
            assert np.allclose(
                restored.summary.cov, original.summary.cov, rtol=0, atol=0
            )

    @given(gaussian_collections())
    @settings(max_examples=30, deadline=None)
    def test_size_matches_formula(self, payload):
        codec = GaussianCodec(2)
        blob = encode_payload(payload, codec)
        assert len(blob) == payload_size_bytes(len(payload), codec)

    @given(gaussian_collections())
    @settings(max_examples=30, deadline=None)
    def test_diagonal_codec_preserves_diagonal_exactly(self, payload):
        codec = DiagonalGaussianCodec(2)
        decoded = decode_payload(encode_payload(payload, codec), codec)
        for original, restored in zip(payload, decoded):
            assert np.array_equal(
                np.diag(restored.summary.cov), np.diag(original.summary.cov)
            )
            # Off-diagonals are intentionally dropped by this codec.
            assert restored.summary.cov[0, 1] == 0.0


@st.composite
def vector_collections(draw, dimension):
    """A payload of 1-6 random vector-summary collections (centroid /
    histogram shape: the summary IS a ``dimension``-vector)."""
    count = draw(st.integers(min_value=1, max_value=6))
    collections = []
    for _ in range(count):
        vector = np.array(
            draw(
                st.lists(finite_floats, min_size=dimension, max_size=dimension)
            )
        )
        quanta = draw(st.integers(min_value=1, max_value=1 << 50))
        collections.append(Collection(summary=vector, quanta=quanta))
    return collections


@st.composite
def full_gaussian_collections(draw, dimension):
    """Like :func:`gaussian_collections` but for any dimension."""
    count = draw(st.integers(min_value=1, max_value=5))
    collections = []
    for _ in range(count):
        mean = np.array(
            draw(st.lists(finite_floats, min_size=dimension, max_size=dimension))
        )
        factor = (
            np.array(
                draw(
                    st.lists(
                        st.lists(
                            finite_floats, min_size=dimension, max_size=dimension
                        ),
                        min_size=dimension,
                        max_size=dimension,
                    )
                )
            )
            / 1e5
        )
        cov = factor @ factor.T
        quanta = draw(st.integers(min_value=1, max_value=1 << 50))
        collections.append(
            Collection(summary=GaussianSummary(mean=mean, cov=cov), quanta=quanta)
        )
    return collections


@st.composite
def any_codec_payload(draw):
    """(codec, payload) across every codec family and several shapes.

    This is the exhaustive axis: one strategy that can produce every
    payload kind the wire format supports, so a single property covers
    the whole codec registry.
    """
    family = draw(st.sampled_from(["centroid", "gaussian", "diagonal", "histogram"]))
    if family == "centroid":
        dimension = draw(st.integers(min_value=1, max_value=4))
        return CentroidCodec(dimension), draw(vector_collections(dimension))
    if family == "histogram":
        bins = draw(st.integers(min_value=2, max_value=16))
        return HistogramCodec(bins), draw(vector_collections(bins))
    dimension = draw(st.integers(min_value=1, max_value=3))
    payload = draw(full_gaussian_collections(dimension))
    if family == "gaussian":
        return GaussianCodec(dimension), payload
    return DiagonalGaussianCodec(dimension), payload


def _payload_equal(codec, original, restored):
    """Round-trip equality appropriate to the codec family."""
    assert len(restored) == len(original)
    for before, after in zip(original, restored):
        assert after.quanta == before.quanta
        if isinstance(before.summary, GaussianSummary):
            assert np.array_equal(after.summary.mean, before.summary.mean)
            if isinstance(codec, DiagonalGaussianCodec):
                assert np.array_equal(
                    np.diag(after.summary.cov), np.diag(before.summary.cov)
                )
            else:
                assert np.array_equal(after.summary.cov, before.summary.cov)
        else:
            assert np.array_equal(after.summary, before.summary)


class TestAllCodecsRoundTrip:
    @given(any_codec_payload())
    @settings(max_examples=120, deadline=None)
    def test_roundtrip_is_lossless_for_every_codec(self, codec_and_payload):
        codec, payload = codec_and_payload
        blob = encode_payload(payload, codec)
        _payload_equal(codec, payload, decode_payload(blob, codec))

    @given(any_codec_payload())
    @settings(max_examples=60, deadline=None)
    def test_size_formula_holds_for_every_codec(self, codec_and_payload):
        codec, payload = codec_and_payload
        assert len(encode_payload(payload, codec)) == payload_size_bytes(
            len(payload), codec
        )

    @given(any_codec_payload())
    @settings(max_examples=60, deadline=None)
    def test_double_roundtrip_is_stable(self, codec_and_payload):
        """encode(decode(encode(x))) == encode(x): the wire form is a
        fixpoint, so relaying a payload never perturbs it."""
        codec, payload = codec_and_payload
        blob = encode_payload(payload, codec)
        assert encode_payload(decode_payload(blob, codec), codec) == blob


class TestWireRejection:
    """Truncated / corrupted messages must raise, never half-decode."""

    @given(any_codec_payload(), st.data())
    @settings(max_examples=80, deadline=None)
    def test_truncation_is_rejected(self, codec_and_payload, data):
        codec, payload = codec_and_payload
        blob = encode_payload(payload, codec)
        cut = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
        with pytest.raises((ValueError, struct.error)):
            decode_payload(blob[:cut], codec)

    @given(any_codec_payload(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_trailing_bytes_are_rejected(self, codec_and_payload, data):
        codec, payload = codec_and_payload
        blob = encode_payload(payload, codec)
        extra = data.draw(st.binary(min_size=1, max_size=16))
        with pytest.raises(ValueError):
            decode_payload(blob + extra, codec)

    @given(any_codec_payload())
    @settings(max_examples=40, deadline=None)
    def test_wrong_version_is_rejected(self, codec_and_payload):
        codec, payload = codec_and_payload
        blob = bytearray(encode_payload(payload, codec))
        blob[0] ^= 0xFF  # version byte
        with pytest.raises(ValueError):
            decode_payload(bytes(blob), codec)

    @given(any_codec_payload())
    @settings(max_examples=40, deadline=None)
    def test_codec_mismatch_is_rejected(self, codec_and_payload):
        codec, payload = codec_and_payload
        blob = bytearray(encode_payload(payload, codec))
        blob[1] ^= 0x55  # codec-id byte
        with pytest.raises(ValueError):
            decode_payload(bytes(blob), codec)

    @given(any_codec_payload(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_count_inflation_is_rejected(self, codec_and_payload, data):
        """A corrupted count field must not read past the buffer."""
        codec, payload = codec_and_payload
        blob = bytearray(encode_payload(payload, codec))
        inflated = len(payload) + data.draw(st.integers(min_value=1, max_value=50))
        blob[2:4] = struct.pack("!H", inflated)
        with pytest.raises((ValueError, struct.error)):
            decode_payload(bytes(blob), codec)
