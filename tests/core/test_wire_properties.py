"""Property-based wire-format tests: arbitrary payloads survive the round trip."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.collection import Collection
from repro.core.serialization import (
    DiagonalGaussianCodec,
    GaussianCodec,
    decode_payload,
    encode_payload,
    payload_size_bytes,
)
from repro.schemes.gaussian import GaussianSummary

finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e9, max_value=1e9
)


@st.composite
def gaussian_collections(draw):
    """A payload of 1-6 random 2-D Gaussian collections."""
    count = draw(st.integers(min_value=1, max_value=6))
    collections = []
    for _ in range(count):
        mean = np.array(draw(st.tuples(finite_floats, finite_floats)))
        # Build a PSD covariance from a random factor.
        a = np.array(
            [
                draw(st.tuples(finite_floats, finite_floats)),
                draw(st.tuples(finite_floats, finite_floats)),
            ]
        ) / 1e5
        cov = a @ a.T
        quanta = draw(st.integers(min_value=1, max_value=1 << 50))
        collections.append(
            Collection(summary=GaussianSummary(mean=mean, cov=cov), quanta=quanta)
        )
    return collections


class TestGaussianWireProperties:
    @given(gaussian_collections())
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_is_lossless(self, payload):
        codec = GaussianCodec(2)
        decoded = decode_payload(encode_payload(payload, codec), codec)
        assert len(decoded) == len(payload)
        for original, restored in zip(payload, decoded):
            assert restored.quanta == original.quanta
            assert np.array_equal(restored.summary.mean, original.summary.mean)
            assert np.allclose(
                restored.summary.cov, original.summary.cov, rtol=0, atol=0
            )

    @given(gaussian_collections())
    @settings(max_examples=30, deadline=None)
    def test_size_matches_formula(self, payload):
        codec = GaussianCodec(2)
        blob = encode_payload(payload, codec)
        assert len(blob) == payload_size_bytes(len(payload), codec)

    @given(gaussian_collections())
    @settings(max_examples=30, deadline=None)
    def test_diagonal_codec_preserves_diagonal_exactly(self, payload):
        codec = DiagonalGaussianCodec(2)
        decoded = decode_payload(encode_payload(payload, codec), codec)
        for original, restored in zip(payload, decoded):
            assert np.array_equal(
                np.diag(restored.summary.cov), np.diag(original.summary.cov)
            )
            # Off-diagonals are intentionally dropped by this codec.
            assert restored.summary.cov[0, 1] == 0.0
