"""The partition validator: Algorithm 1's structural conformance rules."""

import pytest

from repro.core.collection import Collection
from repro.core.scheme import PartitionError, validate_partition
from repro.core.weights import Quantization

LATTICE = Quantization(4)


def collections(quantas):
    return [Collection(summary=i, quanta=q) for i, q in enumerate(quantas)]


class TestValidPartitions:
    def test_single_group(self):
        validate_partition([[0, 1, 2]], collections([2, 3, 4]), k=2, quantization=LATTICE)

    def test_exact_k_groups(self):
        validate_partition([[0], [1]], collections([2, 3]), k=2, quantization=LATTICE)

    def test_minimum_weight_merged_is_fine(self):
        validate_partition([[0, 1]], collections([1, 3]), k=2, quantization=LATTICE)

    def test_lone_collection_may_be_minimum_weight(self):
        """A solitary weight-q collection has no merge partner; allowed."""
        validate_partition([[0]], collections([1]), k=2, quantization=LATTICE)


class TestRuleViolations:
    def test_too_many_groups(self):
        with pytest.raises(PartitionError, match="bound is k"):
            validate_partition(
                [[0], [1], [2]], collections([2, 2, 2]), k=2, quantization=LATTICE
            )

    def test_empty_group(self):
        with pytest.raises(PartitionError, match="empty group"):
            validate_partition([[0, 1], []], collections([2, 2]), k=3, quantization=LATTICE)

    def test_duplicated_index(self):
        with pytest.raises(PartitionError, match="two groups"):
            validate_partition([[0], [0, 1]], collections([2, 2]), k=3, quantization=LATTICE)

    def test_out_of_range_index(self):
        with pytest.raises(PartitionError, match="out of range"):
            validate_partition([[0, 5]], collections([2, 2]), k=3, quantization=LATTICE)

    def test_dropped_index(self):
        with pytest.raises(PartitionError, match="drops"):
            validate_partition([[0]], collections([2, 2]), k=3, quantization=LATTICE)

    def test_unmerged_minimum_weight_collection(self):
        """Section 4.1 rule 2: a weight-q collection must not stay alone."""
        with pytest.raises(PartitionError, match="minimum-weight"):
            validate_partition([[0], [1]], collections([1, 4]), k=3, quantization=LATTICE)
