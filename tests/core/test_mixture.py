"""Auxiliary mixture-space vectors (Section 4.2's proof machinery)."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.mixture import MixtureVector


class TestConstruction:
    def test_unit_vector(self):
        vector = MixtureVector.unit(index=2, n_inputs=5, quanta=8)
        assert vector.components.tolist() == [0, 0, 8, 0, 0]
        assert vector.l1 == 8

    def test_unit_rejects_out_of_range_index(self):
        with pytest.raises(ValueError):
            MixtureVector.unit(index=5, n_inputs=5, quanta=8)

    def test_rejects_matrix(self):
        with pytest.raises(ValueError):
            MixtureVector(np.zeros((2, 2)))

    def test_sum_of(self):
        a = MixtureVector.unit(0, 3, 4)
        b = MixtureVector.unit(1, 3, 2)
        total = MixtureVector.sum_of([a, b])
        assert total.components.tolist() == [4, 2, 0]

    def test_sum_of_empty_rejected(self):
        with pytest.raises(ValueError):
            MixtureVector.sum_of([])


class TestScaling:
    def test_scaled_halves(self):
        vector = MixtureVector(np.array([4.0, 2.0]))
        half = vector.scaled(1, 2)
        assert half.components.tolist() == [2.0, 1.0]

    def test_scaled_rejects_zero_denominator(self):
        with pytest.raises(ValueError):
            MixtureVector(np.array([1.0])).scaled(1, 0)

    @given(
        st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=8),
        st.integers(min_value=1, max_value=100),
        st.integers(min_value=1, max_value=100),
    )
    def test_split_shares_sum_to_original(self, components, kept, sent):
        """The two scaled shares of a split reassemble the original vector."""
        if sum(components) == 0:
            components[0] = 1
        total = kept + sent
        vector = MixtureVector(np.array(components, dtype=float))
        kept_share = vector.scaled(kept, total)
        sent_share = vector.scaled(sent, total)
        reassembled = kept_share.components + sent_share.components
        assert np.allclose(reassembled, vector.components, rtol=1e-12)


class TestNorms:
    def test_l1_equals_component_sum(self):
        assert MixtureVector(np.array([1.0, 2.0, 3.0])).l1 == 6.0

    def test_l2(self):
        assert MixtureVector(np.array([3.0, 4.0])).l2 == 5.0

    def test_n_inputs(self):
        assert MixtureVector(np.zeros(7)).n_inputs == 7

    def test_normalized_unit_norm(self):
        normalized = MixtureVector(np.array([3.0, 4.0])).normalized()
        assert math.isclose(float(np.linalg.norm(normalized)), 1.0)

    def test_normalized_zero_vector_rejected(self):
        with pytest.raises(ValueError):
            MixtureVector(np.zeros(3)).normalized()


class TestReferenceAngles:
    def test_own_axis_angle_is_zero(self):
        vector = MixtureVector.unit(1, 4, 10)
        assert vector.reference_angle(1) == pytest.approx(0.0)

    def test_other_axis_angle_is_right_angle(self):
        vector = MixtureVector.unit(1, 4, 10)
        assert vector.reference_angle(0) == pytest.approx(math.pi / 2)

    def test_diagonal_angle(self):
        vector = MixtureVector(np.array([1.0, 1.0]))
        assert vector.reference_angle(0) == pytest.approx(math.pi / 4)

    def test_vectorised_matches_scalar(self):
        vector = MixtureVector(np.array([1.0, 2.0, 0.5, 0.0]))
        angles = vector.reference_angles()
        for axis in range(4):
            assert angles[axis] == pytest.approx(vector.reference_angle(axis))

    def test_zero_vector_rejected(self):
        with pytest.raises(ValueError):
            MixtureVector(np.zeros(2)).reference_angles()

    def test_merging_narrows_angles(self):
        """A merged vector's angle to each axis lies between the originals'."""
        a = MixtureVector.unit(0, 2, 10)
        b = MixtureVector.unit(1, 2, 10)
        merged = MixtureVector.sum_of([a, b])
        for axis in range(2):
            low = min(a.reference_angle(axis), b.reference_angle(axis))
            high = max(a.reference_angle(axis), b.reference_angle(axis))
            assert low <= merged.reference_angle(axis) <= high


class TestProvenance:
    def test_share_of(self):
        vector = MixtureVector(np.array([1.0, 3.0, 4.0]))
        assert vector.share_of([1, 2]) == pytest.approx(7.0 / 8.0)

    def test_share_of_empty_weight(self):
        vector = MixtureVector(np.array([0.0, 0.0]))
        assert vector.share_of([0]) == 0.0
