"""The generic algorithm node: split, receive/merge, bookkeeping."""

import numpy as np
import pytest

from repro.core.collection import Collection
from repro.core.node import ClassifierNode
from repro.core.weights import Quantization
from repro.schemes.centroid import CentroidScheme


def make_node(value, k=3, quantization=None, **kwargs):
    return ClassifierNode(
        node_id=0,
        value=np.asarray(value, dtype=float),
        scheme=CentroidScheme(),
        k=k,
        quantization=quantization or Quantization(16),
        **kwargs,
    )


class TestInitialisation:
    def test_initial_classification_is_own_value(self):
        node = make_node([1.0, 2.0])
        classification = node.classification
        assert len(classification) == 1
        assert classification[0].quanta == 16
        assert np.allclose(classification[0].summary, [1.0, 2.0])

    def test_rejects_k_below_one(self):
        with pytest.raises(ValueError):
            make_node([1.0], k=0)

    def test_track_aux_requires_n_inputs(self):
        with pytest.raises(ValueError, match="n_inputs"):
            make_node([1.0], track_aux=True)

    def test_aux_initialised_to_unit_vector(self):
        node = ClassifierNode(
            node_id=2,
            value=np.array([1.0]),
            scheme=CentroidScheme(),
            k=2,
            quantization=Quantization(16),
            track_aux=True,
            n_inputs=4,
        )
        aux = node.classification[0].aux
        assert aux.components.tolist() == [0, 0, 16, 0]


class TestSplit:
    def test_make_message_halves_weight(self):
        node = make_node([1.0])
        payload = node.make_message()
        assert len(payload) == 1
        assert payload[0].quanta == 8
        assert node.total_quanta == 8

    def test_split_conserves_total_weight(self):
        node = make_node([1.0])
        total = node.total_quanta
        for _ in range(5):
            payload = node.make_message()
            total_sent = sum(c.quanta for c in payload)
            assert node.total_quanta + total_sent == total
            total = node.total_quanta

    def test_single_quantum_collections_produce_empty_message(self):
        node = make_node([1.0], quantization=Quantization(1))
        payload = node.make_message()
        assert payload == []
        assert node.total_quanta == 1

    def test_stats_track_splits(self):
        node = make_node([1.0])
        node.make_message()
        node.make_message()
        assert node.stats.splits == 2
        assert node.stats.messages_made == 2


class TestReceive:
    def test_merge_respects_k(self):
        node = make_node([0.0, 0.0], k=2)
        incoming = [
            Collection(summary=np.array([10.0, 10.0]), quanta=16),
            Collection(summary=np.array([10.5, 10.0]), quanta=16),
            Collection(summary=np.array([0.5, 0.0]), quanta=16),
        ]
        node.receive(incoming)
        assert len(node.classification) <= 2

    def test_merge_conserves_weight(self):
        node = make_node([0.0], k=2)
        incoming = [Collection(summary=np.array([5.0]), quanta=16)]
        node.receive(incoming)
        assert node.total_quanta == 32

    def test_merged_centroid_is_weighted_average(self):
        node = make_node([0.0], k=1)
        node.receive([Collection(summary=np.array([6.0]), quanta=32)])
        classification = node.classification
        assert len(classification) == 1
        # (0 * 16 + 6 * 32) / 48 = 4
        assert np.allclose(classification[0].summary, [4.0])

    def test_empty_receive_is_noop(self):
        node = make_node([1.0])
        before = node.classification
        node.receive([])
        assert node.classification.collections == before.collections

    def test_batched_receive_runs_one_partition(self):
        node = make_node([0.0], k=2)
        incoming = [
            Collection(summary=np.array([1.0]), quanta=16),
            Collection(summary=np.array([2.0]), quanta=16),
        ]
        node.receive(incoming)
        assert node.stats.partition_calls == 1
        assert node.stats.collections_received == 2

    def test_singleton_groups_reuse_collection_objects(self):
        """Merging a singleton group is the identity (no new arithmetic)."""
        node = make_node([0.0, 0.0], k=4)
        far = Collection(summary=np.array([100.0, 100.0]), quanta=16)
        node.receive([far])
        assert any(c is far for c in node.classification)

    def test_aux_merged_by_summation(self):
        node = ClassifierNode(
            node_id=0,
            value=np.array([0.0]),
            scheme=CentroidScheme(),
            k=1,
            quantization=Quantization(16),
            track_aux=True,
            n_inputs=2,
        )
        other = ClassifierNode(
            node_id=1,
            value=np.array([2.0]),
            scheme=CentroidScheme(),
            k=1,
            quantization=Quantization(16),
            track_aux=True,
            n_inputs=2,
        )
        node.receive(other.make_message())
        aux = node.classification[0].aux
        assert np.allclose(aux.components, [16.0, 8.0])

    def test_validation_flag_accepts_correct_scheme(self):
        node = make_node([0.0], k=2, validate=True)
        node.receive([Collection(summary=np.array([1.0]), quanta=16)])
        assert node.total_quanta == 32
