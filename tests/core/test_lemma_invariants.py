"""Executable versions of the paper's proof invariants (Lemmas 1 and 2).

These tests run real gossip executions with auxiliary tracking switched on
and re-check, at every round, the invariants the convergence proof is
built on:

- Lemma 1: for every collection anywhere in the system,
  ``f(c.aux) == c.summary`` and ``||c.aux||_1 == c.weight``;
- Lemma 2: each maximal reference angle over the global pool is
  monotonically non-increasing;
- system-wide weight conservation (the precondition of both).
"""

import numpy as np
import pytest

from repro.core.convergence import max_reference_angles, pool_collections
from repro.core.weights import Quantization
from repro.ml.gaussian import pool_moments
from repro.network.topology import complete, ring
from repro.protocols.classification import build_classification_network
from repro.schemes.centroid import CentroidScheme
from repro.schemes.gm import GaussianMixtureScheme

N = 16
ROUNDS = 25


def run_with_aux(values, scheme, k, graph, seed=0):
    engine, nodes = build_classification_network(
        values,
        scheme,
        k=k,
        graph=graph,
        seed=seed,
        track_aux=True,
        validate=True,
    )
    return engine, nodes


@pytest.fixture
def values(rng):
    return np.vstack(
        [rng.normal([0, 0], 0.5, size=(N // 2, 2)), rng.normal([6, 6], 0.5, size=(N // 2, 2))]
    )


class TestLemma1:
    """f(aux) == summary and |aux|_1 == weight, throughout execution."""

    def test_centroid_scheme(self, values):
        engine, nodes = run_with_aux(values, CentroidScheme(), k=3, graph=complete(N))
        for _ in range(ROUNDS):
            engine.run_round()
            for collection in pool_collections(nodes):
                # Equation 2: the aux L1 norm equals the weight.
                assert collection.aux.l1 == pytest.approx(collection.quanta, rel=1e-9)
                # Equation 1: the summary equals f applied to the aux vector.
                expected = (
                    collection.aux.components[:, None] * values
                ).sum(axis=0) / collection.aux.l1
                assert np.allclose(collection.summary, expected, atol=1e-6)

    def test_gaussian_scheme(self, values):
        engine, nodes = run_with_aux(
            values, GaussianMixtureScheme(seed=1), k=3, graph=complete(N)
        )
        zero_covs = np.zeros((N, 2, 2))
        for _ in range(ROUNDS):
            engine.run_round()
            for collection in pool_collections(nodes):
                assert collection.aux.l1 == pytest.approx(collection.quanta, rel=1e-9)
                mean, cov = pool_moments(collection.aux.components, values, zero_covs)
                assert np.allclose(collection.summary.mean, mean, atol=1e-6)
                assert np.allclose(collection.summary.cov, cov, atol=1e-5)


class TestLemma2:
    """Maximal reference angles over the pool never increase."""

    @pytest.mark.parametrize("graph_builder", [complete, ring])
    def test_monotone_max_angles(self, values, graph_builder):
        engine, nodes = run_with_aux(
            values, GaussianMixtureScheme(seed=2), k=3, graph=graph_builder(N)
        )
        previous = max_reference_angles(pool_collections(nodes))
        for _ in range(ROUNDS):
            engine.run_round()
            current = max_reference_angles(pool_collections(nodes))
            assert np.all(current <= previous + 1e-9)
            previous = current


class TestWeightConservation:
    def test_total_quanta_invariant_without_crashes(self, values):
        quantization = Quantization()
        engine, nodes = run_with_aux(
            values, GaussianMixtureScheme(seed=3), k=3, graph=complete(N)
        )
        expected = N * quantization.unit
        for _ in range(ROUNDS):
            engine.run_round()
            assert sum(node.total_quanta for node in nodes) == expected

    def test_aux_provenance_sums_to_unit_per_input(self, values):
        """Every input value's weight is fully accounted for across the pool."""
        engine, nodes = run_with_aux(values, CentroidScheme(), k=3, graph=complete(N))
        engine.run(10)
        totals = np.zeros(N)
        for collection in pool_collections(nodes):
            totals += collection.aux.components
        assert np.allclose(totals, Quantization().unit, rtol=1e-9)
