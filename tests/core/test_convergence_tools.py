"""Convergence measurement machinery (Definition 3 instruments)."""

import numpy as np
import pytest

from repro.core.classification import Classification
from repro.core.collection import Collection
from repro.core.convergence import (
    ConvergenceDetector,
    classification_distance,
    disagreement,
    match_collections,
    max_reference_angles,
    pool_collections,
)
from repro.core.mixture import MixtureVector
from repro.core.node import ClassifierNode
from repro.core.weights import Quantization
from repro.schemes.centroid import CentroidScheme


def centroid_classification(entries):
    """entries: list of (position, quanta)."""
    return Classification(
        [Collection(summary=np.array(p, dtype=float), quanta=q) for p, q in entries]
    )


class TestClassificationDistance:
    def test_identical_is_zero(self):
        scheme = CentroidScheme()
        a = centroid_classification([([0.0, 0.0], 4), ([5.0, 0.0], 4)])
        assert classification_distance(a, a, scheme) == pytest.approx(0.0)

    def test_single_collection_pair(self):
        scheme = CentroidScheme()
        a = centroid_classification([([0.0, 0.0], 4)])
        b = centroid_classification([([3.0, 4.0], 8)])
        assert classification_distance(a, b, scheme) == pytest.approx(5.0)

    def test_symmetry(self):
        scheme = CentroidScheme()
        a = centroid_classification([([0.0], 3), ([10.0], 1)])
        b = centroid_classification([([1.0], 1), ([9.0], 1)])
        d_ab = classification_distance(a, b, scheme)
        d_ba = classification_distance(b, a, scheme)
        assert d_ab == pytest.approx(d_ba, rel=1e-9)

    def test_hand_computed_transport(self):
        """Equal-weight mass at 0 and 10 vs all mass at 0: move half by 10."""
        scheme = CentroidScheme()
        a = centroid_classification([([0.0], 2), ([10.0], 2)])
        b = centroid_classification([([0.0], 4)])
        assert classification_distance(a, b, scheme) == pytest.approx(5.0)

    def test_insensitive_to_absolute_scale(self):
        scheme = CentroidScheme()
        a = centroid_classification([([0.0], 1), ([4.0], 3)])
        scaled = centroid_classification([([0.0], 100), ([4.0], 300)])
        b = centroid_classification([([1.0], 1)])
        assert classification_distance(a, b, scheme) == pytest.approx(
            classification_distance(scaled, b, scheme)
        )


class TestMatching:
    def test_identity_matching(self):
        scheme = CentroidScheme()
        a = centroid_classification([([0.0], 1), ([10.0], 1)])
        b = centroid_classification([([0.2], 1), ([9.5], 1)])
        assert set(match_collections(a, b, scheme)) == {(0, 0), (1, 1)}

    def test_permuted_matching(self):
        scheme = CentroidScheme()
        a = centroid_classification([([10.0], 1), ([0.0], 1)])
        b = centroid_classification([([0.2], 1), ([9.5], 1)])
        assert set(match_collections(a, b, scheme)) == {(0, 1), (1, 0)}

    def test_surplus_left_unmatched(self):
        scheme = CentroidScheme()
        a = centroid_classification([([0.0], 1), ([0.1], 1), ([10.0], 1)])
        b = centroid_classification([([0.0], 1), ([10.0], 1)])
        matches = match_collections(a, b, scheme)
        assert len(matches) == 2


class TestDisagreement:
    def test_requires_nodes(self):
        with pytest.raises(ValueError):
            disagreement([], CentroidScheme())

    def test_identical_nodes_agree(self):
        scheme = CentroidScheme()
        nodes = [
            ClassifierNode(i, np.array([1.0]), scheme, k=2, quantization=Quantization(16))
            for i in range(3)
        ]
        assert disagreement(nodes, scheme) == pytest.approx(0.0)


class TestPool:
    def test_pool_includes_in_flight(self):
        scheme = CentroidScheme()
        node = ClassifierNode(0, np.array([1.0]), scheme, k=2, quantization=Quantization(16))
        in_flight = [Collection(summary=np.array([2.0]), quanta=4)]
        pool = pool_collections([node], in_flight)
        assert len(pool) == 2

    def test_max_reference_angles_requires_aux(self):
        collection = Collection(summary=np.array([0.0]), quanta=4)
        with pytest.raises(ValueError):
            max_reference_angles([collection])

    def test_max_reference_angles_shape(self):
        collections = [
            Collection(
                summary=None, quanta=4, aux=MixtureVector.unit(i, 3, 4)
            )
            for i in range(3)
        ]
        angles = max_reference_angles(collections)
        assert angles.shape == (3,)
        # Each axis has some orthogonal vector in the pool: max angle pi/2.
        assert np.allclose(angles, np.pi / 2)

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            max_reference_angles([])


class TestConvergenceDetector:
    def test_requires_positive_patience(self):
        with pytest.raises(ValueError):
            ConvergenceDetector(CentroidScheme(), patience=0)

    def test_static_nodes_converge_after_patience(self):
        scheme = CentroidScheme()
        nodes = [
            ClassifierNode(i, np.array([float(i)]), scheme, k=2, quantization=Quantization(16))
            for i in range(2)
        ]
        detector = ConvergenceDetector(scheme, tolerance=1e-9, patience=2)
        assert not detector.update(nodes)  # first sight: no previous state
        assert not detector.update(nodes)  # one quiet round
        assert detector.update(nodes)  # second quiet round: converged
        assert detector.converged

    def test_movement_resets_patience(self):
        scheme = CentroidScheme()
        node = ClassifierNode(0, np.array([0.0]), scheme, k=2, quantization=Quantization(1 << 10))
        detector = ConvergenceDetector(scheme, tolerance=1e-9, patience=1)
        detector.update([node])
        assert detector.update([node])  # static: converged
        # Now the node changes (merges in a distant collection).
        node.receive([Collection(summary=np.array([50.0]), quanta=16)])
        assert not detector.update([node])
        assert detector.last_movement > 0

    def test_unchanged_fingerprint_skips_distance_lp(self, monkeypatch):
        # A node whose state fingerprint is unchanged has moved exactly
        # zero; the transportation LP must not run for it.
        import repro.core.convergence as convergence

        scheme = CentroidScheme()
        nodes = [
            ClassifierNode(i, np.array([float(i)]), scheme, k=2, quantization=Quantization(16))
            for i in range(3)
        ]
        detector = ConvergenceDetector(scheme, tolerance=1e-9, patience=2)
        detector.update(nodes)
        calls = []
        real = convergence.classification_distance
        monkeypatch.setattr(
            convergence,
            "classification_distance",
            lambda *args: calls.append(1) or real(*args),
        )
        assert not detector.update(nodes)
        assert detector.update(nodes)
        assert calls == []  # every comparison short-circuited
        assert detector.last_movement == 0.0

    def test_changed_state_still_measured_after_short_circuit(self):
        scheme = CentroidScheme()
        node = ClassifierNode(0, np.array([0.0]), scheme, k=2, quantization=Quantization(1 << 10))
        detector = ConvergenceDetector(scheme, tolerance=1e-9, patience=1)
        detector.update([node])
        assert detector.update([node])  # fingerprint path: zero movement
        node.receive([Collection(summary=np.array([50.0]), quanta=16)])
        assert not detector.update([node])  # new fingerprint: LP measured it
        assert detector.last_movement > 0
