"""Content-addressed digests and the run-scoped merge cache."""

import numpy as np
import pytest

from repro.core.fingerprint import (
    CachedReceive,
    MergeCache,
    combine_digests,
    digest_arrays,
    merge_cache_default,
    merge_cache_size_default,
    state_fingerprint_of,
)


class TestDigestArrays:
    def test_deterministic(self):
        a = np.array([[1.0, 2.0], [3.0, 4.0]])
        assert digest_arrays(a) == digest_arrays(a.copy())
        assert len(digest_arrays(a)) == 16

    def test_value_sensitive(self):
        a = np.array([1.0, 2.0])
        b = np.array([1.0, 2.0 + 1e-15])
        assert digest_arrays(a) != digest_arrays(b)

    def test_shape_sensitive(self):
        flat = np.zeros(4)
        square = np.zeros((2, 2))
        assert flat.tobytes() == square.tobytes()
        assert digest_arrays(flat) != digest_arrays(square)

    def test_integer_input_coerced_to_float(self):
        assert digest_arrays(np.array([1, 2, 3])) == digest_arrays(
            np.array([1.0, 2.0, 3.0])
        )

    def test_argument_order_matters(self):
        a, b = np.array([1.0]), np.array([2.0])
        assert digest_arrays(a, b) != digest_arrays(b, a)

    def test_non_contiguous_view_equals_contiguous_copy(self):
        base = np.arange(12, dtype=float).reshape(3, 4)
        view = base[:, ::2]
        assert digest_arrays(view) == digest_arrays(np.ascontiguousarray(view))


class TestCombineDigests:
    def test_order_insensitive(self):
        d1 = digest_arrays(np.array([1.0]))
        d2 = digest_arrays(np.array([2.0]))
        assert combine_digests([d1, d2]) == combine_digests([d2, d1])

    def test_duplicates_do_not_cancel(self):
        d = digest_arrays(np.array([1.0]))
        assert combine_digests([d, d]) != combine_digests([])
        assert combine_digests([d, d]) != combine_digests([d])

    def test_content_sensitive(self):
        d1 = digest_arrays(np.array([1.0]))
        d2 = digest_arrays(np.array([2.0]))
        assert combine_digests([d1]) != combine_digests([d2])


class TestStateFingerprint:
    def test_order_insensitive(self):
        d1 = digest_arrays(np.array([1.0]))
        d2 = digest_arrays(np.array([2.0]))
        assert state_fingerprint_of([(d1, 3), (d2, 5)]) == state_fingerprint_of(
            [(d2, 5), (d1, 3)]
        )

    def test_quanta_sensitive(self):
        d = digest_arrays(np.array([1.0]))
        assert state_fingerprint_of([(d, 3)]) != state_fingerprint_of([(d, 4)])

    def test_pairing_not_just_multiset(self):
        # Swapping which digest carries which quanta must change the print.
        d1 = digest_arrays(np.array([1.0]))
        d2 = digest_arrays(np.array([2.0]))
        assert state_fingerprint_of([(d1, 3), (d2, 5)]) != state_fingerprint_of(
            [(d1, 5), (d2, 3)]
        )


def _entry(tag: float) -> CachedReceive:
    summary = np.array([tag])
    return CachedReceive(
        summaries=(summary,),
        digests=(digest_arrays(summary),),
        quanta=(1,),
        group_sizes=(1,),
        columns=None,
    )


class TestMergeCache:
    def test_lookup_miss_returns_none(self):
        cache = MergeCache(max_entries=4)
        assert cache.lookup("absent") is None
        assert cache.hits == 0

    def test_store_then_hit(self):
        cache = MergeCache(max_entries=4)
        entry = _entry(1.0)
        cache.store("k", entry)
        assert cache.lookup("k") is entry
        assert cache.hits == 1
        assert cache.misses == 1

    def test_lru_eviction_at_capacity(self):
        cache = MergeCache(max_entries=2)
        cache.store("a", _entry(1.0))
        cache.store("b", _entry(2.0))
        cache.store("c", _entry(3.0))
        assert cache.evictions == 1
        assert cache.lookup("a") is None
        assert cache.lookup("c") is not None

    def test_lookup_refreshes_recency(self):
        cache = MergeCache(max_entries=2)
        cache.store("a", _entry(1.0))
        cache.store("b", _entry(2.0))
        cache.lookup("a")
        cache.store("c", _entry(3.0))  # evicts "b", not the freshly-used "a"
        assert cache.lookup("a") is not None
        assert cache.lookup("b") is None

    def test_counters_snapshot(self):
        cache = MergeCache(max_entries=2)
        cache.store("a", _entry(1.0))
        cache.lookup("a")
        cache.record_noop()
        assert cache.counters() == {
            "cache_hits": 1,
            "cache_misses": 1,
            "cache_evictions": 0,
            "cache_noop_hits": 1,
        }

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="max_entries"):
            MergeCache(max_entries=0)


class TestEnvironmentDefaults:
    def test_cache_on_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_MERGE_CACHE", raising=False)
        assert merge_cache_default() is True

    @pytest.mark.parametrize("value", ["0", "false", "no", "off", " OFF "])
    def test_disable_spellings(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_MERGE_CACHE", value)
        assert merge_cache_default() is False

    def test_other_values_enable(self, monkeypatch):
        monkeypatch.setenv("REPRO_MERGE_CACHE", "1")
        assert merge_cache_default() is True

    def test_size_knob(self, monkeypatch):
        monkeypatch.delenv("REPRO_MERGE_CACHE_SIZE", raising=False)
        assert merge_cache_size_default() == 4096
        monkeypatch.setenv("REPRO_MERGE_CACHE_SIZE", "128")
        assert merge_cache_size_default() == 128
        assert MergeCache().max_entries == 128
