"""The scheme auditor: passes sound schemes, catches broken ones."""

import numpy as np
import pytest

from repro.core.audit import SchemeAuditor, pooled_values_f
from repro.core.collection import Collection
from repro.core.scheme import SummaryScheme
from repro.schemes.centroid import CentroidScheme
from repro.schemes.diagonal import DiagonalGaussianScheme
from repro.schemes.gm import GaussianMixtureScheme
from repro.schemes.histogram import HistogramScheme

VALUES_2D = np.array(
    [[0.0, 0.0], [1.0, 2.0], [-1.5, 0.5], [3.0, -1.0], [2.0, 2.0], [-0.5, -2.0]]
)
VALUES_1D = np.array([[-3.0], [-1.0], [0.0], [1.5], [2.5], [4.0]])


class TestShippedSchemesPass:
    def test_centroid(self):
        report = SchemeAuditor(CentroidScheme(), VALUES_2D, seed=1).run(k=3)
        assert report.passed, report.summary()

    def test_gaussian_mixture(self):
        report = SchemeAuditor(
            GaussianMixtureScheme(seed=1), VALUES_2D, seed=1, tolerance=1e-6
        ).run(k=3)
        assert report.passed, report.summary()

    def test_diagonal_gaussian(self):
        report = SchemeAuditor(
            DiagonalGaussianScheme(seed=1), VALUES_2D, seed=1, tolerance=1e-6
        ).run(k=3)
        assert report.passed, report.summary()

    def test_histogram(self):
        scheme = HistogramScheme(low=-6.0, high=6.0, bins=12)
        report = SchemeAuditor(scheme, VALUES_1D, seed=1).run(k=3)
        assert report.passed, report.summary()

    def test_report_summary_format(self):
        report = SchemeAuditor(CentroidScheme(), VALUES_2D, seed=1).run()
        assert "PASSED" in report.summary()
        assert report.checks_run > 0
        assert np.isfinite(report.worst_r1_ratio)


class BrokenMergeScheme(CentroidScheme):
    """Violates R4: merge ignores weights (plain unweighted average)."""

    def merge_set(self, items):
        return sum(summary for summary, _ in items) / len(items)


class BrokenScaleScheme(CentroidScheme):
    """Violates R3: the merge result depends on the absolute weight scale."""

    def merge_set(self, items):
        base = super().merge_set(items)
        total = sum(weight for _, weight in items)
        return base * (1.0 + 0.01 * total)


class BrokenPartitionScheme(CentroidScheme):
    """Violates the k bound: never merges anything."""

    def partition(self, collections, k, quantization):
        return [[index] for index in range(len(collections))]


class TestBrokenSchemesCaught:
    def test_unweighted_merge_fails_r4(self):
        report = SchemeAuditor(BrokenMergeScheme(), VALUES_2D, seed=2).run()
        assert not report.passed
        assert any(f.requirement in ("R4", "consistency") for f in report.failures)

    def test_scale_dependence_fails_r3(self):
        report = SchemeAuditor(BrokenScaleScheme(), VALUES_2D, seed=2).run()
        assert not report.passed
        assert any(f.requirement == "R3" for f in report.failures)

    def test_unbounded_partition_caught(self):
        report = SchemeAuditor(BrokenPartitionScheme(), VALUES_2D, seed=2).run(k=2)
        assert not report.passed
        assert any(f.requirement == "partition" for f in report.failures)


class TestPooledValuesF:
    def test_singleton_uses_val_to_summary(self):
        f = pooled_values_f(CentroidScheme())
        unit = np.zeros(len(VALUES_2D))
        unit[2] = 0.7
        assert np.allclose(f(VALUES_2D, unit), VALUES_2D[2])

    def test_empty_collection_rejected(self):
        f = pooled_values_f(CentroidScheme())
        with pytest.raises(ValueError):
            f(VALUES_2D, np.zeros(len(VALUES_2D)))

    def test_requires_two_values(self):
        with pytest.raises(ValueError):
            SchemeAuditor(CentroidScheme(), VALUES_2D[:1])
