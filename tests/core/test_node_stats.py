"""NodeStats bookkeeping and remaining node edge behaviour."""

import numpy as np
import pytest

from repro.core.collection import Collection
from repro.core.node import ClassifierNode, NodeStats
from repro.core.weights import Quantization
from repro.schemes.centroid import CentroidScheme


class TestNodeStats:
    def test_as_dict_keys(self):
        snapshot = NodeStats().as_dict()
        assert set(snapshot) == {
            "splits",
            "merges",
            "messages_made",
            "batches_received",
            "collections_received",
            "partition_calls",
            "fastpath_hits",
            "fastpath_misses",
            "cache_memo_hits",
            "cache_noop_hits",
            "cache_misses",
        }
        assert all(value == 0 for value in snapshot.values())

    def test_merge_counter_counts_real_merges_only(self):
        node = ClassifierNode(
            0, np.array([0.0]), CentroidScheme(), k=4, quantization=Quantization(16)
        )
        # A far-away collection stays its own singleton group: no merge.
        node.receive([Collection(summary=np.array([100.0]), quanta=16)])
        assert node.stats.merges == 0
        # A third collection forces k... still below k=4; push two close ones.
        node.receive(
            [
                Collection(summary=np.array([100.1]), quanta=16),
                Collection(summary=np.array([0.1]), quanta=16),
            ]
        )
        # Still no merge required below the k bound.
        assert len(node.classification) <= 4

    def test_merge_counter_increments_on_forced_merge(self):
        node = ClassifierNode(
            0, np.array([0.0]), CentroidScheme(), k=1, quantization=Quantization(16)
        )
        node.receive([Collection(summary=np.array([1.0]), quanta=16)])
        assert node.stats.merges == 1

    def test_batch_counters(self):
        node = ClassifierNode(
            0, np.array([0.0]), CentroidScheme(), k=2, quantization=Quantization(16)
        )
        node.receive([])
        node.receive([Collection(summary=np.array([1.0]), quanta=16)])
        assert node.stats.batches_received == 2
        assert node.stats.collections_received == 1
        # Two heavy collections below k=2: the identity fast path fires
        # instead of a partition call; the empty batch counts as neither.
        assert node.stats.partition_calls == 0
        assert node.stats.fastpath_hits == 1
        assert node.stats.fastpath_misses == 0

    def test_fastpath_miss_counted_when_partition_runs(self):
        node = ClassifierNode(
            0, np.array([0.0]), CentroidScheme(), k=1, quantization=Quantization(16)
        )
        node.receive([Collection(summary=np.array([1.0]), quanta=16)])
        assert node.stats.fastpath_misses == 1
        assert node.stats.fastpath_hits == 0
        assert node.stats.partition_calls == 1

    def test_fastpath_declined_on_minimum_weight_collection(self):
        # A one-quantum collection may trigger conformance rule 2, so the
        # identity short-circuit must not fire even below the k bound.
        node = ClassifierNode(
            0, np.array([0.0]), CentroidScheme(), k=4, quantization=Quantization(16)
        )
        node.receive([Collection(summary=np.array([50.0]), quanta=1)])
        assert node.stats.fastpath_hits == 0
        assert node.stats.partition_calls == 1


class TestSplitBookkeeping:
    def test_empty_message_not_counted_as_made(self):
        node = ClassifierNode(
            0, np.array([0.0]), CentroidScheme(), k=2, quantization=Quantization(1)
        )
        payload = node.make_message()
        assert payload == []
        assert node.stats.messages_made == 0
        assert node.stats.splits == 1

    def test_repr_smoke(self):
        node = ClassifierNode(
            3, np.array([1.0]), CentroidScheme(), k=2, quantization=Quantization(16)
        )
        text = repr(node)
        assert "id=3" in text
