"""Quantised-weight arithmetic: the paper's Zeno-avoidance mechanism."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.weights import DEFAULT_QUANTA_PER_UNIT, Quantization, WeightError


class TestConstruction:
    def test_default_lattice_is_fine(self):
        lattice = Quantization()
        assert lattice.quanta_per_unit == DEFAULT_QUANTA_PER_UNIT
        assert lattice.quantum == 1.0 / DEFAULT_QUANTA_PER_UNIT

    def test_rejects_zero_quanta_per_unit(self):
        with pytest.raises(WeightError):
            Quantization(quanta_per_unit=0)

    def test_rejects_negative_quanta_per_unit(self):
        with pytest.raises(WeightError):
            Quantization(quanta_per_unit=-4)

    def test_rejects_fractional_quanta_per_unit(self):
        with pytest.raises(WeightError):
            Quantization(quanta_per_unit=2.5)

    def test_unit_equals_quanta_per_unit(self):
        assert Quantization(16).unit == 16


class TestConversions:
    def test_to_float(self):
        lattice = Quantization(4)
        assert lattice.to_float(3) == 0.75

    def test_from_float_snaps_to_nearest(self):
        lattice = Quantization(4)
        assert lattice.from_float(0.74) == 3
        assert lattice.from_float(0.76) == 3
        assert lattice.from_float(0.88) == 4

    def test_from_float_rejects_negative(self):
        with pytest.raises(WeightError):
            Quantization(4).from_float(-0.5)

    @given(st.integers(min_value=1, max_value=10**9))
    def test_roundtrip(self, quanta):
        lattice = Quantization(1 << 20)
        assert lattice.from_float(lattice.to_float(quanta)) == quanta


class TestCheck:
    def test_accepts_positive(self):
        assert Quantization(4).check(7) == 7

    def test_rejects_zero(self):
        with pytest.raises(WeightError):
            Quantization(4).check(0)

    def test_rejects_negative(self):
        with pytest.raises(WeightError):
            Quantization(4).check(-1)

    def test_rejects_float(self):
        with pytest.raises(WeightError):
            Quantization(4).check(1.5)


class TestSplit:
    """The paper's ``half``: closest multiple of q to w/2, ties to kept."""

    def test_even_weight_splits_exactly(self):
        assert Quantization(4).split(8) == (4, 4)

    def test_odd_weight_gives_extra_quantum_to_kept(self):
        assert Quantization(4).split(9) == (5, 4)

    def test_single_quantum_cannot_send(self):
        kept, sent = Quantization(4).split(1)
        assert kept == 1
        assert sent == 0

    def test_rejects_zero(self):
        with pytest.raises(WeightError):
            Quantization(4).split(0)

    @given(st.integers(min_value=1, max_value=10**12))
    def test_conservation(self, quanta):
        """Splitting never creates or destroys weight."""
        kept, sent = Quantization().split(quanta)
        assert kept + sent == quanta

    @given(st.integers(min_value=1, max_value=10**12))
    def test_both_shares_closest_to_half(self, quanta):
        """|share - w/2| <= 1/2 quantum for both shares."""
        kept, sent = Quantization().split(quanta)
        assert abs(kept - quanta / 2) <= 0.5
        assert abs(sent - quanta / 2) <= 0.5

    @given(st.integers(min_value=2, max_value=10**12))
    def test_sendable_above_one_quantum(self, quanta):
        _, sent = Quantization().split(quanta)
        assert sent >= 1

    @given(st.integers(min_value=1, max_value=10**6))
    def test_kept_at_least_sent(self, quanta):
        """Ties favour the kept share, so kept >= sent always."""
        kept, sent = Quantization().split(quanta)
        assert kept >= sent


class TestMinimum:
    def test_one_quantum_is_minimum(self):
        assert Quantization(4).is_minimum(1)

    def test_larger_weights_are_not_minimum(self):
        assert not Quantization(4).is_minimum(2)
