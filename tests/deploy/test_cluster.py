"""End-to-end deployment smoke: a real multi-process cluster must agree.

Uses the ``process`` transport (OS pipes, no sockets) so CI machines
without free-port guarantees still exercise the full deployment stack:
spawn → gossip → quiescence → HTTP verdict → shutdown.  The TCP variant
of the same run is the CI smoke job (``python -m repro.deploy run
--transport tcp``, see .github/workflows).
"""

import json
import multiprocessing
import sys

import pytest

from repro.deploy.cluster import classification_deviation, run_cluster


@pytest.mark.slow
class TestProcessClusterSmoke:
    def test_three_process_cluster_agrees_with_simulation(self, tmp_path):
        artifact = tmp_path / "cluster.json"
        report = run_cluster(
            n_nodes=3,
            transport="process",
            workload="fig1",
            seed=7,
            timeout=60.0,
            compare_memory=True,
            artifact=artifact,
        )
        assert report["ok"], report
        assert report["quiescent"]
        assert report["agreement_max_deviation"] <= report["config"]["agreement_tol"]
        reference = report["reference"]
        assert reference["max_deviation_vs_cluster"] <= reference["tolerance"]
        # The artifact is a complete JSON trace of the run.
        trace = json.loads(artifact.read_text())
        assert len(trace["nodes"]) == 3
        for entry in trace["nodes"]:
            assert entry["status"]["quiescent"]
            assert entry["metrics"]["transport"]["transport"] == "process"


class TestDeviation:
    def test_identical_classifications_have_zero_deviation(self):
        means = [[0.0, 1.0], [2.0, 3.0]]
        assert classification_deviation(means, [list(m) for m in means]) == 0.0

    def test_gap_is_the_max_coordinate_distance(self):
        a = [[0.0, 0.0], [1.0, 1.0]]
        b = [[0.0, 0.5], [1.0, 1.0]]
        assert classification_deviation(a, b) == pytest.approx(0.5)

    def test_shape_mismatch_is_infinite(self):
        assert classification_deviation([[0.0]], [[0.0], [1.0]]) == float("inf")


def test_spawn_context_is_used():
    """Workers must come up via spawn (clean interpreters, no inherited
    kernel state) — fork would silently share module-level caches."""
    if sys.platform != "win32":
        # The deploy module requests spawn explicitly; make sure the API
        # we rely on exists on this platform.
        assert multiprocessing.get_context("spawn") is not None
