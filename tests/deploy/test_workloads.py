"""Deterministic workload construction for self-sufficient node processes."""

import numpy as np
import pytest

from repro.deploy.workloads import WORKLOADS, build_workload


class TestBuildWorkload:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_same_spec_regenerates_identical_values(self, name):
        """Every spawned node rebuilds the full array from (name, n, seed)
        and takes its own row — byte-identical regeneration is what makes
        the node processes self-sufficient (no value shipping)."""
        first = build_workload(name, n=12, seed=5)
        second = build_workload(name, n=12, seed=5)
        assert np.array_equal(first.values, second.values)
        assert first.values.shape[0] == 12
        assert first.k >= 1
        assert first.codec is not None

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_seed_changes_values(self, name):
        a = build_workload(name, n=12, seed=5)
        b = build_workload(name, n=12, seed=6)
        assert not np.array_equal(a.values, b.values)

    def test_unknown_workload_is_an_error(self):
        with pytest.raises((KeyError, ValueError)):
            build_workload("not-a-workload", n=4, seed=0)

    def test_too_few_nodes_is_an_error(self):
        with pytest.raises(ValueError):
            build_workload("fig1", n=1, seed=0)
