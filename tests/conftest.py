"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.weights import Quantization
from repro.schemes.centroid import CentroidScheme
from repro.schemes.gm import GaussianMixtureScheme
from repro.schemes.histogram import HistogramScheme


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh, deterministic random generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def fine_quantization() -> Quantization:
    """The default 2^20-quanta lattice (q << 1/n for all test networks)."""
    return Quantization()


@pytest.fixture
def coarse_quantization() -> Quantization:
    """A deliberately coarse lattice (8 quanta per unit) for edge cases."""
    return Quantization(quanta_per_unit=8)


@pytest.fixture
def centroid_scheme() -> CentroidScheme:
    return CentroidScheme()


@pytest.fixture
def gm_scheme() -> GaussianMixtureScheme:
    return GaussianMixtureScheme(seed=0)


@pytest.fixture
def histogram_scheme() -> HistogramScheme:
    return HistogramScheme(low=-10.0, high=10.0, bins=20)


def two_cluster_values(n: int, seed: int = 0, separation: float = 8.0) -> np.ndarray:
    """Balanced, well-separated 2-cluster data used across integration tests."""
    generator = np.random.default_rng(seed)
    half = n // 2
    a = generator.normal([0.0, 0.0], 0.5, size=(half, 2))
    b = generator.normal([separation, separation], 0.5, size=(n - half, 2))
    return np.vstack([a, b])
