"""Closed-form queries over Gaussian-Mixture classifications."""

import numpy as np
import pytest

from repro.analysis.queries import MixtureQueries
from repro.core.classification import Classification
from repro.core.collection import Collection
from repro.ml.gmm import GaussianMixtureModel
from repro.schemes.gaussian import GaussianSummary


@pytest.fixture
def bimodal():
    """Half the mass at N(0,1), half at N(10,4), in dimension 0."""
    return MixtureQueries(
        GaussianMixtureModel(
            weights=np.array([0.5, 0.5]),
            means=np.array([[0.0, 0.0], [10.0, 5.0]]),
            covs=np.stack([np.eye(2), np.diag([4.0, 1.0])]),
        )
    )


class TestCdf:
    def test_median_between_modes(self, bimodal):
        assert bimodal.cdf(0, 5.0) == pytest.approx(0.5, abs=0.01)

    def test_far_left_is_zero(self, bimodal):
        assert bimodal.cdf(0, -100.0) == pytest.approx(0.0, abs=1e-12)

    def test_far_right_is_one(self, bimodal):
        assert bimodal.cdf(0, 100.0) == pytest.approx(1.0, abs=1e-12)

    def test_single_gaussian_matches_scipy(self):
        from scipy.stats import norm

        queries = MixtureQueries(
            GaussianMixtureModel(np.array([1.0]), np.array([[2.0]]), np.array([[[9.0]]]))
        )
        for threshold in (-1.0, 2.0, 5.0):
            assert queries.cdf(0, threshold) == pytest.approx(
                norm(2.0, 3.0).cdf(threshold), abs=1e-9
            )

    def test_dimension_validation(self, bimodal):
        with pytest.raises(ValueError):
            bimodal.cdf(2, 0.0)


class TestFractions:
    def test_fraction_above_midpoint(self, bimodal):
        assert bimodal.fraction_above(0, 5.0) == pytest.approx(0.5, abs=0.01)

    def test_interval_mass_covers_one_mode(self, bimodal):
        mass = bimodal.interval_mass(0, -4.0, 4.0)
        assert mass == pytest.approx(0.5, abs=0.01)

    def test_interval_validation(self, bimodal):
        with pytest.raises(ValueError):
            bimodal.interval_mass(0, 5.0, 1.0)

    def test_second_dimension_marginal(self, bimodal):
        # Dimension 1: modes at 0 and 5.
        assert bimodal.fraction_above(1, 2.5) == pytest.approx(0.5, abs=0.01)


class TestMembership:
    def test_hard_membership(self, bimodal):
        assert bimodal.component_membership([0.5, 0.0]) == 0
        assert bimodal.component_membership([9.5, 5.0]) == 1

    def test_probabilities_sum_to_one(self, bimodal):
        probabilities = bimodal.membership_probabilities([5.0, 2.5])
        assert probabilities.shape == (2,)
        assert probabilities.sum() == pytest.approx(1.0)


class TestQuantile:
    def test_inverse_of_cdf(self, bimodal):
        for probability in (0.1, 0.5, 0.9):
            value = bimodal.quantile(0, probability)
            assert bimodal.cdf(0, value) == pytest.approx(probability, abs=1e-6)

    def test_probability_validation(self, bimodal):
        with pytest.raises(ValueError):
            bimodal.quantile(0, 1.5)


class TestFromClassification:
    def test_singleton_collections_supported(self):
        classification = Classification(
            [
                Collection(
                    summary=GaussianSummary(mean=[0.0], cov=[[1.0]]), quanta=9
                ),
                # A zero-variance singleton (fresh value): min_std floor
                # keeps the marginal well-defined.
                Collection(
                    summary=GaussianSummary(mean=[50.0], cov=[[0.0]]), quanta=1
                ),
            ]
        )
        queries = MixtureQueries.from_classification(classification)
        assert queries.fraction_above(0, 25.0) == pytest.approx(0.1, abs=0.01)

    def test_min_std_validation(self):
        model = GaussianMixtureModel(np.array([1.0]), np.zeros((1, 1)), np.ones((1, 1, 1)))
        with pytest.raises(ValueError):
            MixtureQueries(model, min_std=0.0)


class TestEndToEndQuery:
    def test_fence_fire_operator_question(self):
        """After gossip, a node answers 'what share reads above 30°?'."""
        from repro.data.generators import fence_fire_values
        from repro.network.topology import complete
        from repro.protocols.classification import build_classification_network
        from repro.schemes.gm import GaussianMixtureScheme

        values, _ = fence_fire_values(120, seed=6)
        engine, nodes = build_classification_network(
            values, GaussianMixtureScheme(seed=6), k=5, graph=complete(120), seed=6
        )
        engine.run(30)
        queries = MixtureQueries.from_classification(nodes[0].classification)
        estimated = queries.fraction_above(1, 30.0)
        actual = float(np.mean(values[:, 1] > 30.0))
        assert estimated == pytest.approx(actual, abs=0.06)
