"""Plain-text report formatting."""

import pytest

from repro.analysis.reporting import banner, format_series, format_table, format_value


class TestFormatValue:
    def test_float_precision(self):
        assert format_value(3.14159, precision=2) == "3.14"

    def test_bool_not_treated_as_float(self):
        assert format_value(True) == "True"

    def test_int_passthrough(self):
        assert format_value(42) == "42"

    def test_string_passthrough(self):
        assert format_value("abc") == "abc"


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["name", "value"], [["a", 1], ["longer", 2]])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert all(len(line) <= len(max(lines, key=len)) for line in lines)
        assert "longer" in lines[3]

    def test_header_rule(self):
        table = format_table(["x"], [[1]])
        assert table.splitlines()[1] == "-"

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])


class TestFormatSeries:
    def test_columns_rendered(self):
        text = format_series("title", "x", [1, 2], {"y": [10.0, 20.0]})
        assert "title" in text
        assert "10.0000" in text

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("t", "x", [1, 2], {"y": [1.0]})


class TestBanner:
    def test_contains_title(self):
        text = banner("Hello")
        lines = text.splitlines()
        assert lines[1] == "Hello"
        assert set(lines[0]) == {"="}
