"""Robust-average read-out and provenance-based miss measurement."""

import numpy as np
import pytest

from repro.analysis.outliers import (
    good_collection_index,
    missed_outlier_fraction,
    robust_mean,
)
from repro.core.classification import Classification
from repro.core.collection import Collection
from repro.core.mixture import MixtureVector
from repro.schemes.gaussian import GaussianSummary


def gaussian_classification(entries):
    """entries: list of (mean, quanta, aux_components | None)."""
    collections = []
    for mean, quanta, aux in entries:
        collections.append(
            Collection(
                summary=GaussianSummary(mean=np.asarray(mean, float), cov=np.eye(len(mean))),
                quanta=quanta,
                aux=MixtureVector(np.asarray(aux, float)) if aux is not None else None,
            )
        )
    return Classification(collections)


class TestGoodCollection:
    def test_heaviest_wins(self):
        classification = gaussian_classification(
            [([0.0, 0.0], 95, None), ([0.0, 9.0], 5, None)]
        )
        assert good_collection_index(classification) == 0

    def test_order_independent(self):
        classification = gaussian_classification(
            [([0.0, 9.0], 5, None), ([0.0, 0.0], 95, None)]
        )
        assert good_collection_index(classification) == 1


class TestRobustMean:
    def test_gaussian_summary_mean(self):
        classification = gaussian_classification(
            [([0.5, -0.5], 95, None), ([0.0, 9.0], 5, None)]
        )
        assert np.allclose(robust_mean(classification), [0.5, -0.5])

    def test_centroid_summary_supported(self):
        classification = Classification(
            [Collection(summary=np.array([2.0, 3.0]), quanta=10)]
        )
        assert np.allclose(robust_mean(classification), [2.0, 3.0])


class TestMissedOutliers:
    def test_no_outliers_is_zero(self):
        classification = gaussian_classification([([0.0], 10, [5.0, 5.0])])
        assert missed_outlier_fraction(classification, np.array([], dtype=int)) == 0.0

    def test_perfect_separation_is_zero(self):
        # Inputs 0,1 are good; input 2 is the outlier, fully in collection 1.
        classification = gaussian_classification(
            [([0.0], 20, [10.0, 10.0, 0.0]), ([9.0], 10, [0.0, 0.0, 10.0])]
        )
        assert missed_outlier_fraction(classification, np.array([2])) == 0.0

    def test_total_miss_is_one(self):
        classification = gaussian_classification(
            [([0.0], 30, [10.0, 10.0, 10.0]), ([9.0], 1, [0.0, 0.0, 0.0])]
        )
        assert missed_outlier_fraction(classification, np.array([2])) == 1.0

    def test_partial_miss(self):
        # Outlier input 2: 2.5 quanta in the good collection, 7.5 outside.
        classification = gaussian_classification(
            [([0.0], 22, [10.0, 10.0, 2.5]), ([9.0], 8, [0.0, 0.0, 7.5])]
        )
        assert missed_outlier_fraction(classification, np.array([2])) == pytest.approx(0.25)

    def test_requires_aux(self):
        classification = gaussian_classification([([0.0], 10, None)])
        with pytest.raises(ValueError):
            missed_outlier_fraction(classification, np.array([0]))
