"""Accuracy metrics: mean errors and mixture recovery matching."""

import numpy as np
import pytest

from repro.analysis.accuracy import average_error, match_mixtures, mean_error
from repro.ml.gmm import GaussianMixtureModel


class TestMeanError:
    def test_euclidean(self):
        assert mean_error(np.array([3.0, 4.0]), np.zeros(2)) == 5.0

    def test_zero_for_exact(self):
        assert mean_error(np.array([1.0]), np.array([1.0])) == 0.0

    def test_average_over_nodes(self):
        estimates = [np.array([1.0, 0.0]), np.array([3.0, 0.0])]
        assert average_error(estimates, np.zeros(2)) == 2.0

    def test_average_requires_estimates(self):
        with pytest.raises(ValueError):
            average_error([], np.zeros(2))


def mixture(means, weights=None):
    means = np.atleast_2d(np.asarray(means, float))
    k = means.shape[0]
    weights = np.asarray(weights, float) if weights is not None else np.ones(k)
    covs = np.stack([np.eye(means.shape[1])] * k)
    return GaussianMixtureModel(weights, means, covs)


class TestMatchMixtures:
    def test_identical_mixtures_match_exactly(self):
        model = mixture([[0.0, 0.0], [5.0, 5.0]], [0.6, 0.4])
        recovery = match_mixtures(model, model)
        assert recovery.max_mean_distance == 0.0
        assert recovery.max_weight_error == 0.0
        assert recovery.unmatched_estimated == ()
        assert recovery.unmatched_true == ()

    def test_permutation_resolved(self):
        estimated = mixture([[5.0, 5.0], [0.0, 0.0]])
        true = mixture([[0.0, 0.0], [5.0, 5.0]])
        recovery = match_mixtures(estimated, true)
        pairs = {(m.estimated_index, m.true_index) for m in recovery.matches}
        assert pairs == {(0, 1), (1, 0)}
        assert recovery.max_mean_distance == pytest.approx(0.0)

    def test_surplus_estimated_components_unmatched(self):
        estimated = mixture([[0.0, 0.0], [5.0, 5.0], [100.0, 100.0]])
        true = mixture([[0.0, 0.0], [5.0, 5.0]])
        recovery = match_mixtures(estimated, true)
        assert recovery.unmatched_estimated == (2,)
        assert recovery.unmatched_true == ()

    def test_weight_error_reported(self):
        estimated = mixture([[0.0]], [1.0])
        true = mixture([[0.2]], [1.0])
        recovery = match_mixtures(estimated, true)
        assert recovery.matches[0].mean_distance == pytest.approx(0.2)
        assert recovery.total_matched_weight_error == pytest.approx(0.0)
