"""Provenance-based classification accuracy."""

import numpy as np
import pytest

from repro.analysis.assignment import (
    classification_accuracy,
    mean_node_accuracy,
    weight_confusion_matrix,
)
from repro.core.classification import Classification
from repro.core.collection import Collection
from repro.core.mixture import MixtureVector


def classification_with_aux(rows):
    """rows: list of aux component lists; weights derived from their sums."""
    collections = []
    for components in rows:
        aux = MixtureVector(np.asarray(components, dtype=float))
        collections.append(
            Collection(summary=None, quanta=max(1, round(aux.l1)), aux=aux)
        )
    return Classification(collections)


class TestConfusionMatrix:
    def test_counts_weight_per_class(self):
        # Inputs 0,1 are class 0; inputs 2,3 are class 1.
        classification = classification_with_aux(
            [[4.0, 4.0, 1.0, 0.0], [0.0, 0.0, 3.0, 4.0]]
        )
        labels = np.array([0, 0, 1, 1])
        matrix = weight_confusion_matrix(classification, labels)
        assert np.allclose(matrix, [[8.0, 1.0], [0.0, 7.0]])

    def test_requires_aux(self):
        classification = Classification([Collection(summary=None, quanta=1)])
        with pytest.raises(ValueError):
            weight_confusion_matrix(classification, np.array([0]))

    def test_labels_must_cover_inputs(self):
        classification = classification_with_aux([[1.0, 1.0]])
        with pytest.raises(ValueError):
            weight_confusion_matrix(classification, np.array([0]))

    def test_rejects_negative_labels(self):
        classification = classification_with_aux([[1.0, 1.0]])
        with pytest.raises(ValueError):
            weight_confusion_matrix(classification, np.array([0, -1]))


class TestAccuracy:
    def test_perfect_separation_scores_one(self):
        classification = classification_with_aux(
            [[5.0, 5.0, 0.0, 0.0], [0.0, 0.0, 5.0, 5.0]]
        )
        labels = np.array([0, 0, 1, 1])
        assert classification_accuracy(classification, labels) == pytest.approx(1.0)

    def test_label_permutation_irrelevant(self):
        classification = classification_with_aux(
            [[0.0, 0.0, 5.0, 5.0], [5.0, 5.0, 0.0, 0.0]]
        )
        labels = np.array([0, 0, 1, 1])
        assert classification_accuracy(classification, labels) == pytest.approx(1.0)

    def test_partial_misassignment(self):
        # 2 units of class-1 weight sit in the class-0 collection.
        classification = classification_with_aux(
            [[5.0, 5.0, 2.0, 0.0], [0.0, 0.0, 3.0, 5.0]]
        )
        labels = np.array([0, 0, 1, 1])
        assert classification_accuracy(classification, labels) == pytest.approx(18.0 / 20.0)

    def test_everything_in_one_collection_scores_majority(self):
        classification = classification_with_aux([[6.0, 6.0, 4.0, 4.0]])
        labels = np.array([0, 0, 1, 1])
        assert classification_accuracy(classification, labels) == pytest.approx(12.0 / 20.0)

    def test_three_classes(self):
        classification = classification_with_aux(
            [[4.0, 0.0, 0.0], [0.0, 4.0, 0.0], [0.0, 0.0, 4.0]]
        )
        labels = np.array([0, 1, 2])
        assert classification_accuracy(classification, labels) == pytest.approx(1.0)

    def test_surplus_collections_penalised(self):
        """A class split across two collections loses the smaller share."""
        classification = classification_with_aux(
            [[3.0, 0.0], [3.0, 0.0], [0.0, 6.0]]
        )
        labels = np.array([0, 1])
        assert classification_accuracy(classification, labels) == pytest.approx(9.0 / 12.0)


class TestMeanNodeAccuracy:
    def test_requires_nodes(self):
        with pytest.raises(ValueError):
            mean_node_accuracy([], np.array([0, 1]))

    def test_live_run(self):
        from repro.network.topology import complete
        from repro.protocols.classification import build_classification_network
        from repro.schemes.gm import GaussianMixtureScheme

        rng = np.random.default_rng(0)
        values = np.vstack(
            [rng.normal([0, 0], 0.4, size=(10, 2)), rng.normal([9, 9], 0.4, size=(10, 2))]
        )
        labels = np.array([0] * 10 + [1] * 10)
        engine, nodes = build_classification_network(
            values, GaussianMixtureScheme(seed=0), k=2, graph=complete(20),
            seed=0, track_aux=True,
        )
        engine.run(30)
        assert mean_node_accuracy(nodes, labels) > 0.95
