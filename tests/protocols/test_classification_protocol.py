"""Wiring Algorithm 1 onto the network engines."""

import numpy as np
import pytest

from repro.core.weights import Quantization
from repro.network.topology import complete
from repro.protocols.classification import (
    ClassificationProtocol,
    build_classification_network,
)
from repro.schemes.centroid import CentroidScheme


class TestBuilder:
    def test_requires_matching_sizes(self):
        with pytest.raises(ValueError, match="topology has"):
            build_classification_network(
                np.zeros((3, 1)), CentroidScheme(), k=2, graph=complete(4)
            )

    def test_node_ids_match_value_indices(self):
        values = np.array([[1.0], [2.0], [3.0]])
        _, nodes = build_classification_network(
            values, CentroidScheme(), k=2, graph=complete(3)
        )
        for i, node in enumerate(nodes):
            assert node.node_id == i
            assert np.allclose(node.classification[0].summary, values[i])

    def test_aux_tracking_enabled_when_requested(self):
        values = np.array([[1.0], [2.0]])
        _, nodes = build_classification_network(
            values, CentroidScheme(), k=2, graph=complete(2), track_aux=True
        )
        assert nodes[0].classification[0].aux is not None


class TestProtocol:
    def test_payload_is_split_share(self):
        values = np.array([[1.0], [2.0]])
        _, nodes = build_classification_network(
            values, CentroidScheme(), k=2, graph=complete(2)
        )
        protocol = ClassificationProtocol(nodes[0])
        payload = protocol.make_payload()
        assert payload is not None
        assert payload[0].quanta == Quantization().unit // 2

    def test_payload_none_when_unsendable(self):
        values = np.array([[1.0], [2.0]])
        _, nodes = build_classification_network(
            values,
            CentroidScheme(),
            k=2,
            graph=complete(2),
            quantization=Quantization(1),
        )
        protocol = ClassificationProtocol(nodes[0])
        assert protocol.make_payload() is None

    def test_receive_batch_flattens_payloads(self):
        values = np.array([[0.0], [10.0], [20.0]])
        _, nodes = build_classification_network(
            values, CentroidScheme(), k=3, graph=complete(3)
        )
        receiver = ClassificationProtocol(nodes[0])
        payload_1 = ClassificationProtocol(nodes[1]).make_payload()
        payload_2 = ClassificationProtocol(nodes[2]).make_payload()
        receiver.receive_batch([payload_1, payload_2])
        # Both payloads were pooled into ONE receive: the pooled set of 3
        # heavy collections sits at the k bound, so the identity fast path
        # handles it in a single pass (no partition call, one hit).
        assert nodes[0].stats.batches_received == 1
        assert nodes[0].stats.fastpath_hits == 1
        assert nodes[0].stats.partition_calls == 0
        assert len(nodes[0].classification) == 3

    def test_convenience_accessors(self):
        values = np.array([[1.0], [2.0]])
        _, nodes = build_classification_network(
            values, CentroidScheme(), k=2, graph=complete(2)
        )
        protocol = ClassificationProtocol(nodes[1])
        assert protocol.node_id == 1
        assert len(protocol.classification) == 1
