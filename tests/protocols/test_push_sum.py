"""Push-sum average aggregation (the "regular aggregation" baseline)."""

import numpy as np
import pytest

from repro.core.weights import Quantization
from repro.network.topology import complete, ring
from repro.protocols.classification import build_classification_network
from repro.protocols.push_sum import PushSumProtocol, build_push_sum_network
from repro.schemes.centroid import CentroidScheme


class TestProtocolMechanics:
    def test_split_halves_state(self):
        protocol = PushSumProtocol(np.array([4.0]))
        s, w = protocol.make_payload()
        assert s[0] == 2.0 and w == 0.5
        assert protocol.s[0] == 2.0 and protocol.w == 0.5

    def test_receive_accumulates(self):
        protocol = PushSumProtocol(np.array([1.0]))
        protocol.receive_batch([(np.array([3.0]), 1.0), (np.array([2.0]), 0.5)])
        assert protocol.s[0] == 6.0
        assert protocol.w == 2.5

    def test_estimate(self):
        protocol = PushSumProtocol(np.array([4.0, 8.0]))
        assert np.allclose(protocol.estimate, [4.0, 8.0])

    def test_estimate_requires_mass(self):
        protocol = PushSumProtocol(np.array([1.0]))
        protocol.w = 0.0
        with pytest.raises(RuntimeError):
            protocol.estimate


class TestConvergence:
    def test_converges_to_true_mean_on_complete_graph(self):
        values = np.arange(20, dtype=float)[:, None]
        engine, protocols = build_push_sum_network(values, complete(20), seed=0)
        engine.run(40)
        for protocol in protocols:
            assert protocol.estimate[0] == pytest.approx(9.5, abs=0.01)

    def test_converges_on_ring(self):
        values = np.arange(8, dtype=float)[:, None]
        engine, protocols = build_push_sum_network(values, ring(8), seed=0)
        engine.run(400)
        for protocol in protocols:
            assert protocol.estimate[0] == pytest.approx(3.5, abs=0.05)

    def test_mass_conservation_between_rounds(self):
        values = np.arange(10, dtype=float)[:, None]
        engine, protocols = build_push_sum_network(values, complete(10), seed=0)
        for _ in range(10):
            engine.run_round()
            total_s = sum(p.s[0] for p in protocols)
            total_w = sum(p.w for p in protocols)
            assert total_s == pytest.approx(45.0, rel=1e-12)
            assert total_w == pytest.approx(10.0, rel=1e-12)

    def test_builder_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            build_push_sum_network(np.zeros((3, 1)), complete(4))


class TestEquivalenceWithK1Centroids:
    def test_push_sum_equals_k1_centroid_gossip(self):
        """The k=1 centroid instantiation *is* weight-diffusion averaging.

        Both protocols, run under identical engines/seeds, must converge
        to the same value — the input average.
        """
        values = np.linspace(-5, 5, 16)[:, None]
        push_engine, push_protocols = build_push_sum_network(values, complete(16), seed=7)
        push_engine.run(40)
        cls_engine, nodes = build_classification_network(
            values, CentroidScheme(), k=1, graph=complete(16), seed=7
        )
        cls_engine.run(40)
        truth = float(values.mean())
        for protocol, node in zip(push_protocols, nodes):
            assert protocol.estimate[0] == pytest.approx(truth, abs=1e-6)
            assert node.classification[0].summary[0] == pytest.approx(truth, abs=1e-6)
