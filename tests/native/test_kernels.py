"""Kernel-level byte-parity: batched kernels vs their unbatched anchors.

Every kernel in :mod:`repro.native.kernels` carries a byte-parity
contract with the sequential reference it replaced (the schemes'
``merge_set_packed``, :func:`repro.ml.gaussian.pool_moments`, the
incremental greedy partition, integer quanta splits).  These tests pin
the contract directly at the kernel boundary — randomized inputs,
``tobytes()`` equality, no tolerance — so a future "optimisation" that
perturbs accumulation order fails here before any network-level suite
notices drift.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.collection import Collection
from repro.core.packed import PackedState
from repro.core.weights import Quantization
from repro.ml.gaussian import pool_moments
from repro.native.kernels import (
    compact_labels,
    greedy_partition,
    maximin_seed_walk,
    pairwise_sq_matrix,
    pool_moments_groups,
    split_quanta,
    weighted_average_groups,
)
from repro.schemes.centroid import CentroidScheme
from repro.schemes.gm import GaussianMixtureScheme

QUANT = Quantization(16)


def _random_groups(rng: np.random.Generator, n: int) -> list[list[int]]:
    """A random partition of ``range(n)`` into non-empty groups."""
    order = rng.permutation(n).tolist()
    cuts = sorted(rng.choice(np.arange(1, n), size=min(3, n - 1), replace=False).tolist())
    groups, start = [], 0
    for cut in cuts + [n]:
        if cut > start:
            groups.append(order[start:cut])
        start = cut
    return groups


class TestSplitQuanta:
    def test_matches_quantization_split(self):
        rng = np.random.default_rng(0)
        quanta = rng.integers(1, 1 << 20, size=64, dtype=np.int64)
        kept, sent = split_quanta(quanta)
        for index, value in enumerate(quanta.tolist()):
            ref_kept, ref_sent = QUANT.split(value)
            assert kept[index] == ref_kept
            assert sent[index] == ref_sent
        assert np.array_equal(kept + sent, quanta)


class TestPairwiseSqMatrix:
    @pytest.mark.parametrize("d", [1, 2, 3, 9])
    def test_matches_per_row_reference(self, d):
        rng = np.random.default_rng(d)
        points = rng.normal(size=(13, d))
        matrix = pairwise_sq_matrix(points)
        for row in range(13):
            reference = np.sum((points - points[row]) ** 2, axis=1)
            assert matrix[row].tobytes() == reference.tobytes()


class TestMaximinSeedWalk:
    def test_matches_scalar_reference(self):
        rng = np.random.default_rng(5)
        points = rng.normal(size=(11, 2))
        weights = rng.uniform(0.5, 4.0, size=11)
        matrix = pairwise_sq_matrix(points)
        for k in (1, 3, 11):
            chosen = maximin_seed_walk(weights, matrix, k)
            # Scalar reference: heaviest first, then greedy farthest point.
            ref = [int(np.argmax(weights))]
            closest = matrix[ref[0]]
            for _ in range(1, k):
                candidate = int(np.argmax(closest))
                if closest[candidate] <= 0.0:
                    break
                ref.append(candidate)
                closest = np.minimum(closest, matrix[candidate])
            assert chosen == ref

    def test_coincident_points_stop_early(self):
        points = np.zeros((4, 2))
        weights = np.array([1.0, 2.0, 3.0, 4.0])
        matrix = pairwise_sq_matrix(points)
        assert maximin_seed_walk(weights, matrix, 4) == [3]


class TestCompactLabels:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_searchsorted_unique(self, seed):
        rng = np.random.default_rng(seed)
        assignment = rng.integers(0, 9, size=40)
        compacted, occupied = compact_labels(assignment)
        reference = np.searchsorted(np.unique(assignment), assignment)
        assert compacted.tobytes() == reference.tobytes()
        assert occupied == len(np.unique(assignment))


class TestWeightedAverageGroups:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_centroid_merge_set_packed(self, seed):
        """The batched average must replay the scheme's sequential one."""
        rng = np.random.default_rng(seed)
        n = 12
        rows = rng.normal(size=(n, 3))
        quanta = rng.integers(1, 1 << 12, size=n, dtype=np.int64)
        groups = _random_groups(rng, n)
        scheme = CentroidScheme()
        packed = PackedState(quanta=quanta, columns={"position": rows})
        batched = weighted_average_groups(rows, quanta, groups)
        for gi, group in enumerate(groups):
            reference = scheme.merge_set_packed(packed, group)
            assert batched[gi].tobytes() == reference.tobytes()

    def test_identical_rows_short_circuit_bytes(self):
        """Byte-identical groups adopt the row verbatim (no float dust)."""
        row = np.array([0.1, 0.2, 0.30000000000000004])
        rows = np.stack([row, row, row + 1.0])
        quanta = np.array([3, 5, 7], dtype=np.int64)
        out = weighted_average_groups(rows, quanta, [[0, 1], [2]])
        assert out[0].tobytes() == row.tobytes()
        assert out[1].tobytes() == (row + 1.0).tobytes()


class TestPoolMomentsGroups:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_pool_moments_per_group(self, seed):
        rng = np.random.default_rng(seed)
        n = 14
        means = rng.normal(size=(n, 2)) * 4
        covs = np.stack([np.eye(2) * s for s in rng.uniform(0.2, 2.0, size=n)])
        quanta = rng.integers(1, 1 << 12, size=n, dtype=np.int64)
        groups = _random_groups(rng, n)
        b_means, b_covs = pool_moments_groups(quanta, means, covs, groups)
        for gi, group in enumerate(groups):
            idx = np.asarray(group, dtype=np.intp)
            ref_mean, ref_cov = pool_moments(
                quanta[idx].astype(float), means[idx], covs[idx]
            )
            assert b_means[gi].tobytes() == ref_mean.tobytes()
            assert b_covs[gi].tobytes() == ref_cov.tobytes()

    def test_identical_components_short_circuit(self):
        mean = np.array([1.5, -2.5])
        cov = np.array([[2.0, 0.5], [0.5, 1.0]])
        means = np.stack([mean, mean])
        covs = np.stack([cov, cov])
        quanta = np.array([9, 11], dtype=np.int64)
        b_means, b_covs = pool_moments_groups(quanta, means, covs, [[0, 1]])
        ref_mean, ref_cov = pool_moments(quanta.astype(float), means, covs)
        assert b_means[0].tobytes() == ref_mean.tobytes()
        assert b_covs[0].tobytes() == ref_cov.tobytes()

    def test_mixed_group_sizes_route_through_buckets(self):
        rng = np.random.default_rng(99)
        n = 9
        means = rng.normal(size=(n, 2))
        covs = np.stack([np.eye(2)] * n)
        quanta = rng.integers(1, 100, size=n, dtype=np.int64)
        groups = [[0], [1, 2], [3, 4], [5, 6, 7, 8]]  # three size buckets
        b_means, b_covs = pool_moments_groups(quanta, means, covs, groups)
        assert b_means.shape == (4, 2)
        for gi, group in enumerate(groups):
            idx = np.asarray(group, dtype=np.intp)
            ref_mean, ref_cov = pool_moments(
                quanta[idx].astype(float), means[idx], covs[idx]
            )
            assert b_means[gi].tobytes() == ref_mean.tobytes()
            assert b_covs[gi].tobytes() == ref_cov.tobytes()


class TestGreedyPartition:
    def _collections(self, rng, n, scheme, minimums=0):
        out = []
        for index in range(n):
            quanta = 1 if index < minimums else int(rng.integers(2, 1 << 8))
            out.append(
                Collection(
                    summary=np.asarray(rng.normal(size=2), dtype=float),
                    quanta=quanta,
                )
            )
        return out

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("minimums", [0, 2])
    def test_object_and_packed_paths_agree(self, seed, minimums):
        """The kernel behind partition_packed must reproduce the object
        path's groups exactly — same merge sequence, same tie-breaks."""
        rng = np.random.default_rng(seed)
        scheme = CentroidScheme()
        collections = self._collections(rng, 10, scheme, minimums=minimums)
        object_groups = scheme.partition(collections, 3, QUANT)
        packed = PackedState(
            quanta=np.array([c.quanta for c in collections], dtype=np.int64),
            columns={"position": np.stack([c.summary for c in collections])},
        )
        packed_groups = scheme.partition_packed(packed, 3, QUANT)
        assert packed_groups == object_groups

    def test_respects_k_bound_and_partitions_indices(self):
        rng = np.random.default_rng(21)
        positions = rng.normal(size=(12, 2))
        weights = rng.uniform(1.0, 5.0, size=12)
        heavy = np.ones(12, dtype=bool)
        groups = greedy_partition(positions, weights, heavy, 4)
        assert len(groups) <= 4
        flat = sorted(index for group in groups for index in group)
        assert flat == list(range(12))

    def test_minimum_weight_singletons_are_merged(self):
        rng = np.random.default_rng(22)
        positions = rng.normal(size=(6, 2)) * 10
        weights = np.array([1.0, 5.0, 5.0, 5.0, 5.0, 5.0])
        heavy = np.array([False, True, True, True, True, True])
        groups = greedy_partition(positions, weights, heavy, 6)
        for group in groups:
            if 0 in group:
                assert len(group) >= 2  # rule 2: the minimum never stays alone

    def test_zero_collections_rejected(self):
        with pytest.raises(ValueError):
            greedy_partition(np.empty((0, 2)), np.empty(0), np.empty(0, dtype=bool), 3)


class TestGmPartitionParity:
    """GM: object vs packed partitions share one array core; pin it."""

    @pytest.mark.parametrize("seed", range(3))
    def test_object_and_packed_paths_agree(self, seed):
        rng = np.random.default_rng(seed)
        n = 9
        collections = [
            Collection(
                summary=GaussianMixtureScheme(seed=0).val_to_summary(
                    rng.normal(size=2) * 5
                ),
                quanta=int(rng.integers(2, 1 << 10)),
            )
            for _ in range(n)
        ]
        object_scheme = GaussianMixtureScheme(seed=7)
        packed_scheme = GaussianMixtureScheme(seed=7)
        object_groups = object_scheme.partition(collections, 3, QUANT)
        packed = PackedState(
            quanta=np.array([c.quanta for c in collections], dtype=np.int64),
            columns=packed_scheme.pack_summaries([c.summary for c in collections]),
        )
        packed_groups = packed_scheme.partition_packed(packed, 3, QUANT)
        assert packed_groups == object_groups
