"""End-to-end native-tier parity: ``REPRO_NATIVE=1`` vs ``REPRO_NATIVE=0``.

The compiled receive/merge tier (ISSUE 9) is gated by the
``REPRO_NATIVE`` environment variable, read per node construction.  Its
contract is byte-parity: for every scheme and both schedulers, a network
run with the native tier on must produce bit-for-bit the same
classifications, the same protocol event trace (splits, merges,
fast-path adoptions, cache hits) and the same per-node counters as the
fallback object path.  These runs are small (the tier-1 suite runs
them); the benchmarks and ``tests/mega`` cover the same contract at
scale.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.network.topology import ring
from repro.obs.events import RingBufferSink
from repro.protocols.classification import build_classification_network
from repro.schemes.centroid import CentroidScheme
from repro.schemes.diagonal import DiagonalGaussianScheme
from repro.schemes.gaussian import GaussianSummary
from repro.schemes.gm import GaussianMixtureScheme
from repro.schemes.histogram import HistogramScheme

N = 16
ROUNDS = 12
SCHEME_NAMES = ["centroid", "gm", "diagonal", "histogram"]
ENGINES = ["rounds", "async"]
TRACE_KINDS = ("split", "merge", "fastpath", "cache")


def _values(name: str) -> np.ndarray:
    rng = np.random.default_rng(7)
    clustered = rng.normal(size=(N, 2)) + np.repeat(
        [[0.0, 0.0], [6.0, 6.0]], N // 2, axis=0
    )
    return clustered[:, 0] if name == "histogram" else clustered


def _scheme(name: str):
    if name == "centroid":
        return CentroidScheme()
    if name == "gm":
        return GaussianMixtureScheme(seed=3)
    if name == "diagonal":
        return DiagonalGaussianScheme(seed=3)
    return HistogramScheme(-12.0, 12.0, bins=16)


def _summary_bytes(summary) -> bytes:
    if isinstance(summary, GaussianSummary):
        return summary.mean.tobytes() + summary.cov.tobytes()
    return np.asarray(summary, dtype=float).tobytes()


def _run(name: str, engine: str, native: bool, monkeypatch):
    monkeypatch.setenv("REPRO_NATIVE", "1" if native else "0")
    sink = RingBufferSink(capacity=100000)
    kernel, nodes = build_classification_network(
        _values(name),
        _scheme(name),
        k=3,
        graph=ring(N),
        seed=11,
        engine=engine,
        event_sink=sink,
    )
    kernel.run(ROUNDS)
    states = [
        [(c.quanta, _summary_bytes(c.summary)) for c in node.classification]
        for node in nodes
    ]
    trace = [
        (event.kind, event.node, event.items)
        for event in sink.events
        if event.kind in TRACE_KINDS
    ]
    stats = [node.stats.as_dict() for node in nodes]
    return states, trace, stats


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("name", SCHEME_NAMES)
def test_native_and_fallback_runs_are_byte_identical(name, engine, monkeypatch):
    native = _run(name, engine, native=True, monkeypatch=monkeypatch)
    fallback = _run(name, engine, native=False, monkeypatch=monkeypatch)
    assert native[0] == fallback[0], "classification states diverged"
    assert native[1] == fallback[1], "protocol event traces diverged"
    assert native[2] == fallback[2], "per-node counters diverged"


def test_native_toggle_reaches_nodes(monkeypatch):
    """The env toggle must actually select the tier on supporting nodes."""
    monkeypatch.setenv("REPRO_NATIVE", "1")
    _, native_nodes = build_classification_network(
        _values("gm"), _scheme("gm"), k=3, graph=ring(N), seed=11
    )
    monkeypatch.setenv("REPRO_NATIVE", "0")
    _, fallback_nodes = build_classification_network(
        _values("gm"), _scheme("gm"), k=3, graph=ring(N), seed=11
    )
    assert all(node.native for node in native_nodes)
    assert not any(node.native for node in fallback_nodes)


def test_status_reports_tier(monkeypatch):
    from repro import native as native_package

    monkeypatch.setenv("REPRO_NATIVE", "1")
    on = native_package.status()
    assert on["enabled"] is True
    assert on["tier"] in ("numba", "fallback")
    monkeypatch.setenv("REPRO_NATIVE", "0")
    off = native_package.status()
    assert off["enabled"] is False
    assert off["tier"] == "off"
