"""Synthetic workload generators (the paper's evaluation data sets)."""

import numpy as np
import pytest

from repro.analysis.outliers import F_MIN
from repro.data.generators import (
    fence_fire_mixture,
    fence_fire_values,
    load_scenario,
    outlier_scenario,
    standard_normal_values,
)


class TestFenceFire:
    def test_mixture_shape(self):
        mixture = fence_fire_mixture()
        assert mixture.n_components == 3
        assert mixture.dimension == 2
        assert np.isclose(mixture.weights.sum(), 1.0)

    def test_hot_component_is_rightmost(self):
        """The fire is at the right end: hottest component sits there."""
        mixture = fence_fire_mixture()
        hottest = int(np.argmax(mixture.means[:, 1]))
        assert mixture.means[hottest, 0] == mixture.means[:, 0].max()

    def test_values_shape_and_labels(self):
        values, labels = fence_fire_values(200, seed=1)
        assert values.shape == (200, 2)
        assert labels.shape == (200,)
        assert set(np.unique(labels)) <= {0, 1, 2}

    def test_deterministic_given_seed(self):
        a, _ = fence_fire_values(50, seed=9)
        b, _ = fence_fire_values(50, seed=9)
        assert np.array_equal(a, b)


class TestOutlierScenario:
    def test_paper_defaults(self):
        scenario = outlier_scenario(10.0)
        assert scenario.n == 1000
        assert scenario.is_outlier_source.sum() == 50
        assert scenario.delta == 10.0
        assert np.allclose(scenario.true_mean, [0.0, 0.0])

    def test_outlier_cluster_centred_at_delta(self):
        scenario = outlier_scenario(15.0, seed=2)
        outliers = scenario.values[scenario.is_outlier_source]
        assert np.allclose(outliers.mean(axis=0), [0.0, 15.0], atol=0.3)
        # Outlier covariance 0.1 I: tight cluster.
        assert outliers.std(axis=0).max() < 0.6

    def test_good_values_standard_normal(self):
        scenario = outlier_scenario(10.0, seed=2)
        good = scenario.values[~scenario.is_outlier_source]
        assert np.allclose(good.mean(axis=0), [0.0, 0.0], atol=0.15)
        assert np.allclose(good.std(axis=0), 1.0, atol=0.1)

    def test_density_outliers_follow_paper_definition(self):
        """Far outlier cluster is density-flagged; near one is not."""
        far = outlier_scenario(20.0, seed=2)
        flagged = far.density_outlier_indices(F_MIN)
        assert set(np.where(far.is_outlier_source)[0]) <= set(flagged.tolist())
        near = outlier_scenario(0.0, seed=2)
        # At delta=0 the "outliers" sit in the densest region: none flagged
        # from the outlier cluster except possibly good-tail values.
        assert len(near.density_outlier_indices(F_MIN)) < 10

    def test_rejects_invalid_counts(self):
        with pytest.raises(ValueError):
            outlier_scenario(5.0, n_good=0)


class TestStandardNormal:
    def test_shape(self):
        assert standard_normal_values(30, dimension=3, seed=0).shape == (30, 3)


class TestLoadScenario:
    def test_loads_in_percent_range(self):
        loads, _ = load_scenario(200, seed=0)
        assert loads.min() >= 0.0
        assert loads.max() <= 100.0

    def test_bimodal_means(self):
        loads, heavy = load_scenario(2000, spread=2.0, seed=0)
        assert loads[~heavy].mean() == pytest.approx(10.0, abs=0.5)
        assert loads[heavy].mean() == pytest.approx(90.0, abs=0.5)

    def test_light_fraction(self):
        _, heavy = load_scenario(1000, light_fraction=0.3, seed=0)
        assert heavy.sum() == 700

    def test_rejects_degenerate_fraction(self):
        with pytest.raises(ValueError):
            load_scenario(10, light_fraction=1.0)

    def test_shuffled_but_deterministic(self):
        a, _ = load_scenario(50, seed=4)
        b, _ = load_scenario(50, seed=4)
        assert np.array_equal(a, b)
