"""Length-prefixed wire frames: the stream protocol above the payload codec.

:mod:`repro.core.serialization` defines what one gossip *payload* looks
like in bytes (fixed-size summary records, the paper's message-size
claim made measurable).  This module defines how those bytes travel over
a real byte stream — a TCP connection or an OS pipe — where message
boundaries do not exist and partial reads are routine:

``[magic u16][version u8][kind u8][sender u32][length u32][crc32 u32][body]``

- **magic / version** reject foreign traffic and stale peers outright;
- **kind** multiplexes gossip data and the membership protocol
  (:data:`DATA`, :data:`JOIN`, :data:`PEER_LIST`, :data:`HEARTBEAT`,
  :data:`LEAVE`) over one connection;
- **length** delimits the body on the stream (bounded by
  :data:`MAX_BODY_BYTES` so a corrupt length cannot balloon memory);
- **crc32** detects corruption — a frame that fails its checksum is
  *rejected*, never partially applied, because a half-applied gossip
  message would silently destroy the weight-conservation invariant the
  whole algorithm rests on.

:class:`FrameDecoder` reassembles frames from arbitrary chunk boundaries
(feed it whatever ``recv`` returned; it yields complete frames), which is
the piece both the asyncio TCP transport and the pipe transport share.
Membership bodies are encoded here too, so the frame module is the entire
wire contract of a deployment — property-tested round-trip plus
truncation/corruption rejection in ``tests/network/test_frames.py``.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Iterator, Sequence

__all__ = [
    "DATA",
    "JOIN",
    "PEER_LIST",
    "HEARTBEAT",
    "LEAVE",
    "FRAME_KINDS",
    "MAX_BODY_BYTES",
    "FrameError",
    "Frame",
    "encode_frame",
    "FrameDecoder",
    "encode_peer_entries",
    "decode_peer_entries",
]

#: First two bytes of every frame; rejects non-protocol traffic early.
MAGIC = 0x5243  # "RC" — repro classification

#: Frame protocol version (independent of the payload codec's version).
FRAME_VERSION = 1

#: Frame kinds: gossip data plus the membership protocol.
DATA = 1  #: an encoded gossip payload (repro.core.serialization bytes)
JOIN = 2  #: "I exist at this address" — body is one peer entry
PEER_LIST = 3  #: membership gossip — body is a list of peer entries
HEARTBEAT = 4  #: liveness beacon for otherwise-idle links (empty body)
LEAVE = 5  #: graceful departure announcement (empty body)

FRAME_KINDS = (DATA, JOIN, PEER_LIST, HEARTBEAT, LEAVE)

#: Upper bound on one frame body.  Generous next to real payloads (a
#: k=16, d=8 Gaussian payload is ~5 KiB) while keeping a corrupted
#: length field from allocating gigabytes.
MAX_BODY_BYTES = 16 * 1024 * 1024

_HEADER = struct.Struct("!HBBIII")


class FrameError(ValueError):
    """A frame violated the wire contract (magic, version, kind, crc, size)."""


@dataclass(frozen=True, slots=True)
class Frame:
    """One decoded frame: who sent what kind of body."""

    kind: int
    sender: int
    body: bytes


def encode_frame(kind: int, sender: int, body: bytes = b"") -> bytes:
    """Serialise one frame; the inverse of :class:`FrameDecoder`."""
    if kind not in FRAME_KINDS:
        raise FrameError(f"unknown frame kind {kind}")
    if sender < 0 or sender > 0xFFFFFFFF:
        raise FrameError(f"sender id {sender} does not fit the wire format")
    if len(body) > MAX_BODY_BYTES:
        raise FrameError(f"frame body of {len(body)} bytes exceeds {MAX_BODY_BYTES}")
    header = _HEADER.pack(
        MAGIC, FRAME_VERSION, kind, sender, len(body), zlib.crc32(body) & 0xFFFFFFFF
    )
    return header + body


class FrameDecoder:
    """Incremental frame reassembly over arbitrary chunk boundaries.

    Feed whatever the stream produced (``feed``), iterate complete frames
    (``frames``).  State survives partial headers and split bodies; a
    contract violation raises :class:`FrameError` and poisons the decoder
    — after corruption the stream position is untrustworthy, so the
    owning connection must be dropped and re-established (the TCP
    transport's reconnect path does exactly that).
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._poisoned = False

    @property
    def buffered(self) -> int:
        """Bytes held waiting for a complete frame."""
        return len(self._buffer)

    def feed(self, chunk: bytes) -> list[Frame]:
        """Absorb one chunk; returns every frame completed by it."""
        if self._poisoned:
            raise FrameError("decoder poisoned by earlier corruption; reset the stream")
        self._buffer.extend(chunk)
        return list(self._drain())

    def _drain(self) -> Iterator[Frame]:
        while True:
            if len(self._buffer) < _HEADER.size:
                return
            magic, version, kind, sender, length, crc = _HEADER.unpack_from(self._buffer, 0)
            if magic != MAGIC:
                self._poisoned = True
                raise FrameError(f"bad magic 0x{magic:04x}; not protocol traffic")
            if version != FRAME_VERSION:
                self._poisoned = True
                raise FrameError(f"unsupported frame version {version}")
            if kind not in FRAME_KINDS:
                self._poisoned = True
                raise FrameError(f"unknown frame kind {kind}")
            if length > MAX_BODY_BYTES:
                self._poisoned = True
                raise FrameError(f"frame length {length} exceeds {MAX_BODY_BYTES}")
            if len(self._buffer) < _HEADER.size + length:
                return  # body still in flight
            body = bytes(self._buffer[_HEADER.size : _HEADER.size + length])
            if (zlib.crc32(body) & 0xFFFFFFFF) != crc:
                self._poisoned = True
                raise FrameError("crc mismatch: frame body corrupted in transit")
            del self._buffer[: _HEADER.size + length]
            yield Frame(kind=kind, sender=sender, body=body)


# ----------------------------------------------------------------------
# Membership bodies (JOIN carries one entry, PEER_LIST a list)
# ----------------------------------------------------------------------
_PEER_ENTRY = struct.Struct("!IHH")  # node_id, port, host length


def encode_peer_entries(entries: Sequence[tuple[int, str, int]]) -> bytes:
    """Serialise ``(node_id, host, port)`` peer entries for JOIN/PEER_LIST."""
    chunks = [struct.pack("!H", len(entries))]
    for node_id, host, port in entries:
        host_bytes = host.encode("utf-8")
        if len(host_bytes) > 0xFFFF:
            raise FrameError(f"host name of {len(host_bytes)} bytes is not addressable")
        chunks.append(_PEER_ENTRY.pack(node_id, port, len(host_bytes)))
        chunks.append(host_bytes)
    return b"".join(chunks)


def decode_peer_entries(body: bytes) -> list[tuple[int, str, int]]:
    """Inverse of :func:`encode_peer_entries`; rejects truncated bodies."""
    if len(body) < 2:
        raise FrameError("peer-entry body shorter than its count prefix")
    (count,) = struct.unpack_from("!H", body, 0)
    offset = 2
    entries: list[tuple[int, str, int]] = []
    for _ in range(count):
        if len(body) < offset + _PEER_ENTRY.size:
            raise FrameError("truncated peer entry header")
        node_id, port, host_length = _PEER_ENTRY.unpack_from(body, offset)
        offset += _PEER_ENTRY.size
        if len(body) < offset + host_length:
            raise FrameError("truncated peer entry host")
        host = body[offset : offset + host_length].decode("utf-8")
        offset += host_length
        entries.append((node_id, host, port))
    if offset != len(body):
        raise FrameError(f"trailing bytes in peer-entry body ({len(body) - offset})")
    return entries
