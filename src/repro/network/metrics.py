"""Instrumentation counters for network engines.

Purely observational: engines update these as a side effect and
benchmarks/ tests read them.  Message complexity is one of the paper's
selling points (message size depends on dataset parameters, never on
``n``), and the counters make that measurable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.fingerprint import MergeCache
    from repro.network.transport import TransportStats

__all__ = ["NetworkMetrics"]


@dataclass
class NetworkMetrics:
    """Counters accumulated over an engine's lifetime."""

    rounds: int = 0
    events: int = 0
    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    payload_items_sent: int = 0
    crashes: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    cache_noop_hits: int = 0
    quiescent_rounds: int = 0
    frames_sent: int = 0
    frames_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    reconnects: int = 0
    peer_count: int = 0
    per_round_messages: list[int] = field(default_factory=list)

    def record_send(self, payload_items: int = 1) -> None:
        self.messages_sent += 1
        self.payload_items_sent += payload_items

    def record_delivery(self) -> None:
        self.messages_delivered += 1

    def record_drop(self) -> None:
        self.messages_dropped += 1

    def close_round(self, messages_this_round: int) -> None:
        self.rounds += 1
        self.per_round_messages.append(messages_this_round)

    def sync_cache(self, cache: "MergeCache") -> None:
        """Mirror the run's merge-cache counters (kernel calls this at
        every round close; the cache is shared, the metrics are the
        engine-scoped view of it)."""
        self.cache_hits = cache.hits
        self.cache_misses = cache.misses
        self.cache_evictions = cache.evictions
        self.cache_noop_hits = cache.noop_hits

    def sync_transport(self, stats: "TransportStats") -> None:
        """Mirror the transport's counters (frames, bytes, reconnects,
        peers).  Like :meth:`sync_cache`, the kernel calls this at every
        round close; the transport owns the counters, the metrics are
        the engine-scoped view of them.  For the in-memory transport,
        bytes stay zero (nothing is serialised) and ``peer_count``
        gauges the channels opened so far; the wire transports report
        real byte counts and live peers — see ``docs/deployment.md``.
        """
        self.frames_sent = stats.frames_sent
        self.frames_received = stats.frames_received
        self.bytes_sent = stats.bytes_sent
        self.bytes_received = stats.bytes_received
        self.reconnects = stats.reconnects
        self.peer_count = stats.peer_count

    def scalar_snapshot(self, include_cache: bool = True) -> dict[str, int]:
        """The scalar counters only — no per-round series.

        This is the payload of the kernel's final ``metrics`` event on a
        quiescence early exit.  ``include_cache=False`` drops the
        ``cache_*`` mirrors: those counters differ between merge-cache
        configurations whose simulation results are byte-identical, and
        the trace determinism gates compare exactly such runs.
        """
        snapshot = {
            "rounds": self.rounds,
            "events": self.events,
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
            "messages_dropped": self.messages_dropped,
            "payload_items_sent": self.payload_items_sent,
            "crashes": self.crashes,
            "quiescent_rounds": self.quiescent_rounds,
        }
        if include_cache:
            snapshot.update(
                cache_hits=self.cache_hits,
                cache_misses=self.cache_misses,
                cache_evictions=self.cache_evictions,
                cache_noop_hits=self.cache_noop_hits,
            )
        return snapshot

    def as_dict(self) -> dict[str, object]:
        """Full snapshot, including the per-round message series.

        Besides the raw counters this carries ``per_round_messages`` and
        the derived per-round statistics (mean/max messages per round),
        so benchmark result files capture the paper's message-complexity
        claim without custom bookkeeping.
        """
        per_round = list(self.per_round_messages)
        return {
            "rounds": self.rounds,
            "events": self.events,
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
            "messages_dropped": self.messages_dropped,
            "payload_items_sent": self.payload_items_sent,
            "crashes": self.crashes,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_evictions": self.cache_evictions,
            "cache_noop_hits": self.cache_noop_hits,
            "quiescent_rounds": self.quiescent_rounds,
            "frames_sent": self.frames_sent,
            "frames_received": self.frames_received,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "reconnects": self.reconnects,
            "peer_count": self.peer_count,
            "per_round_messages": per_round,
            "mean_messages_per_round": (
                sum(per_round) / len(per_round) if per_round else 0.0
            ),
            "max_messages_per_round": max(per_round, default=0),
        }
