"""One-call engine construction: the scheduler axis as a string knob.

Experiment drivers and protocol builders select the execution model by
name — ``"rounds"`` for the paper's Section 5.3 synchronous schedule,
``"async"`` for the Section 6 Poisson schedule — and get back a fully
wired :class:`~repro.network.kernel.SimulationKernel` subclass.  Every
other knob (variant, failures, link schedules, tracing) means the same
thing on either engine, which is what makes ``--engine`` a pure axis in
the experiment CLI.
"""

from __future__ import annotations

from typing import Mapping, Optional

import networkx as nx

from repro.core.fingerprint import MergeCache
from repro.network.asynchronous import AsyncEngine
from repro.network.failures import FailureModel
from repro.network.kernel import SimulationKernel
from repro.network.links import LinkSchedule
from repro.network.rounds import RoundEngine
from repro.network.simulator import NeighborSelector
from repro.network.transport import SimulationTransport
from repro.obs.events import EventSink
from repro.obs.timeseries import TimeSeriesRecorder
from repro.protocols.base import GossipProtocol

__all__ = ["ENGINES", "make_engine"]

#: The selectable execution models.
ENGINES = ("rounds", "async")


def make_engine(
    engine: str,
    graph: nx.Graph,
    protocols: Mapping[int, GossipProtocol],
    seed: int = 0,
    selector: Optional[NeighborSelector] = None,
    variant: str = "push",
    failure_model: Optional[FailureModel] = None,
    link_schedule: Optional[LinkSchedule] = None,
    event_sink: Optional[EventSink] = None,
    mean_interval: float = 1.0,
    delay_range: tuple[float, float] = (0.05, 2.0),
    fifo: bool = False,
    transport: Optional[SimulationTransport] = None,
    merge_cache: Optional[MergeCache] = None,
    stop_on_quiescence: bool = False,
    quiescence_patience: int = 3,
    telemetry: Optional[TimeSeriesRecorder] = None,
) -> SimulationKernel:
    """Construct the named engine over a protocol map.

    ``mean_interval``, ``delay_range`` and ``fifo`` only apply to the
    asynchronous engine; they are accepted (and ignored) for ``"rounds"``
    so callers can thread one configuration through either schedule.
    ``merge_cache`` / ``stop_on_quiescence`` / ``quiescence_patience``
    (the convergence-aware knobs — see ``docs/performance.md``) apply to
    both.

    ``transport`` selects the message-movement implementation for either
    engine; ``None`` (the default) means a fresh
    :class:`~repro.network.transport.InMemoryTransport`, the historical
    in-process path.  Only simulation transports plug in here — the
    ``process`` and ``tcp`` frame transports are driven by per-node
    runtimes instead (``python -m repro.deploy``); the selection matrix
    lives in ``docs/architecture.md``.
    """
    if engine == "rounds":
        return RoundEngine(
            graph,
            protocols,
            seed=seed,
            selector=selector,
            variant=variant,
            failure_model=failure_model,
            link_schedule=link_schedule,
            event_sink=event_sink,
            transport=transport,
            merge_cache=merge_cache,
            stop_on_quiescence=stop_on_quiescence,
            quiescence_patience=quiescence_patience,
            telemetry=telemetry,
        )
    if engine == "async":
        return AsyncEngine(
            graph,
            protocols,
            seed=seed,
            selector=selector,
            variant=variant,
            failure_model=failure_model,
            link_schedule=link_schedule,
            event_sink=event_sink,
            mean_interval=mean_interval,
            delay_range=delay_range,
            fifo=fifo,
            transport=transport,
            merge_cache=merge_cache,
            stop_on_quiescence=stop_on_quiescence,
            quiescence_patience=quiescence_patience,
            telemetry=telemetry,
        )
    raise ValueError(f"unknown engine {engine!r}; choose from {ENGINES}")
