"""Pluggable schedulers: the paper's two execution models as strategies.

The kernel (:mod:`repro.network.kernel`) is schedule-independent; these
strategies decide *when* its machinery runs:

- :class:`SynchronousRoundScheduler` — Section 5.3's measurement
  methodology: in each round every node sends once, all sends logically
  precede all receives, receivers merge their whole round's intake as one
  batch, and crashes are injected between rounds.
- :class:`PoissonScheduler` — Section 6's asynchronous model: every node
  fires on its own exponential clock, messages take random finite delays,
  and deliveries are handled as they arrive.  Failure models and link
  schedules — written against round indices — apply at *epoch*
  granularity, one epoch being one mean firing interval (the time in
  which an average node sends once, i.e. the asynchronous analogue of a
  round).

Both accept the three gossip variants of Section 4.1 (push, pull,
push-pull) and run identical transport, failure, metrics and event
machinery, which is what makes robustness experiments directly
comparable across schedules.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.network.failures import NoFailures
from repro.network.kernel import GOSSIP_VARIANTS, Scheduler, SimulationKernel, _Fire
from repro.network.simulator import NeighborSelector, RoundRobinSelector
from repro.obs.profiling import span

__all__ = ["SynchronousRoundScheduler", "PoissonScheduler"]


def _validated_variant(variant: str) -> str:
    if variant not in GOSSIP_VARIANTS:
        raise ValueError(f"variant must be one of {GOSSIP_VARIANTS}, got {variant!r}")
    return variant


class SynchronousRoundScheduler(Scheduler):
    """The paper's round schedule (Section 5.3).

    One :meth:`advance` is one synchronous parallel step: every live node
    picks a neighbour and (link permitting) transmits per the gossip
    variant; all queued messages are then flushed to their destinations,
    batched per receiver; finally the failure model injects crashes and
    the round closes.  Within a round all sends precede all receives, so
    a payload can never be forwarded twice in the round it was sent.
    """

    def __init__(self, variant: str = "push") -> None:
        self.variant = _validated_variant(variant)
        self.round_index = 0

    # -- clocking ------------------------------------------------------
    def stamp(self, kernel: SimulationKernel) -> dict[str, Any]:
        return {"round": self.round_index}

    def clock(self, kernel: SimulationKernel) -> float:
        return float(self.round_index)

    def tick(self, kernel: SimulationKernel) -> int:
        return self.round_index

    # -- execution -----------------------------------------------------
    def advance(self, kernel: SimulationKernel) -> bool:
        with span("engine.round"):
            self._run_round(kernel)
        return True

    advance_unit = advance

    def _run_round(self, kernel: SimulationKernel) -> None:
        messages = 0
        for node in kernel.live_nodes:
            neighbors = kernel.neighbors[node]
            if not neighbors:
                continue
            peer = kernel.selector.choose(node, neighbors, kernel.rng)
            if not kernel.link_up(node, peer):
                continue  # detected-down link: hold the data, try next round
            if self.variant in ("push", "pushpull"):
                messages += kernel.transmit(node, peer)
            if self.variant in ("pull", "pushpull"):
                # The peer answers a pull only if it is still alive.
                if kernel.is_live(peer):
                    messages += kernel.transmit(peer, node)
        kernel.flush_deliveries()
        kernel.inject_crashes(self.round_index)
        kernel.emit_round_close(self.round_index, messages)
        self.round_index += 1
        kernel.metrics.close_round(messages)


class PoissonScheduler(Scheduler):
    """The convergence theorem's asynchronous schedule (Section 6).

    Parameters
    ----------
    variant:
        Gossip variant applied at each firing; pull answers are produced
        by the chosen peer at fire time and travel back with their own
        delay, mirroring the round schedule's same-round response.
    mean_interval:
        Mean of the exponential time between a node's sends.  Also the
        *epoch* length: failure models and link schedules written against
        round indices are evaluated per epoch, and :meth:`advance_unit`
        (the kernel's ``run`` unit) advances one epoch of simulated time.
    delay_range:
        Message latency is drawn uniformly from this interval; any finite
        positive range satisfies the reliable-asynchronous model.

    Epoch ↔ round mapping: one epoch is this schedule's round-equivalent
    — the window in which the average node fires once.  Both schedulers
    report the same unified 0-based counter to
    :meth:`SimulationKernel.emit_round_close` (epoch ``i`` ends exactly
    when synchronous round ``i`` would), so ``round_close`` events,
    telemetry samples, failure models and link schedules all share one
    round axis across engines; see ``docs/observability.md``.
    """

    def __init__(
        self,
        variant: str = "push",
        mean_interval: float = 1.0,
        delay_range: tuple[float, float] = (0.05, 2.0),
    ) -> None:
        self.variant = _validated_variant(variant)
        if mean_interval <= 0:
            raise ValueError("mean_interval must be positive")
        low, high = delay_range
        if not 0 <= low <= high:
            raise ValueError(f"invalid delay range {delay_range}")
        self.mean_interval = mean_interval
        self.delay_range = delay_range
        self.now = 0.0
        self.units_completed = 0
        self._epoch = 0
        self._inject_failures = False

    def default_selector(self) -> Optional[NeighborSelector]:
        # Round-robin: the deterministic fairness the proof assumes.
        return RoundRobinSelector()

    def attach(self, kernel: SimulationKernel) -> None:
        self._inject_failures = not isinstance(kernel.failure_model, NoFailures)
        # Stagger initial timers uniformly so nodes do not fire in lockstep.
        for node in kernel.live_nodes:
            kernel.queue.push(
                float(kernel.rng.uniform(0.0, self.mean_interval)), _Fire(node)
            )

    # -- clocking ------------------------------------------------------
    def stamp(self, kernel: SimulationKernel) -> dict[str, Any]:
        return {"t": self.now}

    def clock(self, kernel: SimulationKernel) -> float:
        return self.now

    def tick(self, kernel: SimulationKernel) -> int:
        return int(self.now / self.mean_interval)

    # -- execution -----------------------------------------------------
    def advance(self, kernel: SimulationKernel) -> bool:
        """Process one discrete event; returns False when none remain."""
        if not kernel.queue:
            return False
        when, entry = kernel.queue.pop()
        self._cross_epochs(kernel, when)
        self.now = when
        kernel.metrics.events += 1
        if isinstance(entry, _Fire):
            self._fire(kernel, entry.node)
        else:
            consumed = kernel.dispatch_delivery(
                entry.channel, entry.message, coalesce_at=when
            )
            # Coalesced same-instant deliveries still count as processed.
            kernel.metrics.events += consumed - 1
        return True

    def advance_unit(self, kernel: SimulationKernel) -> bool:
        """Advance one epoch of simulated time (a round-equivalent)."""
        if not kernel.queue:
            return False
        sent_before = kernel.metrics.messages_sent
        self.run_until(kernel, self.now + self.mean_interval)
        messages = kernel.metrics.messages_sent - sent_before
        kernel.emit_round_close(self.units_completed, messages)
        self.units_completed += 1
        kernel.metrics.close_round(messages)
        return True

    def run_until(self, kernel: SimulationKernel, time: float) -> None:
        """Process all events with timestamps strictly below ``time``."""
        while kernel.queue and kernel.queue.peek_time() < time:
            self.advance(kernel)
        self._cross_epochs(kernel, time)
        self.now = max(self.now, time)

    # -- internals -----------------------------------------------------
    def _cross_epochs(self, kernel: SimulationKernel, up_to: float) -> None:
        """Inject crashes for every epoch boundary at or before ``up_to``.

        The failure model's "crashes after round ``i``" fires at the end
        of epoch ``i`` — time ``(i + 1) * mean_interval`` — and applies
        before any event at or beyond that instant, mirroring the round
        schedule's crash-between-rounds semantics.
        """
        while self._inject_failures:
            boundary = (self._epoch + 1) * self.mean_interval
            if boundary > up_to:
                break
            self.now = boundary
            kernel.inject_crashes(self._epoch)
            self._epoch += 1

    def _fire(self, kernel: SimulationKernel, node: int) -> None:
        """One timer expiry: Algorithm 1 lines 3-7 under this schedule."""
        if not kernel.is_live(node):
            return  # fail-stop: the dead node's clock is never rescheduled
        neighbors = kernel.neighbors[node]
        if neighbors:
            peer = kernel.selector.choose(node, neighbors, kernel.rng)
            if kernel.link_up(node, peer):
                low, high = self.delay_range

                def deliver_at() -> float:
                    return self.now + float(kernel.rng.uniform(low, high))

                if self.variant in ("push", "pushpull"):
                    kernel.transmit(node, peer, deliver_time=deliver_at)
                if self.variant in ("pull", "pushpull") and kernel.is_live(peer):
                    kernel.transmit(peer, node, deliver_time=deliver_at)
        next_fire = self.now + float(kernel.rng.exponential(self.mean_interval))
        kernel.queue.push(next_fire, _Fire(node))
