"""Round-based gossip engine: the paper's simulation methodology.

Section 5.3 measures progress in *rounds*: "in each round each node sends
a classification to one neighbor.  Nodes that receive classifications from
multiple neighbors accumulate all the received collections and run EM once
for the entire set."  :class:`RoundEngine` implements exactly that
schedule, plus the three gossip variants Section 4.1 mentions (push, pull,
push-pull) and per-round crash injection for the Figure 4 experiment.

Within a round all sends logically precede all receives (a synchronous
parallel step); messages addressed to nodes that crashed in an earlier
round are lost, taking their weight with them.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Mapping, Optional

import networkx as nx

from repro.network.failures import FailureModel, NoFailures
from repro.network.links import AlwaysUp, LinkSchedule
from repro.network.simulator import NeighborSelector, Network
from repro.obs.events import Event, EventSink
from repro.obs.profiling import span
from repro.protocols.base import GossipProtocol

__all__ = ["RoundEngine", "GOSSIP_VARIANTS"]

#: The gossip communication patterns of Section 4.1.
GOSSIP_VARIANTS = ("push", "pull", "pushpull")


class RoundEngine(Network):
    """Synchronous-round driver over a :class:`~repro.network.simulator.Network`.

    Parameters
    ----------
    graph, protocols, seed, selector:
        See :class:`~repro.network.simulator.Network`.
    variant:
        ``"push"`` — each node sends its split share to a chosen
        neighbour (the default, and the paper's description of
        Algorithm 1); ``"pull"`` — each node asks a chosen neighbour,
        which responds with its split share; ``"pushpull"`` — both
        directions in one exchange.
    failure_model:
        Invoked after every round; defaults to no failures.
    link_schedule:
        Per-round link availability (see :mod:`repro.network.links`);
        defaults to the paper's always-up static links.  A node that
        picks a currently-down link skips its transmission that round —
        the message is never sent, so reliability is not violated and
        the weight stays at the sender.
    """

    def __init__(
        self,
        graph: nx.Graph,
        protocols: Mapping[int, GossipProtocol],
        seed: int = 0,
        selector: NeighborSelector | None = None,
        variant: str = "push",
        failure_model: FailureModel | None = None,
        link_schedule: LinkSchedule | None = None,
        event_sink: EventSink | None = None,
    ) -> None:
        super().__init__(graph, protocols, seed=seed, selector=selector, event_sink=event_sink)
        if variant not in GOSSIP_VARIANTS:
            raise ValueError(f"variant must be one of {GOSSIP_VARIANTS}, got {variant!r}")
        self.variant = variant
        self.failure_model = failure_model if failure_model is not None else NoFailures()
        self.link_schedule = link_schedule if link_schedule is not None else AlwaysUp()
        self.round_index = 0

    def _stamp(self) -> dict[str, int | float]:
        return {"round": self.round_index}

    # ------------------------------------------------------------------
    # One round
    # ------------------------------------------------------------------
    def run_round(self) -> None:
        """Execute one synchronous gossip round and then inject crashes."""
        with span("engine.round"):
            self._run_round()

    def _run_round(self) -> None:
        inboxes: dict[int, list] = defaultdict(list)
        messages_this_round = 0

        for node in self.live_nodes:
            neighbors = self.neighbors[node]
            if not neighbors:
                continue
            peer = self.selector.choose(node, neighbors, self.rng)
            if not self.link_schedule.is_up(self.round_index, node, peer):
                continue  # detected-down link: hold the data, try next round
            if self.variant in ("push", "pushpull"):
                messages_this_round += self._transmit(node, peer, inboxes)
            if self.variant in ("pull", "pushpull"):
                # The peer answers a pull only if it is still alive.
                if self.is_live(peer):
                    messages_this_round += self._transmit(peer, node, inboxes)

        for destination in sorted(inboxes):
            if self.is_live(destination):
                self.protocols[destination].receive_batch(inboxes[destination])

        crashed = self.failure_model.crashes_after_round(
            self.round_index, self.live_nodes, self.rng
        )
        for node in crashed:
            self.crash(node)

        if self.event_sink is not None:
            self.event_sink.emit(
                Event(
                    kind="round_close",
                    round=self.round_index,
                    extra={"messages": messages_this_round, "live": len(self.live)},
                )
            )
        self.round_index += 1
        self.metrics.close_round(messages_this_round)

    def _transmit(self, source: int, destination: int, inboxes: dict[int, list]) -> int:
        """Move one payload from source to destination; returns messages sent."""
        payload = self.protocols[source].make_payload()
        if payload is None:
            return 0
        items = self.payload_size(payload)
        self.metrics.record_send(items)
        sink = self.event_sink
        if sink is not None:
            sink.emit(
                Event(kind="send", node=source, peer=destination, round=self.round_index, items=items)
            )
        if self.is_live(destination):
            inboxes[destination].append(payload)
            self.metrics.record_delivery()
            if sink is not None:
                sink.emit(
                    Event(kind="deliver", node=source, peer=destination, round=self.round_index)
                )
        else:
            # Reliable channels deliver, but a crashed node never processes:
            # the payload's weight leaves the system.
            self.metrics.record_drop()
            if sink is not None:
                sink.emit(
                    Event(kind="drop", node=source, peer=destination, round=self.round_index)
                )
        return 1

    # ------------------------------------------------------------------
    # Multi-round driving
    # ------------------------------------------------------------------
    def run(
        self,
        rounds: int,
        stop_condition: Optional[Callable[["RoundEngine"], bool]] = None,
        per_round: Optional[Callable[["RoundEngine"], None]] = None,
    ) -> int:
        """Run up to ``rounds`` rounds; returns the number actually run.

        ``per_round`` (if given) observes the engine after each round;
        ``stop_condition`` (if given) is evaluated after each round and
        ends the run early when it returns true — the experiment scripts
        plug a :class:`~repro.core.convergence.ConvergenceDetector` in
        here to implement "run until convergence".
        """
        executed = 0
        for _ in range(rounds):
            self.run_round()
            executed += 1
            if per_round is not None:
                per_round(self)
            if stop_condition is not None and stop_condition(self):
                break
        return executed
