"""Round-based gossip engine: the paper's simulation methodology.

Section 5.3 measures progress in *rounds*: "in each round each node sends
a classification to one neighbor.  Nodes that receive classifications from
multiple neighbors accumulate all the received collections and run EM once
for the entire set."  :class:`RoundEngine` binds the simulation kernel
(:mod:`repro.network.kernel`) to a
:class:`~repro.network.schedulers.SynchronousRoundScheduler`, which
implements exactly that schedule, plus the three gossip variants
Section 4.1 mentions (push, pull, push-pull) and per-round crash
injection for the Figure 4 experiment.

Within a round all sends logically precede all receives (a synchronous
parallel step); messages addressed to nodes that crashed in an earlier
round are lost, taking their weight with them.

The class is a compatibility shim: all mechanics — transport, delivery
batching, failure injection, metrics, event emission — live in the
kernel and are shared verbatim with :class:`~repro.network.asynchronous.AsyncEngine`.
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional

import networkx as nx

from repro.core.fingerprint import MergeCache
from repro.network.failures import FailureModel
from repro.network.kernel import GOSSIP_VARIANTS, SimulationKernel
from repro.network.links import LinkSchedule
from repro.network.schedulers import SynchronousRoundScheduler
from repro.network.simulator import NeighborSelector
from repro.network.transport import SimulationTransport
from repro.obs.events import EventSink
from repro.obs.timeseries import TimeSeriesRecorder
from repro.protocols.base import GossipProtocol

__all__ = ["RoundEngine", "GOSSIP_VARIANTS"]


class RoundEngine(SimulationKernel):
    """Synchronous-round driver: the kernel under the paper's schedule.

    Parameters
    ----------
    graph, protocols, seed, selector:
        See :class:`~repro.network.simulator.Network`.
    variant:
        ``"push"`` — each node sends its split share to a chosen
        neighbour (the default, and the paper's description of
        Algorithm 1); ``"pull"`` — each node asks a chosen neighbour,
        which responds with its split share; ``"pushpull"`` — both
        directions in one exchange.
    failure_model:
        Invoked after every round; defaults to no failures.
    link_schedule:
        Per-round link availability (see :mod:`repro.network.links`);
        defaults to the paper's always-up static links.  A node that
        picks a currently-down link skips its transmission that round —
        the message is never sent, so reliability is not violated and
        the weight stays at the sender.
    """

    scheduler: SynchronousRoundScheduler

    def __init__(
        self,
        graph: nx.Graph,
        protocols: Mapping[int, GossipProtocol],
        seed: int = 0,
        selector: Optional[NeighborSelector] = None,
        variant: str = "push",
        failure_model: Optional[FailureModel] = None,
        link_schedule: Optional[LinkSchedule] = None,
        event_sink: Optional[EventSink] = None,
        transport: Optional[SimulationTransport] = None,
        merge_cache: Optional[MergeCache] = None,
        stop_on_quiescence: bool = False,
        quiescence_patience: int = 3,
        telemetry: Optional[TimeSeriesRecorder] = None,
    ) -> None:
        super().__init__(
            graph,
            protocols,
            SynchronousRoundScheduler(variant=variant),
            seed=seed,
            selector=selector,
            failure_model=failure_model,
            link_schedule=link_schedule,
            event_sink=event_sink,
            transport=transport,
            merge_cache=merge_cache,
            stop_on_quiescence=stop_on_quiescence,
            quiescence_patience=quiescence_patience,
            telemetry=telemetry,
        )

    @property
    def variant(self) -> str:
        return self.scheduler.variant

    @property
    def round_index(self) -> int:
        """Rounds completed so far (the 0-based index of the next round)."""
        return self.scheduler.round_index

    def run_round(self) -> None:
        """Execute one synchronous gossip round and then inject crashes."""
        self.scheduler.advance(self)

    def run(
        self,
        rounds: int,
        stop_condition: Optional[Callable[["RoundEngine"], bool]] = None,
        per_round: Optional[Callable[["RoundEngine"], None]] = None,
    ) -> int:
        """Run up to ``rounds`` rounds; returns the number actually run.

        See :meth:`repro.network.kernel.SimulationKernel.run` — this is
        the kernel's uniform drive loop, shared with the asynchronous
        engine.
        """
        return super().run(rounds, stop_condition=stop_condition, per_round=per_round)
