"""Message movement as a pluggable seam: from simulation to real networks.

The paper's protocol is specified for physically distributed sensors, but
a reproduction naturally starts life inside one simulated event loop.
This module is the seam that lets the *same* node and scheme code run on
either side of that divide:

- :class:`Transport` — the common contract: every transport moves opaque
  gossip payloads between named nodes and accounts for what it moved in a
  :class:`TransportStats` block (frames, bytes, reconnects, peers).
- :class:`InMemoryTransport` — the simulation implementation: the
  :class:`~repro.network.kernel.SimulationKernel`'s historical
  transmit / queued-deliver / batched-receive pipeline, extracted verbatim.
  It is *byte-identical* to the pre-extraction kernel: same channel
  objects, same delivery queue entries, same RNG discipline (none), same
  event ordering — the seed-determinism and cache/telemetry parity suites
  pass with zero trace changes.
- :class:`FrameTransport` — the deployment contract: transports that move
  *encoded frames* (see :mod:`repro.network.frames`) between real node
  processes.  Implemented by
  :class:`~repro.network.process_transport.ProcessTransport` (pipes
  between local worker processes) and
  :class:`~repro.network.tcp_transport.AsyncioTCPTransport` (length-prefixed
  frames over real TCP sockets with per-peer reconnect/backoff).

Selection matrix (see ``docs/architecture.md`` and ``docs/deployment.md``):

===============  ==================  ============================  =====================
transport        runs where          moves                         driven by
===============  ==================  ============================  =====================
``memory``       one process         payload objects               ``SimulationKernel``
``process``      N local processes   frames over OS pipes          ``NodeRuntime`` each
``tcp``          anywhere            frames over TCP sockets       ``NodeRuntime`` each
===============  ==================  ============================  =====================
"""

from __future__ import annotations

import abc
from collections import defaultdict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional

from repro.network.channel import Channel, InFlightMessage

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.frames import Frame
    from repro.network.kernel import SimulationKernel
    from repro.network.membership import PeerInfo

__all__ = [
    "TransportStats",
    "Transport",
    "SimulationTransport",
    "InMemoryTransport",
    "FrameTransport",
    "TRANSPORT_NAMES",
]

#: The selectable transport names (``docs/architecture.md`` has the
#: selection matrix).  ``memory`` plugs into the simulation kernel; the
#: other two are deployment transports driven by per-node runtimes.
TRANSPORT_NAMES = ("memory", "process", "tcp")


@dataclass
class TransportStats:
    """What a transport moved; purely observational.

    ``frames_*`` count transport-level message units (one in-memory
    envelope, one wire frame).  ``bytes_*`` count encoded bytes and stay
    zero for the in-memory transport, which moves Python objects and
    never serialises.  ``reconnects`` counts re-established peer
    connections (TCP only).  ``peer_count`` is a gauge: currently known
    live peers (in-memory: channels opened so far).
    """

    frames_sent: int = 0
    frames_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    reconnects: int = 0
    peer_count: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "frames_sent": self.frames_sent,
            "frames_received": self.frames_received,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "reconnects": self.reconnects,
            "peer_count": self.peer_count,
        }


class Transport(abc.ABC):
    """Common contract: move gossip traffic, account for it in ``stats``."""

    #: Registry name (one of :data:`TRANSPORT_NAMES`).
    name: str = "abstract"

    def __init__(self) -> None:
        self.stats = TransportStats()

    def close(self) -> None:
        """Release sockets / pipes / threads; idempotent."""

    def describe(self) -> dict[str, Any]:
        """A JSON-able summary for reports and HTTP status endpoints."""
        return {"transport": self.name, **self.stats.as_dict()}


class SimulationTransport(Transport):
    """Kernel-facing contract: the transmit/deliver pipeline as a strategy.

    A simulation transport is *bound* to exactly one
    :class:`~repro.network.kernel.SimulationKernel` and owns the message
    plumbing the kernel's schedulers drive: lazy per-edge channels, the
    queued-delivery entries, and the in-flight pool.  What it does *not*
    own is protocol interaction, metrics and event emission — those stay
    on the kernel (its single observability site), reached through the
    delivery callback :meth:`SimulationKernel._complete_delivery`.
    """

    kernel: "SimulationKernel"

    def bind(self, kernel: "SimulationKernel") -> None:
        """Attach to the kernel; called once from kernel init."""
        self.kernel = kernel

    @abc.abstractmethod
    def channel(self, source: int, destination: int) -> Channel:
        """The directed channel for an edge, created on first use."""

    @abc.abstractmethod
    def send(
        self, source: int, destination: int, payload: Any, send_time: float, deliver_at: float
    ) -> InFlightMessage:
        """Put one payload in flight and schedule its delivery."""

    @abc.abstractmethod
    def flush_deliveries(self) -> None:
        """Deliver everything queued, batched per destination."""

    @abc.abstractmethod
    def dispatch_delivery(
        self, channel: Channel, message: InFlightMessage, coalesce_at: Optional[float] = None
    ) -> int:
        """Deliver one due envelope (plus same-instant coalescing)."""

    @abc.abstractmethod
    def in_flight_payloads(self) -> list[Any]:
        """Payloads currently inside channels (the Section 6.1 pool)."""


class _Delivery:
    """Queue entry: a message envelope due at its channel's far end."""

    __slots__ = ("channel", "message")

    def __init__(self, channel: Channel, message: InFlightMessage) -> None:
        self.channel = channel
        self.message = message


class InMemoryTransport(SimulationTransport):
    """The simulation kernel's historical transport path, extracted.

    Everything here is the pre-refactor kernel code moved verbatim: one
    reliable directed :class:`~repro.network.channel.Channel` per used
    edge (created lazily — a 1,000-node complete graph has ~10^6 directed
    edges, most of which a short run never exercises), delivery entries
    pushed onto the *kernel's* event queue (so deliveries stay
    time-ordered against scheduler fire events), and batched completion
    through the kernel's delivery callback.  No serialisation happens:
    payloads travel as Python objects, so ``stats.bytes_*`` stay zero and
    ``stats.peer_count`` gauges the channels opened so far.
    """

    name = "memory"

    def __init__(self) -> None:
        super().__init__()
        self.channels: dict[tuple[int, int], Channel] = {}

    # ------------------------------------------------------------------
    # Channels
    # ------------------------------------------------------------------
    def channel(self, source: int, destination: int) -> Channel:
        key = (source, destination)
        found = self.channels.get(key)
        if found is None:
            if not self.kernel.graph.has_edge(source, destination):
                raise KeyError(f"no edge {source}->{destination} in the topology")
            found = Channel(source, destination, fifo=self.kernel.fifo)
            self.channels[key] = found
            self.stats.peer_count = len(self.channels)
        return found

    # ------------------------------------------------------------------
    # Send side
    # ------------------------------------------------------------------
    def send(
        self, source: int, destination: int, payload: Any, send_time: float, deliver_at: float
    ) -> InFlightMessage:
        channel = self.channel(source, destination)
        message = channel.send(payload, send_time, deliver_at)
        self.kernel.queue.push(message.deliver_time, _Delivery(channel, message))
        self.stats.frames_sent += 1
        return message

    # ------------------------------------------------------------------
    # Delivery side
    # ------------------------------------------------------------------
    def flush_deliveries(self) -> None:
        """The synchronous scheduler's receive phase: every message sent
        this round reaches its destination as one batch per receiver
        (the paper's "accumulate all the received collections and run EM
        once for the entire set")."""
        kernel = self.kernel
        batches: dict[int, list[tuple[Channel, InFlightMessage]]] = defaultdict(list)
        while kernel.queue:
            _, entry = kernel.queue.pop()
            batches[entry.channel.destination].append((entry.channel, entry.message))
        for destination in sorted(batches):
            entries = batches[destination]
            self.stats.frames_received += len(entries)
            kernel._complete_delivery(destination, entries)

    def dispatch_delivery(
        self, channel: Channel, message: InFlightMessage, coalesce_at: Optional[float] = None
    ) -> int:
        """Deliver one due envelope; returns the number of envelopes consumed.

        With ``coalesce_at`` set (the event-driven path), any further
        queued deliveries due at exactly the same instant for the same
        destination join the batch — the asynchronous counterpart of the
        round schedule's receiver-side merge batching.  Random continuous
        delays make ties measure-zero, but FIFO clamping and adversarial
        test schedules produce them deliberately.
        """
        kernel = self.kernel
        entries = [(channel, message)]
        if coalesce_at is not None:
            destination = channel.destination
            while kernel.queue:
                when, entry = kernel.queue.peek()
                if (
                    when != coalesce_at
                    or not isinstance(entry, _Delivery)
                    or entry.channel.destination != destination
                ):
                    break
                kernel.queue.pop()
                entries.append((entry.channel, entry.message))
        self.stats.frames_received += len(entries)
        kernel._complete_delivery(channel.destination, entries)
        return len(entries)

    # ------------------------------------------------------------------
    # Pool inspection (Section 6.1)
    # ------------------------------------------------------------------
    def in_flight_payloads(self) -> list[Any]:
        payloads: list[Any] = []
        for channel in self.channels.values():
            payloads.extend(message.payload for message in channel.in_flight)
        return payloads


class FrameTransport(Transport):
    """Deployment contract: move encoded frames between real processes.

    Unlike a :class:`SimulationTransport`, a frame transport has no
    central kernel: each node process owns one endpoint, driven by a
    :class:`~repro.network.runtime.NodeRuntime`.  Payloads cross the
    boundary as :mod:`repro.network.frames` byte strings — the
    length-prefixed, checksummed framing of the
    :mod:`repro.core.serialization` wire format — so everything a node
    learns arrives the way it would over a real radio.

    The facade is synchronous (``poll`` / ``send``) regardless of the
    implementation underneath; :class:`AsyncioTCPTransport` runs its
    asyncio machinery on a background thread behind it, which is what
    lets one runtime loop drive every deployment transport.
    """

    def __init__(self) -> None:
        super().__init__()
        #: Frames dropped for violating the wire contract (bad magic,
        #: CRC mismatch, truncation).  Kept out of :class:`TransportStats`
        #: — it is a transport-health diagnostic, not traffic accounting.
        self.frames_rejected = 0

    @abc.abstractmethod
    def start(self) -> None:
        """Bring the endpoint up (bind sockets, start worker threads)."""

    @abc.abstractmethod
    def poll(self, timeout: Optional[float] = None) -> "Optional[Frame]":
        """The next received (decoded, checksum-verified) frame, or
        ``None`` on timeout.  Corrupted traffic never surfaces here — it
        is dropped and counted in :attr:`frames_rejected`."""

    def drain(self, timeout: Optional[float] = None) -> "list[Frame]":
        """One blocking-with-timeout wait, then sweep the whole backlog.

        Blocks in :meth:`poll` for up to ``timeout`` for the *first*
        frame, then collects every further frame that is already queued
        without blocking again.  Returns the batch in arrival order
        (empty on timeout).  This is the runtime loop's entry point: one
        wait per batch instead of one per frame, so per-iteration work
        (snapshot refresh, timer checks) amortises over bursts instead
        of running once per queued frame.
        """
        first = self.poll(timeout=timeout)
        if first is None:
            return []
        batch = [first]
        while True:
            frame = self.poll(timeout=0.0)
            if frame is None:
                return batch
            batch.append(frame)

    @abc.abstractmethod
    def send_frame(self, peer: "PeerInfo", frame: bytes) -> bool:
        """Queue one encoded frame toward a peer; ``False`` if unreachable.

        "Unreachable" mirrors the simulator's drop-at-crashed-node
        semantics: a frame addressed to a peer the membership layer has
        declared dead is dropped, and the weight it carried leaves the
        system — exactly the paper's fail-stop crash model.
        """

    def forget_peer(self, peer: "PeerInfo") -> None:
        """Tear down per-peer resources after a failure declaration.

        Frames still queued toward the peer are discarded (fail-stop:
        in-flight weight is lost with the crash).  Default is a no-op for
        transports that keep no per-peer state.
        """

    def describe(self) -> dict[str, Any]:
        summary = super().describe()
        summary["frames_rejected"] = self.frames_rejected
        return summary
