"""Shared network plumbing: node registry, liveness, neighbour selection.

Both engines — the round-based one (:mod:`repro.network.rounds`) that
reproduces the paper's measurement methodology, and the event-driven one
(:mod:`repro.network.asynchronous`) that exercises the convergence
theorem's fully asynchronous setting — share this base: a validated
topology, one protocol object per node, a liveness set, a seeded RNG and
metrics.
"""

from __future__ import annotations

import abc
from typing import Mapping, Sequence

import networkx as nx
import numpy as np

from repro.network.metrics import NetworkMetrics
from repro.network.topology import neighbors_map, validate_topology
from repro.obs.context import current_sink
from repro.obs.events import Event, EventSink
from repro.protocols.base import GossipProtocol

__all__ = ["NeighborSelector", "RandomSelector", "RoundRobinSelector", "Network"]


class NeighborSelector(abc.ABC):
    """Strategy for Algorithm 1 line 4: "Choose j in neighbors_i".

    The convergence proof requires *fairness*: in an infinite run every
    neighbour must be chosen infinitely often.  Round-robin guarantees it
    deterministically; uniform random choice guarantees it with
    probability 1 and is the classic gossip discipline the paper's
    simulations use.
    """

    @abc.abstractmethod
    def choose(self, node: int, neighbors: Sequence[int], rng: np.random.Generator) -> int:
        """Pick the destination for this node's next message."""

    def choose_batch(
        self, count: int, degree: int, rng: np.random.Generator
    ) -> np.ndarray | None:
        """Neighbour-index draws for ``count`` nodes of uniform ``degree``.

        The arena engine asks the selector for all of a round's pairing
        draws at once.  A selector may only implement this when the
        batched draw consumes the generator stream exactly as ``count``
        scalar :meth:`choose` calls would (so arena runs stay
        byte-parity-identical to the per-node kernel); returning ``None``
        — the default — makes the engine fall back to scalar calls.
        """
        return None


class RandomSelector(NeighborSelector):
    """Uniform random neighbour — gossip-style, fair with probability 1."""

    def choose(self, node: int, neighbors: Sequence[int], rng: np.random.Generator) -> int:
        return int(neighbors[rng.integers(len(neighbors))])

    def choose_batch(
        self, count: int, degree: int, rng: np.random.Generator
    ) -> np.ndarray:
        # One sized draw with a constant bound consumes the PCG64 stream
        # exactly like `count` scalar integers() calls (each bounded draw
        # uses one 64-bit word per accepted sample, and the vectorised
        # path applies the same Lemire rejection per element), so this is
        # stream-equivalent to the loop the kernel runs.
        return rng.integers(degree, size=count)


class RoundRobinSelector(NeighborSelector):
    """Cycle through each node's neighbour list — deterministically fair."""

    def __init__(self) -> None:
        self._pointers: dict[int, int] = {}

    def choose(self, node: int, neighbors: Sequence[int], rng: np.random.Generator) -> int:
        pointer = self._pointers.get(node, 0)
        self._pointers[node] = (pointer + 1) % len(neighbors)
        return int(neighbors[pointer % len(neighbors)])


class Network:
    """Topology + protocols + liveness: the state both engines drive.

    Parameters
    ----------
    graph:
        A connected undirected topology over nodes ``0..n-1``; engines
        treat each edge as a pair of reliable directed channels.
    protocols:
        One :class:`~repro.protocols.base.GossipProtocol` per node id.
    seed:
        Seeds the engine RNG (neighbour choice, delays, crash draws).
    selector:
        Neighbour-selection strategy; defaults to uniform random gossip.
    event_sink:
        Destination for structured :class:`~repro.obs.events.Event`
        records (sends, deliveries, drops, crashes, round closes).
        Defaults to the ambient tracing sink
        (:func:`repro.obs.context.current_sink`), which is ``None``
        unless a ``tracing(...)`` block is active — so by default no
        events are materialised and emission sites cost one ``None``
        check.
    """

    def __init__(
        self,
        graph: nx.Graph,
        protocols: Mapping[int, GossipProtocol],
        seed: int = 0,
        selector: NeighborSelector | None = None,
        event_sink: EventSink | None = None,
    ) -> None:
        self.graph = validate_topology(graph)
        expected = set(range(graph.number_of_nodes()))
        if set(protocols.keys()) != expected:
            raise ValueError("protocols must cover exactly the topology's nodes")
        self.protocols = dict(protocols)
        self.neighbors = neighbors_map(self.graph)
        self.rng = np.random.default_rng(seed)
        self.selector = selector if selector is not None else RandomSelector()
        self.live: set[int] = set(expected)
        self.metrics = NetworkMetrics()
        self.event_sink = event_sink if event_sink is not None else current_sink()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _stamp(self) -> dict[str, int | float]:
        """Engine-specific event stamp; overridden per engine."""
        return {}

    # ------------------------------------------------------------------
    # Liveness
    # ------------------------------------------------------------------
    def crash(self, node: int) -> None:
        """Fail-stop the node: it never sends or receives again."""
        if node in self.live:
            self.live.discard(node)
            self.metrics.crashes += 1
            if self.event_sink is not None:
                self.event_sink.emit(Event(kind="crash", node=node, **self._stamp()))

    def is_live(self, node: int) -> bool:
        return node in self.live

    @property
    def live_nodes(self) -> list[int]:
        """Sorted ids of surviving nodes."""
        return sorted(self.live)

    def live_protocols(self) -> list[GossipProtocol]:
        """Protocol objects of surviving nodes, in node-id order."""
        return [self.protocols[node] for node in self.live_nodes]

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def payload_size(payload: object) -> int:
        """Item count of a payload, for metrics (1 when unsized)."""
        try:
            return len(payload)  # type: ignore[arg-type]
        except TypeError:
            return 1
