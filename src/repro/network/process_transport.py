"""Frame transport over OS pipes: N real processes on one machine.

The first rung of the deployment ladder (see the selection matrix in
:mod:`repro.network.transport`): every node is a genuine operating-system
process with its own interpreter, GIL and memory — nothing is shared but
the :class:`multiprocessing.Queue` inboxes the parent created before
forking, which move whole encoded frames over OS pipes.  Gossip payloads
therefore cross a real serialisation boundary (the
:mod:`repro.network.frames` wire contract, checksums included) while
sidestepping sockets, which makes this the transport of choice for
multi-core runs and for deployment tests that must not depend on free
TCP ports.

The queue topology is star-free: the parent creates one inbox per node
and hands the *complete* map to every worker (the same
fan-out-then-join pattern as the fault-tolerant pool in
:mod:`repro.sweep.runner`), so any node can frame-address any other
directly.  Membership gossip still runs over it — deployment code paths
stay identical between ``process`` and ``tcp``.
"""

from __future__ import annotations

import queue
from typing import TYPE_CHECKING, Mapping, Optional

from repro.network.frames import Frame, FrameDecoder, FrameError
from repro.network.transport import FrameTransport

if TYPE_CHECKING:  # pragma: no cover - typing only
    import multiprocessing.queues

    from repro.network.membership import PeerInfo

__all__ = ["ProcessTransport"]


class ProcessTransport(FrameTransport):
    """Move encoded frames between local processes via multiprocessing queues.

    ``inboxes`` maps every node id (including this node's own) to the
    :class:`multiprocessing.Queue` that feeds it; the parent process
    builds the map once and passes it to each worker at spawn time.
    Each queue item is one complete encoded frame, but every received
    item is still pushed through a :class:`~repro.network.frames.FrameDecoder`
    — the checksum is verified on arrival exactly as it would be off a
    socket, and corrupt items are dropped and counted rather than
    surfaced.
    """

    name = "process"

    def __init__(
        self,
        node_id: int,
        inboxes: Mapping[int, "multiprocessing.queues.Queue[bytes]"],
    ) -> None:
        super().__init__()
        if node_id not in inboxes:
            raise ValueError(f"inbox map has no queue for this node ({node_id})")
        self.node_id = node_id
        self._inboxes = dict(inboxes)
        self._closed = False
        self.stats.peer_count = len(self._inboxes) - 1

    def start(self) -> None:
        """Nothing to bring up: the parent created the queues pre-fork."""

    def poll(self, timeout: Optional[float] = None) -> Optional[Frame]:
        if self._closed:
            return None
        try:
            raw = self._inboxes[self.node_id].get(timeout=timeout)
        except queue.Empty:
            return None
        decoder = FrameDecoder()
        try:
            frames = decoder.feed(raw)
        except FrameError:
            self.frames_rejected += 1
            return None
        if len(frames) != 1 or decoder.buffered:
            # A queue item must be exactly one whole frame; anything else
            # (trailing garbage, several concatenated frames) is a sender
            # bug and is rejected wholesale.
            self.frames_rejected += 1
            return None
        self.stats.frames_received += 1
        self.stats.bytes_received += len(raw)
        return frames[0]

    def send_frame(self, peer: "PeerInfo", frame: bytes) -> bool:
        if self._closed:
            return False
        inbox = self._inboxes.get(peer.node_id)
        if inbox is None:
            return False
        inbox.put(frame)
        self.stats.frames_sent += 1
        self.stats.bytes_sent += len(frame)
        return True

    def forget_peer(self, peer: "PeerInfo") -> None:
        self._inboxes.pop(peer.node_id, None)
        self.stats.peer_count = max(0, len(self._inboxes) - 1)

    def close(self) -> None:
        self._closed = True
