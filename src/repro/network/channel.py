"""Reliable asynchronous communication channels.

The model (Section 3.1): channels are asynchronous but reliable — every
sent message eventually arrives, none are duplicated, none are forged.
:class:`Channel` realises one directed link with those guarantees plus an
optional FIFO discipline (delivery times are clamped to be non-decreasing
per channel).  The asynchronous engine owns one channel per directed edge;
the collections sitting inside channels are part of Section 6.1's global
pool, so channels expose their in-flight payloads for inspection.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Iterator

__all__ = ["InFlightMessage", "Channel"]


@dataclass(frozen=True, slots=True)
class InFlightMessage:
    """A message travelling on a channel."""

    send_time: float
    deliver_time: float
    payload: Any


class Channel:
    """One directed, reliable, asynchronous link.

    Parameters
    ----------
    source, destination:
        Endpoint node ids (informational; routing is the engine's job).
    fifo:
        When true, a message never overtakes an earlier one: its delivery
        time is clamped up to the latest already-scheduled delivery.  The
        paper does not require FIFO (the algorithm is order-insensitive),
        but tests use it to build adversarial orderings deterministically.
    """

    def __init__(self, source: int, destination: int, fifo: bool = False) -> None:
        self.source = source
        self.destination = destination
        self.fifo = fifo
        self._queue: deque[InFlightMessage] = deque()
        self._latest_delivery = 0.0
        self.sent_count = 0
        self.delivered_count = 0

    def send(self, payload: Any, send_time: float, deliver_time: float) -> InFlightMessage:
        """Enqueue a message; returns the (possibly clamped) in-flight record."""
        if deliver_time < send_time:
            raise ValueError("messages cannot be delivered before they are sent")
        if self.fifo:
            deliver_time = max(deliver_time, self._latest_delivery)
        self._latest_delivery = max(self._latest_delivery, deliver_time)
        message = InFlightMessage(send_time=send_time, deliver_time=deliver_time, payload=payload)
        self._queue.append(message)
        self.sent_count += 1
        return message

    def deliver(self, message: InFlightMessage) -> Any:
        """Remove a specific in-flight message (called at its delivery event)."""
        self._queue.remove(message)
        self.delivered_count += 1
        return message.payload

    @property
    def in_flight(self) -> list[InFlightMessage]:
        """Messages currently travelling (part of the Section 6.1 pool)."""
        return list(self._queue)

    def __len__(self) -> int:
        return len(self._queue)

    def __iter__(self) -> Iterator[InFlightMessage]:
        return iter(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Channel({self.source}->{self.destination}, in_flight={len(self._queue)}, "
            f"sent={self.sent_count})"
        )
