"""Gossip membership: who is in the cluster, and who has crashed.

The simulation kernel knows the full topology up front; a deployed
cluster does not.  Nodes discover each other the same way the paper's
algorithm moves data — by gossip.  A starting node announces itself with
a JOIN frame to its seed peers; every node occasionally pushes its whole
peer table as a PEER_LIST; tables merge by union.  Because the merge is
monotone (peers are added, never silently removed), every view converges
to the full membership along any connected gossip path — the same
union-converges argument the paper uses for data.

Failure detection realises the paper's fail-stop crash model
(Section 3.1): a peer that has neither sent a frame nor answered a
heartbeat within ``failure_timeout`` is declared dead, its address is
dropped, and frames queued for it are discarded — in-flight weight
leaves the system exactly as when the simulator's
:class:`~repro.network.failures.FailureModel` crashes a node mid-flight.
Suspicions are local and conservative: a false positive merely severs
one edge of the gossip overlay, which the algorithm tolerates so long as
the surviving overlay stays connected.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

__all__ = ["PeerInfo", "MembershipView", "seeds_to_peers"]


@dataclass(frozen=True, slots=True)
class PeerInfo:
    """One peer's identity and address."""

    node_id: int
    host: str
    port: int

    def as_entry(self) -> tuple[int, str, int]:
        """The wire shape used by :mod:`repro.network.frames`."""
        return (self.node_id, self.host, self.port)

    @classmethod
    def from_entry(cls, entry: tuple[int, str, int]) -> "PeerInfo":
        node_id, host, port = entry
        return cls(node_id=node_id, host=host, port=port)


@dataclass
class MembershipView:
    """One node's evolving picture of the cluster.

    Thread-compatible rather than thread-safe: the deployment runtime
    touches it from a single gossip loop, so no lock lives here.
    """

    self_info: PeerInfo
    failure_timeout: float = 10.0
    clock: Callable[[], float] = time.monotonic
    _peers: dict[int, PeerInfo] = field(default_factory=dict)
    _last_heard: dict[int, float] = field(default_factory=dict)
    _dead: set[int] = field(default_factory=set)

    def peers(self) -> list[PeerInfo]:
        """Live peers, excluding self, sorted by node id (deterministic
        iteration keeps seeded peer selection reproducible)."""
        return [self._peers[node_id] for node_id in sorted(self._peers)]

    def peer_ids(self) -> list[int]:
        return sorted(self._peers)

    def dead_ids(self) -> list[int]:
        return sorted(self._dead)

    def get(self, node_id: int) -> Optional[PeerInfo]:
        return self._peers.get(node_id)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._peers

    def __len__(self) -> int:
        return len(self._peers)

    def add(self, peer: PeerInfo) -> bool:
        """Admit one peer; returns True if the view changed.

        A dead peer's id is never resurrected: fail-stop means a crashed
        node does not return (a replacement must join under a fresh id),
        so late gossip about a declared-dead peer is stale information,
        not a recovery.
        """
        if peer.node_id == self.self_info.node_id or peer.node_id in self._dead:
            return False
        known = self._peers.get(peer.node_id)
        if known == peer:
            return False
        self._peers[peer.node_id] = peer
        self._last_heard.setdefault(peer.node_id, self.clock())
        return True

    def merge(self, entries: Iterable[tuple[int, str, int]]) -> int:
        """Union a gossiped peer list into the view; returns peers added."""
        added = 0
        for entry in entries:
            if self.add(PeerInfo.from_entry(entry)):
                added += 1
        return added

    def heard_from(self, node_id: int) -> None:
        """Record liveness evidence (any frame counts, not just heartbeats)."""
        if node_id in self._peers:
            self._last_heard[node_id] = self.clock()

    def remove(self, node_id: int) -> None:
        """Graceful departure (LEAVE): forget the peer without declaring
        it crashed — its id could rejoin later."""
        self._peers.pop(node_id, None)
        self._last_heard.pop(node_id, None)

    def detect_failures(self) -> list[PeerInfo]:
        """Declare silent peers dead; returns the newly-dead peers.

        Fail-stop semantics: each returned peer is removed from the live
        view and permanently blacklisted, and the caller must drop any
        frames queued for it (lost in-flight weight, per the paper's
        crash model).
        """
        now = self.clock()
        newly_dead: list[PeerInfo] = []
        for node_id in sorted(self._peers):
            last = self._last_heard.get(node_id, now)
            if now - last > self.failure_timeout:
                peer = self._peers.pop(node_id)
                self._last_heard.pop(node_id, None)
                self._dead.add(node_id)
                newly_dead.append(peer)
        return newly_dead

    def gossip_entries(self) -> list[tuple[int, str, int]]:
        """The PEER_LIST body for this view: self plus every live peer."""
        entries = [self.self_info.as_entry()]
        entries.extend(peer.as_entry() for peer in self.peers())
        return entries

    def snapshot(self) -> dict[str, object]:
        """JSON-ready summary for the HTTP status endpoint."""
        return {
            "self": {
                "node_id": self.self_info.node_id,
                "host": self.self_info.host,
                "port": self.self_info.port,
            },
            "live_peers": [
                {"node_id": p.node_id, "host": p.host, "port": p.port}
                for p in self.peers()
            ],
            "dead_peers": self.dead_ids(),
        }


def seeds_to_peers(seeds: Sequence[str]) -> list[tuple[str, int]]:
    """Parse ``host:port`` seed strings (deploy CLI convenience)."""
    parsed: list[tuple[str, int]] = []
    for seed in seeds:
        host, _, port = seed.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(f"seed {seed!r} is not host:port")
        parsed.append((host, int(port)))
    return parsed
