"""Event-driven asynchronous engine: the convergence theorem's setting.

Section 6 proves convergence under *arbitrary asynchrony*: nodes act on
their own clocks and messages suffer arbitrary finite delays.  This engine
realises that model as a discrete-event simulation: every node fires at
exponentially distributed intervals (a Poisson clock); on firing it picks
a neighbour — round-robin by default, giving the proof's deterministic
fairness — and sends its split share over a reliable channel with a random
delay; delivery events invoke the receiver's merge handler one message at
a time.

The engine exposes the in-flight payloads so tests can reconstruct the
global pool of Section 6.1 (collections at nodes *plus* in channels) and
check invariants like total-weight conservation and Lemma 2 monotonicity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional

import networkx as nx

from repro.network.channel import Channel, InFlightMessage
from repro.network.events import EventQueue
from repro.network.simulator import NeighborSelector, Network, RoundRobinSelector
from repro.obs.events import Event, EventSink
from repro.protocols.base import GossipProtocol

__all__ = ["AsyncEngine"]


@dataclass(frozen=True, slots=True)
class _Fire:
    """Event: a node's periodic timer expires (Algorithm 1 lines 3-7)."""

    node: int


@dataclass(frozen=True, slots=True)
class _Delivery:
    """Event: a message arrives (Algorithm 1 lines 8-11)."""

    channel: Channel
    message: InFlightMessage


class AsyncEngine(Network):
    """Poisson-clock, random-delay asynchronous execution.

    Parameters
    ----------
    graph, protocols, seed:
        See :class:`~repro.network.simulator.Network`.
    selector:
        Defaults to round-robin, the deterministic fairness the proof
        assumes.
    mean_interval:
        Mean of the exponential time between a node's sends.
    delay_range:
        Message latency is drawn uniformly from this interval; any finite
        positive range satisfies the reliable-asynchronous model.
    fifo:
        Enforce per-channel FIFO delivery (not required by the algorithm;
        useful for constructing deterministic orderings in tests).
    """

    def __init__(
        self,
        graph: nx.Graph,
        protocols: Mapping[int, GossipProtocol],
        seed: int = 0,
        selector: NeighborSelector | None = None,
        mean_interval: float = 1.0,
        delay_range: tuple[float, float] = (0.05, 2.0),
        fifo: bool = False,
        event_sink: EventSink | None = None,
    ) -> None:
        super().__init__(
            graph,
            protocols,
            seed=seed,
            selector=selector if selector is not None else RoundRobinSelector(),
            event_sink=event_sink,
        )
        if mean_interval <= 0:
            raise ValueError("mean_interval must be positive")
        low, high = delay_range
        if not 0 <= low <= high:
            raise ValueError(f"invalid delay range {delay_range}")
        self.mean_interval = mean_interval
        self.delay_range = delay_range
        self.now = 0.0
        self._events = EventQueue()
        self._channels: dict[tuple[int, int], Channel] = {}
        for u, v in self.graph.edges:
            self._channels[(u, v)] = Channel(u, v, fifo=fifo)
            self._channels[(v, u)] = Channel(v, u, fifo=fifo)
        # Stagger initial timers uniformly so nodes do not fire in lockstep.
        for node in self.live_nodes:
            self._events.push(float(self.rng.uniform(0.0, mean_interval)), _Fire(node))

    def _stamp(self) -> dict[str, int | float]:
        return {"t": self.now}

    # ------------------------------------------------------------------
    # Event handling
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Process one event; returns False when the queue is empty."""
        if not self._events:
            return False
        self.now, event = self._events.pop()
        self.metrics.events += 1
        if isinstance(event, _Fire):
            self._handle_fire(event)
        else:
            self._handle_delivery(event)
        return True

    def _handle_fire(self, event: _Fire) -> None:
        node = event.node
        if not self.is_live(node):
            return
        neighbors = self.neighbors[node]
        if neighbors:
            peer = self.selector.choose(node, neighbors, self.rng)
            payload = self.protocols[node].make_payload()
            if payload is not None:
                channel = self._channels[(node, peer)]
                low, high = self.delay_range
                deliver_at = self.now + float(self.rng.uniform(low, high))
                message = channel.send(payload, self.now, deliver_at)
                self._events.push(message.deliver_time, _Delivery(channel, message))
                items = self.payload_size(payload)
                self.metrics.record_send(items)
                if self.event_sink is not None:
                    self.event_sink.emit(
                        Event(kind="send", node=node, peer=peer, t=self.now, items=items)
                    )
        next_fire = self.now + float(self.rng.exponential(self.mean_interval))
        self._events.push(next_fire, _Fire(node))

    def _handle_delivery(self, event: _Delivery) -> None:
        payload = event.channel.deliver(event.message)
        source = event.channel.source
        destination = event.channel.destination
        if not self.is_live(destination):
            self.metrics.record_drop()
            if self.event_sink is not None:
                self.event_sink.emit(
                    Event(kind="drop", node=source, peer=destination, t=self.now)
                )
            return
        self.metrics.record_delivery()
        if self.event_sink is not None:
            self.event_sink.emit(
                Event(kind="deliver", node=source, peer=destination, t=self.now)
            )
        self.protocols[destination].receive_batch([payload])

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def run_until(self, time: float) -> None:
        """Process all events with timestamps strictly below ``time``."""
        while self._events and self._events.peek_time() < time:
            self.step()
        self.now = max(self.now, time)

    def run_events(
        self,
        count: int,
        stop_condition: Optional[Callable[["AsyncEngine"], bool]] = None,
        per_event: Optional[Callable[["AsyncEngine"], None]] = None,
    ) -> int:
        """Process up to ``count`` events; returns the number processed.

        ``per_event`` (if given) observes the engine after each processed
        event — the asynchronous counterpart of the round engine's
        ``per_round`` hook, and how a
        :class:`~repro.network.trace.RunTracer` attaches to this engine.
        """
        executed = 0
        for _ in range(count):
            if not self.step():
                break
            executed += 1
            if per_event is not None:
                per_event(self)
            if stop_condition is not None and stop_condition(self):
                break
        return executed

    # ------------------------------------------------------------------
    # Pool inspection (Section 6.1)
    # ------------------------------------------------------------------
    def in_flight_payloads(self) -> list[Any]:
        """Payloads currently inside channels, for global-pool assertions."""
        payloads = []
        for channel in self._channels.values():
            payloads.extend(message.payload for message in channel.in_flight)
        return payloads
