"""Event-driven asynchronous engine: the convergence theorem's setting.

Section 6 proves convergence under *arbitrary asynchrony*: nodes act on
their own clocks and messages suffer arbitrary finite delays.
:class:`AsyncEngine` binds the simulation kernel
(:mod:`repro.network.kernel`) to a
:class:`~repro.network.schedulers.PoissonScheduler`: every node fires at
exponentially distributed intervals; on firing it picks a neighbour —
round-robin by default, giving the proof's deterministic fairness — and
gossips its split share over a reliable channel with a random delay.

Because the mechanics live in the shared kernel, everything the round
engine supports works here too: the push / pull / push-pull variants, a
:class:`~repro.network.failures.FailureModel` (applied at epoch
boundaries — one epoch per mean firing interval), and a
:class:`~repro.network.links.LinkSchedule` (evaluated per epoch).
Deliveries that land at the same instant on the same node merge as one
batch, the asynchronous counterpart of the round schedule's
receiver-side batching.

The engine exposes the in-flight payloads so tests can reconstruct the
global pool of Section 6.1 (collections at nodes *plus* in channels) and
check invariants like total-weight conservation and Lemma 2 monotonicity.
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional

import networkx as nx

from repro.core.fingerprint import MergeCache
from repro.network.failures import FailureModel
from repro.network.kernel import SimulationKernel
from repro.network.links import LinkSchedule
from repro.network.schedulers import PoissonScheduler
from repro.network.simulator import NeighborSelector
from repro.network.transport import SimulationTransport
from repro.obs.events import EventSink
from repro.obs.timeseries import TimeSeriesRecorder
from repro.protocols.base import GossipProtocol

__all__ = ["AsyncEngine"]


class AsyncEngine(SimulationKernel):
    """Poisson-clock, random-delay asynchronous execution.

    Parameters
    ----------
    graph, protocols, seed:
        See :class:`~repro.network.simulator.Network`.
    selector:
        Defaults to round-robin, the deterministic fairness the proof
        assumes.
    mean_interval:
        Mean of the exponential time between a node's sends; also the
        epoch length for failure models and link schedules.
    delay_range:
        Message latency is drawn uniformly from this interval; any finite
        positive range satisfies the reliable-asynchronous model.
    fifo:
        Enforce per-channel FIFO delivery (not required by the algorithm;
        useful for constructing deterministic orderings in tests).
    variant, failure_model, link_schedule:
        See :class:`~repro.network.rounds.RoundEngine` — identical
        semantics, at epoch granularity.
    """

    scheduler: PoissonScheduler

    def __init__(
        self,
        graph: nx.Graph,
        protocols: Mapping[int, GossipProtocol],
        seed: int = 0,
        selector: Optional[NeighborSelector] = None,
        mean_interval: float = 1.0,
        delay_range: tuple[float, float] = (0.05, 2.0),
        fifo: bool = False,
        event_sink: Optional[EventSink] = None,
        variant: str = "push",
        failure_model: Optional[FailureModel] = None,
        link_schedule: Optional[LinkSchedule] = None,
        transport: Optional[SimulationTransport] = None,
        merge_cache: Optional[MergeCache] = None,
        stop_on_quiescence: bool = False,
        quiescence_patience: int = 3,
        telemetry: Optional[TimeSeriesRecorder] = None,
    ) -> None:
        super().__init__(
            graph,
            protocols,
            PoissonScheduler(
                variant=variant,
                mean_interval=mean_interval,
                delay_range=delay_range,
            ),
            seed=seed,
            selector=selector,
            failure_model=failure_model,
            link_schedule=link_schedule,
            fifo=fifo,
            event_sink=event_sink,
            transport=transport,
            merge_cache=merge_cache,
            stop_on_quiescence=stop_on_quiescence,
            quiescence_patience=quiescence_patience,
            telemetry=telemetry,
        )

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self.scheduler.now

    @now.setter
    def now(self, value: float) -> None:
        self.scheduler.now = value

    @property
    def mean_interval(self) -> float:
        return self.scheduler.mean_interval

    @property
    def delay_range(self) -> tuple[float, float]:
        return self.scheduler.delay_range

    @property
    def variant(self) -> str:
        return self.scheduler.variant

    # ------------------------------------------------------------------
    # Event handling
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Process one event; returns False when the queue is empty."""
        return self.scheduler.advance(self)

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def run_until(self, time: float) -> None:
        """Process all events with timestamps strictly below ``time``."""
        self.scheduler.run_until(self, time)

    def run_events(
        self,
        count: int,
        stop_condition: Optional[Callable[["AsyncEngine"], bool]] = None,
        per_event: Optional[Callable[["AsyncEngine"], None]] = None,
    ) -> int:
        """Process up to ``count`` events; returns the number processed.

        ``per_event`` (if given) observes the engine after each processed
        event — the asynchronous counterpart of the round engine's
        ``per_round`` hook, and how a
        :class:`~repro.network.trace.RunTracer` attaches to this engine.
        For round-equivalent driving (one unit per mean interval, shared
        with the round engine), use
        :meth:`~repro.network.kernel.SimulationKernel.run` instead.
        """
        return self.run_steps(count, stop_condition=stop_condition, observer=per_event)

    # in_flight_payloads() is inherited from the kernel (Section 6.1 pool).
