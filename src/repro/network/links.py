"""Temporary link outages: probing the static-connectivity assumption.

The paper's model (Section 3.1) assumes a *static* connected topology,
and the proof's fairness condition really only needs every link to carry
messages infinitely often.  Real sensor networks lose links temporarily —
interference, duty cycling, a truck parked in the Fresnel zone — so this
module models link-level outages: while an edge is down, a node simply
does not transmit on it (dead-peer detection holds the message back, and
the weight stays put; the reliable-channel abstraction is not violated
because nothing is sent).

The interesting behaviour is *partition and heal*: while an outage cuts
the network in two, each side converges to a classification of its own
values; after healing, the sides reconcile.  The experiment in
:mod:`repro.experiments.partitions` measures both phases.
"""

from __future__ import annotations

import abc
from typing import Iterable

import networkx as nx

__all__ = ["LinkSchedule", "AlwaysUp", "WindowedOutage", "cut_edges"]


def cut_edges(graph: nx.Graph, side_a: Iterable[int]) -> frozenset[tuple[int, int]]:
    """The undirected edges crossing a node bipartition.

    Convenience for building partition outages: downing exactly these
    edges splits ``graph`` into ``side_a`` and its complement.
    """
    side = set(side_a)
    edges = set()
    for u, v in graph.edges:
        if (u in side) != (v in side):
            edges.add((min(u, v), max(u, v)))
    return frozenset(edges)


class LinkSchedule(abc.ABC):
    """Decides which links are usable at a given round."""

    @abc.abstractmethod
    def is_up(self, round_index: int, source: int, destination: int) -> bool:
        """True when the (undirected) link may carry a message this round."""


class AlwaysUp(LinkSchedule):
    """The default: the paper's static reliable links."""

    def is_up(self, round_index: int, source: int, destination: int) -> bool:
        return True


class WindowedOutage(LinkSchedule):
    """A set of edges is down during ``[start, end)`` rounds.

    Parameters
    ----------
    edges:
        Undirected edges, as (u, v) tuples in any order.
    start, end:
        The outage window, in round indices (half-open).
    """

    def __init__(self, edges: Iterable[tuple[int, int]], start: int, end: int) -> None:
        if end < start:
            raise ValueError("outage window must have end >= start")
        self.edges = frozenset((min(u, v), max(u, v)) for u, v in edges)
        self.start = start
        self.end = end

    def is_up(self, round_index: int, source: int, destination: int) -> bool:
        if not self.start <= round_index < self.end:
            return True
        return (min(source, destination), max(source, destination)) not in self.edges
