"""The per-node gossip loop that turns a transport into a deployment.

In simulation, one :class:`~repro.network.kernel.SimulationKernel` owns
every node and a scheduler decides who fires when.  In a deployment there
is no central anything: each process owns exactly one
:class:`~repro.core.node.ClassifierNode` and runs this loop —
the distributed system the paper actually describes, where "each node
holds one value" and gossip exchanges are local decisions.

One :class:`NodeRuntime` drives any
:class:`~repro.network.transport.FrameTransport` identically:

- **fire** every ``gossip_interval``: pick a uniformly random live peer
  (the paper's uniform gossip partner selection), split the local
  classification with ``make_message`` and ship the halves as a DATA
  frame (:mod:`repro.core.serialization` bytes inside
  :mod:`repro.network.frames` framing);
- **receive** continuously: decoded DATA payloads are pooled into the
  node exactly as the simulator's delivery path does; membership frames
  (JOIN / PEER_LIST / HEARTBEAT / LEAVE) feed the
  :class:`~repro.network.membership.MembershipView`;
- **detect failures** on the heartbeat cadence; newly-dead peers are
  reported to the transport so queued frames are dropped (fail-stop —
  the in-flight weight leaves the system, the paper's crash semantics);
- **track quiescence** structurally: a digest over the node's summary
  *shapes* (weights excluded — they keep halving and merging forever by
  design) that stays unchanged for ``patience`` consecutive fires means
  the node's classification has stopped moving, the deployment analogue
  of the kernel's quiescence detector.

A lock-guarded :meth:`NodeRuntime.snapshot` exposes everything the HTTP
query endpoint (:mod:`repro.network.webapi`) serves, so observers never
touch live protocol state.
"""

from __future__ import annotations

import hashlib
import struct
import threading
import time
from typing import Any, Optional, Sequence

import numpy as np

from repro.core.node import ClassifierNode
from repro.core.serialization import SummaryCodec, decode_payload, encode_payload
from repro.network import frames
from repro.network.frames import Frame, encode_frame
from repro.network.membership import MembershipView, PeerInfo
from repro.network.transport import FrameTransport

__all__ = ["NodeRuntime", "cluster_means"]

#: Sender id used when JOINing a seed whose node id is not yet known.
_BOOTSTRAP_ID = 0xFFFFFFFF


def cluster_means(node: ClassifierNode) -> list[list[float]]:
    """The node's cluster locations, sorted for order-free comparison.

    Works for every shipped scheme: Gaussian summaries expose ``.mean``;
    centroid and histogram summaries *are* their vectors.
    """
    means = []
    for collection in node.classification:
        summary = collection.summary
        vector = getattr(summary, "mean", None)
        if vector is None or callable(vector):  # ndarray.mean is a method
            vector = summary
        means.append(np.atleast_1d(np.asarray(vector, dtype=float)).tolist())
    return sorted(means)


class NodeRuntime:
    """One deployed node: gossip loop, membership, quiescence, snapshot."""

    def __init__(
        self,
        node: ClassifierNode,
        codec: SummaryCodec,
        transport: FrameTransport,
        membership: MembershipView,
        seed_addresses: Sequence[tuple[str, int]] = (),
        gossip_interval: float = 0.05,
        heartbeat_interval: float = 0.5,
        patience: int = 10,
        digest_decimals: int = 6,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.node = node
        self.codec = codec
        self.transport = transport
        self.membership = membership
        self.seed_addresses = list(seed_addresses)
        self.gossip_interval = gossip_interval
        self.heartbeat_interval = heartbeat_interval
        self.patience = patience
        self.digest_decimals = digest_decimals
        self.rng = rng if rng is not None else np.random.default_rng(node.node_id)
        self.stop_event = threading.Event()
        self.fires = 0
        self.payloads_received = 0
        self.stable_fires = 0
        self._digest = self._summary_digest()
        self._snapshot_lock = threading.Lock()
        self._snapshot: dict[str, Any] = {}
        self._started_at: Optional[float] = None
        self._refresh_snapshot()

    # ------------------------------------------------------------------
    # Structural quiescence
    # ------------------------------------------------------------------
    def _summary_digest(self) -> str:
        """Digest of the summary shapes only, weight-blind and tolerance-quantized.

        Weights never settle (every fire halves them, every receive merges
        them), but once gossip has mixed the input set the *summaries*
        stop moving; this mirrors the simulation kernel's
        summary-fingerprint quiescence detector.  Unlike the simulator's
        byte-exact fingerprints, summaries are rounded to
        ``digest_decimals`` first: after agreement, every merge still
        perturbs the last float bits (nodes hold 1e-15-apart copies of
        the same summary), and a byte-exact digest would never stabilise.
        """
        vectors = []
        for collection in self.node.classification:
            flat = np.frombuffer(self.codec.encode_summary(collection.summary), dtype=">f8")
            rounded = np.round(flat.astype(float), self.digest_decimals)
            # Normalise -0.0 so values straddling zero hash consistently.
            vectors.append((rounded + 0.0).astype(">f8").tobytes())
        digest = hashlib.sha256()
        for blob in sorted(vectors):
            digest.update(blob)
        return digest.hexdigest()

    @property
    def quiescent(self) -> bool:
        return self.stable_fires >= self.patience

    # ------------------------------------------------------------------
    # Outbound protocol
    # ------------------------------------------------------------------
    def _announce(self) -> None:
        """JOIN every seed address (the bootstrap edge of the overlay)."""
        body = frames.encode_peer_entries([self.membership.self_info.as_entry()])
        frame = encode_frame(frames.JOIN, self.node.node_id, body)
        for host, port in self.seed_addresses:
            self.transport.send_frame(
                PeerInfo(node_id=_BOOTSTRAP_ID, host=host, port=port), frame
            )

    def _fire(self) -> None:
        """One gossip transmission: Algorithm 1's send step, on the wire."""
        peers = self.membership.peers()
        if peers:
            peer = peers[int(self.rng.integers(len(peers)))]
            payload = self.node.make_message()
            if payload:
                body = encode_payload(payload, self.codec)
                self.transport.send_frame(
                    peer, encode_frame(frames.DATA, self.node.node_id, body)
                )
        self.fires += 1
        digest = self._summary_digest()
        if digest == self._digest:
            self.stable_fires += 1
        else:
            self.stable_fires = 0
            self._digest = digest

    def _heartbeat(self) -> None:
        """Liveness beacon + membership gossip + failure detection."""
        peers = self.membership.peers()
        if peers:
            beat = encode_frame(frames.HEARTBEAT, self.node.node_id)
            peer_list = encode_frame(
                frames.PEER_LIST,
                self.node.node_id,
                frames.encode_peer_entries(self.membership.gossip_entries()),
            )
            for peer in peers:
                self.transport.send_frame(peer, beat)
            # Membership gossips like data: one random peer per tick.
            target = peers[int(self.rng.integers(len(peers)))]
            self.transport.send_frame(target, peer_list)
        for dead in self.membership.detect_failures():
            self.transport.forget_peer(dead)
        self.transport.stats.peer_count = len(self.membership)

    # ------------------------------------------------------------------
    # Inbound protocol
    # ------------------------------------------------------------------
    def _handle(self, frame: Frame) -> None:
        if frame.kind == frames.DATA:
            incoming = decode_payload(frame.body, self.codec)
            self.node.receive(incoming)
            self.payloads_received += 1
            self.membership.heard_from(frame.sender)
        elif frame.kind == frames.JOIN:
            entries = frames.decode_peer_entries(frame.body)
            self.membership.merge(entries)
            self.membership.heard_from(frame.sender)
            # Answer with our whole view so the joiner converges in one
            # round trip; from then on periodic PEER_LIST gossip takes over.
            joiner = self.membership.get(frame.sender)
            if joiner is not None:
                reply = encode_frame(
                    frames.PEER_LIST,
                    self.node.node_id,
                    frames.encode_peer_entries(self.membership.gossip_entries()),
                )
                self.transport.send_frame(joiner, reply)
        elif frame.kind == frames.PEER_LIST:
            self.membership.merge(frames.decode_peer_entries(frame.body))
            self.membership.heard_from(frame.sender)
        elif frame.kind == frames.HEARTBEAT:
            self.membership.heard_from(frame.sender)
        elif frame.kind == frames.LEAVE:
            peer = self.membership.get(frame.sender)
            self.membership.remove(frame.sender)
            if peer is not None:
                self.transport.forget_peer(peer)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def request_stop(self) -> None:
        self.stop_event.set()

    def run(self, duration: Optional[float] = None) -> None:
        """Drive the node until :meth:`request_stop` (or ``duration``).

        The transport must already be started.  Quiescence does *not*
        stop the loop — a quiescent node keeps gossiping and answering,
        exactly as the paper's nodes do; stopping is an operator decision
        (the deploy runner's shutdown POST, or the duration safety net).
        """
        self._started_at = time.monotonic()
        self._announce()
        next_fire = time.monotonic() + self.gossip_interval
        next_beat = time.monotonic() + self.heartbeat_interval
        deadline = None if duration is None else time.monotonic() + duration
        while not self.stop_event.is_set():
            now = time.monotonic()
            if deadline is not None and now >= deadline:
                break
            wait = min(next_fire, next_beat) - now
            # One blocking wait for the batch, not one per frame: drain
            # blocks for the first frame then sweeps the queued backlog,
            # so a burst of deliveries costs one snapshot refresh and one
            # timer check instead of one full loop iteration per frame.
            for frame in self.transport.drain(
                timeout=max(wait, 0.0) if wait > 0 else 0.0
            ):
                try:
                    self._handle(frame)
                except (ValueError, struct.error, frames.FrameError):
                    # A frame that framed correctly but decodes to garbage
                    # (wrong codec, truncated payload) is dropped whole —
                    # never partially applied.
                    self.transport.frames_rejected += 1
            now = time.monotonic()
            if now >= next_fire:
                self._fire()
                next_fire = now + self.gossip_interval
            if now >= next_beat:
                self._heartbeat()
                next_beat = now + self.heartbeat_interval
            self._refresh_snapshot()
        self._leave()
        self._refresh_snapshot()

    def _leave(self) -> None:
        """Graceful departure: tell live peers before closing the endpoint."""
        goodbye = encode_frame(frames.LEAVE, self.node.node_id)
        for peer in self.membership.peers():
            self.transport.send_frame(peer, goodbye)

    # ------------------------------------------------------------------
    # Observation (webapi reads this, never the live state)
    # ------------------------------------------------------------------
    def _refresh_snapshot(self) -> None:
        classification = self.node.classification
        uptime = (
            time.monotonic() - self._started_at if self._started_at is not None else 0.0
        )
        snapshot = {
            "node_id": self.node.node_id,
            "uptime_seconds": uptime,
            "fires": self.fires,
            "payloads_received": self.payloads_received,
            "stable_fires": self.stable_fires,
            "patience": self.patience,
            "quiescent": self.quiescent,
            "summary_digest": self._digest,
            "classification": {
                "k": len(classification),
                "means": cluster_means(self.node),
                "relative_weights": sorted(classification.relative_weights().tolist()),
                "total_quanta": classification.total_quanta,
            },
            "membership": self.membership.snapshot(),
            "transport": self.transport.describe(),
            "node_stats": self.node.stats.as_dict(),
        }
        with self._snapshot_lock:
            self._snapshot = snapshot

    def snapshot(self) -> dict[str, Any]:
        """A self-consistent copy of the last published state."""
        with self._snapshot_lock:
            return dict(self._snapshot)
