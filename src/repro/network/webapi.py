"""Per-node HTTP query endpoint: observe a deployed node from outside.

A simulated run is observed by reaching into Python objects; a deployed
node must be observable over the network.  Each
:class:`~repro.network.runtime.NodeRuntime` can carry one
:class:`NodeWebAPI` — a stdlib :class:`~http.server.ThreadingHTTPServer`
on a daemon thread, serving JSON read-only views of the runtime's
lock-guarded snapshot (never the live protocol state, so an HTTP request
can never race a merge):

========================  ====================================================
``GET /status``           liveness, fires, quiescence progress, uptime
``GET /classification``   cluster means, relative weights, total quanta
``GET /peers``            the membership view (live + declared-dead peers)
``GET /metrics``          transport counters plus the node's own statistics
``POST /shutdown``        request a graceful stop (LEAVE + loop exit)
========================  ====================================================

The deploy runner (:mod:`repro.deploy`) drives a whole cluster through
exactly these endpoints: poll ``/status`` until every node is quiescent,
read ``/classification`` everywhere, assert agreement, POST ``/shutdown``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.runtime import NodeRuntime

__all__ = ["NodeWebAPI"]


class NodeWebAPI:
    """HTTP observation endpoint for one node runtime.

    ``port=0`` binds an ephemeral port; read :attr:`port` after
    construction.  :meth:`start` / :meth:`stop` bracket the serving
    thread; the server is a daemon, so a crashed node process never
    hangs on it.
    """

    def __init__(self, runtime: "NodeRuntime", host: str = "127.0.0.1", port: int = 0) -> None:
        self.runtime = runtime
        handler = _make_handler(runtime)
        self.server = ThreadingHTTPServer((host, port), handler)
        self.server.daemon_threads = True
        self.host = host
        self.port = int(self.server.server_address[1])
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self.server.serve_forever,
            name=f"webapi-{self.runtime.node.node_id}",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        self.server.shutdown()
        self.server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None


def _make_handler(runtime: "NodeRuntime") -> type[BaseHTTPRequestHandler]:
    class Handler(BaseHTTPRequestHandler):
        def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
            pass  # observation must not spam the node's stdout

        def _reply(self, payload: dict[str, Any], status: int = 200) -> None:
            body = json.dumps(payload).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self) -> None:  # noqa: N802 - stdlib handler contract
            snapshot = runtime.snapshot()
            if self.path == "/status":
                self._reply(
                    {
                        key: snapshot.get(key)
                        for key in (
                            "node_id",
                            "uptime_seconds",
                            "fires",
                            "payloads_received",
                            "stable_fires",
                            "patience",
                            "quiescent",
                            "summary_digest",
                        )
                    }
                )
            elif self.path == "/classification":
                self._reply(
                    {
                        "node_id": snapshot.get("node_id"),
                        **snapshot.get("classification", {}),
                    }
                )
            elif self.path == "/peers":
                self._reply(
                    {
                        "node_id": snapshot.get("node_id"),
                        **snapshot.get("membership", {}),
                    }
                )
            elif self.path == "/metrics":
                self._reply(
                    {
                        "node_id": snapshot.get("node_id"),
                        "transport": snapshot.get("transport", {}),
                        "node_stats": snapshot.get("node_stats", {}),
                    }
                )
            else:
                self._reply({"error": f"unknown path {self.path}"}, status=404)

        def do_POST(self) -> None:  # noqa: N802 - stdlib handler contract
            if self.path == "/shutdown":
                runtime.request_stop()
                self._reply({"stopping": True})
            else:
                self._reply({"error": f"unknown path {self.path}"}, status=404)

    return Handler
