"""Crash-failure injection.

Section 5.3.2's robustness experiment crashes each node with probability
0.05 after every round and shows the protocol's outlier removal is
indifferent to it.  Crashes here are *fail-stop*: a crashed node stops
sending and receiving forever, and the weight it held is simply lost from
the system — the protocol's relative-weight semantics are what make the
surviving estimate stay meaningful.
"""

from __future__ import annotations

import abc
from typing import Iterable, Sequence

import numpy as np

__all__ = ["FailureModel", "NoFailures", "BernoulliCrashes", "ScheduledCrashes"]


class FailureModel(abc.ABC):
    """Decides which live nodes crash at the end of each round."""

    @abc.abstractmethod
    def crashes_after_round(
        self, round_index: int, live_nodes: Sequence[int], rng: np.random.Generator
    ) -> list[int]:
        """Return the node ids (a subset of ``live_nodes``) that crash now."""


class NoFailures(FailureModel):
    """The default: every node survives the whole run."""

    def crashes_after_round(
        self, round_index: int, live_nodes: Sequence[int], rng: np.random.Generator
    ) -> list[int]:
        return []


class BernoulliCrashes(FailureModel):
    """Each live node crashes independently with fixed probability per round.

    This is the paper's Figure 4 model (probability 0.05).  Optionally
    keeps a minimum number of survivors so a run cannot lose *all* data —
    the paper's plots always have live nodes to average over.
    """

    def __init__(self, probability: float, min_survivors: int = 2) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"crash probability must be in [0, 1], got {probability}")
        if min_survivors < 1:
            raise ValueError("min_survivors must be at least 1")
        self.probability = probability
        self.min_survivors = min_survivors

    def crashes_after_round(
        self, round_index: int, live_nodes: Sequence[int], rng: np.random.Generator
    ) -> list[int]:
        if self.probability == 0.0:
            return []
        draws = rng.uniform(size=len(live_nodes))
        crashed = [node for node, draw in zip(live_nodes, draws) if draw < self.probability]
        max_crashes = max(0, len(live_nodes) - self.min_survivors)
        return crashed[:max_crashes]


class ScheduledCrashes(FailureModel):
    """Deterministic crash plan: ``{round_index: [node ids]}``.

    Used by tests that need exact, reproducible failure timing (e.g.
    "crash the only holder of an outlier collection at round 3").
    """

    def __init__(self, plan: dict[int, Iterable[int]]) -> None:
        self.plan = {round_index: list(nodes) for round_index, nodes in plan.items()}

    def crashes_after_round(
        self, round_index: int, live_nodes: Sequence[int], rng: np.random.Generator
    ) -> list[int]:
        scheduled = self.plan.get(round_index, [])
        live = set(live_nodes)
        return [node for node in scheduled if node in live]
