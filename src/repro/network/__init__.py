"""Network substrate: topologies, channels, kernel, schedulers, failures.

The model is the paper's Section 3.1: ``n`` nodes on a static connected
topology joined by reliable asynchronous channels.  One simulation kernel
(:class:`~repro.network.kernel.SimulationKernel`) owns the transport,
delivery, failure and observability machinery; pluggable schedulers
decide *when* it runs — :class:`~repro.network.rounds.RoundEngine`
reproduces the paper's round-counted simulations
(:class:`~repro.network.schedulers.SynchronousRoundScheduler`), and
:class:`~repro.network.asynchronous.AsyncEngine` realises the fully
asynchronous executions of the convergence proof
(:class:`~repro.network.schedulers.PoissonScheduler`).
"""

from repro.network.asynchronous import AsyncEngine
from repro.network.channel import Channel, InFlightMessage
from repro.network.events import EventQueue
from repro.network.factory import ENGINES, make_engine
from repro.network.failures import (
    BernoulliCrashes,
    FailureModel,
    NoFailures,
    ScheduledCrashes,
)
from repro.network.frames import Frame, FrameDecoder, FrameError
from repro.network.kernel import GOSSIP_VARIANTS, Scheduler, SimulationKernel
from repro.network.links import AlwaysUp, LinkSchedule, WindowedOutage, cut_edges
from repro.network.membership import MembershipView, PeerInfo
from repro.network.metrics import NetworkMetrics
from repro.network.process_transport import ProcessTransport
from repro.network.rounds import RoundEngine
from repro.network.runtime import NodeRuntime
from repro.network.schedulers import PoissonScheduler, SynchronousRoundScheduler
from repro.network.tcp_transport import AsyncioTCPTransport
from repro.network.trace import RoundRecord, RunTracer
from repro.network.transport import (
    FrameTransport,
    InMemoryTransport,
    SimulationTransport,
    Transport,
    TransportStats,
    TRANSPORT_NAMES,
)
from repro.network.webapi import NodeWebAPI
from repro.network.simulator import (
    NeighborSelector,
    Network,
    RandomSelector,
    RoundRobinSelector,
)
from repro.network import topology

__all__ = [
    "AlwaysUp",
    "AsyncEngine",
    "AsyncioTCPTransport",
    "BernoulliCrashes",
    "Channel",
    "ENGINES",
    "EventQueue",
    "FailureModel",
    "Frame",
    "FrameDecoder",
    "FrameError",
    "FrameTransport",
    "GOSSIP_VARIANTS",
    "InFlightMessage",
    "InMemoryTransport",
    "LinkSchedule",
    "MembershipView",
    "NeighborSelector",
    "Network",
    "NetworkMetrics",
    "NoFailures",
    "NodeRuntime",
    "NodeWebAPI",
    "PeerInfo",
    "PoissonScheduler",
    "ProcessTransport",
    "RandomSelector",
    "RoundEngine",
    "RoundRecord",
    "RoundRobinSelector",
    "RunTracer",
    "ScheduledCrashes",
    "Scheduler",
    "SimulationKernel",
    "SimulationTransport",
    "SynchronousRoundScheduler",
    "TRANSPORT_NAMES",
    "Transport",
    "TransportStats",
    "WindowedOutage",
    "cut_edges",
    "make_engine",
    "topology",
]
