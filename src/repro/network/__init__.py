"""Network substrate: topologies, channels, engines, failures, metrics.

The model is the paper's Section 3.1: ``n`` nodes on a static connected
topology joined by reliable asynchronous channels.  Two engines drive
protocols over it — :class:`~repro.network.rounds.RoundEngine` reproduces
the paper's round-counted simulations, and
:class:`~repro.network.asynchronous.AsyncEngine` realises the fully
asynchronous executions of the convergence proof.
"""

from repro.network.asynchronous import AsyncEngine
from repro.network.channel import Channel, InFlightMessage
from repro.network.events import EventQueue
from repro.network.failures import (
    BernoulliCrashes,
    FailureModel,
    NoFailures,
    ScheduledCrashes,
)
from repro.network.links import AlwaysUp, LinkSchedule, WindowedOutage, cut_edges
from repro.network.metrics import NetworkMetrics
from repro.network.rounds import GOSSIP_VARIANTS, RoundEngine
from repro.network.trace import RoundRecord, RunTracer
from repro.network.simulator import (
    NeighborSelector,
    Network,
    RandomSelector,
    RoundRobinSelector,
)
from repro.network import topology

__all__ = [
    "AlwaysUp",
    "AsyncEngine",
    "BernoulliCrashes",
    "Channel",
    "EventQueue",
    "FailureModel",
    "GOSSIP_VARIANTS",
    "InFlightMessage",
    "LinkSchedule",
    "NeighborSelector",
    "Network",
    "NetworkMetrics",
    "NoFailures",
    "RandomSelector",
    "RoundEngine",
    "RoundRecord",
    "RoundRobinSelector",
    "RunTracer",
    "ScheduledCrashes",
    "WindowedOutage",
    "cut_edges",
    "topology",
]
