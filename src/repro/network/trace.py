"""Structured per-round run traces.

A :class:`RunTracer` observes an engine through its observation hook —
``per_round`` on :class:`~repro.network.rounds.RoundEngine`, ``per_event``
on :class:`~repro.network.asynchronous.AsyncEngine` — and records, at
every sample, whatever probes the caller registered: error against a
ground truth, collection counts, live-node counts, cumulative messages.
Experiments and notebooks get one tidy record per sample instead of
hand-rolled bookkeeping loops.

The tracer is engine-agnostic: it needs only ``live_nodes`` and
``metrics`` (both provided by :class:`~repro.network.simulator.Network`);
on engines without a ``round_index`` the round stamp falls back to the
closed-round count when rounds are being driven (so probe rounds line up
with ``round_close`` epochs on the Poisson scheduler), else to the
processed-event count.  When the observed engine has an event sink
attached, every sample is also emitted as a ``probe`` event, so JSONL
traces carry the convergence curve alongside the transport events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.obs.events import Event

__all__ = ["RoundRecord", "RunTracer"]


@dataclass(frozen=True)
class RoundRecord:
    """One round's observations."""

    round_index: int
    live_nodes: int
    messages_sent: int
    probes: dict[str, float]

    def __getitem__(self, key: str) -> float:
        return self.probes[key]


class RunTracer:
    """Collects per-round probe values from a running engine.

    Parameters
    ----------
    probes:
        Mapping from probe name to a callable taking the engine and
        returning a float.  Probes run after every round, in insertion
        order; exceptions propagate (a broken probe should fail loudly,
        not silently record garbage).

    Example
    -------
    >>> tracer = RunTracer({
    ...     "error": lambda engine: compute_error(engine),
    ... })                                              # doctest: +SKIP
    >>> engine.run(50, per_round=tracer)                # doctest: +SKIP
    >>> tracer.series("error")                          # doctest: +SKIP
    """

    def __init__(self, probes: Mapping[str, Callable[[Any], float]]) -> None:
        if not probes:
            raise ValueError("a tracer needs at least one probe")
        self.probes = dict(probes)
        self.records: list[RoundRecord] = []

    def __call__(self, engine: Any) -> None:
        """The ``per_round``/``per_event`` hook: sample every probe."""
        values = {name: float(probe(engine)) for name, probe in self.probes.items()}
        round_index = getattr(engine, "round_index", None)
        if round_index is None:
            if engine.metrics.rounds > 0:
                # Round-equivalent driving (``run(..., per_round=...)``):
                # the closed-round count is 1-based at every sample, the
                # same axis the synchronous engine's ``round_index``
                # reports, so probe rounds line up with ``round_close``
                # epochs across schedulers.
                round_index = int(engine.metrics.rounds)
            else:
                # Event driving (``run_events(..., per_event=...)``):
                # no rounds close, so the processed-event count is the
                # only monotone progress stamp available.
                round_index = int(engine.metrics.events)
        self.records.append(
            RoundRecord(
                round_index=round_index,
                live_nodes=len(engine.live_nodes),
                messages_sent=engine.metrics.messages_sent,
                probes=values,
            )
        )
        sink = getattr(engine, "event_sink", None)
        if sink is not None:
            sink.emit(
                Event(
                    kind="probe",
                    round=round_index,
                    t=getattr(engine, "now", None),
                    extra=dict(values),
                )
            )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def series(self, name: str) -> list[float]:
        """The per-round values of one probe."""
        if name not in self.probes:
            raise KeyError(f"unknown probe {name!r}; have {sorted(self.probes)}")
        return [record.probes[name] for record in self.records]

    def rounds(self) -> list[int]:
        return [record.round_index for record in self.records]

    def live_node_series(self) -> list[int]:
        return [record.live_nodes for record in self.records]

    def final(self, name: str) -> float:
        """The last recorded value of a probe."""
        values = self.series(name)
        if not values:
            raise ValueError("tracer has recorded no rounds yet")
        return values[-1]

    def rounds_until(self, name: str, threshold: float) -> int | None:
        """First round at which a probe drops to/below ``threshold``.

        The standard "rounds to convergence" read-out; ``None`` when the
        probe never gets there.
        """
        for record in self.records:
            if record.probes[name] <= threshold:
                return record.round_index
        return None

    def as_columns(self) -> dict[str, list[float]]:
        """All probe series keyed by name (for the report formatter)."""
        return {name: self.series(name) for name in self.probes}
