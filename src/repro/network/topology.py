"""Topology builders for the simulated sensor network.

The convergence theorem (Section 6) holds over *any* static connected
topology; the experiments exercise several.  All builders return an
undirected :class:`networkx.Graph` over nodes ``0..n-1`` — message
channels are instantiated in both directions by the engines — and every
builder guarantees connectivity (retrying or densifying if a random draw
comes out disconnected).
"""

from __future__ import annotations

import math

import networkx as nx
import numpy as np

__all__ = [
    "complete",
    "ring",
    "grid",
    "torus",
    "star",
    "line",
    "balanced_tree",
    "random_geometric",
    "erdos_renyi",
    "watts_strogatz",
    "neighbors_map",
    "validate_topology",
    "TOPOLOGY_BUILDERS",
]


def _relabel(graph: nx.Graph) -> nx.Graph:
    """Canonicalise node labels to ``0..n-1`` integers."""
    return nx.convert_node_labels_to_integers(graph, ordering="sorted")


def validate_topology(graph: nx.Graph) -> nx.Graph:
    """Assert the invariants every engine relies on; returns the graph."""
    if graph.number_of_nodes() == 0:
        raise ValueError("topology must have at least one node")
    if graph.number_of_nodes() > 1 and not nx.is_connected(graph):
        raise ValueError("topology must be connected")
    if any(graph.has_edge(node, node) for node in graph.nodes):
        raise ValueError("topology must not contain self-loops")
    expected = set(range(graph.number_of_nodes()))
    if set(graph.nodes) != expected:
        raise ValueError("topology nodes must be labelled 0..n-1")
    return graph


def complete(n: int) -> nx.Graph:
    """Fully connected network — the paper's simulation topology."""
    return validate_topology(nx.complete_graph(n))


def ring(n: int) -> nx.Graph:
    """Cycle over n nodes; the sparsest 2-regular connected topology."""
    if n < 3:
        raise ValueError("a ring needs at least 3 nodes")
    return validate_topology(nx.cycle_graph(n))


def line(n: int) -> nx.Graph:
    """Path graph: the worst case for gossip diameter."""
    if n < 2:
        raise ValueError("a line needs at least 2 nodes")
    return validate_topology(nx.path_graph(n))


def grid(rows: int, cols: int) -> nx.Graph:
    """2-D lattice, the canonical planar sensor deployment."""
    return validate_topology(_relabel(nx.grid_2d_graph(rows, cols)))


def torus(rows: int, cols: int) -> nx.Graph:
    """2-D lattice with wrap-around edges."""
    return validate_topology(_relabel(nx.grid_2d_graph(rows, cols, periodic=True)))


def star(n: int) -> nx.Graph:
    """One hub connected to n-1 leaves (a base-station deployment)."""
    if n < 2:
        raise ValueError("a star needs at least 2 nodes")
    return validate_topology(nx.star_graph(n - 1))


def balanced_tree(branching: int, height: int) -> nx.Graph:
    """Balanced tree: hierarchical aggregation infrastructure."""
    return validate_topology(_relabel(nx.balanced_tree(branching, height)))


def random_geometric(n: int, radius: float | None = None, seed: int = 0) -> nx.Graph:
    """Random geometric graph: sensors scattered in the unit square.

    Nodes connect when within ``radius``; the default radius is slightly
    above the connectivity threshold ``sqrt(log n / (pi n))`` and is grown
    geometrically until the draw is connected, so the function always
    returns a connected deployment.
    """
    if n < 2:
        raise ValueError("need at least 2 sensors")
    rng = np.random.default_rng(seed)
    if radius is None:
        radius = 1.5 * math.sqrt(math.log(max(n, 2)) / (math.pi * n))
    positions = {i: (rng.uniform(), rng.uniform()) for i in range(n)}
    for _ in range(32):
        graph = nx.random_geometric_graph(n, radius, pos=positions)
        if nx.is_connected(graph):
            return validate_topology(graph)
        radius *= 1.25
    raise RuntimeError("failed to build a connected geometric graph")


def erdos_renyi(n: int, probability: float | None = None, seed: int = 0) -> nx.Graph:
    """Erdős–Rényi random graph, re-drawn until connected."""
    if n < 2:
        raise ValueError("need at least 2 nodes")
    if probability is None:
        probability = min(1.0, 2.0 * math.log(max(n, 2)) / n)
    for attempt in range(64):
        graph = nx.gnp_random_graph(n, probability, seed=seed + attempt)
        if nx.is_connected(graph):
            return validate_topology(graph)
        probability = min(1.0, probability * 1.25)
    raise RuntimeError("failed to build a connected Erdős–Rényi graph")


def watts_strogatz(n: int, k: int = 4, rewire: float = 0.2, seed: int = 0) -> nx.Graph:
    """Small-world graph (connected Watts-Strogatz)."""
    return validate_topology(nx.connected_watts_strogatz_graph(n, k, rewire, seed=seed))


def neighbors_map(graph: nx.Graph) -> dict[int, list[int]]:
    """Sorted adjacency lists, the form engines and nodes consume."""
    return {node: sorted(graph.neighbors(node)) for node in graph.nodes}


#: Name -> builder registry used by the topology ablation benchmark.
TOPOLOGY_BUILDERS = {
    "complete": complete,
    "ring": ring,
    "line": line,
    "star": star,
}
