"""Frame transport over real TCP sockets, asyncio underneath.

The top rung of the deployment ladder: nodes are arbitrary processes on
arbitrary hosts, and gossip frames travel over genuine length-prefixed
TCP streams (:mod:`repro.network.frames`).  The whole asyncio apparatus
— an accepting server, one reconnecting client task per peer — runs on a
**background thread**, hidden behind the synchronous
:class:`~repro.network.transport.FrameTransport` facade (``poll`` /
``send_frame``), so the node runtime drives this transport with exactly
the same loop it uses for :class:`~repro.network.process_transport.ProcessTransport`.

Connection policy:

- **Inbound**: accept anything; feed each connection's bytes through its
  own streaming :class:`~repro.network.frames.FrameDecoder`.  A decode
  error (bad magic, CRC mismatch) poisons that decoder, so the
  connection is dropped — the remote's reconnect path re-establishes a
  clean stream.
- **Outbound**: one lazily-created link per peer address holding a send
  queue and a connect-drain task.  Connects retry with exponential
  backoff (``reconnect_base`` doubling up to ``reconnect_cap``); a drop
  mid-stream loops back to connect, counting a reconnect.  Queued frames
  survive a reconnect; the frame in flight during the drop may be lost —
  which is precisely the paper's asynchronous-channel model, where a
  message is either delivered intact or never.
- **Failure**: :meth:`AsyncioTCPTransport.forget_peer` (driven by the
  membership layer's timeout detector) closes the link and discards its
  queue — fail-stop, in-flight weight leaves the system.
"""

from __future__ import annotations

import asyncio
import queue
import threading
from typing import TYPE_CHECKING, Optional

from repro.network.frames import Frame, FrameDecoder, FrameError
from repro.network.transport import FrameTransport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.membership import PeerInfo

__all__ = ["AsyncioTCPTransport"]

_READ_CHUNK = 1 << 16


class _PeerLink:
    """One peer's outbound side: a send queue plus a connect-drain task."""

    __slots__ = ("address", "send_queue", "task", "connected_once", "closed")

    def __init__(self, address: tuple[str, int]) -> None:
        self.address = address
        self.send_queue: asyncio.Queue[bytes] = asyncio.Queue()
        self.task: Optional[asyncio.Task[None]] = None
        self.connected_once = False
        self.closed = False


class AsyncioTCPTransport(FrameTransport):
    """Length-prefixed frames over TCP, asyncio on a background thread.

    ``port=0`` binds an ephemeral port; read :attr:`bound_port` after
    :meth:`start` returns (the deploy runner uses this to assemble seed
    lists without racing on fixed ports).
    """

    name = "tcp"

    def __init__(
        self,
        node_id: int,
        host: str = "127.0.0.1",
        port: int = 0,
        reconnect_base: float = 0.05,
        reconnect_cap: float = 2.0,
        connect_timeout: float = 5.0,
    ) -> None:
        super().__init__()
        self.node_id = node_id
        self.host = host
        self.port = port
        self.reconnect_base = reconnect_base
        self.reconnect_cap = reconnect_cap
        self.connect_timeout = connect_timeout
        self.bound_port: Optional[int] = None
        self._inbox: queue.Queue[Frame] = queue.Queue()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._links: dict[tuple[str, int], _PeerLink] = {}
        self._links_lock = threading.Lock()
        self._started = threading.Event()
        self._start_error: Optional[BaseException] = None
        self._stopping = threading.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._thread_main, name=f"tcp-transport-{self.node_id}", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=max(self.connect_timeout, 5.0))
        if self._start_error is not None:
            raise RuntimeError(
                f"tcp transport failed to bind {self.host}:{self.port}"
            ) from self._start_error
        if self.bound_port is None:
            raise RuntimeError("tcp transport did not come up in time")

    def _thread_main(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._serve())
        finally:
            # Drain cancelled tasks so the loop closes without warnings.
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.close()

    async def _serve(self) -> None:
        try:
            self._server = await asyncio.start_server(
                self._handle_inbound, self.host, self.port
            )
        except OSError as error:
            self._start_error = error
            self._started.set()
            return
        sockets = self._server.sockets or []
        self.bound_port = sockets[0].getsockname()[1] if sockets else None
        self._started.set()
        stop = asyncio.get_running_loop().create_future()
        self._stop_future = stop
        try:
            await stop
        finally:
            self._server.close()
            await self._server.wait_closed()

    def close(self) -> None:
        if self._stopping.is_set():
            return
        self._stopping.set()
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(self._shutdown_on_loop)
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    def _shutdown_on_loop(self) -> None:
        with self._links_lock:
            links = list(self._links.values())
        for link in links:
            link.closed = True
            if link.task is not None:
                link.task.cancel()
        stop = getattr(self, "_stop_future", None)
        if stop is not None and not stop.done():
            stop.set_result(None)

    # ------------------------------------------------------------------
    # Inbound
    # ------------------------------------------------------------------
    async def _handle_inbound(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        decoder = FrameDecoder()
        try:
            while True:
                chunk = await reader.read(_READ_CHUNK)
                if not chunk:
                    return
                self.stats.bytes_received += len(chunk)
                try:
                    frames = decoder.feed(chunk)
                except FrameError:
                    # Poisoned stream: count it and drop the connection;
                    # the remote's reconnect path starts a clean one.
                    self.frames_rejected += 1
                    return
                for frame in frames:
                    self.stats.frames_received += 1
                    self._inbox.put(frame)
        except (ConnectionError, OSError):
            return
        except asyncio.CancelledError:
            # Transport shutdown cancels in-flight handlers; ending the
            # task cleanly here keeps teardown silent.
            return
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    def poll(self, timeout: Optional[float] = None) -> Optional[Frame]:
        try:
            return self._inbox.get(timeout=timeout)
        except queue.Empty:
            return None

    # ------------------------------------------------------------------
    # Outbound
    # ------------------------------------------------------------------
    def send_frame(self, peer: "PeerInfo", frame: bytes) -> bool:
        loop = self._loop
        if loop is None or self._stopping.is_set():
            return False
        address = (peer.host, peer.port)
        with self._links_lock:
            link = self._links.get(address)
            if link is not None and link.closed:
                return False
            if link is None:
                link = _PeerLink(address)
                self._links[address] = link
                loop.call_soon_threadsafe(self._ensure_link_task, link)
        loop.call_soon_threadsafe(link.send_queue.put_nowait, frame)
        return True

    def _ensure_link_task(self, link: _PeerLink) -> None:
        if link.task is None and not link.closed:
            link.task = asyncio.get_running_loop().create_task(self._drain_link(link))

    async def _drain_link(self, link: _PeerLink) -> None:
        backoff = self.reconnect_base
        host, port = link.address
        pending: Optional[bytes] = None  # survives a reconnect, retried once up
        while not link.closed and not self._stopping.is_set():
            try:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(host, port), self.connect_timeout
                )
            except (OSError, asyncio.TimeoutError):
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2, self.reconnect_cap)
                continue
            if link.connected_once:
                self.stats.reconnects += 1
            link.connected_once = True
            backoff = self.reconnect_base
            # Gossip links are write-only, so a peer's FIN would otherwise
            # go unnoticed until a write bounced (losing that frame).  The
            # watcher turns remote closure into an immediate reconnect.
            eof_watch = asyncio.create_task(reader.read(1))
            try:
                while not link.closed:
                    if pending is None:
                        getter = asyncio.create_task(link.send_queue.get())
                        await asyncio.wait(
                            {getter, eof_watch}, return_when=asyncio.FIRST_COMPLETED
                        )
                        if getter.done():
                            pending = getter.result()
                        else:
                            getter.cancel()
                            try:
                                pending = await getter  # won the race anyway
                            except asyncio.CancelledError:
                                pending = None
                        if eof_watch.done():
                            break  # remote closed; reconnect, keep `pending`
                        if pending is None:
                            continue
                    writer.write(pending)
                    await writer.drain()
                    self.stats.frames_sent += 1
                    self.stats.bytes_sent += len(pending)
                    pending = None
            except (ConnectionError, OSError):
                continue  # dropped mid-stream: loop back to reconnect
            finally:
                eof_watch.cancel()
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError, asyncio.CancelledError):
                    pass

    def forget_peer(self, peer: "PeerInfo") -> None:
        address = (peer.host, peer.port)
        with self._links_lock:
            link = self._links.get(address)
        if link is None:
            return
        link.closed = True
        loop = self._loop
        if loop is not None and loop.is_running():
            def _cancel() -> None:
                if link.task is not None:
                    link.task.cancel()
            loop.call_soon_threadsafe(_cancel)
