"""The simulation kernel: one engine core under every gossip schedule.

The paper proves convergence for *any* connected topology under
*arbitrary* asynchrony (Section 6) but evaluates with a synchronous round
schedule (Section 5.3).  Those are two points on one axis — *when* nodes
act — while everything else (what travels, how it can be lost, what is
counted, what is observed) is schedule-independent.  The kernel owns that
schedule-independent core:

- **transport** — message movement is delegated to a pluggable
  :class:`~repro.network.transport.SimulationTransport` (default
  :class:`~repro.network.transport.InMemoryTransport`: one reliable
  directed :class:`~repro.network.channel.Channel` per used edge, message
  envelopes, and the queued-delivery pipeline), while the kernel keeps
  the protocol interaction and the link-availability check
  (link availability → send → delay → deliver → receiver-side batched
  merge);
- **failure injection** — a :class:`~repro.network.failures.FailureModel`
  consulted at the end of every round (synchronous schedule) or at every
  round-equivalent epoch boundary (asynchronous schedule);
- **liveness and metrics** — inherited from
  :class:`~repro.network.simulator.Network`;
- **observability** — the *single* site where transport events
  (``send`` / ``deliver`` / ``drop`` / ``round_close``) are materialised,
  so a trace's schema cannot drift between schedules.

*When* things happen is delegated to a pluggable
:class:`Scheduler` strategy:
:class:`~repro.network.schedulers.SynchronousRoundScheduler` reproduces
the paper's Section 5.3 methodology (all sends logically precede all
receives; push / pull / push-pull variants), and
:class:`~repro.network.schedulers.PoissonScheduler` realises the Section 6
asynchronous model (exponential firing, random finite delays).  The
historical engine classes — :class:`~repro.network.rounds.RoundEngine`
and :class:`~repro.network.asynchronous.AsyncEngine` — survive as thin
shims binding the kernel to one scheduler each.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Optional, Union

import networkx as nx

from repro.core.fingerprint import MergeCache
from repro.network.channel import Channel, InFlightMessage
from repro.network.events import EventQueue
from repro.network.failures import FailureModel, NoFailures
from repro.network.links import AlwaysUp, LinkSchedule
from repro.network.simulator import NeighborSelector, Network
from repro.network.transport import InMemoryTransport, SimulationTransport
from repro.obs.events import Event, EventSink
from repro.obs.profiling import span
from repro.obs.timeseries import TimeSeriesRecorder, current_hub
from repro.protocols.base import GossipProtocol

__all__ = ["GOSSIP_VARIANTS", "Scheduler", "SimulationKernel"]

#: The gossip communication patterns of Section 4.1, valid on either
#: scheduler: ``push`` sends the split share to the chosen neighbour,
#: ``pull`` asks the chosen neighbour for its share, ``pushpull`` does
#: both in one exchange.
GOSSIP_VARIANTS = ("push", "pull", "pushpull")

#: A delivery time: an absolute timestamp, or a thunk evaluated lazily —
#: only once a payload actually exists — so schedulers can draw random
#: delays without disturbing the RNG stream when a node has nothing to
#: send.
DeliveryTime = Union[float, Callable[[], float]]


class Scheduler:
    """Execution-order strategy: decides *when* the kernel's machinery runs.

    A scheduler owns the clock (rounds or continuous time), drives the
    kernel's transport through :meth:`SimulationKernel.transmit` and the
    delivery helpers, and stamps every emitted event.  Concrete
    schedulers live in :mod:`repro.network.schedulers`.
    """

    def attach(self, kernel: "SimulationKernel") -> None:
        """Install initial events / state; called once from kernel init."""

    def advance(self, kernel: "SimulationKernel") -> bool:
        """Execute the scheduler's smallest unit of progress.

        One synchronous round, or one discrete event.  Returns ``False``
        when nothing remains to execute.
        """
        raise NotImplementedError

    def advance_unit(self, kernel: "SimulationKernel") -> bool:
        """Execute one *round-equivalent* of progress.

        For the synchronous scheduler this is one round; for the Poisson
        scheduler, one mean firing interval of simulated time.  This is
        the unit :meth:`SimulationKernel.run` counts, which is what lets
        experiment drivers measure "rounds" identically on both
        schedules.
        """
        raise NotImplementedError

    def stamp(self, kernel: "SimulationKernel") -> dict[str, Any]:
        """The schedule-specific progress stamp carried by every event."""
        raise NotImplementedError

    def clock(self, kernel: "SimulationKernel") -> float:
        """Current time on the scheduler's clock (rounds count as 1.0)."""
        raise NotImplementedError

    def tick(self, kernel: "SimulationKernel") -> int:
        """The round index equivalent, for link schedules and failures."""
        raise NotImplementedError

    def default_selector(self) -> Optional[NeighborSelector]:
        """Scheduler-preferred neighbour selection (``None`` = kernel default)."""
        return None


class _Fire:
    """Queue entry: a node's periodic timer expires (Algorithm 1 lines 3-7)."""

    __slots__ = ("node",)

    def __init__(self, node: int) -> None:
        self.node = node


class SimulationKernel(Network):
    """Schedule-independent gossip engine core.

    Parameters
    ----------
    graph, protocols, seed, selector, event_sink:
        See :class:`~repro.network.simulator.Network`.  When ``selector``
        is ``None`` the scheduler's preference applies (round-robin for
        the Poisson scheduler, uniform random otherwise).
    scheduler:
        The execution-order strategy; see :mod:`repro.network.schedulers`.
    failure_model:
        Crash injection, consulted once per round / epoch; defaults to no
        failures.
    link_schedule:
        Link availability per round / epoch; defaults to the paper's
        always-up static links.  A node that picks a currently-down link
        skips its transmission — nothing is sent, so channel reliability
        is not violated and the weight stays at the sender.
    fifo:
        Enforce per-channel FIFO delivery (only observable under delayed
        schedules; used by tests to build deterministic orderings).
    transport:
        The :class:`~repro.network.transport.SimulationTransport` that
        moves messages; defaults to a fresh
        :class:`~repro.network.transport.InMemoryTransport` — the
        historical in-process path, byte-identical to the pre-seam
        kernel.  The kernel binds the transport to itself and mirrors
        its :class:`~repro.network.transport.TransportStats` into
        :attr:`metrics` at every round close.
    merge_cache:
        The run-scoped :class:`~repro.core.fingerprint.MergeCache` the
        network's nodes share (``None`` when caching is disabled).  The
        kernel does not consult it; owning it here lets the metrics
        layer fold its counters into :attr:`metrics` at every round
        close, and gives tests one handle on the whole run's cache.
    stop_on_quiescence:
        When true, :meth:`run` probes after every round-equivalent
        whether all live nodes share one summary fingerprint *and* every
        in-flight payload's collections are already part of it; after
        ``quiescence_patience`` consecutive such probes the run stops
        early.  Off by default — figure reproduction runs full length —
        and opt-in for sweeps.  Past this point the class *structure* is
        frozen; only quanta keep moving between byte-identical
        summaries.
    quiescence_patience:
        Consecutive quiescent round-equivalents required before the
        early exit fires.
    telemetry:
        A :class:`~repro.obs.timeseries.TimeSeriesRecorder` fed once per
        closed round-equivalent with convergence gauges.  ``None`` (the
        default) attaches a recorder from the ambient
        :func:`~repro.obs.timeseries.telemetry` scope when one is
        active, and records nothing otherwise.  Telemetry is strictly
        observational: it never consults :attr:`rng`, so simulation
        results are byte-identical with it on or off.
    """

    def __init__(
        self,
        graph: nx.Graph,
        protocols: Mapping[int, GossipProtocol],
        scheduler: Scheduler,
        seed: int = 0,
        selector: Optional[NeighborSelector] = None,
        failure_model: Optional[FailureModel] = None,
        link_schedule: Optional[LinkSchedule] = None,
        fifo: bool = False,
        transport: Optional[SimulationTransport] = None,
        event_sink: Optional[EventSink] = None,
        merge_cache: Optional[MergeCache] = None,
        stop_on_quiescence: bool = False,
        quiescence_patience: int = 3,
        telemetry: Optional[TimeSeriesRecorder] = None,
    ) -> None:
        super().__init__(
            graph,
            protocols,
            seed=seed,
            selector=selector if selector is not None else scheduler.default_selector(),
            event_sink=event_sink,
        )
        self.failure_model = failure_model if failure_model is not None else NoFailures()
        self.link_schedule = link_schedule if link_schedule is not None else AlwaysUp()
        self.fifo = fifo
        self.queue = EventQueue()
        if transport is None:
            transport = InMemoryTransport()
        if not isinstance(transport, SimulationTransport):
            raise TypeError(
                "the simulation kernel needs a SimulationTransport (e.g. "
                f"InMemoryTransport); got {type(transport).__name__}.  Frame "
                "transports (process/tcp) are driven by repro.network.runtime, "
                "not the kernel — see docs/deployment.md."
            )
        self.transport = transport
        transport.bind(self)
        self.merge_cache = merge_cache
        if quiescence_patience < 1:
            raise ValueError(
                f"quiescence_patience must be at least 1, got {quiescence_patience}"
            )
        self.stop_on_quiescence = stop_on_quiescence
        self.quiescence_patience = quiescence_patience
        self._quiescent_streak = 0
        #: Round-equivalent count at which the early exit fired (``None``
        #: while the run has not quiesced).
        self.quiescent_at: Optional[int] = None
        if telemetry is None:
            hub = current_hub()
            if hub is not None:
                telemetry = hub.new_recorder()
        self.telemetry = telemetry
        self.scheduler = scheduler
        scheduler.attach(self)

    # ------------------------------------------------------------------
    # Observability: the single emission site
    # ------------------------------------------------------------------
    def _stamp(self) -> dict[str, Any]:
        return self.scheduler.stamp(self)

    def _emit(self, kind: str, **fields: Any) -> None:
        if self.event_sink is not None:
            self.event_sink.emit(Event(kind=kind, **fields, **self._stamp()))

    def emit_round_close(self, round_index: int, messages: int) -> None:
        """Record the end of one round (or round-equivalent epoch).

        ``round_index`` is the unified 0-based round-equivalent counter
        on *both* schedulers: the synchronous scheduler's round just
        closed, or the Poisson scheduler's epoch just completed (epoch
        ``e`` covers simulated time ``[e*mean_interval,
        (e+1)*mean_interval)``).  The payload carries it again as
        ``extra.epoch`` so per-round report and telemetry sections line
        up across engines without scheduler-specific parsing.
        """
        if self.merge_cache is not None:
            self.metrics.sync_cache(self.merge_cache)
        self.metrics.sync_transport(self.transport.stats)
        t: Optional[float] = None
        if self.event_sink is not None or self.telemetry is not None:
            t = self._stamp().get("t")
        if self.event_sink is not None:
            self.event_sink.emit(
                Event(
                    kind="round_close",
                    round=round_index,
                    t=t,
                    extra={
                        "messages": messages,
                        "live": len(self.live),
                        "epoch": round_index,
                    },
                )
            )
        if self.telemetry is not None:
            self.telemetry.observe_round(self, round_index, t)
            if self.event_sink is not None:
                # Keep the file-backed stream line-complete so a live
                # monitor tailing it sees every closed round promptly.
                self.event_sink.flush()

    # ------------------------------------------------------------------
    # Transport (delegated to the pluggable seam)
    # ------------------------------------------------------------------
    @property
    def channels(self) -> dict[tuple[int, int], Channel]:
        """The transport's directed channels, keyed ``(source, dest)``."""
        return self.transport.channels  # type: ignore[attr-defined]

    def channel(self, source: int, destination: int) -> Channel:
        """The directed channel for an edge, created on first use."""
        return self.transport.channel(source, destination)

    def link_up(self, source: int, destination: int) -> bool:
        """Is the (undirected) link usable right now, per the schedule?"""
        return self.link_schedule.is_up(self.scheduler.tick(self), source, destination)

    def transmit(
        self,
        source: int,
        destination: int,
        deliver_time: Optional[DeliveryTime] = None,
    ) -> int:
        """Run the send half of the pipeline; returns messages sent (0 or 1).

        Asks ``source``'s protocol for a payload (which may legally be
        ``None`` — nothing sendable), wraps it in an envelope on the
        directed channel, schedules its delivery, and counts and emits
        the ``send``.  ``deliver_time`` may be an absolute time or a
        thunk; the thunk is only evaluated once a payload exists, so
        random delay draws never happen for skipped transmissions.
        """
        with span("kernel.transport"):
            payload = self.protocols[source].make_payload()
            if payload is None:
                return 0
            send_time = self.scheduler.clock(self)
            if deliver_time is None:
                deliver_at = send_time
            elif callable(deliver_time):
                deliver_at = float(deliver_time())
            else:
                deliver_at = float(deliver_time)
            self.transport.send(source, destination, payload, send_time, deliver_at)
            items = self.payload_size(payload)
            self.metrics.record_send(items)
            self._emit("send", node=source, peer=destination, items=items)
            return 1

    # ------------------------------------------------------------------
    # Delivery pipeline
    # ------------------------------------------------------------------
    def _complete_delivery(
        self, destination: int, entries: list[tuple[Channel, InFlightMessage]]
    ) -> None:
        """Terminal stage: drop at a crashed node, or batched merge."""
        with span("kernel.receive"):
            payloads = [channel.deliver(message) for channel, message in entries]
            if not self.is_live(destination):
                # Reliable channels deliver, but a crashed node never
                # processes: the payloads' weight leaves the system.
                for channel, _ in entries:
                    self.metrics.record_drop()
                    self._emit("drop", node=channel.source, peer=destination)
                return
            for channel, _ in entries:
                self.metrics.record_delivery()
                self._emit("deliver", node=channel.source, peer=destination)
            self.protocols[destination].receive_batch(payloads)

    def flush_deliveries(self) -> None:
        """Deliver *everything* queued, batched per destination.

        The synchronous scheduler's receive phase; see
        :meth:`repro.network.transport.InMemoryTransport.flush_deliveries`.
        """
        self.transport.flush_deliveries()

    def dispatch_delivery(
        self, channel: Channel, message: InFlightMessage, coalesce_at: Optional[float] = None
    ) -> int:
        """Deliver one due envelope; returns the number of envelopes consumed.

        The event-driven path, with same-instant coalescing; see
        :meth:`repro.network.transport.InMemoryTransport.dispatch_delivery`.
        """
        return self.transport.dispatch_delivery(channel, message, coalesce_at=coalesce_at)

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def inject_crashes(self, round_index: int) -> None:
        """Consult the failure model for the round just finished."""
        crashed = self.failure_model.crashes_after_round(
            round_index, self.live_nodes, self.rng
        )
        for node in crashed:
            self.crash(node)

    # ------------------------------------------------------------------
    # Pool inspection (Section 6.1)
    # ------------------------------------------------------------------
    def in_flight_payloads(self) -> list[Any]:
        """Payloads currently inside channels, for global-pool assertions."""
        return self.transport.in_flight_payloads()

    # ------------------------------------------------------------------
    # Quiescence detection
    # ------------------------------------------------------------------
    def _probe_quiescence(self) -> bool:
        """Do all live nodes (and all in-flight payloads) agree right now?

        Quiescence is *structural*: every live node's summary-level
        fingerprint (which summaries it holds, ignoring quanta — so
        splitting does not disturb it) is identical, and every collection
        still travelling inside a channel carries a summary the shared
        fingerprint already contains.  Once that holds, no future receipt
        can introduce a new summary: the classes are final, only weight
        keeps circulating.  Returns ``False`` whenever the protocol or
        scheme cannot answer (no ``node`` attribute, no fingerprint
        support) — quiescence then never fires, it does not guess.
        """
        reference_fp: Optional[bytes] = None
        reference_digests: Optional[frozenset[bytes]] = None
        scheme = None
        for node_id in self.live:
            node = getattr(self.protocols[node_id], "node", None)
            if node is None:
                return False
            fingerprint = node.summary_fingerprint()
            if fingerprint is None:
                return False
            if reference_fp is None:
                reference_fp = fingerprint
                reference_digests = frozenset(node.summary_digests())
                scheme = node.scheme
            elif fingerprint != reference_fp:
                return False
        if reference_digests is None or scheme is None:
            return False
        for payload in self.in_flight_payloads():
            digests = getattr(payload, "row_digests", None)
            if digests is not None:
                # Native-tier payloads carry their rows' content digests;
                # comparing them is equivalent to re-hashing the summaries
                # (digest == summary_digest of the row, by construction)
                # without materialising any collection objects.
                if any(digest not in reference_digests for digest in digests):
                    return False
                continue
            for collection in payload:
                if scheme.summary_digest(collection.summary) not in reference_digests:
                    return False
        return True

    def _check_quiescence(self, executed: int) -> bool:
        """Advance the streak; returns ``True`` when the early exit fires."""
        if not self._probe_quiescence():
            self._quiescent_streak = 0
            return False
        self._quiescent_streak += 1
        self.metrics.quiescent_rounds += 1
        if self._quiescent_streak < self.quiescence_patience:
            return False
        if self.quiescent_at is None:
            self.quiescent_at = executed
            self._emit("cache", extra={"path": "quiescent", "streak": self._quiescent_streak})
        return True

    @property
    def quiescent(self) -> bool:
        """Whether a :meth:`run` ended early on quiescence."""
        return self.quiescent_at is not None

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def run(
        self,
        rounds: int,
        stop_condition: Optional[Callable[[Any], bool]] = None,
        per_round: Optional[Callable[[Any], None]] = None,
    ) -> int:
        """Run up to ``rounds`` round-equivalents; returns the number run.

        Uniform across schedulers: a synchronous round, or one mean
        firing interval of simulated time.  ``per_round`` (if given)
        observes the engine after each unit; ``stop_condition`` (if
        given) ends the run early when it returns true — the experiment
        scripts plug a
        :class:`~repro.core.convergence.ConvergenceDetector` in here to
        implement "run until convergence" on either schedule.
        """
        executed = 0
        quiesced = False
        for _ in range(rounds):
            if not self.scheduler.advance_unit(self):
                break
            executed += 1
            if per_round is not None:
                per_round(self)
            if self.stop_on_quiescence and self._check_quiescence(executed):
                quiesced = True
                break
            if stop_condition is not None and stop_condition(self):
                break
        if self.merge_cache is not None:
            self.metrics.sync_cache(self.merge_cache)
        self.metrics.sync_transport(self.transport.stats)
        if quiesced and self.event_sink is not None:
            # A truncated run must still leave a complete, valid trace:
            # close it with a final counter snapshot and push everything
            # buffered to durable storage.  Cache counters are excluded —
            # they legitimately differ between cache configurations whose
            # simulation results are byte-identical, and the trace
            # determinism gates compare exactly those runs.
            self._emit(
                "metrics",
                extra=self.metrics.scalar_snapshot(include_cache=False),
            )
            self.event_sink.flush()
        return executed

    def run_steps(
        self,
        count: int,
        stop_condition: Optional[Callable[[Any], bool]] = None,
        observer: Optional[Callable[[Any], None]] = None,
    ) -> int:
        """Run up to ``count`` scheduler steps; returns the number run."""
        executed = 0
        for _ in range(count):
            if not self.scheduler.advance(self):
                break
            executed += 1
            if observer is not None:
                observer(self)
            if stop_condition is not None and stop_condition(self):
                break
        return executed
