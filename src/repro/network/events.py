"""A deterministic discrete-event queue.

A tiny priority queue over ``(time, sequence, item)`` triples.  The
monotone sequence number breaks time ties in insertion order, which makes
event-driven runs bit-reproducible for a fixed seed — a property every
simulation test in this repository relies on.
"""

from __future__ import annotations

import heapq
from typing import Any, Iterator

__all__ = ["EventQueue"]


class EventQueue:
    """Min-heap of timestamped events with deterministic tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Any]] = []
        self._sequence = 0

    def push(self, time: float, item: Any) -> None:
        """Schedule ``item`` at ``time`` (must be non-negative)."""
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        heapq.heappush(self._heap, (time, self._sequence, item))
        self._sequence += 1

    def pop(self) -> tuple[float, Any]:
        """Remove and return the earliest ``(time, item)``."""
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        time, _, item = heapq.heappop(self._heap)
        return time, item

    def peek_time(self) -> float:
        """Timestamp of the earliest event without removing it."""
        if not self._heap:
            raise IndexError("peek on an empty event queue")
        return self._heap[0][0]

    def peek(self) -> tuple[float, Any]:
        """The earliest ``(time, item)`` without removing it."""
        if not self._heap:
            raise IndexError("peek on an empty event queue")
        time, _, item = self._heap[0]
        return time, item

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def drain(self) -> Iterator[tuple[float, Any]]:
        """Yield all events in time order, emptying the queue."""
        while self._heap:
            yield self.pop()
