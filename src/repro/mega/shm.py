"""Shared-memory slab exchange for the sharded arena.

The pipe-era cross-shard data path pickled every payload bundle twice
(worker → parent → worker) through a parent-routed star.  This module
replaces it with double-buffered ``multiprocessing.shared_memory``
outbox slabs: each shard owns, per buffer parity, one segment holding a
contiguous slab region per *target* shard (layout and pack/unpack in
:mod:`repro.core.packed`).  During ``split`` a worker writes its payload
rows straight into the regions; only tiny ``(target, rows)`` control
tuples cross the pipes, and receivers assemble inbound bundles as
zero-copy views in ascending source-shard order, so the delivery order
— and hence byte parity — is exactly the pipe path's.

Double buffering (segment parity = ``round % 2``) is what lets the
round protocol overlap: shard A may already be writing round ``r+1``
into buffer ``(r+1) % 2`` while shard B still reads A's round-``r``
regions from buffer ``r % 2``.  A buffer is only rewritten at
``r + 2``, by which time every reader of round ``r`` — including the
parent's checkpoint/replay snapshot — has finished with it.

Capacity is static worst case: shard ``s`` can emit at most
``shard_size(s) * k`` payload rows per round toward a single target, so
regions never grow and every slab sits at a fixed offset.  The parent
creates (and finally unlinks) all segments; workers — including
respawned ones — attach by name.  Worker attachments are excluded from
the ``resource_tracker`` so a worker death never unregisters or
double-frees the parent's segments.
"""

from __future__ import annotations

import math
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, List, Tuple

import numpy as np

from repro.core.packed import (
    read_payload_slab,
    slab_region_bytes,
    write_payload_slab,
)

__all__ = ["SlabExchangeSpec", "SlabExchange"]


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker tracking.

    The tracker is shared across the forked process tree and keeps a
    name *set*, not a refcount: a worker's attach registering the
    parent's segment (or explicitly unregistering it) unbalances the
    parent's create/unlink pair either way.  Python 3.13 has
    ``track=False`` for exactly this; on older versions the attach-side
    registration is suppressed instead, so the worker never talks to
    the tracker at all.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


class SlabExchangeSpec:
    """Picklable geometry of one engine's exchange segments.

    Built once by the parent from the shard boundaries, ``k`` and the
    scheme's packed column specs; shipped to workers inside their
    ``_ShardConfig`` so respawned workers can re-attach and re-derive
    every offset without further coordination.
    """

    def __init__(
        self,
        bounds: np.ndarray,
        k: int,
        column_specs: Dict[str, Tuple[int, ...]],
        token: str,
    ) -> None:
        self.bounds = np.asarray(bounds, dtype=np.int64)
        self.shards = int(len(self.bounds) - 1)
        self.k = int(k)
        self.names: List[str] = sorted(column_specs)
        self.column_specs: List[Tuple[str, Tuple[int, ...]]] = [
            (name, tuple(column_specs[name])) for name in self.names
        ]
        self.row_floats = sum(
            math.prod(shape) if shape else 1 for _, shape in self.column_specs
        )
        self.token = token

    def capacity(self, source: int) -> int:
        """Worst-case rows from ``source`` toward one target in one round."""
        return int(self.bounds[source + 1] - self.bounds[source]) * self.k

    def region_bytes(self, source: int) -> int:
        return slab_region_bytes(self.capacity(source), self.row_floats)

    def region_offset(self, source: int, target: int) -> int:
        """Offset of the ``target`` region inside a ``source`` segment."""
        if target == source:
            raise ValueError(f"shard {source} has no outbox region for itself")
        index = target if target < source else target - 1
        return index * self.region_bytes(source)

    def segment_bytes(self, source: int) -> int:
        return (self.shards - 1) * self.region_bytes(source)

    def segment_name(self, source: int, parity: int) -> str:
        return f"rmega_{self.token}_s{source}b{parity}"

    def segment_names(self) -> List[str]:
        return [
            self.segment_name(source, parity)
            for source in range(self.shards)
            for parity in (0, 1)
            if self.segment_bytes(source) > 0
        ]


class SlabExchange:
    """One process's attachment to every exchange segment.

    The parent constructs with ``create=True`` (allocates, and later
    unlinks, all ``2 * shards`` segments); workers attach by name.  All
    offsets come from the shared :class:`SlabExchangeSpec`, so writer
    and reader agree on layout by construction.
    """

    def __init__(self, spec: SlabExchangeSpec, create: bool) -> None:
        self.spec = spec
        self.owner = create
        self._segments: Dict[Tuple[int, int], shared_memory.SharedMemory] = {}
        try:
            for source in range(spec.shards):
                nbytes = spec.segment_bytes(source)
                if nbytes == 0:  # single shard: nothing ever crosses
                    continue
                for parity in (0, 1):
                    name = spec.segment_name(source, parity)
                    if create:
                        segment = shared_memory.SharedMemory(
                            name=name, create=True, size=nbytes
                        )
                    else:
                        segment = _attach(name)
                    self._segments[(source, parity)] = segment
        except BaseException:
            if create:
                self.destroy()  # release whatever was already allocated
            else:
                self.close()
            raise

    @property
    def segment_names(self) -> List[str]:
        return [segment.name for segment in self._segments.values()]

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def write(
        self,
        source: int,
        parity: int,
        target: int,
        round_index: int,
        dest: np.ndarray,
        quanta: np.ndarray,
        columns: Dict[str, np.ndarray],
    ) -> None:
        """Write one outbound bundle into the ``(source, parity)`` outbox."""
        spec = self.spec
        segment = self._segments[(source, parity)]
        write_payload_slab(
            segment.buf,
            spec.region_offset(source, target),
            spec.capacity(source),
            round_index,
            dest,
            quanta,
            columns,
            spec.column_specs,
        )

    def read(
        self,
        source: int,
        parity: int,
        target: int,
        round_index: int,
        rows: int,
        copy: bool = False,
    ) -> Tuple[np.ndarray, np.ndarray, Dict[str, np.ndarray]]:
        """Read the bundle ``source`` wrote for ``target`` this round.

        Zero-copy views by default (receivers consume them within the
        round); ``copy=True`` for the parent's replay-history snapshot.
        The header must echo the expected ``(round, rows)`` — a mismatch
        means the protocol barrier broke, which is a bug, not a
        recoverable condition.
        """
        spec = self.spec
        segment = self._segments[(source, parity)]
        got_round, got_rows, dest, quanta, columns = read_payload_slab(
            segment.buf,
            spec.region_offset(source, target),
            spec.capacity(source),
            spec.column_specs,
            copy=copy,
        )
        if got_round != round_index or got_rows != rows:
            raise RuntimeError(
                f"slab exchange protocol violation: shard {source} buffer {parity} "
                f"region {target} holds round {got_round} ({got_rows} rows), "
                f"expected round {round_index} ({rows} rows)"
            )
        return dest, quanta, columns

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop this process's mappings (workers; idempotent)."""
        for segment in self._segments.values():
            try:
                segment.close()
            except BufferError:  # pragma: no cover - a live view escaped
                pass
        self._segments = {}

    def destroy(self) -> None:
        """Owner teardown: unlink every segment, then close (idempotent)."""
        for segment in self._segments.values():
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self.close()
