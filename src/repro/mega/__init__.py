"""repro.mega — the whole-network arena engine for 100k–1M node runs.

The per-node simulation stack (:mod:`repro.network.kernel` driving one
:class:`~repro.core.node.ClassifierNode` object per node) reproduces the
paper's experiments faithfully but tops out around a few thousand nodes:
a round is a Python loop over node objects, each receipt re-packs numpy
arrays out of summary objects, and every node carries its own caches.

This package holds *all* nodes' packed classification state in one
contiguous structure-of-arrays arena (:mod:`repro.mega.arena`) and
executes a gossip round as batched numpy operations
(:mod:`repro.mega.engine`): one vectorised pairing draw, one batched
split, one stable sort routing every payload to its receiver, and a
content-addressed receive solver that collapses the post-convergence
tail into dictionary lookups across the whole population.  For runs that
outgrow one process, :mod:`repro.mega.shard` splits the arena across
worker processes with a deterministic, seed-keyed cross-shard exchange —
payload rows travel through double-buffered shared-memory slabs
(:mod:`repro.mega.shm`) by default, with a pickled-pipe fallback
(``REPRO_MEGA_SHM=0``).

The correctness contract is byte-parity: at overlapping sizes and equal
seeds an arena run produces exactly the per-node kernel's classifications
(same summary bytes, same quanta, same collection order) — see
``tests/mega/`` and the selection matrix in ``docs/architecture.md``.
"""

from repro.mega.arena import NetworkArena, SummaryInterner
from repro.mega.engine import ArenaEngine, ArenaStats
from repro.mega.shard import ShardedArenaEngine
from repro.mega.shm import SlabExchange, SlabExchangeSpec

__all__ = [
    "ArenaEngine",
    "ArenaStats",
    "NetworkArena",
    "ShardedArenaEngine",
    "SlabExchange",
    "SlabExchangeSpec",
    "SummaryInterner",
]
