"""``python -m repro.mega`` — the mega-scale arena CLI."""

import sys

from repro.mega.cli import main

sys.exit(main())
