"""The network arena: every node's packed state in one SoA block.

A :class:`NetworkArena` is the whole-population analogue of a single
node's :class:`~repro.core.packed.PackedState`: ``quanta`` is an
``(n, k)`` integer matrix (row ``i`` = node ``i``'s collections, padded
with zeros past ``counts[i]``), and each scheme column gains a leading
``(n, k)`` pair of axes — for the Gaussian schemes ``mean (n, k, d)``
and ``cov (n, k, d, d)``.

Summaries are *interned*: the arena never stores a summary object per
collection.  Instead a :class:`SummaryInterner` maps each distinct
packed-row byte pattern to a dense integer id, and the arena keeps an
``(n, k)`` id matrix alongside the float columns.  Ids make the three
expensive equalities of a gossip round O(1):

- two collections hold the same class  ⟺  same id (dedup of receives),
- a receive problem repeats            ⟺  same id/quanta key bytes,
- the population has structurally converged  ⟺  one id multiset per row.

Ids are engine-local (they depend on interning order); content digests —
the globally stable names the per-node kernel uses — are derived lazily
per id, so parity checks and certificates speak the same language as
:mod:`repro.core.fingerprint`.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.collection import Collection
from repro.core.scheme import SummaryScheme
from repro.core.weights import Quantization

__all__ = ["NetworkArena", "SummaryInterner"]


class SummaryInterner:
    """Dense ids for distinct packed summary rows, plus derived caches.

    The intern key of a row is the concatenation of its column bytes in
    sorted column-name order — exactly the bytes a scheme's
    ``pack_summaries`` would produce for the summary, so byte-parity
    with the object world is definitional.  Digest and summary-object
    caches are lazy: the hot round loop only touches ids; digests are
    materialised for certificates, parity checks and reporting.
    """

    def __init__(self, scheme: SummaryScheme, column_specs: Dict[str, Tuple[int, ...]]) -> None:
        self.scheme = scheme
        self.names: List[str] = sorted(column_specs)
        self.row_shapes: List[Tuple[int, ...]] = [column_specs[name] for name in self.names]
        self.row_lengths: List[int] = [
            math.prod(shape) for shape in self.row_shapes
        ]
        self._ids: Dict[bytes, int] = {}
        self._keys: List[bytes] = []
        self._digests: List[Optional[bytes]] = []
        self._summaries: List[Any] = []

    def __len__(self) -> int:
        return len(self._keys)

    # ------------------------------------------------------------------
    # Interning
    # ------------------------------------------------------------------
    def _flatten_rows(self, columns: Dict[str, np.ndarray], count: int) -> np.ndarray:
        """One C-contiguous ``(count, total_floats)`` matrix of row bytes."""
        flats = []
        for name, shape in zip(self.names, self.row_shapes):
            array = np.ascontiguousarray(columns[name], dtype=float)
            if array.shape[0] != count or array.shape[1:] != shape:
                raise ValueError(
                    f"column {name!r} has shape {array.shape}, "
                    f"expected ({count}, {', '.join(map(str, shape))})"
                )
            flats.append(array.reshape(count, -1))
        return np.ascontiguousarray(np.concatenate(flats, axis=1))

    def intern_rows(self, columns: Dict[str, np.ndarray], count: int) -> np.ndarray:
        """Intern ``count`` packed rows; returns their ids, in row order."""
        flat = self._flatten_rows(columns, count)
        out = np.empty(count, dtype=np.int64)
        ids = self._ids
        keys = self._keys
        digests = self._digests
        summaries = self._summaries
        for i in range(count):
            key = flat[i].tobytes()
            found = ids.get(key)
            if found is None:
                found = len(keys)
                ids[key] = found
                keys.append(key)
                digests.append(None)
                summaries.append(None)
            out[i] = found
        return out

    def intern_row(self, columns: Dict[str, np.ndarray], index: int) -> int:
        """Intern the single packed row ``index`` of ``columns``."""
        key = b"".join(
            np.ascontiguousarray(columns[name][index], dtype=float).tobytes()
            for name in self.names
        )
        found = self._ids.get(key)
        if found is None:
            found = len(self._keys)
            self._ids[key] = found
            self._keys.append(key)
            self._digests.append(None)
            self._summaries.append(None)
        return found

    def remember_summary(self, summary_id: int, summary: Any) -> None:
        """Seed the summary-object cache for an id the caller just built.

        Saves the decode round-trip when the merging code already holds
        the object; treat the stored summary as immutable.
        """
        if self._summaries[summary_id] is None:
            self._summaries[summary_id] = summary

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def key_bytes(self, summary_id: int) -> bytes:
        """The intern key (packed row bytes) behind an id.

        Content-stable across interners: two interners over the same
        column specs assign the same key bytes to the same summary, even
        when their dense ids differ — the currency for cross-process
        state comparison.
        """
        return self._keys[summary_id]

    def row_arrays(self, summary_id: int) -> Dict[str, np.ndarray]:
        """The packed column row behind an id (fresh, writable arrays)."""
        key = self._keys[summary_id]
        out: Dict[str, np.ndarray] = {}
        offset = 0
        for name, shape, length in zip(self.names, self.row_shapes, self.row_lengths):
            out[name] = (
                np.frombuffer(key, dtype=np.float64, count=length, offset=offset)
                .reshape(shape)
                .copy()
            )
            offset += length * 8
        return out

    def summary(self, summary_id: int) -> Any:
        """The summary object behind an id (cached; treat as immutable)."""
        cached = self._summaries[summary_id]
        if cached is None:
            rows = self.row_arrays(summary_id)
            cached = self.scheme.unpack_summary(
                {name: row[None, ...] for name, row in rows.items()}, 0
            )
            self._summaries[summary_id] = cached
        return cached

    def digest(self, summary_id: int) -> bytes:
        """The scheme content digest behind an id (cached)."""
        cached = self._digests[summary_id]
        if cached is None:
            cached = self.scheme.summary_digest(self.summary(summary_id))
            self._digests[summary_id] = cached
        return cached


class NetworkArena:
    """All ``n`` nodes' classification state as one structure of arrays.

    Attributes
    ----------
    counts:
        ``(n,)`` int64 — collections held per node (``1..k``).
    quanta:
        ``(n, k)`` int64 — collection weights; zero past ``counts[i]``.
        Row sums are conserved at ``quantization.unit`` per node (plus
        whatever is in flight mid-exchange).
    ids:
        ``(n, k)`` int64 — interned summary ids; stale past ``counts[i]``
        (slots are masked by zero quanta, never read).
    columns:
        Scheme columns with leading ``(n, k)`` axes; row ``[i, j]`` holds
        the packed summary of node ``i``'s collection ``j``.
    """

    def __init__(
        self,
        scheme: SummaryScheme,
        k: int,
        quantization: Quantization,
        counts: np.ndarray,
        quanta: np.ndarray,
        ids: np.ndarray,
        columns: Dict[str, np.ndarray],
        interner: SummaryInterner,
    ) -> None:
        self.scheme = scheme
        self.k = k
        self.quantization = quantization
        self.counts = counts
        self.quanta = quanta
        self.ids = ids
        self.columns = columns
        self.interner = interner

    @property
    def n(self) -> int:
        return int(self.counts.shape[0])

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_values(
        cls,
        values: Sequence[Any],
        scheme: SummaryScheme,
        k: int,
        quantization: Optional[Quantization] = None,
    ) -> "NetworkArena":
        """Time-0 arena: one unit-weight collection per input value."""
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        if not scheme.supports_packed:
            raise ValueError(
                f"{type(scheme).__name__} does not implement the packed hot "
                "path; the arena engine requires it"
            )
        quantization = quantization or Quantization()
        n = len(values)
        if n == 0:
            raise ValueError("cannot build an arena over zero values")
        packed = scheme.pack_values(values)
        specs = {name: array.shape[1:] for name, array in packed.items()}
        interner = SummaryInterner(scheme, specs)

        counts = np.ones(n, dtype=np.int64)
        quanta = np.zeros((n, k), dtype=np.int64)
        quanta[:, 0] = quantization.unit
        ids = np.full((n, k), -1, dtype=np.int64)
        ids[:, 0] = interner.intern_rows(packed, n)
        columns: Dict[str, np.ndarray] = {}
        for name, array in packed.items():
            column = np.zeros((n, k) + array.shape[1:], dtype=float)
            column[:, 0] = array
            columns[name] = column
        return cls(scheme, k, quantization, counts, quanta, ids, columns, interner)

    def take_nodes(self, start: int, stop: int) -> "NetworkArena":
        """A deep-copied arena over the node range ``[start, stop)``.

        Shares the interner (append-only, so ids stay valid in both) but
        owns its array slabs — shard workers mutate their slice freely.
        """
        return NetworkArena(
            self.scheme,
            self.k,
            self.quantization,
            self.counts[start:stop].copy(),
            self.quanta[start:stop].copy(),
            self.ids[start:stop].copy(),
            {name: column[start:stop].copy() for name, column in self.columns.items()},
            self.interner,
        )

    # ------------------------------------------------------------------
    # Observation (parity-facing views into the object world)
    # ------------------------------------------------------------------
    def node_collections(self, node: int) -> List[Collection]:
        """Node ``node``'s classification as collection objects, in order."""
        interner = self.interner
        count = int(self.counts[node])
        return [
            Collection(
                summary=interner.summary(int(self.ids[node, slot])),
                quanta=int(self.quanta[node, slot]),
                digest=interner.digest(int(self.ids[node, slot])),
            )
            for slot in range(count)
        ]

    def classifications(self) -> List[List[Collection]]:
        return [self.node_collections(node) for node in range(self.n)]

    def state_digests(self, node: int) -> Tuple[Tuple[bytes, int], ...]:
        """Ordered ``(summary digest, quanta)`` pairs — the parity currency."""
        interner = self.interner
        count = int(self.counts[node])
        return tuple(
            (interner.digest(int(self.ids[node, slot])), int(self.quanta[node, slot]))
            for slot in range(count)
        )

    def total_quanta(self) -> int:
        """Population weight; conserved at ``n * unit`` between rounds."""
        return int(self.quanta.sum())
