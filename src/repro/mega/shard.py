"""The sharded arena: one gossip population split across worker processes.

:class:`ShardedArenaEngine` partitions the node range into contiguous
shards (``np.array_split`` boundaries), gives each worker process an
owned :class:`~repro.mega.arena.NetworkArena` slice plus a *full*
replica of the :class:`~repro.mega.engine.GossipPairing` draw, and runs
each round as a two-phase barrier protocol over pipes:

1. **split** — every worker draws the whole population's peers vector
   from the shared seed (identical across workers: same stream, same
   selector), splits its own rows, and emits the payload bundles bound
   for *other* shards.  The portion addressed to its own shard never
   leaves the process.
2. **deliver** — each worker applies its inbound payloads through the
   shared :class:`~repro.mega.engine.ReceiveSolver`, assembling rows in
   ascending source-shard order so the concatenation reproduces the
   in-memory transport's ascending-sender delivery order exactly.

Payload rows move through one of two exchange tiers:

- **shared memory** (the default; disable with ``REPRO_MEGA_SHM=0``) —
  workers write packed dest/quanta/column rows directly into
  double-buffered :mod:`multiprocessing.shared_memory` outbox slabs
  (:mod:`repro.mega.shm`); only tiny ``(target, rows)`` control tuples
  cross the pipes, and receivers read zero-copy views.  Nothing is
  pickled on the data path.
- **pipes** — the historical parent-routed star: bundles are pickled
  worker → parent → worker.  Kept as the portable fallback and as the
  parity reference for the shm tier.

Both tiers post all of a phase's messages before draining any reply and
collect replies concurrently (``multiprocessing.connection.wait``), so
a round costs the *slowest* worker, not the sum of workers.

Because pairing is replicated rather than communicated, the exchange is
deterministic and byte-parity with the single-process
:class:`~repro.mega.engine.ArenaEngine` (and hence with the per-node
kernel) holds shard-count- and exchange-tier-independently;
``tests/mega/`` pins ``shards=1`` against ``shards=4`` against the
unsharded engine, shm against pipes.

Fault tolerance reuses the sweep runner's worker-pool discipline
(:mod:`repro.sweep.runner`): rounds are atomic — the parent distributes
nothing until every worker's ``sent`` reply is in — so a worker death
only ever loses state the parent can reconstruct.  Workers piggyback
checkpoint slabs (counts/quanta/columns; ids are re-interned on load)
every ``checkpoint_every`` rounds, the parent buffers each shard's
inbound bundles since its last checkpoint (under shared memory it
snapshots the slab contents before the double buffer is reused), and a
respawned worker rebuilds its arena, re-attaches to the shm segments,
fast-forwards the pairing stream by discarding draws, and replays the
buffered rounds — regenerating its own splits, which cost nothing to
recompute and were already routed (replay never writes the slabs: the
pre-crash content other shards may still be reading is byte-identical
by determinism, and the history copy is authoritative).  Deterministic
crash injection for tests mirrors ``REPRO_SWEEP_CRASH_TASK``:
``REPRO_MEGA_CRASH_SHARD="<shard>:<round>"`` (split phase) or
``"<shard>:<round>:deliver"`` plus a ``REPRO_MEGA_CRASH_FLAG`` path
make exactly one worker ``os._exit`` at the matching point.
"""

from __future__ import annotations

import hashlib
import os
import time
import uuid
from dataclasses import dataclass
from multiprocessing import connection as mp_connection
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple, Union

import networkx as nx
import numpy as np

from repro.core.fingerprint import MergeCache, merge_cache_default
from repro.core.weights import Quantization
from repro.mega.arena import NetworkArena, SummaryInterner
from repro.mega.engine import ArenaStats, GossipPairing, ReceiveSolver
from repro.mega.shm import SlabExchange, SlabExchangeSpec
from repro.network.simulator import NeighborSelector, RandomSelector
from repro.obs.profiling import current_registry
from repro.sweep.runner import _pool_context

__all__ = [
    "ShardedArenaEngine",
    "CRASH_FLAG_ENV",
    "CRASH_SHARD_ENV",
    "SHM_ENV",
    "shm_default",
]

#: ``"<shard>:<round>"`` (split) or ``"<shard>:<round>:deliver"`` —
#: which worker crashes, and at which protocol point.
CRASH_SHARD_ENV = "REPRO_MEGA_CRASH_SHARD"
#: Flag-file path; ``O_EXCL`` creation makes the crash once-only.
CRASH_FLAG_ENV = "REPRO_MEGA_CRASH_FLAG"
#: ``"0"`` selects the pickled-pipe exchange; anything else (or unset)
#: keeps the shared-memory tier.
SHM_ENV = "REPRO_MEGA_SHM"

#: Exit code of an injected worker crash (visible in worker exitcodes).
_CRASH_EXIT = 23


def shm_default() -> bool:
    """The ambient exchange-tier default (``REPRO_MEGA_SHM``, on)."""
    return os.environ.get(SHM_ENV, "1").strip().lower() not in ("0", "false", "off")


def _maybe_inject_crash(shard: int, round_index: int, phase: str = "split") -> None:
    """Deterministic once-only hard crash, driven by environment knobs."""
    needle = os.environ.get(CRASH_SHARD_ENV)
    if not needle:
        return
    parts = needle.split(":")
    wanted_phase = parts[2] if len(parts) > 2 else "split"
    if parts[:2] != [str(shard), str(round_index)] or phase != wanted_phase:
        return
    flag = os.environ.get(CRASH_FLAG_ENV)
    if not flag:
        return
    try:
        handle = os.open(flag, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return
    os.close(handle)
    os._exit(_CRASH_EXIT)


def _arena_from_slabs(
    scheme: Any,
    k: int,
    quantization: Quantization,
    counts: np.ndarray,
    quanta: np.ndarray,
    columns: Dict[str, np.ndarray],
) -> NetworkArena:
    """Rebuild an arena (fresh interner) from bare checkpoint slabs.

    Ids are interner-local, so checkpoints carry only the float slabs;
    the used rows are re-interned in bulk here.  Shared by worker
    respawn and the parent's final assembly.
    """
    n = len(counts)
    interner = SummaryInterner(scheme, {name: col.shape[2:] for name, col in columns.items()})
    ids = np.full((n, k), -1, dtype=np.int64)
    node_idx, slot_idx = np.nonzero(np.arange(k)[None, :] < counts[:, None])
    if len(node_idx):
        gathered = {name: col[node_idx, slot_idx] for name, col in columns.items()}
        ids[node_idx, slot_idx] = interner.intern_rows(gathered, len(node_idx))
    return NetworkArena(scheme, k, quantization, counts, quanta, ids, columns, interner)


@dataclass
class _ShardConfig:
    """Everything a worker needs to (re)build itself, picklable."""

    shard: int
    shards: int
    bounds: np.ndarray  # (shards + 1,) node-range boundaries
    n: int
    scheme: Any
    k: int
    quantization: Quantization
    selector: NeighborSelector
    seed: int
    topology: Union[str, nx.Graph]
    use_cache: bool
    memo_size: int
    checkpoint_every: int
    #: Shared-memory exchange geometry; ``None`` selects the pipe tier.
    exchange: Optional[SlabExchangeSpec] = None

    @property
    def lo(self) -> int:
        return int(self.bounds[self.shard])

    @property
    def hi(self) -> int:
        return int(self.bounds[self.shard + 1])


class _ShardState:
    """One worker's half of the protocol: its arena slice + full pairing."""

    def __init__(
        self,
        config: _ShardConfig,
        values: Optional[Sequence[Any]],
        checkpoint: Optional[Dict[str, Any]],
    ) -> None:
        self.config = config
        scheme = config.scheme
        if checkpoint is None:
            assert values is not None
            self.arena = NetworkArena.from_values(values, scheme, config.k, config.quantization)
            self.rounds_done = 0
        else:
            self.arena = _arena_from_slabs(
                scheme,
                config.k,
                config.quantization,
                checkpoint["counts"],
                checkpoint["quanta"],
                checkpoint["columns"],
            )
            self.rounds_done = int(checkpoint["rounds_done"])
        self.pairing = GossipPairing(config.n, config.topology, config.selector, config.seed)
        # Fast-forward the shared pairing stream to the resume point.
        for _ in range(self.rounds_done):
            self.pairing.draw()
        self.stats = ArenaStats()
        cache = MergeCache() if (config.use_cache and scheme.supports_fingerprints) else None
        self.solver = ReceiveSolver(
            self.arena, merge_cache=cache, memo_size=config.memo_size, stats=self.stats
        )
        self._pending_internal: Optional[Tuple[np.ndarray, ...]] = None

    # ------------------------------------------------------------------
    # Round phases
    # ------------------------------------------------------------------
    def split_round(
        self,
    ) -> Tuple[List[Tuple[int, np.ndarray, np.ndarray, Dict[str, np.ndarray]]], int]:
        """Draw, split own rows, bucket payloads by destination shard.

        Returns the external bundles ``(dest_shard, dest_global, quanta,
        columns)`` — rows in ascending (sender, slot) order within each
        bundle — and the shard's message count (distinct senders, the
        kernel's metric).  The own-shard portion is parked for
        :meth:`apply_round`.
        """
        config = self.config
        peers = self.pairing.draw()
        arena = self.arena
        quanta = arena.quanta
        sent = quanta // 2
        arena.quanta = quanta - sent
        sender, slot = np.nonzero(sent)
        self._pending_internal = None
        if not len(sender):
            return [], 0
        messages = int(np.count_nonzero(np.diff(sender)) + 1)
        payload_quanta = sent[sender, slot]
        payload_ids = arena.ids[sender, slot]
        payload_dest = peers[sender + config.lo]
        payload_columns = {
            name: column[sender, slot] for name, column in arena.columns.items()
        }
        dest_shard = np.searchsorted(config.bounds, payload_dest, side="right") - 1
        outgoing: List[Tuple[int, np.ndarray, np.ndarray, Dict[str, np.ndarray]]] = []
        for target in np.unique(dest_shard):
            target = int(target)
            mask = dest_shard == target
            bundle_dest = payload_dest[mask]
            bundle_quanta = payload_quanta[mask]
            bundle_columns = {name: rows[mask] for name, rows in payload_columns.items()}
            if target == config.shard:
                # Own rows: ids stay valid in this interner, keep them.
                self._pending_internal = (
                    bundle_dest,
                    payload_ids[mask],
                    bundle_quanta,
                    bundle_columns,
                )
            else:
                outgoing.append((target, bundle_dest, bundle_quanta, bundle_columns))
        return outgoing, messages

    def apply_round(
        self, external: List[Tuple[int, np.ndarray, np.ndarray, Dict[str, np.ndarray]]]
    ) -> None:
        """Apply one round's inbound payloads (plus the parked internal).

        ``external`` holds ``(source_shard, dest_global, quanta,
        columns)`` bundles.  Parts are concatenated in ascending
        source-shard order — each internally in ascending sender order —
        so the stable sort by destination reproduces the transport's
        global delivery order.
        """
        config = self.config
        arena = self.arena
        by_source: Dict[int, Tuple[np.ndarray, np.ndarray, Dict[str, np.ndarray]]] = {}
        for source, dest, quanta, columns in external:
            by_source[int(source)] = (dest, quanta, columns)
        dest_parts: List[np.ndarray] = []
        id_parts: List[np.ndarray] = []
        quanta_parts: List[np.ndarray] = []
        column_parts: List[Dict[str, np.ndarray]] = []
        for source in range(config.shards):
            if source == config.shard:
                if self._pending_internal is None:
                    continue
                dest, ids, quanta, columns = self._pending_internal
            elif source in by_source:
                dest, quanta, columns = by_source[source]
                ids = arena.interner.intern_rows(columns, len(dest))
            else:
                continue
            dest_parts.append(dest)
            id_parts.append(ids)
            quanta_parts.append(quanta)
            column_parts.append(columns)
        self._pending_internal = None
        if dest_parts:
            payload_dest = np.concatenate(dest_parts) - config.lo
            payload_ids = np.concatenate(id_parts)
            payload_quanta = np.concatenate(quanta_parts)
            payload_columns = {
                name: np.concatenate([part[name] for part in column_parts])
                for name in column_parts[0]
            }
            order = np.argsort(payload_dest, kind="stable")
            sorted_dest = payload_dest[order]
            dests, starts = np.unique(sorted_dest, return_index=True)
            bounds = np.append(starts, len(sorted_dest))
            self.solver.receive_slab(
                dests,
                bounds,
                payload_ids[order],
                payload_quanta[order],
                {name: rows[order] for name, rows in payload_columns.items()},
            )
        self.rounds_done += 1

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def probe(self) -> Tuple[bool, bytes]:
        """Local quiescence: (all rows structurally equal, content hash).

        The hash is over the *intern key bytes* of the first node's
        sorted summary multiset — content-stable across interners, so
        the parent declares global quiescence iff every shard is
        internally equal and all hashes agree.
        """
        arena = self.arena
        counts = arena.counts
        first = int(counts[0])
        if not bool(np.all(counts == first)):
            return False, b""
        block = np.sort(arena.ids[:, :first], axis=1)
        if not bool(np.all(block == block[0])):
            return False, b""
        interner = arena.interner
        digest = hashlib.blake2b(digest_size=16)
        digest.update(first.to_bytes(8, "little"))
        for key in sorted(interner.key_bytes(int(sid)) for sid in arena.ids[0, :first]):
            digest.update(key)
        return True, digest.digest()

    def checkpoint_payload(self) -> Dict[str, Any]:
        arena = self.arena
        return {
            "rounds_done": self.rounds_done,
            "counts": arena.counts.copy(),
            "quanta": arena.quanta.copy(),
            "columns": {name: column.copy() for name, column in arena.columns.items()},
        }

    def final_payload(self) -> Dict[str, Any]:
        payload = self.checkpoint_payload()
        payload["stats"] = self.stats.as_dict()
        return payload


def _shard_worker_main(
    conn: Any,
    config: _ShardConfig,
    values: Optional[Sequence[Any]],
    checkpoint: Optional[Dict[str, Any]],
    replay: List[Tuple[int, List[Any]]],
) -> None:
    """Worker entry point: rebuild, replay, then serve the round protocol."""
    exchange: Optional[SlabExchange] = None
    try:
        if config.exchange is not None:
            exchange = SlabExchange(config.exchange, create=False)
        state = _ShardState(config, values, checkpoint)
        for _, external in replay:
            # Regenerate own splits (already routed by the parent — the
            # draw both advances the stream and recreates the quanta
            # halving) and re-apply the buffered inbound bundles.  The
            # outgoing bundles are discarded, *not* written to the shm
            # slabs: other shards may still be reading this worker's
            # pre-crash round content, which determinism makes
            # byte-identical to what a rewrite would produce.
            state.split_round()
            state.apply_round(external)
        conn.send(("ready", state.rounds_done, state.probe(), state.stats.as_dict()))
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "split":
                round_index = message[1]
                _maybe_inject_crash(config.shard, round_index, "split")
                outgoing, messages = state.split_round()
                if exchange is not None:
                    # Data rows go straight into the outbox slabs; the
                    # pipe carries only (target, rows) control tuples.
                    parity = round_index & 1
                    counts: List[Tuple[int, int]] = []
                    for target, dest, quanta, columns in outgoing:
                        exchange.write(
                            config.shard, parity, target, round_index,
                            dest, quanta, columns,
                        )
                        counts.append((target, len(dest)))
                    conn.send(("sent", round_index, counts, messages))
                else:
                    conn.send(("sent", round_index, outgoing, messages))
            elif kind == "deliver":
                round_index, inbound, want_probe = message[1], message[2], message[3]
                _maybe_inject_crash(config.shard, round_index, "deliver")
                if exchange is not None:
                    # Zero-copy views into the source shards' outboxes;
                    # consumed (and copied where needed) inside
                    # apply_round, before the buffers can be reused.
                    parity = round_index & 1
                    external = [
                        (source,)
                        + exchange.read(
                            source, parity, config.shard, round_index, rows
                        )
                        for source, rows in inbound
                    ]
                else:
                    external = inbound
                state.apply_round(external)
                # Drop the slab views before replying: the buffers may
                # be rewritten two rounds on, and lingering exports
                # would make the final segment close a BufferError.
                external = None
                probe = state.probe() if want_probe else None
                snapshot = None
                if (
                    config.checkpoint_every > 0
                    and state.rounds_done % config.checkpoint_every == 0
                ):
                    snapshot = state.checkpoint_payload()
                conn.send(("done", round_index, probe, state.stats.as_dict(), snapshot))
            elif kind == "finish":
                conn.send(("final", state.final_payload()))
                conn.close()
                return
            else:  # pragma: no cover - protocol misuse
                raise RuntimeError(f"unknown message {kind!r}")
    except (EOFError, KeyboardInterrupt, BrokenPipeError):  # pragma: no cover
        pass
    finally:
        if exchange is not None:
            exchange.close()


class _WorkerHandle:
    __slots__ = ("process", "conn")

    def __init__(self, process: Any, conn: Any) -> None:
        self.process = process
        self.conn = conn


class ShardedArenaEngine:
    """Multi-process arena gossip with the :class:`ArenaEngine` API.

    Parameters mirror :class:`~repro.mega.engine.ArenaEngine`, plus:

    shards:
        Worker-process count; each owns a contiguous node range (the
        ``np.array_split`` partition of ``range(n)``).
    use_shm:
        Exchange tier: ``True`` moves payload rows through the
        shared-memory slab exchange (:mod:`repro.mega.shm`), ``False``
        pickles bundles through the parent-routed pipes; ``None`` (the
        default) defers to ``REPRO_MEGA_SHM`` (on).  With one shard no
        payload ever crosses processes and the pipe tier is used
        degenerately.  Byte parity holds across tiers.
    checkpoint_every:
        Rounds between piggybacked worker checkpoints.  Bounds both the
        replay a respawn performs and the bundle history the parent
        buffers; ``0`` disables checkpoints (respawns rebuild from the
        initial values and replay from round zero).
    max_restarts:
        Total worker respawns tolerated before the run raises.
    worker_timeout:
        Seconds to wait for any one worker reply before declaring the
        worker hung, killing and respawning it.

    After a respawn, aggregate stats count the replayed receives from
    the worker's restored checkpoint onward — instrumentation is
    observational, classification state is exact.
    """

    def __init__(
        self,
        values: Sequence[Any],
        scheme: Any,
        k: int,
        *,
        shards: int = 2,
        seed: int = 0,
        topology: Union[str, nx.Graph] = "complete",
        quantization: Optional[Quantization] = None,
        selector: Optional[NeighborSelector] = None,
        variant: str = "push",
        use_cache: Optional[bool] = None,
        use_shm: Optional[bool] = None,
        memo_size: int = 65536,
        checkpoint_every: int = 4,
        max_restarts: int = 3,
        worker_timeout: float = 600.0,
    ) -> None:
        if variant != "push":
            raise ValueError(
                f"the arena engine implements the paper's push gossip only, got {variant!r}"
            )
        n = len(values)
        if n < 2:
            raise ValueError("arena gossip needs at least 2 nodes")
        if shards < 1:
            raise ValueError(f"shards must be at least 1, got {shards}")
        if shards > n:
            raise ValueError(f"cannot split {n} nodes across {shards} shards")
        if not scheme.supports_packed:
            raise ValueError(
                f"{type(scheme).__name__} does not implement the packed hot "
                "path; the arena engine requires it"
            )
        self.values = values
        self.scheme = scheme
        self.k = k
        self.quantization = quantization or Quantization()
        self.shards = shards
        self.max_restarts = max_restarts
        self.worker_timeout = worker_timeout
        if use_cache is None:
            use_cache = merge_cache_default()
        if use_shm is None:
            use_shm = shm_default()
        selector = selector if selector is not None else RandomSelector()
        # Validate the topology/selector combination eagerly, in-process.
        GossipPairing(n, topology, selector, seed)
        sizes = [len(chunk) for chunk in np.array_split(np.arange(n), shards)]
        bounds = np.concatenate([[0], np.cumsum(sizes)]).astype(np.int64)
        self.exchange = "shm" if (use_shm and shards > 1) else "pipe"
        self._slabs: Optional[SlabExchange] = None
        self._segment_names: List[str] = []
        spec: Optional[SlabExchangeSpec] = None
        if self.exchange == "shm":
            # Region sizes need the scheme's packed column shapes; one
            # probe row is enough (pack_values is shape-stable in n).
            probe = scheme.pack_values(values[:1])
            column_specs = {name: array.shape[1:] for name, array in probe.items()}
            spec = SlabExchangeSpec(bounds, k, column_specs, uuid.uuid4().hex[:16])
            self._slabs = SlabExchange(spec, create=True)
            self._segment_names = list(self._slabs.segment_names)
        self._configs = [
            _ShardConfig(
                shard=shard,
                shards=shards,
                bounds=bounds,
                n=n,
                scheme=scheme,
                k=k,
                quantization=self.quantization,
                selector=selector,
                seed=seed,
                topology=topology,
                use_cache=bool(use_cache and scheme.supports_fingerprints),
                memo_size=memo_size,
                checkpoint_every=checkpoint_every,
                exchange=spec,
            )
            for shard in range(shards)
        ]
        self._ctx = _pool_context()
        self._workers: List[Optional[_WorkerHandle]] = [None] * shards
        self._checkpoints: List[Optional[Dict[str, Any]]] = [None] * shards
        self._history: List[List[Tuple[int, List[Any]]]] = [[] for _ in range(shards)]
        self._shard_stats: List[Dict[str, int]] = [ArenaStats().as_dict() for _ in range(shards)]
        self._receivers_prev = [0] * shards
        self._restarts = 0
        self.round_index = 0
        self.quiescent_at: Optional[int] = None
        self._quiescent_streak = 0
        self._messages = 0
        self._arena: Optional[NetworkArena] = None
        self._closed = False
        #: Cumulative parent-side wall time per exchange phase (seconds).
        self.phase_seconds: Dict[str, float] = {"split": 0.0, "route": 0.0, "deliver": 0.0}
        self._phase_last: Dict[str, float] = dict(self.phase_seconds)
        try:
            for shard in range(shards):
                self._spawn(shard)
        except BaseException:
            self.close()
            raise

    @property
    def segment_names(self) -> List[str]:
        """Names of this engine's shared-memory segments (empty on the
        pipe tier).  The list is a creation-time snapshot, so it stays
        readable after ``collect()``/``close()`` unlink the segments —
        reporting and leak-guard tests both want the names then.
        """
        return list(self._segment_names)

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, shard: int) -> Tuple[bool, bytes]:
        """(Re)start one worker; returns its post-replay quiescence probe."""
        config = self._configs[shard]
        checkpoint = self._checkpoints[shard]
        values = None if checkpoint is not None else self.values[config.lo : config.hi]
        replay = list(self._history[shard])
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_shard_worker_main,
            args=(child_conn, config, values, checkpoint, replay),
            daemon=True,
        )
        process.start()
        child_conn.close()
        self._workers[shard] = _WorkerHandle(process, parent_conn)
        if not parent_conn.poll(self.worker_timeout):
            raise RuntimeError(f"shard {shard} failed to come up")
        reply = parent_conn.recv()
        kind, rounds_done, probe, stats = reply
        assert kind == "ready", reply
        expected = (checkpoint["rounds_done"] if checkpoint else 0) + len(replay)
        if rounds_done != expected:  # pragma: no cover - protocol invariant
            raise RuntimeError(
                f"shard {shard} resumed at round {rounds_done}, expected {expected}"
            )
        self._shard_stats[shard] = stats
        return probe

    def _kill(self, shard: int) -> None:
        handle = self._workers[shard]
        if handle is None:
            return
        try:
            handle.conn.close()
        except OSError:  # pragma: no cover
            pass
        if handle.process.is_alive():
            handle.process.terminate()
        handle.process.join(timeout=10.0)
        self._workers[shard] = None

    def _respawn(self, shard: int) -> Tuple[bool, bytes]:
        self._restarts += 1
        if self._restarts > self.max_restarts:
            raise RuntimeError(
                f"shard {shard} died and the restart budget ({self.max_restarts}) is spent"
            )
        self._kill(shard)
        return self._spawn(shard)

    def _exchange(self, shard: int, message: Tuple[Any, ...]) -> Optional[Tuple[Any, ...]]:
        """One send/recv with a worker; ``None`` means the worker is gone."""
        handle = self._workers[shard]
        assert handle is not None
        try:
            handle.conn.send(message)
            if handle.conn.poll(self.worker_timeout):
                return handle.conn.recv()
        except (BrokenPipeError, ConnectionResetError, EOFError, OSError):
            return None
        # Hung worker: treat like a death (the respawn path recovers it).
        handle.process.terminate()
        return None

    def _collect_replies(self, pending: Set[int]) -> List[Optional[Tuple[Any, ...]]]:
        """Drain one reply from every pending worker, concurrently.

        ``connection.wait`` over all pending pipes replaces the old
        in-order per-worker ``poll``: a slow shard 0 no longer delays
        reading shard 3's already-queued reply, and a full phase costs
        the slowest worker rather than the recv order.  A worker whose
        pipe errors (death) or that stays silent past ``worker_timeout``
        while every other reply is in yields ``None`` — the caller's
        respawn path recovers it.
        """
        replies: List[Optional[Tuple[Any, ...]]] = [None] * self.shards
        pending = set(pending)
        while pending:
            conn_of = {}
            for shard in pending:
                handle = self._workers[shard]
                assert handle is not None
                conn_of[handle.conn] = shard
            ready = mp_connection.wait(list(conn_of), timeout=self.worker_timeout)
            if not ready:
                # Everything still pending is hung: treat as dead.
                for shard in pending:
                    handle = self._workers[shard]
                    assert handle is not None
                    handle.process.terminate()
                break
            for conn in ready:
                shard = conn_of[conn]
                try:
                    replies[shard] = conn.recv()
                except (EOFError, ConnectionResetError, OSError):
                    replies[shard] = None
                pending.discard(shard)
        return replies

    def _broadcast_collect(
        self, messages: List[Tuple[Any, ...]]
    ) -> List[Optional[Tuple[Any, ...]]]:
        """Post every message before draining any reply, then collect."""
        pending: Set[int] = set()
        for shard in range(self.shards):
            handle = self._workers[shard]
            assert handle is not None
            try:
                handle.conn.send(messages[shard])
                pending.add(shard)
            except (BrokenPipeError, OSError):
                pass  # stays None; the caller respawns
        return self._collect_replies(pending)

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def run_round(self, want_probe: bool = False) -> Tuple[int, bool]:
        """One synchronous round; returns (messages, globally quiescent)."""
        if self._closed:
            raise RuntimeError("engine already collected/closed")
        round_index = self.round_index
        parity = round_index & 1
        shm = self._slabs is not None
        t_start = time.perf_counter()
        # Phase 1: split.  Broadcast first so workers compute in
        # parallel; under shm the replies are (target, rows) tuples and
        # the payload rows are already sitting in the outbox slabs.
        replies = self._broadcast_collect(
            [("split", round_index)] * self.shards
        )
        outgoing_by_shard: List[List[Any]] = [[] for _ in range(self.shards)]
        messages = 0
        for shard in range(self.shards):
            reply = replies[shard]
            while reply is None:
                # Death before its bundles were routed: the respawn
                # rebuilds to the end of the previous round, then this
                # shard redoes the split solo (rewriting its own outbox
                # slabs, which no reader has touched yet this round).
                self._respawn(shard)
                reply = self._exchange(shard, ("split", round_index))
            kind, echoed, outgoing, shard_messages = reply
            assert kind == "sent" and echoed == round_index, reply
            outgoing_by_shard[shard] = outgoing
            messages += shard_messages
        t_split = time.perf_counter()
        # Route: destination shard <- inbound descriptors in ascending
        # source order (the global ascending-sender order).  Under shm a
        # descriptor is (source, rows); on pipes it carries the bundle.
        inbound: List[List[Any]] = [[] for _ in range(self.shards)]
        if shm:
            for source in range(self.shards):
                for target, rows in outgoing_by_shard[source]:
                    inbound[int(target)].append((source, int(rows)))
        else:
            for source in range(self.shards):
                for target, dest, quanta, columns in outgoing_by_shard[source]:
                    inbound[int(target)].append((source, dest, quanta, columns))
            for shard in range(self.shards):
                self._history[shard].append((round_index, inbound[shard]))
        # Phase 2: deliver.  Post every notification before draining any
        # done reply — the notifications are tiny, so the broadcast
        # cannot block on pipe backpressure and all workers apply
        # concurrently.
        for shard in range(self.shards):
            handle = self._workers[shard]
            assert handle is not None
            try:
                handle.conn.send(("deliver", round_index, inbound[shard], want_probe))
            except (BrokenPipeError, OSError):
                pass  # detected at the reply collection below
        if shm:
            # Snapshot this round's slab contents into the replay
            # history while the workers apply: buffer ``parity`` is
            # rewritten at round + 2, and a respawn during this deliver
            # phase replays *through* this round from the history.
            slabs = self._slabs
            assert slabs is not None
            for target in range(self.shards):
                bundles = [
                    (source,)
                    + slabs.read(source, parity, target, round_index, rows, copy=True)
                    for source, rows in inbound[target]
                ]
                self._history[target].append((round_index, bundles))
        t_route = time.perf_counter()
        done = self._collect_replies(set(range(self.shards)))
        probes: List[Optional[Tuple[bool, bytes]]] = [None] * self.shards
        for shard in range(self.shards):
            reply = done[shard]
            if reply is None:
                # Death mid-apply: this round's bundles are already in
                # the history, so the respawn replays *through* this
                # round; its ready message stands in for the done reply.
                probes[shard] = self._respawn(shard)
                continue
            kind, echoed, probe, stats, snapshot = reply
            assert kind == "done" and echoed == round_index, reply
            probes[shard] = probe
            self._shard_stats[shard] = stats
            if snapshot is not None:
                self._checkpoints[shard] = snapshot
                resumed = int(snapshot["rounds_done"])
                self._history[shard] = [
                    entry for entry in self._history[shard] if entry[0] >= resumed
                ]
        t_deliver = time.perf_counter()
        self.round_index += 1
        self._messages += messages
        quiescent = False
        if want_probe:
            gathered = [probe for probe in probes if probe is not None]
            quiescent = (
                len(gathered) == self.shards
                and all(flag for flag, _ in gathered)
                and len({fingerprint for _, fingerprint in gathered}) == 1
            )
        self._phase_last = {
            "split": t_split - t_start,
            "route": t_route - t_split,
            "deliver": t_deliver - t_route,
        }
        for name, value in self._phase_last.items():
            self.phase_seconds[name] += value
        self._publish_gauges(messages)
        return messages, quiescent

    def run(
        self,
        rounds: int,
        stop_on_quiescence: bool = False,
        quiescence_patience: int = 3,
    ) -> int:
        """Run up to ``rounds`` rounds; returns the number executed."""
        executed = 0
        for _ in range(rounds):
            _, quiescent = self.run_round(want_probe=stop_on_quiescence)
            executed += 1
            if stop_on_quiescence:
                if quiescent:
                    self._quiescent_streak += 1
                    if self._quiescent_streak >= quiescence_patience:
                        if self.quiescent_at is None:
                            self.quiescent_at = executed
                        break
                else:
                    self._quiescent_streak = 0
        return executed

    @property
    def quiescent(self) -> bool:
        return self.quiescent_at is not None

    @property
    def stats(self) -> ArenaStats:
        """Aggregate worker stats (see the respawn caveat in the class doc)."""
        total = ArenaStats(rounds=self.round_index, messages=self._messages)
        for stats in self._shard_stats:
            total.receivers += stats["receivers"]
            total.fastpath_hits += stats["fastpath_hits"]
            total.memo_round_hits += stats["memo_round_hits"]
            total.memo_lru_hits += stats["memo_lru_hits"]
            total.noop_hits += stats["noop_hits"]
            total.full_solves += stats["full_solves"]
            total.merges += stats["merges"]
        return total

    # ------------------------------------------------------------------
    # Collection / teardown
    # ------------------------------------------------------------------
    def collect(self) -> NetworkArena:
        """Gather every shard's final slabs into one assembled arena.

        Finishes the workers — the engine cannot run further rounds
        afterwards; read classifications off the returned arena.
        """
        if self._arena is not None:
            return self._arena
        if self._closed:
            raise RuntimeError("engine already closed")
        payloads: List[Optional[Dict[str, Any]]] = [None] * self.shards
        for shard in range(self.shards):
            reply = self._exchange(shard, ("finish",))
            while reply is None:
                self._respawn(shard)
                reply = self._exchange(shard, ("finish",))
            kind, payload = reply
            assert kind == "final", reply
            payloads[shard] = payload
            self._shard_stats[shard] = payload["stats"]
        self.close()
        assert all(payload is not None for payload in payloads)
        counts = np.concatenate([payload["counts"] for payload in payloads])
        quanta = np.concatenate([payload["quanta"] for payload in payloads])
        columns = {
            name: np.concatenate([payload["columns"][name] for payload in payloads])
            for name in payloads[0]["columns"]
        }
        self._arena = _arena_from_slabs(
            self.scheme, self.k, self.quantization, counts, quanta, columns
        )
        return self._arena

    def close(self) -> None:
        """Tear down workers and release every shm segment (idempotent)."""
        for shard in range(self.shards):
            self._kill(shard)
        if self._slabs is not None:
            self._slabs.destroy()
            self._slabs = None
        self._closed = True

    def __enter__(self) -> "ShardedArenaEngine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def classifications(self) -> List[List[Any]]:
        return self.collect().classifications()

    def state_digests(self, node: int) -> Tuple[Tuple[bytes, int], ...]:
        return self.collect().state_digests(node)

    def shard_solver_stats(self) -> List[Dict[str, Any]]:
        """Per-shard ReceiveSolver cache effectiveness, for reporting.

        Each shard's memo/LRU/no-op caches are private, so a problem
        distinct shards both see is solved once *per shard* — the
        sharded full-solve total exceeds the single-process engine's by
        exactly the cross-shard duplicates (see docs/performance.md,
        "Sharded exchange").  ``solver_hit_rate`` is cumulative:
        ``1 - full_solves / receivers``.
        """
        out: List[Dict[str, Any]] = []
        for shard, stats in enumerate(self._shard_stats):
            receivers = stats["receivers"]
            hits = receivers - stats["full_solves"]
            out.append(
                {
                    "shard": shard,
                    "receivers": receivers,
                    "full_solves": stats["full_solves"],
                    "cache_hits": hits,
                    "solver_hit_rate": (hits / receivers) if receivers else 1.0,
                }
            )
        return out

    def _publish_gauges(self, messages: int) -> None:
        deltas = []
        for shard in range(self.shards):
            receivers = self._shard_stats[shard]["receivers"]
            deltas.append(max(0, receivers - self._receivers_prev[shard]))
            self._receivers_prev[shard] = receivers
        registry = current_registry()
        if registry is None:
            return
        registry.inc("mega.rounds")
        registry.inc("mega.messages", messages)
        mean = sum(deltas) / len(deltas) if deltas else 0.0
        registry.set_gauge(
            "mega.shard_imbalance", (max(deltas) / mean) if mean > 0 else 1.0
        )
        # Exchange cost per phase, parent-side wall clock for the round
        # just completed (split: broadcast -> last sent reply; route:
        # descriptor build + history snapshot; deliver: post -> last
        # done reply).
        for name, value in self._phase_last.items():
            registry.set_gauge(f"mega.exchange.{name}_s", value)
        # Per-shard solver-cache effectiveness (cumulative rates): the
        # caches are shard-private, so comparing these against the
        # single-process run makes the dedup gap visible.
        for entry in self.shard_solver_stats():
            shard = entry["shard"]
            registry.set_gauge(
                f"mega.shard{shard}.solver_hit_rate", entry["solver_hit_rate"]
            )
            registry.set_gauge(
                f"mega.shard{shard}.solver_full_solves", entry["full_solves"]
            )
