"""The sharded arena: one gossip population split across worker processes.

:class:`ShardedArenaEngine` partitions the node range into contiguous
shards (``np.array_split`` boundaries), gives each worker process an
owned :class:`~repro.mega.arena.NetworkArena` slice plus a *full*
replica of the :class:`~repro.mega.engine.GossipPairing` draw, and runs
each round as a two-phase barrier protocol over pipes:

1. **split** — every worker draws the whole population's peers vector
   from the shared seed (identical across workers: same stream, same
   selector), splits its own rows, and returns the payload bundles bound
   for *other* shards.  The portion addressed to its own shard never
   leaves the process.
2. **deliver** — the parent routes bundles to their destination shards
   and each worker applies its receives through the shared
   :class:`~repro.mega.engine.ReceiveSolver`, assembling payload rows in
   ascending source-shard order so the concatenation reproduces the
   in-memory transport's ascending-sender delivery order exactly.

Because pairing is replicated rather than communicated, the exchange is
deterministic and byte-parity with the single-process
:class:`~repro.mega.engine.ArenaEngine` (and hence with the per-node
kernel) holds shard-count-independently; ``tests/mega/`` pins
``shards=1`` against ``shards=4`` against the unsharded engine.

Fault tolerance reuses the sweep runner's worker-pool discipline
(:mod:`repro.sweep.runner`): rounds are atomic — the parent distributes
nothing until every worker's ``sent`` reply is in — so a worker death
only ever loses state the parent can reconstruct.  Workers piggyback
checkpoint slabs (counts/quanta/columns; ids are re-interned on load)
every ``checkpoint_every`` rounds, the parent buffers each shard's
inbound bundles since its last checkpoint, and a respawned worker
rebuilds its arena, fast-forwards the pairing stream by discarding
draws, and replays the buffered rounds — regenerating its own splits,
which cost nothing to recompute and were already routed.  Deterministic
crash injection for tests mirrors ``REPRO_SWEEP_CRASH_TASK``:
``REPRO_MEGA_CRASH_SHARD="<shard>:<round>"`` plus a
``REPRO_MEGA_CRASH_FLAG`` path make exactly one worker ``os._exit`` at
the matching split.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import networkx as nx
import numpy as np

from repro.core.fingerprint import MergeCache, merge_cache_default
from repro.core.weights import Quantization
from repro.mega.arena import NetworkArena, SummaryInterner
from repro.mega.engine import ArenaStats, GossipPairing, ReceiveSolver
from repro.network.simulator import NeighborSelector, RandomSelector
from repro.obs.profiling import current_registry
from repro.sweep.runner import _pool_context

__all__ = ["ShardedArenaEngine", "CRASH_FLAG_ENV", "CRASH_SHARD_ENV"]

#: ``"<shard>:<round>"`` — which worker crashes, and at which round's split.
CRASH_SHARD_ENV = "REPRO_MEGA_CRASH_SHARD"
#: Flag-file path; ``O_EXCL`` creation makes the crash once-only.
CRASH_FLAG_ENV = "REPRO_MEGA_CRASH_FLAG"

#: Exit code of an injected worker crash (visible in worker exitcodes).
_CRASH_EXIT = 23


def _maybe_inject_crash(shard: int, round_index: int) -> None:
    """Deterministic once-only hard crash, driven by environment knobs."""
    needle = os.environ.get(CRASH_SHARD_ENV)
    if not needle or needle != f"{shard}:{round_index}":
        return
    flag = os.environ.get(CRASH_FLAG_ENV)
    if not flag:
        return
    try:
        handle = os.open(flag, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return
    os.close(handle)
    os._exit(_CRASH_EXIT)


def _arena_from_slabs(
    scheme: Any,
    k: int,
    quantization: Quantization,
    counts: np.ndarray,
    quanta: np.ndarray,
    columns: Dict[str, np.ndarray],
) -> NetworkArena:
    """Rebuild an arena (fresh interner) from bare checkpoint slabs.

    Ids are interner-local, so checkpoints carry only the float slabs;
    the used rows are re-interned in bulk here.  Shared by worker
    respawn and the parent's final assembly.
    """
    n = len(counts)
    interner = SummaryInterner(scheme, {name: col.shape[2:] for name, col in columns.items()})
    ids = np.full((n, k), -1, dtype=np.int64)
    node_idx, slot_idx = np.nonzero(np.arange(k)[None, :] < counts[:, None])
    if len(node_idx):
        gathered = {name: col[node_idx, slot_idx] for name, col in columns.items()}
        ids[node_idx, slot_idx] = interner.intern_rows(gathered, len(node_idx))
    return NetworkArena(scheme, k, quantization, counts, quanta, ids, columns, interner)


@dataclass
class _ShardConfig:
    """Everything a worker needs to (re)build itself, picklable."""

    shard: int
    shards: int
    bounds: np.ndarray  # (shards + 1,) node-range boundaries
    n: int
    scheme: Any
    k: int
    quantization: Quantization
    selector: NeighborSelector
    seed: int
    topology: Union[str, nx.Graph]
    use_cache: bool
    memo_size: int
    checkpoint_every: int

    @property
    def lo(self) -> int:
        return int(self.bounds[self.shard])

    @property
    def hi(self) -> int:
        return int(self.bounds[self.shard + 1])


class _ShardState:
    """One worker's half of the protocol: its arena slice + full pairing."""

    def __init__(
        self,
        config: _ShardConfig,
        values: Optional[Sequence[Any]],
        checkpoint: Optional[Dict[str, Any]],
    ) -> None:
        self.config = config
        scheme = config.scheme
        if checkpoint is None:
            assert values is not None
            self.arena = NetworkArena.from_values(values, scheme, config.k, config.quantization)
            self.rounds_done = 0
        else:
            self.arena = _arena_from_slabs(
                scheme,
                config.k,
                config.quantization,
                checkpoint["counts"],
                checkpoint["quanta"],
                checkpoint["columns"],
            )
            self.rounds_done = int(checkpoint["rounds_done"])
        self.pairing = GossipPairing(config.n, config.topology, config.selector, config.seed)
        # Fast-forward the shared pairing stream to the resume point.
        for _ in range(self.rounds_done):
            self.pairing.draw()
        self.stats = ArenaStats()
        cache = MergeCache() if (config.use_cache and scheme.supports_fingerprints) else None
        self.solver = ReceiveSolver(
            self.arena, merge_cache=cache, memo_size=config.memo_size, stats=self.stats
        )
        self._pending_internal: Optional[Tuple[np.ndarray, ...]] = None

    # ------------------------------------------------------------------
    # Round phases
    # ------------------------------------------------------------------
    def split_round(
        self,
    ) -> Tuple[List[Tuple[int, np.ndarray, np.ndarray, Dict[str, np.ndarray]]], int]:
        """Draw, split own rows, bucket payloads by destination shard.

        Returns the external bundles ``(dest_shard, dest_global, quanta,
        columns)`` — rows in ascending (sender, slot) order within each
        bundle — and the shard's message count (distinct senders, the
        kernel's metric).  The own-shard portion is parked for
        :meth:`apply_round`.
        """
        config = self.config
        peers = self.pairing.draw()
        arena = self.arena
        quanta = arena.quanta
        sent = quanta // 2
        arena.quanta = quanta - sent
        sender, slot = np.nonzero(sent)
        self._pending_internal = None
        if not len(sender):
            return [], 0
        messages = int(np.count_nonzero(np.diff(sender)) + 1)
        payload_quanta = sent[sender, slot]
        payload_ids = arena.ids[sender, slot]
        payload_dest = peers[sender + config.lo]
        payload_columns = {
            name: column[sender, slot] for name, column in arena.columns.items()
        }
        dest_shard = np.searchsorted(config.bounds, payload_dest, side="right") - 1
        outgoing: List[Tuple[int, np.ndarray, np.ndarray, Dict[str, np.ndarray]]] = []
        for target in np.unique(dest_shard):
            target = int(target)
            mask = dest_shard == target
            bundle_dest = payload_dest[mask]
            bundle_quanta = payload_quanta[mask]
            bundle_columns = {name: rows[mask] for name, rows in payload_columns.items()}
            if target == config.shard:
                # Own rows: ids stay valid in this interner, keep them.
                self._pending_internal = (
                    bundle_dest,
                    payload_ids[mask],
                    bundle_quanta,
                    bundle_columns,
                )
            else:
                outgoing.append((target, bundle_dest, bundle_quanta, bundle_columns))
        return outgoing, messages

    def apply_round(
        self, external: List[Tuple[int, np.ndarray, np.ndarray, Dict[str, np.ndarray]]]
    ) -> None:
        """Apply one round's inbound payloads (plus the parked internal).

        ``external`` holds ``(source_shard, dest_global, quanta,
        columns)`` bundles.  Parts are concatenated in ascending
        source-shard order — each internally in ascending sender order —
        so the stable sort by destination reproduces the transport's
        global delivery order.
        """
        config = self.config
        arena = self.arena
        by_source: Dict[int, Tuple[np.ndarray, np.ndarray, Dict[str, np.ndarray]]] = {}
        for source, dest, quanta, columns in external:
            by_source[int(source)] = (dest, quanta, columns)
        dest_parts: List[np.ndarray] = []
        id_parts: List[np.ndarray] = []
        quanta_parts: List[np.ndarray] = []
        column_parts: List[Dict[str, np.ndarray]] = []
        for source in range(config.shards):
            if source == config.shard:
                if self._pending_internal is None:
                    continue
                dest, ids, quanta, columns = self._pending_internal
            elif source in by_source:
                dest, quanta, columns = by_source[source]
                ids = arena.interner.intern_rows(columns, len(dest))
            else:
                continue
            dest_parts.append(dest)
            id_parts.append(ids)
            quanta_parts.append(quanta)
            column_parts.append(columns)
        self._pending_internal = None
        if dest_parts:
            payload_dest = np.concatenate(dest_parts) - config.lo
            payload_ids = np.concatenate(id_parts)
            payload_quanta = np.concatenate(quanta_parts)
            payload_columns = {
                name: np.concatenate([part[name] for part in column_parts])
                for name in column_parts[0]
            }
            order = np.argsort(payload_dest, kind="stable")
            sorted_dest = payload_dest[order]
            dests, starts = np.unique(sorted_dest, return_index=True)
            bounds = np.append(starts, len(sorted_dest))
            self.solver.receive_slab(
                dests,
                bounds,
                payload_ids[order],
                payload_quanta[order],
                {name: rows[order] for name, rows in payload_columns.items()},
            )
        self.rounds_done += 1

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def probe(self) -> Tuple[bool, bytes]:
        """Local quiescence: (all rows structurally equal, content hash).

        The hash is over the *intern key bytes* of the first node's
        sorted summary multiset — content-stable across interners, so
        the parent declares global quiescence iff every shard is
        internally equal and all hashes agree.
        """
        arena = self.arena
        counts = arena.counts
        first = int(counts[0])
        if not bool(np.all(counts == first)):
            return False, b""
        block = np.sort(arena.ids[:, :first], axis=1)
        if not bool(np.all(block == block[0])):
            return False, b""
        interner = arena.interner
        digest = hashlib.blake2b(digest_size=16)
        digest.update(first.to_bytes(8, "little"))
        for key in sorted(interner.key_bytes(int(sid)) for sid in arena.ids[0, :first]):
            digest.update(key)
        return True, digest.digest()

    def checkpoint_payload(self) -> Dict[str, Any]:
        arena = self.arena
        return {
            "rounds_done": self.rounds_done,
            "counts": arena.counts.copy(),
            "quanta": arena.quanta.copy(),
            "columns": {name: column.copy() for name, column in arena.columns.items()},
        }

    def final_payload(self) -> Dict[str, Any]:
        payload = self.checkpoint_payload()
        payload["stats"] = self.stats.as_dict()
        return payload


def _shard_worker_main(
    conn: Any,
    config: _ShardConfig,
    values: Optional[Sequence[Any]],
    checkpoint: Optional[Dict[str, Any]],
    replay: List[Tuple[int, List[Any]]],
) -> None:
    """Worker entry point: rebuild, replay, then serve the round protocol."""
    try:
        state = _ShardState(config, values, checkpoint)
        for _, external in replay:
            # Regenerate own splits (already routed by the parent — the
            # draw both advances the stream and recreates the quanta
            # halving) and re-apply the buffered inbound bundles.
            state.split_round()
            state.apply_round(external)
        conn.send(("ready", state.rounds_done, state.probe(), state.stats.as_dict()))
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "split":
                round_index = message[1]
                _maybe_inject_crash(config.shard, round_index)
                outgoing, messages = state.split_round()
                conn.send(("sent", round_index, outgoing, messages))
            elif kind == "deliver":
                round_index, external, want_probe = message[1], message[2], message[3]
                state.apply_round(external)
                probe = state.probe() if want_probe else None
                snapshot = None
                if (
                    config.checkpoint_every > 0
                    and state.rounds_done % config.checkpoint_every == 0
                ):
                    snapshot = state.checkpoint_payload()
                conn.send(("done", round_index, probe, state.stats.as_dict(), snapshot))
            elif kind == "finish":
                conn.send(("final", state.final_payload()))
                conn.close()
                return
            else:  # pragma: no cover - protocol misuse
                raise RuntimeError(f"unknown message {kind!r}")
    except (EOFError, KeyboardInterrupt, BrokenPipeError):  # pragma: no cover
        pass


class _WorkerHandle:
    __slots__ = ("process", "conn")

    def __init__(self, process: Any, conn: Any) -> None:
        self.process = process
        self.conn = conn


class ShardedArenaEngine:
    """Multi-process arena gossip with the :class:`ArenaEngine` API.

    Parameters mirror :class:`~repro.mega.engine.ArenaEngine`, plus:

    shards:
        Worker-process count; each owns a contiguous node range (the
        ``np.array_split`` partition of ``range(n)``).
    checkpoint_every:
        Rounds between piggybacked worker checkpoints.  Bounds both the
        replay a respawn performs and the bundle history the parent
        buffers; ``0`` disables checkpoints (respawns rebuild from the
        initial values and replay from round zero).
    max_restarts:
        Total worker respawns tolerated before the run raises.
    worker_timeout:
        Seconds to wait for any one worker reply before declaring the
        worker hung, killing and respawning it.

    After a respawn, aggregate stats count the replayed receives from
    the worker's restored checkpoint onward — instrumentation is
    observational, classification state is exact.
    """

    def __init__(
        self,
        values: Sequence[Any],
        scheme: Any,
        k: int,
        *,
        shards: int = 2,
        seed: int = 0,
        topology: Union[str, nx.Graph] = "complete",
        quantization: Optional[Quantization] = None,
        selector: Optional[NeighborSelector] = None,
        variant: str = "push",
        use_cache: Optional[bool] = None,
        memo_size: int = 65536,
        checkpoint_every: int = 4,
        max_restarts: int = 3,
        worker_timeout: float = 600.0,
    ) -> None:
        if variant != "push":
            raise ValueError(
                f"the arena engine implements the paper's push gossip only, got {variant!r}"
            )
        n = len(values)
        if n < 2:
            raise ValueError("arena gossip needs at least 2 nodes")
        if shards < 1:
            raise ValueError(f"shards must be at least 1, got {shards}")
        if shards > n:
            raise ValueError(f"cannot split {n} nodes across {shards} shards")
        if not scheme.supports_packed:
            raise ValueError(
                f"{type(scheme).__name__} does not implement the packed hot "
                "path; the arena engine requires it"
            )
        self.values = values
        self.scheme = scheme
        self.k = k
        self.quantization = quantization or Quantization()
        self.shards = shards
        self.max_restarts = max_restarts
        self.worker_timeout = worker_timeout
        if use_cache is None:
            use_cache = merge_cache_default()
        selector = selector if selector is not None else RandomSelector()
        # Validate the topology/selector combination eagerly, in-process.
        GossipPairing(n, topology, selector, seed)
        sizes = [len(chunk) for chunk in np.array_split(np.arange(n), shards)]
        bounds = np.concatenate([[0], np.cumsum(sizes)]).astype(np.int64)
        self._configs = [
            _ShardConfig(
                shard=shard,
                shards=shards,
                bounds=bounds,
                n=n,
                scheme=scheme,
                k=k,
                quantization=self.quantization,
                selector=selector,
                seed=seed,
                topology=topology,
                use_cache=bool(use_cache and scheme.supports_fingerprints),
                memo_size=memo_size,
                checkpoint_every=checkpoint_every,
            )
            for shard in range(shards)
        ]
        self._ctx = _pool_context()
        self._workers: List[Optional[_WorkerHandle]] = [None] * shards
        self._checkpoints: List[Optional[Dict[str, Any]]] = [None] * shards
        self._history: List[List[Tuple[int, List[Any]]]] = [[] for _ in range(shards)]
        self._shard_stats: List[Dict[str, int]] = [ArenaStats().as_dict() for _ in range(shards)]
        self._receivers_prev = [0] * shards
        self._restarts = 0
        self.round_index = 0
        self.quiescent_at: Optional[int] = None
        self._quiescent_streak = 0
        self._messages = 0
        self._arena: Optional[NetworkArena] = None
        self._closed = False
        for shard in range(shards):
            self._spawn(shard)

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, shard: int) -> Tuple[bool, bytes]:
        """(Re)start one worker; returns its post-replay quiescence probe."""
        config = self._configs[shard]
        checkpoint = self._checkpoints[shard]
        values = None if checkpoint is not None else self.values[config.lo : config.hi]
        replay = list(self._history[shard])
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_shard_worker_main,
            args=(child_conn, config, values, checkpoint, replay),
            daemon=True,
        )
        process.start()
        child_conn.close()
        self._workers[shard] = _WorkerHandle(process, parent_conn)
        if not parent_conn.poll(self.worker_timeout):
            raise RuntimeError(f"shard {shard} failed to come up")
        reply = parent_conn.recv()
        kind, rounds_done, probe, stats = reply
        assert kind == "ready", reply
        expected = (checkpoint["rounds_done"] if checkpoint else 0) + len(replay)
        if rounds_done != expected:  # pragma: no cover - protocol invariant
            raise RuntimeError(
                f"shard {shard} resumed at round {rounds_done}, expected {expected}"
            )
        self._shard_stats[shard] = stats
        return probe

    def _kill(self, shard: int) -> None:
        handle = self._workers[shard]
        if handle is None:
            return
        try:
            handle.conn.close()
        except OSError:  # pragma: no cover
            pass
        if handle.process.is_alive():
            handle.process.terminate()
        handle.process.join(timeout=10.0)
        self._workers[shard] = None

    def _respawn(self, shard: int) -> Tuple[bool, bytes]:
        self._restarts += 1
        if self._restarts > self.max_restarts:
            raise RuntimeError(
                f"shard {shard} died and the restart budget ({self.max_restarts}) is spent"
            )
        self._kill(shard)
        return self._spawn(shard)

    def _exchange(self, shard: int, message: Tuple[Any, ...]) -> Optional[Tuple[Any, ...]]:
        """One send/recv with a worker; ``None`` means the worker is gone."""
        handle = self._workers[shard]
        assert handle is not None
        try:
            handle.conn.send(message)
            if handle.conn.poll(self.worker_timeout):
                return handle.conn.recv()
        except (BrokenPipeError, ConnectionResetError, EOFError, OSError):
            return None
        # Hung worker: treat like a death (the respawn path recovers it).
        handle.process.terminate()
        return None

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def run_round(self, want_probe: bool = False) -> Tuple[int, bool]:
        """One synchronous round; returns (messages, globally quiescent)."""
        if self._closed:
            raise RuntimeError("engine already collected/closed")
        round_index = self.round_index
        # Phase 1: split.  Broadcast first so workers compute in parallel.
        send_failed: List[bool] = [False] * self.shards
        for shard in range(self.shards):
            handle = self._workers[shard]
            assert handle is not None
            try:
                handle.conn.send(("split", round_index))
            except (BrokenPipeError, OSError):
                send_failed[shard] = True
        outgoing_by_shard: List[List[Any]] = [[] for _ in range(self.shards)]
        messages = 0
        for shard in range(self.shards):
            reply = None
            if not send_failed[shard]:
                handle = self._workers[shard]
                assert handle is not None
                try:
                    if handle.conn.poll(self.worker_timeout):
                        reply = handle.conn.recv()
                    else:
                        handle.process.terminate()
                except (EOFError, ConnectionResetError, OSError):
                    reply = None
            while reply is None:
                # Death before its bundles were routed: the respawn
                # rebuilds to the end of the previous round, then this
                # shard redoes the split solo.
                self._respawn(shard)
                reply = self._exchange(shard, ("split", round_index))
            kind, echoed, outgoing, shard_messages = reply
            assert kind == "sent" and echoed == round_index, reply
            outgoing_by_shard[shard] = outgoing
            messages += shard_messages
        # Route: destination shard <- [(source, dest, quanta, columns)...]
        # in ascending source order (the global ascending-sender order).
        inbound: List[List[Any]] = [[] for _ in range(self.shards)]
        for source in range(self.shards):
            for target, dest, quanta, columns in outgoing_by_shard[source]:
                inbound[int(target)].append((source, dest, quanta, columns))
        for shard in range(self.shards):
            self._history[shard].append((round_index, inbound[shard]))
        # Phase 2: deliver.
        for shard in range(self.shards):
            handle = self._workers[shard]
            assert handle is not None
            try:
                handle.conn.send(("deliver", round_index, inbound[shard], want_probe))
            except (BrokenPipeError, OSError):
                pass  # detected at the reply poll below
        probes: List[Optional[Tuple[bool, bytes]]] = [None] * self.shards
        for shard in range(self.shards):
            handle = self._workers[shard]
            assert handle is not None
            reply = None
            try:
                if handle.conn.poll(self.worker_timeout):
                    reply = handle.conn.recv()
                else:
                    handle.process.terminate()
            except (EOFError, ConnectionResetError, OSError):
                reply = None
            if reply is None:
                # Death mid-apply: this round's bundles are already in
                # the history, so the respawn replays *through* this
                # round; its ready message stands in for the done reply.
                probes[shard] = self._respawn(shard)
                continue
            kind, echoed, probe, stats, snapshot = reply
            assert kind == "done" and echoed == round_index, reply
            probes[shard] = probe
            self._shard_stats[shard] = stats
            if snapshot is not None:
                self._checkpoints[shard] = snapshot
                resumed = int(snapshot["rounds_done"])
                self._history[shard] = [
                    entry for entry in self._history[shard] if entry[0] >= resumed
                ]
        self.round_index += 1
        self._messages += messages
        quiescent = False
        if want_probe:
            gathered = [probe for probe in probes if probe is not None]
            quiescent = (
                len(gathered) == self.shards
                and all(flag for flag, _ in gathered)
                and len({fingerprint for _, fingerprint in gathered}) == 1
            )
        self._publish_gauges(messages)
        return messages, quiescent

    def run(
        self,
        rounds: int,
        stop_on_quiescence: bool = False,
        quiescence_patience: int = 3,
    ) -> int:
        """Run up to ``rounds`` rounds; returns the number executed."""
        executed = 0
        for _ in range(rounds):
            _, quiescent = self.run_round(want_probe=stop_on_quiescence)
            executed += 1
            if stop_on_quiescence:
                if quiescent:
                    self._quiescent_streak += 1
                    if self._quiescent_streak >= quiescence_patience:
                        if self.quiescent_at is None:
                            self.quiescent_at = executed
                        break
                else:
                    self._quiescent_streak = 0
        return executed

    @property
    def quiescent(self) -> bool:
        return self.quiescent_at is not None

    @property
    def stats(self) -> ArenaStats:
        """Aggregate worker stats (see the respawn caveat in the class doc)."""
        total = ArenaStats(rounds=self.round_index, messages=self._messages)
        for stats in self._shard_stats:
            total.receivers += stats["receivers"]
            total.fastpath_hits += stats["fastpath_hits"]
            total.memo_round_hits += stats["memo_round_hits"]
            total.memo_lru_hits += stats["memo_lru_hits"]
            total.noop_hits += stats["noop_hits"]
            total.full_solves += stats["full_solves"]
            total.merges += stats["merges"]
        return total

    # ------------------------------------------------------------------
    # Collection / teardown
    # ------------------------------------------------------------------
    def collect(self) -> NetworkArena:
        """Gather every shard's final slabs into one assembled arena.

        Finishes the workers — the engine cannot run further rounds
        afterwards; read classifications off the returned arena.
        """
        if self._arena is not None:
            return self._arena
        if self._closed:
            raise RuntimeError("engine already closed")
        payloads: List[Optional[Dict[str, Any]]] = [None] * self.shards
        for shard in range(self.shards):
            reply = self._exchange(shard, ("finish",))
            while reply is None:
                self._respawn(shard)
                reply = self._exchange(shard, ("finish",))
            kind, payload = reply
            assert kind == "final", reply
            payloads[shard] = payload
            self._shard_stats[shard] = payload["stats"]
        self.close()
        assert all(payload is not None for payload in payloads)
        counts = np.concatenate([payload["counts"] for payload in payloads])
        quanta = np.concatenate([payload["quanta"] for payload in payloads])
        columns = {
            name: np.concatenate([payload["columns"][name] for payload in payloads])
            for name in payloads[0]["columns"]
        }
        self._arena = _arena_from_slabs(
            self.scheme, self.k, self.quantization, counts, quanta, columns
        )
        return self._arena

    def close(self) -> None:
        """Tear down worker processes (idempotent)."""
        for shard in range(self.shards):
            self._kill(shard)
        self._closed = True

    def __enter__(self) -> "ShardedArenaEngine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def classifications(self) -> List[List[Any]]:
        return self.collect().classifications()

    def state_digests(self, node: int) -> Tuple[Tuple[bytes, int], ...]:
        return self.collect().state_digests(node)

    def _publish_gauges(self, messages: int) -> None:
        deltas = []
        for shard in range(self.shards):
            receivers = self._shard_stats[shard]["receivers"]
            deltas.append(max(0, receivers - self._receivers_prev[shard]))
            self._receivers_prev[shard] = receivers
        registry = current_registry()
        if registry is None:
            return
        registry.inc("mega.rounds")
        registry.inc("mega.messages", messages)
        mean = sum(deltas) / len(deltas) if deltas else 0.0
        registry.set_gauge(
            "mega.shard_imbalance", (max(deltas) / mean) if mean > 0 else 1.0
        )
