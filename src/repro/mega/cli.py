"""The mega-scale CLI: ``python -m repro.mega``.

Usage::

    python -m repro.mega --nodes 100000 --scheme gm --stop-on-quiescence
    python -m repro.mega --nodes 250000 --shards 4 --rounds 40 --json run.json
    python -m repro.mega --nodes 1000000 --shards 8 --stop-on-quiescence
    python -m repro.mega --nodes 10000 --shards 2 --no-shm --rounds 20
    python -m repro.mega --nodes 1000 --data normal --scheme centroid

Runs one whole-network arena simulation — single-process
:class:`~repro.mega.engine.ArenaEngine` by default, the multi-process
:class:`~repro.mega.shard.ShardedArenaEngine` with ``--shards N`` — and
prints a round/time/cache summary plus the exchange tier in use
(optionally as JSON for scripting).  Sharded runs move payload rows
through shared-memory slabs by default; ``--no-shm`` (or
``REPRO_MEGA_SHM=0``) selects the pickled-pipe fallback.

``--data centers`` (the default) draws each node's value from three
well-separated cluster centers: merges are float-exact, so the
population byte-converges and quiescence detection can stop the run —
the regime the mega-scale benchmark measures.  ``--data normal`` draws
continuous values, which never byte-converge; use a fixed ``--rounds``
budget there.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Optional

import numpy as np

from repro.analysis.reporting import banner, format_table
from repro.mega.engine import ArenaEngine
from repro.mega.shard import ShardedArenaEngine

__all__ = ["build_values", "build_scheme", "main"]

#: Three well-separated, exactly-representable cluster centers: every
#: merge of same-center summaries is float-exact, so the population
#: reaches a byte-stable classification (cf. benchmarks/test_convergence_cache.py).
CENTER_POINTS = np.array([[0.0, 0.0], [8.0, 8.0], [-8.0, 8.0]])


def build_values(data: str, nodes: int, data_seed: int, scheme_name: str) -> np.ndarray:
    """The per-node input values for a CLI/benchmark run."""
    rng = np.random.default_rng(data_seed)
    if data == "centers":
        values = CENTER_POINTS[rng.integers(0, len(CENTER_POINTS), size=nodes)]
    elif data == "normal":
        values = rng.normal(size=(nodes, 2))
    else:
        raise ValueError(f"unknown data generator {data!r}")
    if scheme_name == "histogram":
        return values[:, :1]
    return values


def build_scheme(scheme_name: str, scheme_seed: int = 0) -> Any:
    if scheme_name == "gm":
        from repro.schemes.gm import GaussianMixtureScheme

        return GaussianMixtureScheme(seed=scheme_seed)
    if scheme_name == "diagonal":
        from repro.schemes.diagonal import DiagonalGaussianScheme

        return DiagonalGaussianScheme(seed=scheme_seed)
    if scheme_name == "centroid":
        from repro.schemes.centroid import CentroidScheme

        return CentroidScheme()
    if scheme_name == "histogram":
        from repro.schemes.histogram import HistogramScheme

        return HistogramScheme(low=-12.0, high=12.0, bins=32)
    raise ValueError(f"unknown scheme {scheme_name!r}")


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.mega",
        description="Whole-network arena gossip at 100k-1M nodes.",
    )
    parser.add_argument("--nodes", type=int, default=10000, help="population size")
    parser.add_argument(
        "--scheme", choices=["gm", "centroid", "diagonal", "histogram"], default="gm"
    )
    parser.add_argument("--k", type=int, default=3, help="collections per node")
    parser.add_argument("--seed", type=int, default=11, help="pairing RNG seed")
    parser.add_argument(
        "--data", choices=["centers", "normal"], default="centers",
        help="value generator (centers byte-converges; normal never does)",
    )
    parser.add_argument("--data-seed", type=int, default=11)
    parser.add_argument("--rounds", type=int, default=200, help="round budget")
    parser.add_argument(
        "--shards", type=int, default=0,
        help="worker processes (0 = single-process engine, the default)",
    )
    parser.add_argument(
        "--shm", action=argparse.BooleanOptionalAction, default=None,
        help="cross-shard exchange via shared-memory slabs "
        "(default: REPRO_MEGA_SHM, on; --no-shm pickles bundles over pipes)",
    )
    parser.add_argument("--topology", default="complete")
    parser.add_argument(
        "--stop-on-quiescence", action="store_true",
        help="stop once the population holds a stable classification",
    )
    parser.add_argument("--patience", type=int, default=3,
                        help="consecutive quiet rounds before stopping")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the certified no-op merge cache")
    parser.add_argument("--checkpoint-every", type=int, default=4,
                        help="rounds between shard worker checkpoints")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the summary as JSON ('-' for stdout)")
    args = parser.parse_args(argv)

    values = build_values(args.data, args.nodes, args.data_seed, args.scheme)
    scheme = build_scheme(args.scheme)
    use_cache = not args.no_cache

    start = time.perf_counter()
    try:
        if args.shards > 0:
            engine: Any = ShardedArenaEngine(
                values, scheme, args.k,
                shards=args.shards,
                seed=args.seed,
                topology=args.topology,
                use_cache=use_cache,
                use_shm=args.shm,
                checkpoint_every=args.checkpoint_every,
            )
        else:
            engine = ArenaEngine(
                values, scheme, args.k,
                seed=args.seed,
                topology=args.topology,
                use_cache=use_cache,
            )
    except (ValueError, KeyError) as exc:
        parser.error(str(exc))
    executed = engine.run(
        args.rounds,
        stop_on_quiescence=args.stop_on_quiescence,
        quiescence_patience=args.patience,
    )
    if args.shards > 0:
        engine.collect()
    elapsed = time.perf_counter() - start

    stats = engine.stats.as_dict()
    if args.shards > 0:
        exchange = engine.exchange
        tier = (
            f"shared-memory slabs ({len(engine.segment_names)} segments)"
            if exchange == "shm"
            else "pickled pipes"
        )
    else:
        exchange = "single"
        tier = "in-process (single arena)"
    summary = {
        "nodes": args.nodes,
        "scheme": args.scheme,
        "k": args.k,
        "seed": args.seed,
        "data": args.data,
        "topology": args.topology,
        "shards": args.shards,
        "exchange": exchange,
        "rounds_executed": executed,
        "quiescent_at": engine.quiescent_at,
        "wall_s": round(elapsed, 3),
        "rounds_per_s": round(executed / elapsed, 3) if elapsed > 0 else None,
        "stats": stats,
    }
    if args.shards > 0:
        summary["exchange_phase_s"] = {
            name: round(value, 3) for name, value in engine.phase_seconds.items()
        }
        summary["shard_solver"] = engine.shard_solver_stats()

    mode = f"{args.shards} shards" if args.shards > 0 else "single process"
    print(banner(f"repro.mega — {args.nodes} nodes, {args.scheme}, {mode}"))
    hits = stats["memo_round_hits"] + stats["memo_lru_hits"] + stats["noop_hits"]
    rows = [
        ["exchange tier", tier],
        ["rounds executed", executed],
        ["quiescent at", engine.quiescent_at if engine.quiescent_at is not None else "-"],
        ["wall clock (s)", summary["wall_s"]],
        ["messages", stats["messages"]],
        ["receives", stats["receivers"]],
        ["dedup/no-op hits", hits],
        ["full merges solved", stats["full_solves"]],
    ]
    if args.shards > 0:
        phases = engine.phase_seconds
        rows.append(
            [
                "exchange phases (s)",
                "split {split:.3f} / route {route:.3f} / deliver {deliver:.3f}".format(
                    **phases
                ),
            ]
        )
    print(format_table(["metric", "value"], rows))
    if args.shards > 0:
        print(banner("Per-shard receive solver (caches are shard-private)"))
        solver_rows = [
            [
                entry["shard"],
                entry["receivers"],
                entry["cache_hits"],
                entry["full_solves"],
                f"{entry['solver_hit_rate']:.4f}",
            ]
            for entry in engine.shard_solver_stats()
        ]
        print(
            format_table(
                ["shard", "receives", "cache hits", "full solves", "hit rate"],
                solver_rows,
            )
        )

    if args.json:
        text = json.dumps(summary, indent=2, sort_keys=True)
        if args.json == "-":
            print(text)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
