"""The arena engine: one gossip round as batched array operations.

A :class:`~repro.network.kernel.SimulationKernel` round is a Python loop:
each live node draws a peer, splits its collections into a message, the
transport queues it, and every receiver runs the node-level receive
pipeline.  :class:`ArenaEngine` executes the *same* round over a
:class:`~repro.mega.arena.NetworkArena`:

1. **Pairing** — one vectorised draw via
   :meth:`~repro.network.simulator.NeighborSelector.choose_batch`
   (stream-equivalent to the kernel's per-node ``choose`` calls; scalar
   fallback otherwise).
2. **Split** — ``sent = quanta // 2`` over the whole ``(n, k)`` matrix;
   the payload rows, in ``np.nonzero`` row-major order, are exactly the
   concatenation of every node's ``make_message`` payload.
3. **Routing** — a stable argsort by destination reproduces the
   in-memory transport's delivery order (destinations ascending, and
   within a destination payloads in ascending sender order).
4. **Receive** — :class:`ReceiveSolver` runs the node receive pipeline
   per *distinct problem*, not per receiver: a receive is keyed by its
   local and incoming ``(summary id, quanta)`` bytes, so the
   post-convergence tail — where nearly every receiver poses one of a
   handful of problems — collapses into dictionary hits across the
   population.  Distinct problems run the same fast path / certified
   no-op / partition+merge pipeline as
   :meth:`repro.core.node.ClassifierNode.receive`, against the same
   :class:`~repro.core.fingerprint.MergeCache` certificate machinery.

Byte-parity with the per-node kernel (same seeds, same schemes, same
classifications down to collection order) is the contract; the scalar
draws, delivery order, tie-breaks and float accumulation orders are all
mirrored, and ``tests/mega/`` pins them.

Only the paper's default ``push`` gossip variant is supported: pull and
push-pull interleave per-node splits with deliveries inside one round,
which defeats whole-network batching.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import networkx as nx
import numpy as np

from repro.core.fingerprint import MergeCache, merge_cache_default
from repro.core.packed import PackedState
from repro.core.weights import Quantization
from repro.mega.arena import NetworkArena
from repro.network.simulator import NeighborSelector, RandomSelector
from repro.network.topology import TOPOLOGY_BUILDERS, neighbors_map, validate_topology
from repro.obs.profiling import current_registry

__all__ = ["ArenaEngine", "ArenaStats", "GossipPairing", "ReceiveSolver"]


class GossipPairing:
    """The round pairing draw, separable from any one arena.

    Owns the seeded generator and the topology's neighbour structure and
    yields one peers vector per round.  Shard workers each hold a full
    replica (same seed, same selector) and draw identical vectors — that
    replication *is* the deterministic cross-shard exchange: no pairing
    coordination crosses process boundaries, only payload rows do.
    """

    def __init__(
        self,
        n: int,
        topology: Union[str, nx.Graph],
        selector: NeighborSelector,
        seed: int,
    ) -> None:
        if n < 2:
            raise ValueError("arena gossip needs at least 2 nodes")
        self.n = n
        self.rng = np.random.default_rng(seed)
        self.selector = selector
        self._complete = False
        self._neighbor_matrix: Optional[np.ndarray] = None
        self._degrees: Optional[np.ndarray] = None
        self._uniform_degree: Optional[int] = None
        if isinstance(topology, str):
            if topology == "complete":
                # The kernel's neighbour list for node i on the complete
                # graph is sorted(range(n) - {i}), so a drawn index maps
                # to peer = index + (index >= i) — no adjacency storage.
                self._complete = True
                self._uniform_degree = n - 1
                return
            builder = TOPOLOGY_BUILDERS.get(topology)
            if builder is None:
                raise ValueError(
                    f"unknown topology {topology!r}; "
                    f"expected 'complete', one of {sorted(TOPOLOGY_BUILDERS)}, or a graph"
                )
            graph = builder(n)
        else:
            graph = validate_topology(topology)
            if graph.number_of_nodes() != n:
                raise ValueError(
                    f"topology has {graph.number_of_nodes()} nodes, arena has {n}"
                )
        neighbors = neighbors_map(graph)
        degrees = np.asarray([len(neighbors[i]) for i in range(n)], dtype=np.int64)
        width = int(degrees.max())
        matrix = np.full((n, width), -1, dtype=np.int64)
        for node in range(n):
            matrix[node, : degrees[node]] = neighbors[node]
        self._neighbor_matrix = matrix
        self._degrees = degrees
        if int(degrees.min()) == width:
            self._uniform_degree = width

    def _neighbors_of(self, node: int) -> List[int]:
        if self._complete:
            return list(range(node)) + list(range(node + 1, self.n))
        assert self._neighbor_matrix is not None and self._degrees is not None
        degree = int(self._degrees[node])
        return [int(peer) for peer in self._neighbor_matrix[node, :degree]]

    def draw(self) -> np.ndarray:
        """The next round's peers vector (``peers[i]`` = node ``i``'s target)."""
        n = self.n
        if self._uniform_degree is not None:
            index = self.selector.choose_batch(n, self._uniform_degree, self.rng)
            if index is not None:
                index = np.asarray(index, dtype=np.int64)
                if self._complete:
                    return index + (index >= np.arange(n, dtype=np.int64))
                assert self._neighbor_matrix is not None
                return self._neighbor_matrix[np.arange(n), index]
        # Scalar fallback: the kernel's per-node loop, verbatim — same
        # selector calls against the same stream, in ascending node order.
        peers = np.empty(n, dtype=np.int64)
        choose = self.selector.choose
        rng = self.rng
        for node in range(n):
            peers[node] = choose(node, self._neighbors_of(node), rng)
        return peers


@dataclass
class ArenaStats:
    """Cumulative instrumentation for one arena run (observational only)."""

    rounds: int = 0
    messages: int = 0
    receivers: int = 0
    fastpath_hits: int = 0
    memo_round_hits: int = 0
    memo_lru_hits: int = 0
    noop_hits: int = 0
    noop_sweep_hits: int = 0
    full_solves: int = 0
    merges: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "rounds": self.rounds,
            "messages": self.messages,
            "receivers": self.receivers,
            "fastpath_hits": self.fastpath_hits,
            "memo_round_hits": self.memo_round_hits,
            "memo_lru_hits": self.memo_lru_hits,
            "noop_hits": self.noop_hits,
            "noop_sweep_hits": self.noop_sweep_hits,
            "full_solves": self.full_solves,
            "merges": self.merges,
        }


class _Outcome:
    """One solved receive: the receiver's next row block, ready to scatter.

    All arrays are owned copies (never views into the arena), so one
    outcome can be applied to every receiver posing the same problem and
    survive in the memo across rounds while arena rows churn.
    """

    __slots__ = ("ids", "quanta", "columns", "merges")

    def __init__(
        self,
        ids: np.ndarray,
        quanta: np.ndarray,
        columns: Dict[str, np.ndarray],
        merges: int,
    ) -> None:
        self.ids = ids
        self.quanta = quanta
        self.columns = columns
        self.merges = merges


_MISSING = object()


class _NoopPlan:
    """Everything about a certified no-op that depends only on the ids.

    A receiver's local id block fixes its index maps, content digests,
    certificate, and — per heaviest location — the output permutation and
    the gathered id/column arrays.  Caching those per distinct
    ``local_ids`` byte pattern leaves only the quanta-dependent scalar
    work (minimum checks, totals, the margin test) on the per-receiver
    path.  Safe to share the gathered arrays across receivers because an
    interned id bijects with its packed row bytes and outcome arrays are
    never mutated in place.
    """

    __slots__ = (
        "local_index",
        "certificate",
        "cert_of_pos",
        "pos_of_cert",
        "ranks",
        "style_em",
        "orders",
        "tight_thresholds",
    )

    def __init__(
        self,
        local_index: Dict[int, int],
        certificate: Any,
        cert_of_pos: List[int],
        pos_of_cert: List[int],
        style_em: bool,
    ) -> None:
        self.local_index = local_index
        self.certificate = certificate
        self.cert_of_pos = cert_of_pos
        self.pos_of_cert = pos_of_cert
        self.ranks = tuple(pos_of_cert)
        self.style_em = style_em
        # heaviest local position -> None (no certified order) or
        # [order, out_ids, out_columns]; greedy-style plans use key -1.
        self.orders: Dict[int, Optional[List[Any]]] = {}
        self.tight_thresholds: Optional[np.ndarray] = None


class ReceiveSolver:
    """The node receive pipeline, deduplicated over a whole payload slab.

    Shared by :class:`ArenaEngine` and the shard workers: both hand it
    per-destination payload slabs (ids/quanta/columns sorted by receiver)
    and it updates the arena in place.  Three layers, cheapest first:

    - a round-local and a bounded cross-round memo keyed by the exact
      ``(local state, incoming)`` bytes — byte-identical replay because
      the pipeline is a deterministic pure function of that key (the
      same argument as the node-level merge cache, whose key this
      mirrors);
    - the structural shortcuts of the node pipeline (identity fast path
      below ``k``; certified no-op receives via the run's
      :class:`~repro.core.fingerprint.IdentityCertificate` machinery);
    - the real ``partition_packed`` / ``merge_groups_packed`` pipeline.
    """

    def __init__(
        self,
        arena: NetworkArena,
        merge_cache: Optional[MergeCache] = None,
        memo_size: int = 65536,
        stats: Optional[ArenaStats] = None,
    ) -> None:
        self.arena = arena
        self.scheme = arena.scheme
        self.k = arena.k
        self.quantization = arena.quantization
        self.merge_cache = merge_cache if arena.scheme.supports_fingerprints else None
        self.memo_size = int(memo_size)
        self.stats = stats if stats is not None else ArenaStats()
        self._memo: "OrderedDict[Any, _Outcome]" = OrderedDict()
        self._noop_plans: Dict[bytes, Optional[_NoopPlan]] = {}

    # ------------------------------------------------------------------
    # Batch entry point
    # ------------------------------------------------------------------
    def receive_slab(
        self,
        dests: np.ndarray,
        bounds: np.ndarray,
        ids: np.ndarray,
        quanta: np.ndarray,
        columns: Dict[str, np.ndarray],
    ) -> None:
        """Apply one round's receives.

        ``dests`` lists the receiving (arena-local) node indices,
        ascending; payload rows ``bounds[p]:bounds[p+1]`` of
        ``ids`` / ``quanta`` / ``columns`` belong to ``dests[p]``, in
        ascending-sender order — the in-memory transport's batch order.
        """
        arena = self.arena
        stats = self.stats
        a_counts = arena.counts
        a_ids = arena.ids
        a_quanta = arena.quanta
        a_columns = arena.columns
        memo = self._memo
        handled: Optional[np.ndarray] = None
        if self.merge_cache is not None and len(dests) >= 32:
            handled = self._noop_sweep(dests, bounds, ids, quanta)
        round_memo: Dict[Any, _Outcome] = {}
        for position in range(len(dests)):
            if handled is not None and handled[position]:
                continue
            receiver = int(dests[position])
            start = int(bounds[position])
            stop = int(bounds[position + 1])
            count = int(a_counts[receiver])
            local_ids = a_ids[receiver, :count]
            local_quanta = a_quanta[receiver, :count]
            key = (
                count,
                local_ids.tobytes(),
                local_quanta.tobytes(),
                ids[start:stop].tobytes(),
                quanta[start:stop].tobytes(),
            )
            outcome = round_memo.get(key)
            if outcome is not None:
                stats.memo_round_hits += 1
            else:
                outcome = memo.get(key)
                if outcome is not None:
                    memo.move_to_end(key)
                    stats.memo_lru_hits += 1
                    round_memo[key] = outcome
                else:
                    outcome = self._solve(
                        receiver,
                        count,
                        local_ids,
                        local_quanta,
                        ids[start:stop],
                        quanta[start:stop],
                        {name: rows[start:stop] for name, rows in columns.items()},
                        key,
                    )
                    round_memo[key] = outcome
            stats.receivers += 1
            stats.merges += outcome.merges
            width = len(outcome.ids)
            a_counts[receiver] = width
            a_ids[receiver, :width] = outcome.ids
            a_quanta[receiver, :width] = outcome.quanta
            a_quanta[receiver, width:] = 0
            for name, column in a_columns.items():
                column[receiver, :width] = outcome.columns[name]

    # ------------------------------------------------------------------
    # Batched certified no-ops
    # ------------------------------------------------------------------
    def _noop_sweep(
        self,
        dests: np.ndarray,
        bounds: np.ndarray,
        ids: np.ndarray,
        quanta: np.ndarray,
    ) -> Optional[np.ndarray]:
        """Apply certified no-op receives in bulk; returns a handled mask.

        Post-convergence almost every receiver holds the same ``k``
        interned summaries and every incoming id matches one of them, so
        the scalar no-op check repeats identical id-dependent work per
        receiver.  This pass groups receivers by their local id block and
        runs the quanta-dependent checks (minimum weights, membership,
        heaviest location, margin test) as array operations, scattering
        the shared outcome arrays back in one broadcast per order.

        Only receivers that *pass* every check are marked handled; any
        rejection simply leaves the receiver to the scalar path, whose
        ``math.log``-based margin decision stays authoritative.  The
        vector margin test is tightened by a relative epsilon so a
        borderline acceptance can never disagree with the scalar check
        beyond log rounding — and even then a certified no-op is byte
        identical to the full pipeline by construction, so which path
        computes the state never changes the state.
        """
        if type(self.quantization) is not Quantization:
            return None  # exotic lattice: is_minimum semantics unknown
        arena = self.arena
        k = self.k
        n_pos = len(dests)
        handled = np.zeros(n_pos, dtype=bool)
        counts_d = arena.counts[dests]
        candidate = counts_d == k
        if not candidate.any():
            return handled
        widths = np.diff(bounds)
        pos_idx = np.flatnonzero(candidate)
        receivers = dests[pos_idx]
        local_ids = np.ascontiguousarray(arena.ids[receivers, :k])
        local_quanta = arena.quanta[receivers, :k]
        blocks = local_ids.view([("v", f"V{k * 8}")]).ravel()
        unique_blocks, inverse = np.unique(blocks, return_inverse=True)
        a_counts = arena.counts
        a_ids = arena.ids
        a_quanta = arena.quanta
        a_columns = arena.columns
        stats = self.stats
        for block_index in range(len(unique_blocks)):
            members_mask = inverse == block_index
            if int(members_mask.sum()) < 16:
                continue  # scalar path amortises better on small groups
            sub = np.flatnonzero(members_mask)
            block_ids = local_ids[sub[0]]
            plan = self._noop_plan_for(k, block_ids)
            if plan is None or not plan.style_em:
                continue
            tight = plan.tight_thresholds
            if tight is None:
                thresholds = plan.certificate.margin_threshold_matrix()
                if thresholds is None:
                    continue
                tight = thresholds.copy()
                finite = np.isfinite(tight)
                tight[finite] -= 1e-12 * (1.0 + np.abs(tight[finite]))
                plan.tight_thresholds = tight
            sub_pos = pos_idx[sub]
            starts = bounds[sub_pos]
            w = widths[sub_pos]
            r_count = len(sub)
            total_rows = int(w.sum())
            # Ragged gather: payload row ranges per receiver, flattened.
            seg = np.repeat(np.arange(r_count), w)
            rows = np.repeat(starts - (np.cumsum(w) - w), w) + np.arange(total_rows)
            in_ids = ids[rows]
            in_quanta = quanta[rows]
            # Map incoming ids to local positions via the sorted block.
            sort_order = np.argsort(block_ids, kind="stable")
            sorted_ids = block_ids[sort_order]
            found = np.searchsorted(sorted_ids, in_ids)
            found = np.minimum(found, k - 1)
            row_ok = (sorted_ids[found] == in_ids) & (in_quanta != 1)
            in_pos = sort_order[found]
            sub_quanta = local_quanta[sub]
            ok = (sub_quanta != 1).all(axis=1)
            np.logical_and.at(ok, seg, row_ok)
            if not ok.any():
                continue
            # Pooled totals and per-position incoming counts.
            totals = sub_quanta.copy()
            hits = np.zeros((r_count, k), dtype=np.int64)
            np.add.at(totals, (seg, in_pos), in_quanta)
            np.add.at(hits, (seg, in_pos), 1)
            # Heaviest location: locals in position order, then incoming
            # rows in delivery order, strict > (first-max ties).
            best_pos = sub_quanta.argmax(axis=1)
            best_q = np.take_along_axis(sub_quanta, best_pos[:, None], axis=1)[:, 0]
            for j in range(int(w.max())):
                has = np.flatnonzero(w > j)
                if not len(has):
                    break
                row_j = starts[has] + j
                iq = quanta[row_j]
                ip_found = np.minimum(np.searchsorted(sorted_ids, ids[row_j]), k - 1)
                beat = np.flatnonzero(iq > best_q[has])
                target = has[beat]
                best_q[target] = iq[beat]
                best_pos[target] = sort_order[ip_found[beat]]
            # Margin test, tightened so only clear passes are accepted.
            log_totals = np.log(totals)
            cert_totals = np.empty_like(log_totals)
            cert_totals[:, plan.cert_of_pos] = log_totals
            diffs = cert_totals[:, None, :] - cert_totals[:, :, None]
            ok &= (diffs < tight[None]).all(axis=(1, 2))
            if not ok.any():
                continue
            for b in np.unique(best_pos[ok]).tolist():
                accepted = np.flatnonzero(ok & (best_pos == b))
                entry = plan.orders.get(b, _MISSING)
                if entry is _MISSING:
                    seed_order = plan.certificate.seed_order(
                        plan.cert_of_pos[b], plan.ranks
                    )
                    if seed_order is None:
                        plan.orders[b] = None
                        continue  # scalar path will reject identically
                    order = [plan.pos_of_cert[index] for index in seed_order]
                    take = np.asarray(order, dtype=np.intp)
                    first = int(receivers[sub[accepted[0]]])
                    entry = [
                        order,
                        block_ids[take],
                        {
                            name: column[first, :k][take]
                            for name, column in a_columns.items()
                        },
                    ]
                    plan.orders[b] = entry
                elif entry is None:
                    continue
                order, out_ids, out_columns = entry
                out = receivers[sub[accepted]]
                a_counts[out] = k
                a_ids[out, :k] = out_ids[None]
                a_quanta[out, :k] = totals[accepted][:, order]
                a_quanta[out, k:] = 0
                for name, column in a_columns.items():
                    column[out, :k] = out_columns[name][None]
                handled[sub_pos[accepted]] = True
                hit_count = len(accepted)
                stats.receivers += hit_count
                stats.noop_hits += hit_count
                stats.noop_sweep_hits += hit_count
                stats.merges += int((hits[accepted] > 0).sum())
        return handled

    # ------------------------------------------------------------------
    # One distinct receive problem
    # ------------------------------------------------------------------
    def _solve(
        self,
        receiver: int,
        count: int,
        local_ids: np.ndarray,
        local_quanta: np.ndarray,
        incoming_ids: np.ndarray,
        incoming_quanta: np.ndarray,
        incoming_columns: Dict[str, np.ndarray],
        key: Any,
    ) -> _Outcome:
        arena = self.arena
        scheme = self.scheme
        pooled_ids = np.concatenate([local_ids, incoming_ids])
        pooled_quanta = np.concatenate([local_quanta, incoming_quanta])
        local_columns = {
            name: column[receiver, :count] for name, column in arena.columns.items()
        }
        # Identity fast path: mirrors ClassifierNode._try_fastpath (the
        # pooled set always has >= 2 members on a receive).
        size = len(pooled_ids)
        if (
            size <= self.k
            and scheme.identity_below_k
            and not self.quantization.is_minimum(int(pooled_quanta.min()))
        ):
            self.stats.fastpath_hits += 1
            pooled_columns = {
                name: np.concatenate([local_columns[name], incoming_columns[name]])
                for name in local_columns
            }
            return _Outcome(pooled_ids, pooled_quanta, pooled_columns, 0)
        if self.merge_cache is not None:
            outcome = self._try_certified_noop(
                count, local_ids, local_quanta, incoming_ids, incoming_quanta, local_columns
            )
            if outcome is not None:
                self.stats.noop_hits += 1
                return outcome
        pooled_columns = {
            name: np.concatenate([local_columns[name], incoming_columns[name]])
            for name in local_columns
        }
        packed = PackedState(quanta=pooled_quanta, columns=pooled_columns)
        groups = scheme.partition_packed(packed, self.k, self.quantization)
        self.stats.full_solves += 1
        width = len(groups)
        out_ids = np.empty(width, dtype=np.int64)
        out_quanta = np.empty(width, dtype=np.int64)
        out_columns = {
            name: np.empty((width,) + column.shape[1:], dtype=float)
            for name, column in pooled_columns.items()
        }
        multi: List[Tuple[int, Sequence[int]]] = []
        for group_index, group in enumerate(groups):
            if len(group) == 1:
                member = group[0]
                out_ids[group_index] = pooled_ids[member]
                out_quanta[group_index] = pooled_quanta[member]
                for name in out_columns:
                    out_columns[name][group_index] = pooled_columns[name][member]
            else:
                multi.append((group_index, group))
        if multi:
            interner = arena.interner
            # merge_groups_columns is contractually byte-identical to
            # packing merge_groups_packed's summaries; the summary object
            # behind each new id materialises lazily in the interner when
            # a certificate needs it.
            packed_rows = scheme.merge_groups_columns(
                packed, [group for _, group in multi]
            )
            for row, (group_index, group) in enumerate(multi):
                for name in out_columns:
                    out_columns[name][group_index] = packed_rows[name][row]
                out_quanta[group_index] = int(
                    pooled_quanta[np.asarray(group, dtype=np.intp)].sum()
                )
                out_ids[group_index] = interner.intern_row(packed_rows, row)
        outcome = _Outcome(out_ids, out_quanta, out_columns, len(multi))
        if self.memo_size > 0:
            memo = self._memo
            if len(memo) >= self.memo_size:
                memo.popitem(last=False)
            memo[key] = outcome
        return outcome

    def _noop_plan_for(
        self, count: int, local_ids: np.ndarray
    ) -> Optional[_NoopPlan]:
        """The cached :class:`_NoopPlan` for one local id block (or None)."""
        key = local_ids.tobytes()
        plans = self._noop_plans
        plan = plans.get(key, _MISSING)
        if plan is not _MISSING:
            return plan  # type: ignore[return-value]
        plan = self._build_noop_plan(count, local_ids)
        if len(plans) >= 65536:  # pre-convergence id churn guard
            plans.clear()
        plans[key] = plan
        return plan

    def _build_noop_plan(
        self, count: int, local_ids: np.ndarray
    ) -> Optional[_NoopPlan]:
        cache = self.merge_cache
        assert cache is not None
        scheme = self.scheme
        if count > self.k:
            return None
        id_list = [int(summary_id) for summary_id in local_ids]
        local_index: Dict[int, int] = {}
        for position, summary_id in enumerate(id_list):
            local_index[summary_id] = position
        if len(local_index) != count:
            return None
        style = scheme.identity_partition_style
        if style is None:
            return None
        if style == "greedy" and count != self.k:
            return None
        interner = self.arena.interner
        local_digests = [interner.digest(summary_id) for summary_id in id_list]
        digest_position = {digest: i for i, digest in enumerate(local_digests)}
        sorted_digests = tuple(sorted(local_digests))
        certificate = cache.certificate_for(
            scheme,
            sorted_digests,
            tuple(
                interner.summary(id_list[digest_position[digest]])
                for digest in sorted_digests
            ),
        )
        if not certificate.valid:
            return None
        cert_of_pos = [certificate.index_of[digest] for digest in local_digests]
        pos_of_cert = [digest_position[digest] for digest in certificate.locations]
        return _NoopPlan(
            local_index, certificate, cert_of_pos, pos_of_cert, style == "em"
        )

    def _try_certified_noop(
        self,
        count: int,
        local_ids: np.ndarray,
        local_quanta: np.ndarray,
        incoming_ids: np.ndarray,
        incoming_quanta: np.ndarray,
        local_columns: Dict[str, np.ndarray],
    ) -> Optional[_Outcome]:
        """Mirror of ClassifierNode._try_certified_noop on interned ids.

        Within one interner an id bijects with a summary byte pattern and
        hence with its content digest, so "incoming digest matches a
        local collection" becomes an integer set lookup; the certificate
        itself (seed order, margins) is shared with the per-node world
        via the run's :class:`~repro.core.fingerprint.MergeCache`.  The
        id-dependent setup lives on a per-block :class:`_NoopPlan`; this
        path only does the quanta-dependent arithmetic.
        """
        plan = self._noop_plan_for(count, local_ids)
        if plan is None:
            return None
        local_index = plan.local_index
        incoming_list = incoming_ids.tolist()
        if count + len(incoming_list) <= self.k:
            return None
        is_minimum = self.quantization.is_minimum
        totals = local_quanta.tolist()
        best_quanta = -1
        best_position = 0
        for position, quanta in enumerate(totals):
            if is_minimum(quanta):
                return None
            if quanta > best_quanta:
                best_quanta = quanta
                best_position = position
        members = [1] * count
        for summary_id, incoming_q in zip(incoming_list, incoming_quanta.tolist()):
            position = local_index.get(summary_id)
            if position is None:
                return None
            if is_minimum(incoming_q):
                return None
            totals[position] += incoming_q
            members[position] += 1
            if incoming_q > best_quanta:
                best_quanta = incoming_q
                best_position = position
        if plan.style_em:
            certificate = plan.certificate
            cert_of_pos = plan.cert_of_pos
            log = math.log
            log_totals = [0.0] * count
            for position in range(count):
                log_totals[cert_of_pos[position]] = log(totals[position])
            if not certificate.margin_ok(log_totals):
                return None
            order_key = best_position
        else:
            order_key = -1
        entry = plan.orders.get(order_key, _MISSING)
        if entry is _MISSING:
            if plan.style_em:
                seed_order = plan.certificate.seed_order(
                    plan.cert_of_pos[best_position], plan.ranks
                )
                if seed_order is None:
                    plan.orders[order_key] = None
                    return None
                order = [plan.pos_of_cert[index] for index in seed_order]
            else:
                order = list(range(count))
            take = np.asarray(order, dtype=np.intp)
            entry = [
                order,
                local_ids[take],
                {name: column[take] for name, column in local_columns.items()},
            ]
            plan.orders[order_key] = entry
        elif entry is None:
            return None
        order, out_ids, out_columns = entry  # type: ignore[misc]
        out_quanta = np.asarray(
            [totals[position] for position in order], dtype=np.int64
        )
        merges = sum(1 for position in order if members[position] > 1)
        return _Outcome(out_ids, out_quanta, out_columns, merges)


class ArenaEngine:
    """Single-process whole-network gossip over one arena.

    Parameters
    ----------
    values:
        One input value per node (any sequence the scheme's
        ``pack_values`` accepts).
    scheme, k, quantization:
        As for :class:`~repro.core.node.ClassifierNode`; the scheme must
        declare ``supports_packed``.
    seed:
        Seeds the pairing RNG — the same ``default_rng(seed)`` stream the
        per-node kernel consumes, which is what makes byte-parity (and
        the deterministic cross-shard exchange) possible.
    topology:
        ``"complete"`` (the default; never materialised as a graph, so
        million-node arenas stay O(n)), a name from
        :data:`repro.network.topology.TOPOLOGY_BUILDERS`, or an explicit
        ``networkx`` graph.
    selector:
        Pairing strategy; vectorised when it implements ``choose_batch``
        and the topology is degree-uniform, scalar fallback otherwise
        (O(n) Python calls per round — fine for parity runs, not for
        mega-scale).
    use_cache:
        Enables the certified no-op layer (and its shared
        :class:`~repro.core.fingerprint.MergeCache`); ``None`` defers to
        ``REPRO_MERGE_CACHE``.  The memo layers stay on regardless —
        problem dedup is the arena's core batching trick, and hits are
        byte-identical replays by key construction.
    """

    def __init__(
        self,
        values: Sequence[Any],
        scheme: Any,
        k: int,
        *,
        seed: int = 0,
        topology: Union[str, nx.Graph] = "complete",
        quantization: Optional[Quantization] = None,
        selector: Optional[NeighborSelector] = None,
        variant: str = "push",
        use_cache: Optional[bool] = None,
        memo_size: int = 65536,
    ) -> None:
        if variant != "push":
            raise ValueError(
                f"the arena engine implements the paper's push gossip only, got {variant!r}: "
                "pull/push-pull interleave splits with deliveries inside a round, "
                "which defeats whole-network batching — use the per-node kernel"
            )
        self.arena = NetworkArena.from_values(values, scheme, k, quantization)
        n = self.arena.n
        if n < 2:
            raise ValueError("arena gossip needs at least 2 nodes")
        self.selector = selector if selector is not None else RandomSelector()
        self.pairing = GossipPairing(n, topology, self.selector, seed)
        self.rng = self.pairing.rng
        if use_cache is None:
            use_cache = merge_cache_default()
        self.merge_cache: Optional[MergeCache] = (
            MergeCache() if (use_cache and scheme.supports_fingerprints) else None
        )
        self.stats = ArenaStats()
        self.solver = ReceiveSolver(
            self.arena,
            merge_cache=self.merge_cache,
            memo_size=memo_size,
            stats=self.stats,
        )
        self.round_index = 0
        self.quiescent_at: Optional[int] = None
        self._quiescent_streak = 0
        self._gauge_prev = (0, 0, 0)

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def run_round(self) -> int:
        """Execute one synchronous round; returns the message count."""
        arena = self.arena
        peers = self.pairing.draw()
        quanta = arena.quanta
        sent = quanta // 2
        arena.quanta = quanta - sent
        sender, slot = np.nonzero(sent)
        messages = 0
        if len(sender):
            payload_quanta = sent[sender, slot]
            payload_ids = arena.ids[sender, slot]
            payload_dest = peers[sender]
            payload_columns = {
                name: column[sender, slot] for name, column in arena.columns.items()
            }
            messages = int(np.count_nonzero(np.diff(sender)) + 1)
            order = np.argsort(payload_dest, kind="stable")
            sorted_dest = payload_dest[order]
            dests, starts = np.unique(sorted_dest, return_index=True)
            bounds = np.append(starts, len(sorted_dest))
            self.solver.receive_slab(
                dests,
                bounds,
                payload_ids[order],
                payload_quanta[order],
                {name: rows[order] for name, rows in payload_columns.items()},
            )
        self.round_index += 1
        self.stats.rounds += 1
        self.stats.messages += messages
        self._publish_gauges(messages)
        return messages

    def run(
        self,
        rounds: int,
        stop_on_quiescence: bool = False,
        quiescence_patience: int = 3,
    ) -> int:
        """Run up to ``rounds`` rounds; returns the number executed.

        Quiescence mirrors the kernel's probe: stop once every node has
        held the same summary-id multiset for ``quiescence_patience``
        consecutive rounds (between synchronous rounds nothing is in
        flight, so the id test is the whole condition).
        """
        executed = 0
        for _ in range(rounds):
            self.run_round()
            executed += 1
            if stop_on_quiescence:
                if self._probe_quiescence():
                    self._quiescent_streak += 1
                    if self._quiescent_streak >= quiescence_patience:
                        if self.quiescent_at is None:
                            self.quiescent_at = executed
                        break
                else:
                    self._quiescent_streak = 0
        return executed

    @property
    def quiescent(self) -> bool:
        return self.quiescent_at is not None

    def _probe_quiescence(self) -> bool:
        arena = self.arena
        counts = arena.counts
        first = int(counts[0])
        if not bool(np.all(counts == first)):
            return False
        block = np.sort(arena.ids[:, :first], axis=1)
        return bool(np.all(block == block[0]))

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def classifications(self) -> List[List[Any]]:
        return self.arena.classifications()

    def state_digests(self, node: int) -> Tuple[Tuple[bytes, int], ...]:
        return self.arena.state_digests(node)

    def _publish_gauges(self, messages: int) -> None:
        stats = self.stats
        hits = stats.memo_round_hits + stats.memo_lru_hits + stats.noop_hits
        previous_receivers, previous_hits, previous_merges = self._gauge_prev
        delta_receivers = stats.receivers - previous_receivers
        delta_hits = hits - previous_hits
        delta_merges = stats.merges - previous_merges
        self._gauge_prev = (stats.receivers, hits, stats.merges)
        registry = current_registry()
        if registry is None:
            return
        registry.inc("mega.rounds")
        registry.inc("mega.messages", messages)
        registry.set_gauge("mega.receivers_round", delta_receivers)
        registry.set_gauge("mega.nodes_merged_round", delta_merges)
        registry.set_gauge(
            "mega.cache_hit_rate",
            delta_hits / delta_receivers if delta_receivers else 1.0,
        )
