"""Weighted-Gaussian summaries (Section 5.1).

A collection is summarised by the tuple (mu, sigma): the weighted mean and
covariance matrix of its values.  Together with the collection weight this
is a weighted Gaussian, and a classification becomes a Gaussian Mixture.
``valToSummary`` maps a single value to a Gaussian with that mean and a
zero covariance matrix; ``mergeSet`` is the closed-form moment match; and
``d_S`` is — "as in the centroids algorithm" — the L2 distance between
means.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.core.classification import Classification
from repro.ml.gaussian import pool_moments
from repro.ml.gmm import GaussianMixtureModel

__all__ = ["GaussianSummary", "summary_from_value", "merge_gaussian_summaries", "classification_to_gmm"]


@dataclass(frozen=True)
class GaussianSummary:
    """The (mu, sigma) tuple describing a collection's values.

    Immutable so that summaries can be shared freely between the kept and
    sent halves of a split collection (Algorithm 1 copies summaries
    verbatim when splitting).
    """

    mean: np.ndarray
    cov: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "mean", np.atleast_1d(np.asarray(self.mean, dtype=float)))
        object.__setattr__(self, "cov", np.atleast_2d(np.asarray(self.cov, dtype=float)))
        d = self.mean.shape[0]
        if self.cov.shape != (d, d):
            raise ValueError(
                f"covariance shape {self.cov.shape} does not match mean dimension {d}"
            )

    @classmethod
    def trusted(cls, mean: np.ndarray, cov: np.ndarray) -> "GaussianSummary":
        """Construct without re-running conversion and shape validation.

        The split/merge hot loops build summaries exclusively from
        arrays that are already float64 and correctly shaped (outputs of
        :func:`~repro.ml.gaussian.pool_moments` or fields of previously
        validated summaries), so the ``__post_init__`` ``asarray`` /
        ``atleast_*`` churn is pure overhead there.  Callers own the
        precondition: ``mean`` is ``(d,)`` float64, ``cov`` is
        ``(d, d)`` float64, and neither is mutated afterwards.  All
        other construction sites (wire decoding, user code) must go
        through the validating constructor.
        """
        summary = object.__new__(cls)
        object.__setattr__(summary, "mean", mean)
        object.__setattr__(summary, "cov", cov)
        return summary

    @property
    def dimension(self) -> int:
        return int(self.mean.shape[0])

    def close_to(self, other: "GaussianSummary", tolerance: float = 1e-9) -> bool:
        """Approximate equality used by tests (floats accumulate rounding)."""
        return bool(
            np.allclose(self.mean, other.mean, atol=tolerance)
            and np.allclose(self.cov, other.cov, atol=tolerance)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GaussianSummary(mean={np.round(self.mean, 4)})"


def summary_from_value(value: Any) -> GaussianSummary:
    """Section 5.1's ``valToSummary``: mean = value, covariance = 0."""
    mean = np.atleast_1d(np.asarray(value, dtype=float))
    return GaussianSummary(mean=mean, cov=np.zeros((mean.shape[0], mean.shape[0])))


def merge_gaussian_summaries(
    items: Sequence[tuple[GaussianSummary, float]],
) -> GaussianSummary:
    """Section 5.1's ``mergeSet``: moment-match the weighted Gaussians.

    Because a moment match of summaries equals the moments of the pooled
    underlying values, this satisfies requirement R4 exactly (up to float
    rounding) — the property tests check it against explicit value pools.
    """
    if not items:
        raise ValueError("cannot merge an empty set")
    weights = np.array([weight for _, weight in items], dtype=float)
    means = np.stack([summary.mean for summary, _ in items])
    covs = np.stack([summary.cov for summary, _ in items])
    mean, cov = pool_moments(weights, means, covs)
    # pool_moments returns fresh, correctly shaped float64 arrays, so the
    # validating constructor would only repeat work in the merge hot loop.
    return GaussianSummary.trusted(mean, cov)


def classification_to_gmm(classification: Classification) -> GaussianMixtureModel:
    """View a node's classification as the Gaussian Mixture it encodes.

    Zero-covariance singleton collections are preserved as-is; the GMM
    density routines regularise internally when evaluating.
    """
    weights = np.array([collection.quanta for collection in classification], dtype=float)
    means = np.stack([collection.summary.mean for collection in classification])
    covs = np.stack([collection.summary.cov for collection in classification])
    return GaussianMixtureModel(weights, means, covs)
