"""Fixed-bin histogram summaries: the related-work comparator.

Haridasan & van Renesse [11] and Sacha et al. [17] estimate distributions
in sensor networks with histograms; the paper contrasts its approach with
theirs (histograms are single-dimensional, and merge distant value groups
that classification must keep apart).  To make that comparison executable,
this module packages a 1-D histogram as *yet another instantiation* of the
generic algorithm: the summary of a collection is its normalised bin-mass
vector over a fixed global binning.

Satisfies R2-R4 exactly (the weighted average of proportion vectors is the
pooled proportion vector), so the convergence theorem covers it too — it
converges, it is just a weaker *classifier*, which is precisely the
ablation benchmark's point.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.core.collection import Collection
from repro.core.fingerprint import digest_arrays
from repro.core.packed import PackedState
from repro.core.scheme import SummaryScheme
from repro.core.weights import Quantization
from repro.native.kernels import weighted_average_groups
from repro.schemes.centroid import greedy_closest_pair_partition

__all__ = ["HistogramScheme"]


class HistogramScheme(SummaryScheme):
    """Summaries are normalised histograms over a fixed 1-D binning.

    Parameters
    ----------
    low, high:
        The value range covered by the bins; values outside are clamped
        into the boundary bins (sensor ranges are bounded in practice).
    bins:
        Number of equal-width bins.
    """

    # Same greedy partition as the centroids scheme: no merge loop fires
    # below the k bound once minimum-weight collections are excluded.
    identity_below_k = True
    supports_packed = True
    supports_fingerprints = True
    identity_partition_style = "greedy"

    def __init__(self, low: float, high: float, bins: int = 32) -> None:
        if not high > low:
            raise ValueError(f"need high > low, got [{low}, {high}]")
        if bins < 2:
            raise ValueError("need at least 2 bins")
        self.low = float(low)
        self.high = float(high)
        self.bins = int(bins)
        self.edges = np.linspace(self.low, self.high, self.bins + 1)

    def _bin_of(self, value: float) -> int:
        index = int(np.searchsorted(self.edges, value, side="right")) - 1
        return min(max(index, 0), self.bins - 1)

    def val_to_summary(self, value: Any) -> np.ndarray:
        scalar = float(np.asarray(value).reshape(-1)[0])
        histogram = np.zeros(self.bins)
        histogram[self._bin_of(scalar)] = 1.0
        return histogram

    def merge_set(self, items: Sequence[tuple[np.ndarray, float]]) -> np.ndarray:
        if not items:
            raise ValueError("cannot merge an empty set")
        total = sum(weight for _, weight in items)
        if total <= 0:
            raise ValueError("merged weight must be positive")
        first = np.asarray(items[0][0], dtype=float)
        if all(np.array_equal(first, histogram) for histogram, _ in items[1:]):
            # Identical proportion vectors pool to themselves, exactly —
            # keeps converged states byte-stable for content addressing.
            return first.copy()
        merged = sum(weight * histogram for histogram, weight in items) / total
        return np.asarray(merged, dtype=float)

    def partition(
        self,
        collections: Sequence[Collection],
        k: int,
        quantization: Quantization,
    ) -> list[list[int]]:
        positions = np.stack([collection.summary for collection in collections])
        weights = np.array([float(collection.quanta) for collection in collections])
        quanta = [collection.quanta for collection in collections]
        return greedy_closest_pair_partition(positions, weights, quanta, k, quantization)

    # ------------------------------------------------------------------
    # Packed hot path (bin-mass vectors as one (l, bins) matrix)
    # ------------------------------------------------------------------
    def pack_summaries(self, summaries: Sequence[np.ndarray]) -> dict[str, np.ndarray]:
        return {"mass": np.stack([np.asarray(s, dtype=float) for s in summaries])}

    def pack_values(self, values: Sequence[Any]) -> dict[str, np.ndarray]:
        scalars = np.asarray(values, dtype=float).reshape(len(values), -1)[:, 0]
        indices = np.searchsorted(self.edges, scalars, side="right") - 1
        indices = np.clip(indices, 0, self.bins - 1)
        mass = np.zeros((len(scalars), self.bins))
        mass[np.arange(len(scalars)), indices] = 1.0
        return {"mass": mass}

    def unpack_summary(self, columns: dict[str, np.ndarray], index: int) -> np.ndarray:
        return np.array(columns["mass"][index], dtype=float)

    def partition_packed(
        self,
        packed: PackedState,
        k: int,
        quantization: Quantization,
    ) -> list[list[int]]:
        return greedy_closest_pair_partition(
            packed.columns["mass"], packed.weights(), packed.quanta, k, quantization
        )

    def merge_set_packed(self, packed: PackedState, group: Sequence[int]) -> np.ndarray:
        # Mirrors merge_set's sequential weighted average exactly.
        masses = packed.columns["mass"]
        quanta = packed.quanta
        first = masses[group[0]]
        if all(np.array_equal(first, masses[i]) for i in group[1:]):
            return np.asarray(first, dtype=float).copy()
        total = sum(float(quanta[i]) for i in group)
        merged = sum(float(quanta[i]) * masses[i] for i in group) / total
        return np.asarray(merged, dtype=float)

    def merge_groups_columns(
        self, packed: PackedState, groups: Sequence[Sequence[int]]
    ) -> dict[str, np.ndarray]:
        return {
            "mass": weighted_average_groups(
                packed.columns["mass"], packed.quanta, groups
            )
        }

    def digest_row(self, columns: dict[str, np.ndarray], index: int) -> bytes:
        return digest_arrays(columns["mass"][index])

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        """Total-variation distance between the two bin-mass vectors."""
        return 0.5 * float(np.sum(np.abs(np.asarray(a) - np.asarray(b))))

    def summary_digest(self, summary: np.ndarray) -> bytes:
        return digest_arrays(np.asarray(summary, dtype=float))

    def mean_estimate(self, histogram: np.ndarray) -> float:
        """Midpoint-weighted mean implied by a histogram summary."""
        midpoints = (self.edges[:-1] + self.edges[1:]) / 2.0
        mass = np.asarray(histogram, dtype=float)
        return float(np.sum(mass * midpoints) / np.sum(mass))
