"""Diagonal-covariance Gaussian summaries: the lightweight-sensor variant.

The paper motivates its setting with "lightweight nodes with minimal
hardware"; a full covariance matrix costs O(d^2) floats per collection on
the radio and O(d^3) factorisations in every EM step.  This scheme keeps
the Gaussian idea — variance-aware classification, Figure 1's argument —
but restricts covariances to their diagonal: per-dimension variances,
O(d) floats per summary.

Crucially, R2-R4 still hold *exactly*: the diagonal of a moment-matched
covariance depends only on the per-dimension first and second moments, so
per-dimension moment matching is closed under merging (the paper's R4) and
scale-invariant (R3).  The scheme therefore inherits Theorem 1's
convergence guarantee while shipping strictly smaller messages — the
message-size benchmark quantifies the saving.

Partitioning reuses the same hard-EM reduction as the full GM scheme,
with input and output covariances projected onto their diagonals.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.core.collection import Collection
from repro.core.packed import PackedState
from repro.core.scheme import SummaryScheme
from repro.core.weights import Quantization
from repro.schemes.gaussian import GaussianSummary
from repro.schemes.gm import GaussianMixtureScheme

__all__ = ["DiagonalGaussianScheme", "diagonalize"]


def diagonalize(summary: GaussianSummary) -> GaussianSummary:
    """Project a Gaussian summary onto its diagonal covariance."""
    return GaussianSummary.trusted(summary.mean, np.diag(np.diag(summary.cov)))


class DiagonalGaussianScheme(SummaryScheme):
    """Gaussian summaries restricted to diagonal covariance matrices.

    Behaviourally identical to :class:`~repro.schemes.gm.GaussianMixtureScheme`
    on axis-aligned data; loses the correlation information (the tilt of
    Figure 2's fire-side ellipse) in exchange for O(d) summaries.
    """

    identity_below_k = True  # same reduce_mixture singleton behaviour at l <= k
    supports_packed = True
    supports_fingerprints = True
    identity_partition_style = "em"

    def __init__(self, seed: int = 0, reduction_iterations: int = 25) -> None:
        self._rng = np.random.default_rng(seed)
        self.reduction_iterations = reduction_iterations
        # Delegate the merge arithmetic to the full scheme, then project.
        self._full = GaussianMixtureScheme(seed=seed, reduction_iterations=reduction_iterations)

    def val_to_summary(self, value: Any) -> GaussianSummary:
        return self._full.val_to_summary(value)  # zero matrix is diagonal already

    def merge_set(self, items: Sequence[tuple[GaussianSummary, float]]) -> GaussianSummary:
        """Moment-match, then keep only the diagonal.

        Projection commutes with moment matching dimension-by-dimension,
        so R4 holds exactly within the diagonal family (property-tested).
        """
        return diagonalize(self._full.merge_set(items))

    def distance(self, a: GaussianSummary, b: GaussianSummary) -> float:
        return self._full.distance(a, b)

    def summary_digest(self, summary: GaussianSummary) -> bytes:
        return self._full.summary_digest(summary)

    def partition(
        self,
        collections: Sequence[Collection],
        k: int,
        quantization: Quantization,
    ) -> list[list[int]]:
        # The reduction is deterministic (maximin seeding), so delegating
        # to the full scheme's array core cannot diverge on RNG state.
        return self._full.partition(collections, k, quantization)

    # ------------------------------------------------------------------
    # Packed hot path (same columns as the full scheme)
    # ------------------------------------------------------------------
    def pack_summaries(self, summaries: Sequence[GaussianSummary]) -> dict[str, np.ndarray]:
        return self._full.pack_summaries(summaries)

    def pack_values(self, values: Sequence[Any]) -> dict[str, np.ndarray]:
        return self._full.pack_values(values)  # zero matrices are diagonal

    def unpack_summary(
        self, columns: dict[str, np.ndarray], index: int
    ) -> GaussianSummary:
        return self._full.unpack_summary(columns, index)

    def partition_packed(
        self,
        packed: PackedState,
        k: int,
        quantization: Quantization,
    ) -> list[list[int]]:
        return self._full.partition_packed(packed, k, quantization)

    def merge_set_packed(
        self, packed: PackedState, group: Sequence[int]
    ) -> GaussianSummary:
        return diagonalize(self._full.merge_set_packed(packed, group))

    def merge_groups_columns(
        self, packed: PackedState, groups: Sequence[Sequence[int]]
    ) -> dict[str, np.ndarray]:
        columns = self._full.merge_groups_columns(packed, groups)
        covs = columns["cov"]
        # Batched diagonalize: fresh zeros with the diagonal copied in,
        # byte-identical to np.diag(np.diag(cov)) per row.
        diag = np.zeros_like(covs)
        axis = np.arange(covs.shape[1])
        diag[:, axis, axis] = covs[:, axis, axis]
        return {"mean": columns["mean"], "cov": diag}

    def digest_row(self, columns: dict[str, np.ndarray], index: int) -> bytes:
        return self._full.digest_row(columns, index)
