"""The Gaussian-Mixture instantiation (Section 5): EM-driven partitioning.

Collections are weighted Gaussians, classifications Gaussian Mixtures, and
classification decisions are made with the Expectation Maximization
heuristic: when a node holds more than ``k`` collections, the EM-based
mixture reduction of :mod:`repro.ml.reduction` groups them so the reduced
``k``-GM approximately maximises the likelihood of the full set.

The paper motivates this over centroids with Figure 1: distance to a
centroid ignores a collection's spread, whereas the Gaussian summary's
covariance lets a wide collection claim values a tight one would steal.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from repro.core.collection import Collection
from repro.core.fingerprint import digest_arrays
from repro.core.packed import PackedState
from repro.core.scheme import SummaryScheme
from repro.core.weights import Quantization
from repro.ml.gaussian import pool_moments
from repro.ml.reduction import reduce_mixture
from repro.native.kernels import pool_moments_groups
from repro.schemes.gaussian import (
    GaussianSummary,
    merge_gaussian_summaries,
    summary_from_value,
)

__all__ = ["GaussianMixtureScheme"]


class GaussianMixtureScheme(SummaryScheme):
    """Summaries are weighted Gaussians; ``partition`` runs hard EM.

    Parameters
    ----------
    seed:
        Seeds the scheme's private RNG, used only to initialise the EM
        reduction (k-means++ seeding).  Runs are reproducible given the
        seed; distinct nodes may share one scheme instance (the paper's
        algorithm does not require node-local randomness here).
    reduction_iterations:
        Cap on EM iterations per ``partition`` call.  The paper's nodes
        "run EM once for the entire set" per receipt; a small cap keeps
        per-message work bounded without hurting quality measurably.
    """

    identity_below_k = True  # reduce_mixture returns singletons at l <= k
    supports_packed = True
    supports_fingerprints = True
    identity_partition_style = "em"

    def __init__(self, seed: int = 0, reduction_iterations: int = 25) -> None:
        self._rng = np.random.default_rng(seed)
        self.reduction_iterations = reduction_iterations

    # ------------------------------------------------------------------
    # Instantiation functions (Section 5.1)
    # ------------------------------------------------------------------
    def val_to_summary(self, value: Any) -> GaussianSummary:
        return summary_from_value(value)

    def merge_set(self, items: Sequence[tuple[GaussianSummary, float]]) -> GaussianSummary:
        return merge_gaussian_summaries(items)

    def distance(self, a: GaussianSummary, b: GaussianSummary) -> float:
        """``d_S`` "as in the centroids algorithm": L2 between means."""
        return float(np.linalg.norm(a.mean - b.mean))

    def summary_digest(self, summary: GaussianSummary) -> bytes:
        return digest_arrays(summary.mean, summary.cov)

    # ------------------------------------------------------------------
    # Expectation Maximization partitioning (Section 5.2)
    # ------------------------------------------------------------------
    def partition(
        self,
        collections: Sequence[Collection],
        k: int,
        quantization: Quantization,
    ) -> list[list[int]]:
        weights = np.array([float(collection.quanta) for collection in collections])
        means = np.stack([collection.summary.mean for collection in collections])
        covs = np.stack([collection.summary.cov for collection in collections])
        quanta = [collection.quanta for collection in collections]
        return self._partition_arrays(weights, means, covs, quanta, k, quantization)

    def _partition_arrays(
        self,
        weights: np.ndarray,
        means: np.ndarray,
        covs: np.ndarray,
        quanta: Sequence[int],
        k: int,
        quantization: Quantization,
    ) -> list[list[int]]:
        """Shared array-native core of the object and packed paths."""
        result = reduce_mixture(
            weights,
            means,
            covs,
            k,
            self._rng,
            max_iterations=self.reduction_iterations,
            build_model=False,
        )
        groups = [list(group) for group in result.groups]
        return self._enforce_minimum_weight_rule(groups, quanta, means, quantization)

    # ------------------------------------------------------------------
    # Packed hot path
    # ------------------------------------------------------------------
    def pack_summaries(self, summaries: Sequence[GaussianSummary]) -> dict[str, np.ndarray]:
        return {
            "mean": np.stack([summary.mean for summary in summaries]),
            "cov": np.stack([summary.cov for summary in summaries]),
        }

    def pack_values(self, values: Sequence[Any]) -> dict[str, np.ndarray]:
        array = np.asarray(values, dtype=float)
        if array.ndim == 1:
            array = array[:, None]
        count, dimension = array.shape
        return {
            "mean": np.ascontiguousarray(array),
            "cov": np.zeros((count, dimension, dimension)),
        }

    def unpack_summary(
        self, columns: dict[str, np.ndarray], index: int
    ) -> GaussianSummary:
        return GaussianSummary.trusted(
            np.array(columns["mean"][index], dtype=float),
            np.array(columns["cov"][index], dtype=float),
        )

    def partition_packed(
        self,
        packed: PackedState,
        k: int,
        quantization: Quantization,
    ) -> list[list[int]]:
        return self._partition_arrays(
            packed.weights(),
            packed.columns["mean"],
            packed.columns["cov"],
            packed.quanta,
            k,
            quantization,
        )

    def merge_set_packed(
        self, packed: PackedState, group: Sequence[int]
    ) -> GaussianSummary:
        idx = np.asarray(group, dtype=np.intp)
        mean, cov = pool_moments(
            packed.quanta[idx].astype(float),
            packed.columns["mean"][idx],
            packed.columns["cov"][idx],
        )
        return GaussianSummary.trusted(mean, cov)

    def merge_groups_columns(
        self, packed: PackedState, groups: Sequence[Sequence[int]]
    ) -> dict[str, np.ndarray]:
        means, covs = pool_moments_groups(
            packed.quanta, packed.columns["mean"], packed.columns["cov"], groups
        )
        return {"mean": means, "cov": covs}

    def digest_row(self, columns: dict[str, np.ndarray], index: int) -> bytes:
        return digest_arrays(columns["mean"][index], columns["cov"][index])

    @staticmethod
    def _enforce_minimum_weight_rule(
        groups: list[list[int]],
        quanta: Sequence[int],
        means: np.ndarray,
        quantization: Quantization,
    ) -> list[list[int]]:
        """Fold lone minimum-weight collections into their nearest group.

        Section 4.1's conformance rule 2: no partition group may consist of
        a single collection of weight ``q``.  EM occasionally isolates such
        a collection; it is then attached to the group with the nearest
        mean, which is also what the likelihood objective would prefer
        among the feasible repairs.
        """
        if len(quanta) <= 1:
            return groups
        repaired = True
        while repaired and len(groups) > 1:
            repaired = False
            for g, group in enumerate(groups):
                is_lone_minimum = len(group) == 1 and quantization.is_minimum(
                    int(quanta[group[0]])
                )
                if not is_lone_minimum:
                    continue
                lone_mean = means[group[0]]
                best: Optional[int] = None
                best_distance = np.inf
                for other_index, other in enumerate(groups):
                    if other_index == g:
                        continue
                    other_mean = np.mean(means[list(other)], axis=0)
                    distance = float(np.linalg.norm(lone_mean - other_mean))
                    if distance < best_distance:
                        best_distance = distance
                        best = other_index
                assert best is not None
                groups[best].extend(group)
                del groups[g]
                repaired = True
                break
        return groups
