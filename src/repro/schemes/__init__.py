"""Instantiations of the generic algorithm's summary-scheme contract.

Three schemes ship with the library:

- :class:`~repro.schemes.centroid.CentroidScheme` — Algorithm 2, the
  k-means-style running example;
- :class:`~repro.schemes.gm.GaussianMixtureScheme` — Section 5's novel
  Gaussian-Mixture algorithm with EM partitioning;
- :class:`~repro.schemes.histogram.HistogramScheme` — a 1-D histogram
  scheme modelling the related work the paper contrasts against;
- :class:`~repro.schemes.diagonal.DiagonalGaussianScheme` — the
  lightweight-sensor Gaussian variant with O(d) summaries.

All four satisfy requirements R1-R4, so Theorem 1's convergence guarantee
applies to each.
"""

from repro.schemes.centroid import CentroidScheme, greedy_closest_pair_partition
from repro.schemes.diagonal import DiagonalGaussianScheme, diagonalize
from repro.schemes.gaussian import (
    GaussianSummary,
    classification_to_gmm,
    merge_gaussian_summaries,
    summary_from_value,
)
from repro.schemes.gm import GaussianMixtureScheme
from repro.schemes.histogram import HistogramScheme

__all__ = [
    "CentroidScheme",
    "DiagonalGaussianScheme",
    "GaussianMixtureScheme",
    "GaussianSummary",
    "HistogramScheme",
    "classification_to_gmm",
    "diagonalize",
    "greedy_closest_pair_partition",
    "merge_gaussian_summaries",
    "summary_from_value",
]
