"""The centroids instantiation (Algorithm 2): k-means-style classification.

Summaries are collection centroids (weighted averages of the values), the
summary domain equals the value domain R^d, ``d_S`` is the L2 distance
between centroids, and ``partition`` greedily merges the closest groups
until the ``k`` bound is met.  This is the paper's running example of the
generic algorithm and the distributed analogue of k-means.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.core.collection import Collection
from repro.core.fingerprint import digest_arrays
from repro.core.packed import PackedState
from repro.core.scheme import SummaryScheme
from repro.core.weights import Quantization
from repro.obs.profiling import span

__all__ = ["CentroidScheme", "greedy_closest_pair_partition"]


def greedy_closest_pair_partition(
    positions: np.ndarray,
    weights: np.ndarray,
    quanta: Sequence[int],
    k: int,
    quantization: Quantization,
) -> list[list[int]]:
    """Algorithm 2's ``partition``: repeatedly merge the closest groups.

    ``positions`` are the points the distance is measured between (the
    centroids, or any scheme's summary embedding); groups are merged by
    weighted average of their positions, exactly as the resulting merged
    collection's centroid would move.

    Two conformance rules are enforced: minimum-weight (one-quantum)
    collections are first merged with their nearest group, and merging
    continues until at most ``k`` groups remain.

    The closest pair is tracked through a squared-distance matrix that is
    updated incrementally per merge (one recomputed row/column), instead
    of rescanning all pairs with per-pair norm calls — the rescan made
    this O(l^3) Python-level work per partition.  Squared distances order
    pairs exactly like distances, so the greedy choices are unchanged up
    to exact-tie rounding of ``sqrt``.
    """
    positions = np.atleast_2d(np.asarray(positions, dtype=float))
    weights = np.asarray(weights, dtype=float)
    n = positions.shape[0]
    if n == 0:
        raise ValueError("cannot partition zero collections")

    with span("schemes.greedy_partition"):
        groups: list[list[int]] = [[i] for i in range(n)]
        points = positions.copy()
        masses = weights.astype(float, copy=True)
        has_heavy = np.fromiter(
            (not quantization.is_minimum(int(q)) for q in quanta), dtype=bool, count=n
        )
        deltas = points[:, None, :] - points[None, :, :]
        distances_sq = np.einsum("abd,abd->ab", deltas, deltas)
        np.fill_diagonal(distances_sq, np.inf)

        def merge(a: int, b: int) -> None:
            """Fold group ``b`` into group ``a`` (requires ``a < b``)."""
            nonlocal points, masses, has_heavy, distances_sq
            total = masses[a] + masses[b]
            if not np.array_equal(points[a], points[b]):
                # Coincident points average to themselves; skipping the
                # arithmetic keeps the result byte-exact (no float dust),
                # which converged states rely on for content addressing.
                points[a] = (masses[a] * points[a] + masses[b] * points[b]) / total
            masses[a] = total
            groups[a].extend(groups[b])
            has_heavy[a] = True  # merged groups always have >= 2 members
            del groups[b]
            keep = np.arange(points.shape[0]) != b
            points = points[keep]
            masses = masses[keep]
            has_heavy = has_heavy[keep]
            distances_sq = distances_sq[np.ix_(keep, keep)]
            row = ((points - points[a]) ** 2).sum(axis=1)
            distances_sq[a, :] = row
            distances_sq[:, a] = row
            distances_sq[a, a] = np.inf

        # Rule 2: merge every minimum-weight singleton with its nearest group.
        while len(groups) > 1:
            lonely = next(
                (
                    g
                    for g in range(len(groups))
                    if len(groups[g]) == 1 and not has_heavy[g]
                ),
                None,
            )
            if lonely is None:
                break
            other = int(np.argmin(distances_sq[lonely]))
            merge(min(lonely, other), max(lonely, other))

        # Rule 1: enforce the k bound by merging closest pairs.
        while len(groups) > k:
            a, b = divmod(int(np.argmin(distances_sq)), len(groups))
            merge(min(a, b), max(a, b))

    return groups


class CentroidScheme(SummaryScheme):
    """Summaries are centroids; the distributed analogue of k-means.

    ``val_to_summary`` is the identity on R^d (Algorithm 2), ``merge_set``
    the weighted average, and ``distance`` the L2 norm.  Satisfies R1-R4
    exactly (the weighted average of centroids *is* the centroid of the
    union), which the property tests verify.
    """

    # Below the k bound the greedy merge loops never fire (rule 2 only
    # triggers on minimum-weight collections, which the node fast path
    # excludes), so partition is the identity there.
    identity_below_k = True
    supports_packed = True
    supports_fingerprints = True
    identity_partition_style = "greedy"

    def val_to_summary(self, value: Any) -> np.ndarray:
        summary = np.atleast_1d(np.asarray(value, dtype=float))
        if summary.ndim != 1:
            raise ValueError(f"centroid values must be vectors, got shape {summary.shape}")
        return summary

    def merge_set(self, items: Sequence[tuple[np.ndarray, float]]) -> np.ndarray:
        if not items:
            raise ValueError("cannot merge an empty set")
        total = sum(weight for _, weight in items)
        if total <= 0:
            raise ValueError("merged weight must be positive")
        first = np.asarray(items[0][0], dtype=float)
        if all(np.array_equal(first, summary) for summary, _ in items[1:]):
            # Identical summaries merge to themselves, exactly (see the
            # greedy merge guard above — same byte-stability argument).
            return first.copy()
        merged = sum(weight * summary for summary, weight in items) / total
        return np.asarray(merged, dtype=float)

    def partition(
        self,
        collections: Sequence[Collection],
        k: int,
        quantization: Quantization,
    ) -> list[list[int]]:
        positions = np.stack([collection.summary for collection in collections])
        weights = np.array([float(collection.quanta) for collection in collections])
        quanta = [collection.quanta for collection in collections]
        return greedy_closest_pair_partition(positions, weights, quanta, k, quantization)

    # ------------------------------------------------------------------
    # Packed hot path
    # ------------------------------------------------------------------
    def pack_summaries(self, summaries: Sequence[np.ndarray]) -> dict[str, np.ndarray]:
        return {"position": np.stack([np.asarray(s, dtype=float) for s in summaries])}

    def pack_values(self, values: Sequence[Any]) -> dict[str, np.ndarray]:
        array = np.asarray(values, dtype=float)
        if array.ndim == 1:
            array = array[:, None]
        if array.ndim != 2:
            raise ValueError(f"centroid values must be vectors, got shape {array.shape}")
        return {"position": np.ascontiguousarray(array)}

    def unpack_summary(self, columns: dict[str, np.ndarray], index: int) -> np.ndarray:
        return np.array(columns["position"][index], dtype=float)

    def partition_packed(
        self,
        packed: PackedState,
        k: int,
        quantization: Quantization,
    ) -> list[list[int]]:
        return greedy_closest_pair_partition(
            packed.columns["position"], packed.weights(), packed.quanta, k, quantization
        )

    def merge_set_packed(self, packed: PackedState, group: Sequence[int]) -> np.ndarray:
        # Mirrors merge_set's sequential weighted average exactly (same
        # accumulation order), so both paths round identically.
        positions = packed.columns["position"]
        quanta = packed.quanta
        first = positions[group[0]]
        if all(np.array_equal(first, positions[i]) for i in group[1:]):
            return np.asarray(first, dtype=float).copy()
        total = sum(float(quanta[i]) for i in group)
        merged = sum(float(quanta[i]) * positions[i] for i in group) / total
        return np.asarray(merged, dtype=float)

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        return float(np.linalg.norm(np.asarray(a, dtype=float) - np.asarray(b, dtype=float)))

    def summary_digest(self, summary: np.ndarray) -> bytes:
        return digest_arrays(np.asarray(summary, dtype=float))
