"""The centroids instantiation (Algorithm 2): k-means-style classification.

Summaries are collection centroids (weighted averages of the values), the
summary domain equals the value domain R^d, ``d_S`` is the L2 distance
between centroids, and ``partition`` greedily merges the closest groups
until the ``k`` bound is met.  This is the paper's running example of the
generic algorithm and the distributed analogue of k-means.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.core.collection import Collection
from repro.core.scheme import SummaryScheme
from repro.core.weights import Quantization

__all__ = ["CentroidScheme", "greedy_closest_pair_partition"]


def greedy_closest_pair_partition(
    positions: np.ndarray,
    weights: np.ndarray,
    quanta: Sequence[int],
    k: int,
    quantization: Quantization,
) -> list[list[int]]:
    """Algorithm 2's ``partition``: repeatedly merge the closest groups.

    ``positions`` are the points the distance is measured between (the
    centroids, or any scheme's summary embedding); groups are merged by
    weighted average of their positions, exactly as the resulting merged
    collection's centroid would move.

    Two conformance rules are enforced: minimum-weight (one-quantum)
    collections are first merged with their nearest group, and merging
    continues until at most ``k`` groups remain.
    """
    positions = np.atleast_2d(np.asarray(positions, dtype=float))
    weights = np.asarray(weights, dtype=float)
    n = positions.shape[0]
    if n == 0:
        raise ValueError("cannot partition zero collections")

    group_indices: list[list[int]] = [[i] for i in range(n)]
    group_positions = [positions[i].copy() for i in range(n)]
    group_weights = [float(weights[i]) for i in range(n)]
    group_has_heavy = [not quantization.is_minimum(quanta[i]) for i in range(n)]

    def merge(a: int, b: int) -> None:
        """Fold group ``b`` into group ``a``."""
        total = group_weights[a] + group_weights[b]
        group_positions[a] = (
            group_weights[a] * group_positions[a] + group_weights[b] * group_positions[b]
        ) / total
        group_weights[a] = total
        group_indices[a].extend(group_indices[b])
        group_has_heavy[a] = True  # merged groups always have >= 2 members
        del group_indices[b], group_positions[b], group_weights[b], group_has_heavy[b]

    def nearest_pair(candidates_a: range | list[int]) -> tuple[int, int]:
        """Closest pair (a, b) with a from candidates and b any other group."""
        best = (np.inf, -1, -1)
        for a in candidates_a:
            for b in range(len(group_indices)):
                if a == b:
                    continue
                distance = float(np.linalg.norm(group_positions[a] - group_positions[b]))
                if distance < best[0]:
                    best = (distance, a, b)
        _, a, b = best
        return a, b

    # Rule 2: merge every minimum-weight singleton with its nearest group.
    while len(group_indices) > 1:
        lonely = [
            g
            for g in range(len(group_indices))
            if len(group_indices[g]) == 1 and not group_has_heavy[g]
        ]
        if not lonely:
            break
        a, b = nearest_pair([lonely[0]])
        merge(min(a, b), max(a, b))

    # Rule 1: enforce the k bound by merging closest pairs.
    while len(group_indices) > k:
        a, b = nearest_pair(range(len(group_indices)))
        merge(min(a, b), max(a, b))

    return group_indices


class CentroidScheme(SummaryScheme):
    """Summaries are centroids; the distributed analogue of k-means.

    ``val_to_summary`` is the identity on R^d (Algorithm 2), ``merge_set``
    the weighted average, and ``distance`` the L2 norm.  Satisfies R1-R4
    exactly (the weighted average of centroids *is* the centroid of the
    union), which the property tests verify.
    """

    def val_to_summary(self, value: Any) -> np.ndarray:
        summary = np.atleast_1d(np.asarray(value, dtype=float))
        if summary.ndim != 1:
            raise ValueError(f"centroid values must be vectors, got shape {summary.shape}")
        return summary

    def merge_set(self, items: Sequence[tuple[np.ndarray, float]]) -> np.ndarray:
        if not items:
            raise ValueError("cannot merge an empty set")
        total = sum(weight for _, weight in items)
        if total <= 0:
            raise ValueError("merged weight must be positive")
        merged = sum(weight * summary for summary, weight in items) / total
        return np.asarray(merged, dtype=float)

    def partition(
        self,
        collections: Sequence[Collection],
        k: int,
        quantization: Quantization,
    ) -> list[list[int]]:
        positions = np.stack([collection.summary for collection in collections])
        weights = np.array([float(collection.quanta) for collection in collections])
        quanta = [collection.quanta for collection in collections]
        return greedy_closest_pair_partition(positions, weights, quanta, k, quantization)

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        return float(np.linalg.norm(np.asarray(a, dtype=float) - np.asarray(b, dtype=float)))
