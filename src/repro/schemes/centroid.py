"""The centroids instantiation (Algorithm 2): k-means-style classification.

Summaries are collection centroids (weighted averages of the values), the
summary domain equals the value domain R^d, ``d_S`` is the L2 distance
between centroids, and ``partition`` greedily merges the closest groups
until the ``k`` bound is met.  This is the paper's running example of the
generic algorithm and the distributed analogue of k-means.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.core.collection import Collection
from repro.core.fingerprint import digest_arrays
from repro.core.packed import PackedState
from repro.core.scheme import SummaryScheme
from repro.core.weights import Quantization
from repro.native.kernels import greedy_partition, weighted_average_groups
from repro.obs.profiling import span

__all__ = ["CentroidScheme", "greedy_closest_pair_partition"]


def greedy_closest_pair_partition(
    positions: np.ndarray,
    weights: np.ndarray,
    quanta: Sequence[int],
    k: int,
    quantization: Quantization,
) -> list[list[int]]:
    """Algorithm 2's ``partition``: repeatedly merge the closest groups.

    ``positions`` are the points the distance is measured between (the
    centroids, or any scheme's summary embedding); groups are merged by
    weighted average of their positions, exactly as the resulting merged
    collection's centroid would move.

    Two conformance rules are enforced: minimum-weight (one-quantum)
    collections are first merged with their nearest group, and merging
    continues until at most ``k`` groups remain.

    The closest pair is tracked through a squared-distance matrix with
    merged-away groups masked to ``inf`` (one recomputed row/column per
    merge, no matrix reallocation); see
    :func:`repro.native.kernels.greedy_partition` for the loop itself
    and its byte-parity argument against the delete-based form.
    Squared distances order pairs exactly like distances, so the greedy
    choices are unchanged up to exact-tie rounding of ``sqrt``.
    """
    positions = np.atleast_2d(np.asarray(positions, dtype=float))
    weights = np.asarray(weights, dtype=float)
    n = positions.shape[0]
    if n == 0:
        raise ValueError("cannot partition zero collections")

    with span("schemes.greedy_partition"):
        has_heavy = np.fromiter(
            (not quantization.is_minimum(int(q)) for q in quanta), dtype=bool, count=n
        )
        return greedy_partition(positions, weights, has_heavy, k)


class CentroidScheme(SummaryScheme):
    """Summaries are centroids; the distributed analogue of k-means.

    ``val_to_summary`` is the identity on R^d (Algorithm 2), ``merge_set``
    the weighted average, and ``distance`` the L2 norm.  Satisfies R1-R4
    exactly (the weighted average of centroids *is* the centroid of the
    union), which the property tests verify.
    """

    # Below the k bound the greedy merge loops never fire (rule 2 only
    # triggers on minimum-weight collections, which the node fast path
    # excludes), so partition is the identity there.
    identity_below_k = True
    supports_packed = True
    supports_fingerprints = True
    identity_partition_style = "greedy"

    def val_to_summary(self, value: Any) -> np.ndarray:
        summary = np.atleast_1d(np.asarray(value, dtype=float))
        if summary.ndim != 1:
            raise ValueError(f"centroid values must be vectors, got shape {summary.shape}")
        return summary

    def merge_set(self, items: Sequence[tuple[np.ndarray, float]]) -> np.ndarray:
        if not items:
            raise ValueError("cannot merge an empty set")
        total = sum(weight for _, weight in items)
        if total <= 0:
            raise ValueError("merged weight must be positive")
        first = np.asarray(items[0][0], dtype=float)
        if all(np.array_equal(first, summary) for summary, _ in items[1:]):
            # Identical summaries merge to themselves, exactly (see the
            # greedy merge guard above — same byte-stability argument).
            return first.copy()
        merged = sum(weight * summary for summary, weight in items) / total
        return np.asarray(merged, dtype=float)

    def partition(
        self,
        collections: Sequence[Collection],
        k: int,
        quantization: Quantization,
    ) -> list[list[int]]:
        positions = np.stack([collection.summary for collection in collections])
        weights = np.array([float(collection.quanta) for collection in collections])
        quanta = [collection.quanta for collection in collections]
        return greedy_closest_pair_partition(positions, weights, quanta, k, quantization)

    # ------------------------------------------------------------------
    # Packed hot path
    # ------------------------------------------------------------------
    def pack_summaries(self, summaries: Sequence[np.ndarray]) -> dict[str, np.ndarray]:
        return {"position": np.stack([np.asarray(s, dtype=float) for s in summaries])}

    def pack_values(self, values: Sequence[Any]) -> dict[str, np.ndarray]:
        array = np.asarray(values, dtype=float)
        if array.ndim == 1:
            array = array[:, None]
        if array.ndim != 2:
            raise ValueError(f"centroid values must be vectors, got shape {array.shape}")
        return {"position": np.ascontiguousarray(array)}

    def unpack_summary(self, columns: dict[str, np.ndarray], index: int) -> np.ndarray:
        return np.array(columns["position"][index], dtype=float)

    def partition_packed(
        self,
        packed: PackedState,
        k: int,
        quantization: Quantization,
    ) -> list[list[int]]:
        return greedy_closest_pair_partition(
            packed.columns["position"], packed.weights(), packed.quanta, k, quantization
        )

    def merge_set_packed(self, packed: PackedState, group: Sequence[int]) -> np.ndarray:
        # Mirrors merge_set's sequential weighted average exactly (same
        # accumulation order), so both paths round identically.
        positions = packed.columns["position"]
        quanta = packed.quanta
        first = positions[group[0]]
        if all(np.array_equal(first, positions[i]) for i in group[1:]):
            return np.asarray(first, dtype=float).copy()
        total = sum(float(quanta[i]) for i in group)
        merged = sum(float(quanta[i]) * positions[i] for i in group) / total
        return np.asarray(merged, dtype=float)

    def merge_groups_columns(
        self, packed: PackedState, groups: Sequence[Sequence[int]]
    ) -> dict[str, np.ndarray]:
        return {
            "position": weighted_average_groups(
                packed.columns["position"], packed.quanta, groups
            )
        }

    def digest_row(self, columns: dict[str, np.ndarray], index: int) -> bytes:
        return digest_arrays(columns["position"][index])

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        return float(np.linalg.norm(np.asarray(a, dtype=float) - np.asarray(b, dtype=float)))

    def summary_digest(self, summary: np.ndarray) -> bytes:
        return digest_arrays(np.asarray(summary, dtype=float))
