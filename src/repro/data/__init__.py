"""Synthetic workload generators for the paper's experiments."""

from repro.data.generators import (
    OutlierScenario,
    fence_fire_mixture,
    fence_fire_values,
    load_scenario,
    outlier_scenario,
    standard_normal_values,
)

__all__ = [
    "OutlierScenario",
    "fence_fire_mixture",
    "fence_fire_values",
    "load_scenario",
    "outlier_scenario",
    "standard_normal_values",
]
