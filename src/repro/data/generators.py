"""Synthetic sensor workloads — the paper's three evaluation data sets.

The paper evaluates on synthetic data only (its setting is a simulated
1,000-node sensor network), so these generators *are* the original
workloads, parameterised exactly where the paper gives numbers:

- :func:`fence_fire_mixture` / :func:`fence_fire_values` — Section 5.3.1:
  temperature readings from sensors on a fence whose right side is near a
  fire; values are (position, temperature) pairs drawn from a 3-component
  Gaussian mixture in R^2 (Figure 2a).  The paper does not publish the
  component parameters, so representative ones are chosen to match the
  described geometry (ambient left/middle, hot correlated right).
- :func:`outlier_scenario` — Section 5.3.2: 950 values from the standard
  normal in R^2 plus 50 outliers from N((0, delta), 0.1*I) (Figure 3a).
- :func:`load_scenario` — the introduction's grid-computing motivation:
  machine loads concentrated around 10% and 90%.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.gaussian import density as normal_density
from repro.ml.gmm import GaussianMixtureModel

__all__ = [
    "fence_fire_mixture",
    "fence_fire_values",
    "OutlierScenario",
    "outlier_scenario",
    "load_scenario",
    "standard_normal_values",
]


def fence_fire_mixture() -> GaussianMixtureModel:
    """The Figure 2a source distribution: three Gaussians in R^2.

    Coordinates are (fence position, temperature).  Two ambient clusters
    sit on the left and middle of the fence at moderate temperature; the
    right-side cluster is hotter, with position-temperature correlation
    (closer to the fire means hotter), giving the tilted equidensity
    ellipse the paper's figure shows.
    """
    return GaussianMixtureModel(
        weights=np.array([0.40, 0.35, 0.25]),
        means=np.array(
            [
                [2.0, 20.0],  # left fence, ambient
                [6.0, 23.0],  # middle fence, ambient
                [9.5, 38.0],  # right fence, near the fire
            ]
        ),
        covs=np.array(
            [
                [[1.20, 0.10], [0.10, 1.50]],
                [[0.80, -0.30], [-0.30, 1.80]],
                [[0.60, 1.00], [1.00, 6.00]],
            ]
        ),
    )


def fence_fire_values(n: int, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """Draw the Figure 2b input set; returns ``(values, component_labels)``."""
    rng = np.random.default_rng(seed)
    return fence_fire_mixture().sample(rng, n)


@dataclass(frozen=True)
class OutlierScenario:
    """The Section 5.3.2 workload: mostly-good readings plus outliers.

    Attributes
    ----------
    values:
        All sensor readings, shape ``(n, 2)``; good values first.
    is_outlier_source:
        Boolean mask: True where the value was drawn from the outlier
        distribution (ground-truth provenance, used only by analysis).
    delta:
        The outlier-centre offset (the paper's sweep parameter).
    true_mean:
        The mean of the *good* distribution — the target of the robust
        average, always the origin here.
    """

    values: np.ndarray
    is_outlier_source: np.ndarray
    delta: float
    true_mean: np.ndarray

    @property
    def n(self) -> int:
        return int(self.values.shape[0])

    def density_outlier_indices(self, f_min: float) -> np.ndarray:
        """Indices the *paper* counts as outliers: density below ``f_min``.

        Section 5.3.2 defines outliers by probability density under the
        good (standard normal) distribution rather than by provenance —
        "Outliers are defined to be values with probability density lower
        than f_min" — so good-distribution values in the far tail count
        as outliers too.
        """
        d = self.values.shape[1]
        densities = normal_density(self.values, np.zeros(d), np.eye(d))
        return np.where(densities < f_min)[0]


def outlier_scenario(
    delta: float,
    n_good: int = 950,
    n_outliers: int = 50,
    seed: int = 0,
) -> OutlierScenario:
    """Generate the Figure 3a data set for a given outlier offset ``delta``."""
    if n_good < 1 or n_outliers < 0:
        raise ValueError("need at least one good value and non-negative outliers")
    rng = np.random.default_rng(seed)
    good = rng.standard_normal((n_good, 2))
    outliers = rng.standard_normal((n_outliers, 2)) * np.sqrt(0.1) + np.array([0.0, delta])
    values = np.vstack([good, outliers])
    mask = np.zeros(n_good + n_outliers, dtype=bool)
    mask[n_good:] = True
    return OutlierScenario(
        values=values,
        is_outlier_source=mask,
        delta=float(delta),
        true_mean=np.zeros(2),
    )


def standard_normal_values(n: int, dimension: int = 2, seed: int = 0) -> np.ndarray:
    """Plain N(0, I) readings — the crash-free averaging sanity workload."""
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, dimension))


def load_scenario(
    n: int,
    light_fraction: float = 0.5,
    light_mean: float = 10.0,
    heavy_mean: float = 90.0,
    spread: float = 6.0,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Machine loads for the introduction's load-balancing example.

    Returns ``(loads, is_heavy_source)``: 1-D load percentages, clipped to
    [0, 100], drawn around ``light_mean`` and ``heavy_mean``.
    """
    if not 0.0 < light_fraction < 1.0:
        raise ValueError("light_fraction must be strictly between 0 and 1")
    rng = np.random.default_rng(seed)
    n_light = int(round(n * light_fraction))
    n_heavy = n - n_light
    light = rng.normal(light_mean, spread, size=n_light)
    heavy = rng.normal(heavy_mean, spread, size=n_heavy)
    loads = np.clip(np.concatenate([light, heavy]), 0.0, 100.0)
    mask = np.zeros(n, dtype=bool)
    mask[n_light:] = True
    order = rng.permutation(n)
    return loads[order], mask[order]
