"""Structured run events and the sinks that collect them.

An :class:`Event` is one timestamped/round-stamped record of something the
system did: a message sent, delivered or dropped, a node crashing, a
collection split or merge, an EM iteration, a closed gossip round, a probe
sample, a timed span.  Engines and nodes emit events through a pluggable
:class:`EventSink`; with no sink installed, emission sites reduce to a
single ``None`` check, so tracing costs (almost) nothing when off.

The JSONL wire format (one compact JSON object per line, ``None`` fields
omitted) is what :mod:`repro.obs.report` consumes; the in-memory ring
buffer serves tests and interactive sessions.
"""

from __future__ import annotations

import abc
import json
from collections import deque
from dataclasses import dataclass
from typing import Any, Iterator

__all__ = [
    "EVENT_KINDS",
    "Event",
    "EventSink",
    "RingBufferSink",
    "JsonlSink",
    "CompositeSink",
]

#: Every event kind the reproduction emits.  ``send``/``deliver``/``drop``
#: and ``crash`` come from the engines' transport layer; ``round_close``
#: from the round engine; ``split``/``merge`` from Algorithm 1's two
#: atomic blocks inside :class:`~repro.core.node.ClassifierNode`;
#: ``em_step`` from the centralised EM comparator; ``probe`` from
#: :class:`~repro.network.trace.RunTracer`; ``span`` from profiling timers;
#: ``fastpath`` marks a receipt where the node adopted the pooled set
#: without running the scheme's partition (see ``docs/performance.md``);
#: ``cache`` marks a receipt served by the merge cache (``extra.path``
#: is ``"memo"`` or ``"noop"``) or, from the kernel, the quiescence
#: early exit (``extra.path`` ``"quiescent"``); ``telemetry`` carries one
#: per-round convergence sample from a
#: :class:`~repro.obs.timeseries.TimeSeriesRecorder`; ``metrics`` is a
#: final counter snapshot the kernel emits when a run ends early (the
#: quiescence exit), so truncated traces close with a complete summary.
EVENT_KINDS = frozenset(
    {
        "send",
        "deliver",
        "drop",
        "merge",
        "split",
        "crash",
        "round_close",
        "em_step",
        "probe",
        "span",
        "fastpath",
        "cache",
        "telemetry",
        "metrics",
    }
)


@dataclass(slots=True)
class Event:
    """One structured observation of a running system.

    Attributes
    ----------
    kind:
        One of :data:`EVENT_KINDS`.
    node:
        Primary actor (sender, crasher, merger); ``None`` when the event
        has no single node (e.g. an ``em_step`` of the centralised
        comparator).
    peer:
        Secondary party (the destination of a ``send``/``deliver``/
        ``drop``).
    round:
        Round stamp, for events produced under the round engine.  The
        transport events of round ``r`` and that round's ``round_close``
        all carry ``round == r`` (0-based); ``probe`` events carry the
        rounds-completed count (1-based), matching
        :attr:`~repro.network.trace.RoundRecord.round_index`.
    t:
        Simulation-time stamp, for events produced under the
        asynchronous engine.
    items:
        A size, when the event has one: payload items for ``send``,
        collections sent for ``split``, the iteration number for
        ``em_step``.
    extra:
        Kind-specific payload (e.g. ``{"messages": ..., "live": ...}``
        for ``round_close``, probe values for ``probe``, ``{"name": ...,
        "duration": ...}`` for ``span``).
    """

    kind: str
    node: int | None = None
    peer: int | None = None
    round: int | None = None
    t: float | None = None
    items: int | None = None
    extra: dict[str, Any] | None = None

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown event kind {self.kind!r}; expected one of {sorted(EVENT_KINDS)}"
            )

    def to_json_dict(self) -> dict[str, Any]:
        """The JSONL representation: ``None`` fields dropped."""
        record: dict[str, Any] = {"kind": self.kind}
        for name in ("node", "peer", "round", "t", "items"):
            value = getattr(self, name)
            if value is not None:
                record[name] = value
        if self.extra:
            record["extra"] = self.extra
        return record


class EventSink(abc.ABC):
    """Destination for emitted events.

    Sinks must tolerate high emission rates (one ``send`` per message);
    implementations should keep :meth:`emit` allocation-light.  They are
    context managers: leaving the ``with`` block closes them.
    """

    @abc.abstractmethod
    def emit(self, event: Event) -> None:
        """Record one event."""

    def flush(self) -> None:
        """Push buffered events to durable storage; no-op by default.

        Engines call this at run boundaries (including early exits) so a
        reader tailing a file-backed sink — e.g. ``repro.obs.monitor`` —
        sees complete lines even while the run is still alive.
        """

    def close(self) -> None:
        """Flush and release resources; idempotent."""

    def __enter__(self) -> "EventSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class RingBufferSink(EventSink):
    """Keep the most recent ``capacity`` events in memory.

    The default sink for tests and interactive debugging: bounded, so it
    can observe arbitrarily long runs without growing without bound.
    """

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be at least 1, got {capacity}")
        self.capacity = capacity
        self._events: deque[Event] = deque(maxlen=capacity)

    def emit(self, event: Event) -> None:
        self._events.append(event)

    @property
    def events(self) -> list[Event]:
        """The retained events, oldest first."""
        return list(self._events)

    def of_kind(self, kind: str) -> list[Event]:
        """Retained events of one kind, oldest first."""
        return [event for event in self._events if event.kind == kind]

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)


class JsonlSink(EventSink):
    """Append events to a JSONL file, one compact object per line.

    The file is created (truncated) at construction, so even an eventless
    run leaves a valid — empty — trace behind for the report CLI.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._file = open(self.path, "w", encoding="utf-8")
        self.emitted = 0

    def emit(self, event: Event) -> None:
        if self._file is None:
            raise ValueError(f"sink for {self.path!r} is closed")
        json.dump(event.to_json_dict(), self._file, separators=(",", ":"))
        self._file.write("\n")
        self.emitted += 1

    def flush(self) -> None:
        if self._file is not None:
            self._file.flush()

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None


class CompositeSink(EventSink):
    """Fan one event stream out to several sinks (e.g. ring + file)."""

    def __init__(self, *sinks: EventSink) -> None:
        if not sinks:
            raise ValueError("a composite sink needs at least one child")
        self.sinks = tuple(sinks)

    def emit(self, event: Event) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def flush(self) -> None:
        for sink in self.sinks:
            sink.flush()

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()
