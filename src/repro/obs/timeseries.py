"""Per-round convergence telemetry (the ``repro.obs`` v2 time series).

The paper's claims are about *trajectories* — how fast gossip drives every
node's summary set to the common fixpoint, and what that costs in messages
— but events and end-of-run totals only let you reconstruct those curves
after the fact.  This module records them live:

- :class:`TelemetryConfig` — what to sample and how often (the stride is
  what keeps a 100k-node run O(rounds), not O(rounds x nodes));
- :class:`TimeSeriesRecorder` — a memory-bounded recorder the
  :class:`~repro.network.kernel.SimulationKernel` feeds once per closed
  round (per round-equivalent epoch on the Poisson scheduler);
- :class:`TelemetryHub` + :func:`telemetry` — the ambient scope that
  hands recorders to kernels built inside it, mirroring
  :func:`repro.obs.context.tracing`.

Each sample is one flat ``dict[str, float | int]`` so every exporter
(JSONL, Prometheus text, the sweep store's ``timeseries`` table — see
:mod:`repro.obs.exporters`) consumes the same rows.

Telemetry is strictly read-only with respect to the simulation: it never
touches the kernel's RNG and never mutates protocol state, so runs are
byte-identical with telemetry on or off (pinned by
``tests/integration/test_telemetry_parity.py``).
"""

from __future__ import annotations

import math
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator, Optional

from repro.obs.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.kernel import SimulationKernel

__all__ = [
    "TelemetryConfig",
    "TimeSeriesRecorder",
    "TelemetryHub",
    "telemetry",
    "current_hub",
]


@dataclass(frozen=True)
class TelemetryConfig:
    """What a :class:`TimeSeriesRecorder` samples, and how often.

    Parameters
    ----------
    stride:
        Sample every ``stride``-th closed round-equivalent (round 0 is
        always sampled).  The expensive gauges — distinct fingerprints,
        weight census — walk every live node, so the per-run telemetry
        cost is ``O(rounds / stride * nodes)``; pick a stride that makes
        that negligible next to the simulation itself (the overhead
        benchmark pins stride 10 at <= 5% on the 1,000-node GM round).
    max_samples:
        Upper bound on retained samples; older samples fall off the
        front, so telemetry memory is bounded regardless of run length.
    emit_events:
        Mirror each sample into the kernel's event sink as a
        ``telemetry`` event, which is what the live monitor tails.
    """

    stride: int = 1
    max_samples: int = 100_000
    emit_events: bool = True

    def __post_init__(self) -> None:
        if self.stride < 1:
            raise ValueError(f"stride must be at least 1, got {self.stride}")
        if self.max_samples < 1:
            raise ValueError(
                f"max_samples must be at least 1, got {self.max_samples}"
            )


class TimeSeriesRecorder:
    """Memory-bounded per-round convergence gauges for one kernel.

    The kernel calls :meth:`observe_round` from ``emit_round_close``
    after every closed round-equivalent; on stride rounds the recorder
    walks the live nodes once and appends one flat sample row.

    Gauge columns (all per sample; counters are *window deltas* since the
    previous sample, gauges are instantaneous):

    ``round``, ``t``
        The round-equivalent index (see ``docs/observability.md`` for
        the epoch <-> round mapping) and, on the Poisson scheduler, the
        simulation clock.
    ``live``, ``crashed_window``
        Live-node census and crashes since the last sample.
    ``distinct_fingerprints``
        Number of distinct summary-level fingerprints across live nodes
        — the convergence gauge; reaches 1 at the common fixpoint.
        ``NaN`` when the protocol or scheme cannot answer.
    ``distinct_summaries``
        Size of the union of per-collection summary digests over live
        nodes (how many distinct class summaries exist system-wide).
    ``quiescent_fraction``
        Fraction of live nodes already holding the modal fingerprint.
    ``node_quanta``, ``in_flight_quanta``, ``total_quanta``
        The weight census: quanta held at live nodes, quanta travelling
        inside channels, and their sum — mass conservation says
        ``total_quanta`` is constant until a crash drops weight.
    ``messages_window``, ``payload_items_window``, ``delivered_window``,
    ``dropped_window``, ``bytes_window``
        Message complexity over the window; bytes use the scheme's wire
        codec (``NaN`` when no codec is registered for the scheme).
    ``frames_window``, ``transport_bytes_window``, ``reconnects_window``,
    ``peer_count``
        The transport's own accounting (see
        :class:`~repro.network.transport.TransportStats`): frame units
        and *actually serialised* bytes moved over the window, plus the
        live-peer gauge.  On the in-memory transport frames mirror
        messages and bytes stay 0 (payloads travel as objects);
        ``bytes_window`` above remains the codec-estimated wire cost.
    ``em_iterations_window``
        Hard-EM iterations spent in ``reduce_mixture`` over the window
        (process-wide counter, so only meaningful single-kernel).
    ``cache_hit_ratio``, ``cache_noop_ratio``
        Cumulative merge-cache memo-hit and certified-no-op fractions of
        all lookups (``NaN`` without a cache or before the first lookup).
    """

    def __init__(self, config: Optional[TelemetryConfig] = None) -> None:
        self.config = config if config is not None else TelemetryConfig()
        self._samples: deque[dict[str, Any]] = deque(maxlen=self.config.max_samples)
        #: Rounds observed (not all sampled), for stride bookkeeping.
        self.rounds_observed = 0
        #: Rounds actually sampled.
        self.rounds_sampled = 0
        # Cumulative counter values at the previous sample, for windows.
        self._last_counters: Optional[dict[str, float]] = None
        # Lazily probed wire cost: (header_bytes, per_item_bytes), or
        # None once probing failed for this kernel's scheme.
        self._wire_cost: Optional[tuple[int, int]] = None
        self._wire_probed = False
        # The EM-iteration counter is process-global; baseline it now so
        # the first window covers only work after this recorder existed
        # (and serial vs pooled sweeps report identical windows).
        from repro.ml.reduction import em_iterations_total

        self._em_baseline = float(em_iterations_total())

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def observe_round(
        self, kernel: "SimulationKernel", round_index: int, t: Optional[float]
    ) -> Optional[dict[str, Any]]:
        """Observe one closed round-equivalent; sample on stride rounds.

        Returns the sample row when one was taken, else ``None``.
        """
        self.rounds_observed += 1
        if round_index % self.config.stride != 0:
            return None
        sample = self._sample(kernel, round_index, t)
        self._samples.append(sample)
        self.rounds_sampled += 1
        if self.config.emit_events and kernel.event_sink is not None:
            kernel.event_sink.emit(
                Event(kind="telemetry", round=round_index, t=t, extra=dict(sample))
            )
        return sample

    def _sample(
        self, kernel: "SimulationKernel", round_index: int, t: Optional[float]
    ) -> dict[str, Any]:
        sample: dict[str, Any] = {"round": round_index}
        if t is not None:
            sample["t"] = t
        sample["live"] = len(kernel.live)
        self._convergence_gauges(kernel, sample)
        self._weight_gauges(kernel, sample)
        self._counter_windows(kernel, sample)
        self._cache_gauges(kernel, sample)
        return sample

    def _convergence_gauges(
        self, kernel: "SimulationKernel", sample: dict[str, Any]
    ) -> None:
        fingerprints: dict[bytes, int] = {}
        digests: set[bytes] = set()
        for node_id in kernel.live:
            node = getattr(kernel.protocols[node_id], "node", None)
            if node is None:
                break
            fingerprint = node.summary_fingerprint()
            if fingerprint is None:
                break
            fingerprints[fingerprint] = fingerprints.get(fingerprint, 0) + 1
            digests.update(node.summary_digests() or ())
        else:
            if fingerprints:
                sample["distinct_fingerprints"] = len(fingerprints)
                sample["distinct_summaries"] = len(digests)
                sample["quiescent_fraction"] = max(fingerprints.values()) / sum(
                    fingerprints.values()
                )
                return
        # Protocol without classifier nodes (push-sum) or scheme without
        # fingerprints: the convergence gauges are honest NaNs.
        sample["distinct_fingerprints"] = math.nan
        sample["distinct_summaries"] = math.nan
        sample["quiescent_fraction"] = math.nan

    def _weight_gauges(self, kernel: "SimulationKernel", sample: dict[str, Any]) -> None:
        node_quanta = 0
        have_quanta = True
        for node_id in kernel.live:
            node = getattr(kernel.protocols[node_id], "node", None)
            if node is None:
                have_quanta = False
                break
            node_quanta += node.total_quanta
        in_flight = 0
        if have_quanta:
            try:
                for payload in kernel.in_flight_payloads():
                    in_flight += sum(collection.quanta for collection in payload)
            except (AttributeError, TypeError):
                have_quanta = False
        if have_quanta:
            sample["node_quanta"] = node_quanta
            sample["in_flight_quanta"] = in_flight
            sample["total_quanta"] = node_quanta + in_flight
        else:
            sample["node_quanta"] = math.nan
            sample["in_flight_quanta"] = math.nan
            sample["total_quanta"] = math.nan

    def _counter_windows(
        self, kernel: "SimulationKernel", sample: dict[str, Any]
    ) -> None:
        from repro.ml.reduction import em_iterations_total

        metrics = kernel.metrics
        transport_stats = kernel.transport.stats
        current = {
            "messages": float(metrics.messages_sent),
            "payload_items": float(metrics.payload_items_sent),
            "delivered": float(metrics.messages_delivered),
            "dropped": float(metrics.messages_dropped),
            "crashed": float(metrics.crashes),
            "em_iterations": float(em_iterations_total()),
            "frames": float(transport_stats.frames_sent),
            "transport_bytes": float(transport_stats.bytes_sent),
            "reconnects": float(transport_stats.reconnects),
        }
        if self._last_counters is not None:
            previous = self._last_counters
        else:
            previous = dict.fromkeys(current, 0.0)
            previous["em_iterations"] = self._em_baseline
        sample["messages_window"] = int(current["messages"] - previous["messages"])
        sample["payload_items_window"] = int(
            current["payload_items"] - previous["payload_items"]
        )
        sample["delivered_window"] = int(current["delivered"] - previous["delivered"])
        sample["dropped_window"] = int(current["dropped"] - previous["dropped"])
        sample["crashed_window"] = int(current["crashed"] - previous["crashed"])
        sample["em_iterations_window"] = int(
            current["em_iterations"] - previous["em_iterations"]
        )
        sample["frames_window"] = int(current["frames"] - previous["frames"])
        sample["transport_bytes_window"] = int(
            current["transport_bytes"] - previous["transport_bytes"]
        )
        sample["reconnects_window"] = int(
            current["reconnects"] - previous["reconnects"]
        )
        sample["peer_count"] = transport_stats.peer_count
        cost = self._wire_cost_for(kernel)
        if cost is None:
            sample["bytes_window"] = math.nan
        else:
            header, per_item = cost
            sample["bytes_window"] = (
                sample["messages_window"] * header
                + sample["payload_items_window"] * per_item
            )
        self._last_counters = current

    def _cache_gauges(self, kernel: "SimulationKernel", sample: dict[str, Any]) -> None:
        cache = kernel.merge_cache
        if cache is None:
            sample["cache_hit_ratio"] = math.nan
            sample["cache_noop_ratio"] = math.nan
            return
        lookups = cache.hits + cache.misses
        sample["cache_hit_ratio"] = cache.hits / lookups if lookups else math.nan
        sample["cache_noop_ratio"] = cache.noop_hits / lookups if lookups else math.nan

    def _wire_cost_for(
        self, kernel: "SimulationKernel"
    ) -> Optional[tuple[int, int]]:
        """Wire cost (header bytes, per-collection bytes), probed once.

        Uses the public codec API so the byte gauge matches what
        ``encode_payload`` would actually put on the radio; any scheme
        without a registered codec degrades the gauge to ``NaN`` rather
        than failing the run.
        """
        if self._wire_probed:
            return self._wire_cost
        self._wire_probed = True
        try:
            from repro.core.serialization import codec_for_scheme, payload_size_bytes

            node = None
            for node_id in kernel.live:
                node = getattr(kernel.protocols[node_id], "node", None)
                if node is not None:
                    break
            if node is None:
                return None
            collections = list(node.classification)
            if not collections:
                return None
            import numpy as np

            summary = collections[0].summary
            mean = getattr(summary, "mean", None)
            if mean is not None:
                dimension = int(np.atleast_1d(np.asarray(mean)).shape[-1])
            else:
                dimension = int(np.atleast_1d(np.asarray(summary)).shape[-1])
            codec = codec_for_scheme(node.scheme, dimension)
            header = payload_size_bytes(0, codec)
            per_item = payload_size_bytes(1, codec) - header
            self._wire_cost = (header, per_item)
        except Exception:
            self._wire_cost = None
        return self._wire_cost

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def samples(self) -> list[dict[str, Any]]:
        """The retained sample rows, oldest first."""
        return list(self._samples)

    def series(self, name: str) -> list[Any]:
        """One gauge column across all retained samples."""
        return [sample.get(name) for sample in self._samples]

    def last(self) -> Optional[dict[str, Any]]:
        """The most recent sample, or ``None`` before the first."""
        return self._samples[-1] if self._samples else None

    def __len__(self) -> int:
        return len(self._samples)


class TelemetryHub:
    """Collects the recorders of every kernel built inside one scope.

    A sweep cell (or a figure script) may construct several engines; the
    hub keys each recorder by an ``engine`` ordinal so exported rows stay
    attributable.  :meth:`rows` flattens everything into exporter-ready
    records.
    """

    def __init__(self, config: Optional[TelemetryConfig] = None) -> None:
        self.config = config if config is not None else TelemetryConfig()
        self.recorders: list[TimeSeriesRecorder] = []

    def new_recorder(self) -> TimeSeriesRecorder:
        """A fresh recorder sharing the hub's config; registered here."""
        recorder = TimeSeriesRecorder(self.config)
        self.recorders.append(recorder)
        return recorder

    def rows(self) -> list[dict[str, Any]]:
        """Every sample of every recorder, tagged with its engine ordinal."""
        rows: list[dict[str, Any]] = []
        for engine_index, recorder in enumerate(self.recorders):
            for sample in recorder.samples:
                row = {"engine": engine_index}
                row.update(sample)
                rows.append(row)
        return rows


#: The ambient hub; ``None`` means telemetry is off (the default) and
#: kernels are built without a recorder.
_HUB: Optional[TelemetryHub] = None


def current_hub() -> Optional[TelemetryHub]:
    """The ambient telemetry hub, or ``None`` when telemetry is off."""
    return _HUB


def set_hub(hub: Optional[TelemetryHub]) -> Optional[TelemetryHub]:
    """Install ``hub`` as ambient; returns the previous one."""
    global _HUB
    previous = _HUB
    _HUB = hub
    return previous


@contextmanager
def telemetry(
    config: Optional[TelemetryConfig] = None,
    hub: Optional[TelemetryHub] = None,
) -> Iterator[TelemetryHub]:
    """Scope within which new kernels record convergence time series.

    Mirrors :func:`repro.obs.context.tracing`: any
    :class:`~repro.network.kernel.SimulationKernel` constructed inside
    the ``with`` block (without an explicit ``telemetry`` argument)
    attaches a recorder from this hub.  The previous ambient hub is
    restored on exit, so scopes nest.
    """
    active = hub if hub is not None else TelemetryHub(config)
    previous = set_hub(active)
    try:
        yield active
    finally:
        set_hub(previous)
