"""Exporters for telemetry time series.

One telemetry run produces flat sample rows (see
:mod:`repro.obs.timeseries`); this module ships them in three shapes:

- :func:`write_jsonl` / :func:`to_jsonl_lines` — one compact JSON object
  per sample, the same stream format the live monitor tails;
- :func:`to_prometheus_text` / :func:`write_prometheus` — the Prometheus
  text exposition format (``# TYPE`` headers, one ``repro_<gauge>``
  sample per row with ``round``/``engine`` labels), so the curves drop
  into any Prometheus-compatible scraper or ``promtool`` check;
- :func:`export_to_store` — rows into the ``timeseries`` table of a
  :class:`repro.sweep.store.ResultStore`, which is how sweep cells
  persist their convergence curves next to their results.

All exporters consume the same ``list[dict]`` rows, so anything that can
produce such rows (a recorder, a hub, a parsed JSONL stream) can use any
of them.
"""

from __future__ import annotations

import json
import math
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sweep.store import ResultStore

__all__ = [
    "to_jsonl_lines",
    "write_jsonl",
    "to_prometheus_text",
    "write_prometheus",
    "export_to_store",
]

#: Prefix applied to every exported Prometheus metric name.
_PROM_PREFIX = "repro_"

#: Row keys that identify a sample rather than carry a gauge value.
_IDENTITY_KEYS = frozenset({"round", "t", "engine"})


def to_jsonl_lines(rows: Iterable[Mapping[str, Any]]) -> list[str]:
    """One compact JSON object per sample row, NaNs encoded as ``null``."""
    lines = []
    for row in rows:
        clean = {
            key: (None if isinstance(value, float) and math.isnan(value) else value)
            for key, value in row.items()
        }
        lines.append(json.dumps(clean, separators=(",", ":"), sort_keys=True))
    return lines


def write_jsonl(rows: Iterable[Mapping[str, Any]], path: str) -> int:
    """Write the JSONL export; returns the number of rows written."""
    lines = to_jsonl_lines(rows)
    with open(path, "w", encoding="utf-8") as handle:
        for line in lines:
            handle.write(line + "\n")
    return len(lines)


def _prom_name(key: str) -> str:
    """A row key as a Prometheus metric name (lowercase, word chars only)."""
    cleaned = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in key.lower())
    return _PROM_PREFIX + cleaned


def to_prometheus_text(rows: Sequence[Mapping[str, Any]]) -> str:
    """The rows in the Prometheus text exposition format.

    Every non-identity column becomes one untyped gauge family named
    ``repro_<column>``; each sample carries ``round`` (and ``engine``,
    when present) as labels.  NaN values are skipped — Prometheus has no
    notion of "gauge not applicable".
    """
    families: dict[str, list[str]] = {}
    for row in rows:
        labels = []
        if "engine" in row:
            labels.append(f'engine="{row["engine"]}"')
        if "round" in row:
            labels.append(f'round="{row["round"]}"')
        label_text = "{" + ",".join(labels) + "}" if labels else ""
        for key, value in row.items():
            if key in _IDENTITY_KEYS or value is None:
                continue
            if isinstance(value, float) and math.isnan(value):
                continue
            name = _prom_name(key)
            samples = families.setdefault(name, [])
            samples.append(f"{name}{label_text} {value}")
    chunks = []
    for name in sorted(families):
        chunks.append(f"# TYPE {name} gauge")
        chunks.extend(families[name])
    return "\n".join(chunks) + ("\n" if chunks else "")


def write_prometheus(rows: Sequence[Mapping[str, Any]], path: str) -> int:
    """Write the Prometheus text export; returns the sample-line count."""
    text = to_prometheus_text(rows)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return sum(1 for line in text.splitlines() if line and not line.startswith("#"))


def export_to_store(
    store: "ResultStore",
    run_id: str,
    key: str,
    rows: Iterable[Mapping[str, Any]],
    engine: Optional[int] = None,
) -> int:
    """Persist sample rows into the store's ``timeseries`` table.

    Thin convenience over :meth:`repro.sweep.store.ResultStore.add_timeseries`
    so callers holding exporter-shaped rows need not know the table
    layout; returns the number of (row, gauge) points written.
    """
    return store.add_timeseries(run_id, key, rows, engine=engine)
