"""Live run monitor: tail a JSONL telemetry stream in the terminal.

``python -m repro.obs.monitor trace.jsonl`` follows a trace file that a
running experiment or sweep is writing (the kernel flushes its sink at
every sampled round when telemetry is on, so lines appear promptly) and
renders one human-readable line per telemetry sample plus health lines
for crashes, quiescence and the final metrics snapshot::

    round     42 | live  997 | classes   3 | agree  86.2% | msgs  997 | 51.8 KiB | cache 71%
    !! crash node=17 (round 43)
    == quiescent at round 57 (streak 3)
    == final: rounds=57 sent=56829 delivered=56829 dropped=0 crashes=1

Two modes:

- follow (default): poll the file for new complete lines every
  ``--interval`` seconds until interrupted or ``--max-idle`` seconds pass
  with no new data;
- ``--once``: render everything currently in the file and exit — the
  non-tailing mode CI smoke-tests use.

The reader is incremental and line-atomic: it remembers its byte offset
and never consumes a partial trailing line, so tailing a file mid-write
cannot misparse half a record.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time
from typing import Any, Optional, TextIO

__all__ = ["StreamFollower", "render_event", "follow", "main"]


class StreamFollower:
    """Incrementally read complete JSONL lines from a growing file.

    Each :meth:`poll` returns the records appended since the last poll.
    A trailing line without a newline is left for the next poll;
    malformed complete lines are counted in :attr:`skipped` and skipped —
    a live monitor must survive a writer crashing mid-stream.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._offset = 0
        self._partial = ""
        self.skipped = 0

    def poll(self) -> list[dict[str, Any]]:
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                handle.seek(self._offset)
                chunk = handle.read()
                self._offset = handle.tell()
        except FileNotFoundError:
            return []
        if not chunk:
            return []
        text = self._partial + chunk
        lines = text.split("\n")
        # The last element is either "" (chunk ended on a newline) or an
        # incomplete line still being written; hold it back either way.
        self._partial = lines.pop()
        records = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                self.skipped += 1
                continue
            if isinstance(record, dict) and "kind" in record:
                records.append(record)
            else:
                self.skipped += 1
        return records


def _format_bytes(count: float) -> str:
    if count >= 1024 * 1024:
        return f"{count / (1024 * 1024):.1f} MiB"
    if count >= 1024:
        return f"{count / 1024:.1f} KiB"
    return f"{int(count)} B"


def _is_number(value: Any) -> bool:
    """A finite int/float — NaN gauges (e.g. push-sum runs have no
    summary fingerprints) render as absent, not as a crash."""
    return isinstance(value, (int, float)) and not (
        isinstance(value, float) and math.isnan(value)
    )


def _stamp_of(record: dict[str, Any]) -> str:
    if record.get("round") is not None:
        return f"round {record['round']}"
    if record.get("t") is not None:
        return f"t={record['t']:.2f}"
    return "?"


def render_event(record: dict[str, Any]) -> Optional[str]:
    """One monitor line for a record, or ``None`` for kinds not shown."""
    kind = record.get("kind")
    extra = record.get("extra") or {}
    if kind == "telemetry":
        parts = [f"round {extra.get('round', record.get('round', '?')):>6}"]
        if extra.get("t") is not None:
            parts.append(f"t {extra['t']:>8.2f}")
        parts.append(f"live {extra.get('live', '?'):>5}")
        fingerprints = extra.get("distinct_fingerprints")
        if _is_number(fingerprints):
            parts.append(f"classes {int(fingerprints):>4}")
        fraction = extra.get("quiescent_fraction")
        if _is_number(fraction):
            parts.append(f"agree {fraction * 100:5.1f}%")
        messages = extra.get("messages_window")
        if _is_number(messages):
            parts.append(f"msgs {messages:>6}")
        size = extra.get("bytes_window")
        if _is_number(size):
            parts.append(_format_bytes(size))
        ratio = extra.get("cache_hit_ratio")
        if _is_number(ratio):
            parts.append(f"cache {ratio * 100:.0f}%")
        return " | ".join(parts)
    if kind == "crash":
        return f"!! crash node={record.get('node', '?')} ({_stamp_of(record)})"
    if kind == "cache" and extra.get("path") == "quiescent":
        return (
            f"== quiescent at {_stamp_of(record)} (streak {extra.get('streak', '?')})"
        )
    if kind == "metrics":
        fields = " ".join(
            f"{name}={extra[name]}"
            for name in (
                "rounds",
                "messages_sent",
                "messages_delivered",
                "messages_dropped",
                "crashes",
            )
            if name in extra
        )
        return f"== final: {fields}"
    return None


def follow(
    path: str,
    out: TextIO,
    once: bool = False,
    interval: float = 0.5,
    max_idle: Optional[float] = None,
) -> int:
    """Render monitor lines from ``path`` until done; returns rendered count.

    In follow mode the loop ends when ``max_idle`` seconds pass without
    new records (or on KeyboardInterrupt); ``once`` renders what is
    there now and returns immediately.
    """
    follower = StreamFollower(path)
    rendered = 0
    idle_since = time.monotonic()
    while True:
        records = follower.poll()
        for record in records:
            line = render_event(record)
            if line is not None:
                out.write(line + "\n")
                rendered += 1
        out.flush()
        if once:
            return rendered
        now = time.monotonic()
        if records:
            idle_since = now
        elif max_idle is not None and now - idle_since >= max_idle:
            return rendered
        try:
            time.sleep(interval)
        except KeyboardInterrupt:
            return rendered


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.monitor",
        description="Tail a JSONL telemetry stream and render live convergence lines.",
    )
    parser.add_argument("trace", help="path to the JSONL trace being written")
    parser.add_argument(
        "--once",
        action="store_true",
        help="render everything currently in the file and exit (no tailing)",
    )
    parser.add_argument(
        "--interval",
        type=float,
        default=0.5,
        help="seconds between polls in follow mode (default 0.5)",
    )
    parser.add_argument(
        "--max-idle",
        type=float,
        default=None,
        help="stop after this many seconds without new data (default: follow forever)",
    )
    args = parser.parse_args(argv)
    if not os.path.exists(args.trace):
        if args.once:
            print(f"error: no trace file at {args.trace}", file=sys.stderr)
            return 2
        print(f"waiting for {args.trace} ...", file=sys.stderr)
    try:
        rendered = follow(
            args.trace,
            sys.stdout,
            once=args.once,
            interval=args.interval,
            max_idle=args.max_idle,
        )
    except BrokenPipeError:
        # Piped into a consumer that stopped reading (head, grep -q).
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    if args.once and rendered == 0:
        print("(no telemetry lines in trace)", file=sys.stdout)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
