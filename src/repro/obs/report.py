"""Telemetry report CLI: replay a JSONL event trace into readable tables.

Usage::

    python -m repro.obs.report trace.jsonl
    python -m repro.obs.report trace.jsonl --top 20 --nodes 15
    python -m repro.obs.report trace.jsonl --collapsed profile.folded

Reads a trace written by :class:`~repro.obs.events.JsonlSink` (e.g. via
``python -m repro.experiments.run fig4 --trace trace.jsonl``) and renders,
with :mod:`repro.analysis.reporting`:

- an event census (count per kind);
- the message-complexity summary — totals, per-round message series,
  mean/max messages per round — reconstructed purely from ``send`` /
  ``deliver`` / ``drop`` / ``round_close`` events, so it can be checked
  against the engine's own :class:`~repro.network.metrics.NetworkMetrics`;
- the convergence time series from ``telemetry`` events (distinct
  fingerprints, agreement fraction, weight census, per-round cost);
- convergence curves from ``probe`` events (one column per probe name)
  and EM likelihood traces from ``em_step`` events;
- the partition fast-path summary (``fastpath`` events: how often nodes
  adopted the pooled set without running the scheme's partition);
- the merge-cache summary (``cache`` events: memoised receives,
  certified no-op receives, and the kernel's quiescence early exit);
- the crash timeline;
- per-node activity timelines (sends, receipts, drops, splits, merges,
  crash stamp);
- the profiled-span phase breakdown (inclusive/exclusive time per span
  name) plus the top-k slowest individual spans;
- the final ``metrics`` snapshot, when the run ended early on quiescence.

Every section always renders; one with no matching events says
``(no data)``, so degenerate traces — empty, cache disabled, crashed
early — produce a complete report rather than missing sections.
``--collapsed`` additionally writes the span events as a collapsed-stack
file (``path;to;span <microseconds>``) for flamegraph tools.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from collections import Counter, defaultdict
from typing import Any, Iterable, Optional

from repro.analysis.reporting import banner, format_series, format_table

__all__ = [
    "load_events",
    "render_report",
    "collapse_span_events",
    "write_collapsed",
    "main",
]

_NO_DATA = "(no data)"


def load_events(path: str) -> list[dict[str, Any]]:
    """Parse one JSONL trace file into a list of event dicts.

    Blank lines are ignored; malformed lines and records without a
    ``kind`` raise :class:`ValueError` naming the offending line.
    """
    events: list[dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(f"{path}:{line_number}: invalid JSON ({error})") from None
            if not isinstance(record, dict) or "kind" not in record:
                raise ValueError(f"{path}:{line_number}: event record lacks a 'kind'")
            events.append(record)
    return events


def _stamp(event: dict[str, Any]) -> str:
    """Human-readable stamp: round for the round engine, time for async."""
    if event.get("round") is not None:
        return f"round {event['round']}"
    if event.get("t") is not None:
        return f"t={event['t']:.3f}"
    return "-"


def _of_kind(events: list[dict[str, Any]], kind: str) -> list[dict[str, Any]]:
    return [event for event in events if event.get("kind") == kind]


def _empty(title: str) -> str:
    return f"{banner(title)}\n{_NO_DATA}"


def _summary_section(events: list[dict[str, Any]]) -> str:
    census = Counter(str(event.get("kind")) for event in events)
    if not census:
        return f"{banner('Event census')}\n(no events recorded)"
    rows = [[kind, count] for kind, count in sorted(census.items())]
    rows.append(["total", len(events)])
    return f"{banner('Event census')}\n{format_table(['kind', 'count'], rows)}"


def _message_section(events: list[dict[str, Any]]) -> str:
    census = Counter(str(event.get("kind")) for event in events)
    closes = _of_kind(events, "round_close")
    if not (census["send"] or closes):
        return _empty("Message complexity")
    lines = [banner("Message complexity")]
    totals = [
        ["messages_sent", census["send"]],
        ["messages_delivered", census["deliver"]],
        ["messages_dropped", census["drop"]],
        ["payload_items_sent", sum(e.get("items", 0) or 0 for e in _of_kind(events, "send"))],
        ["rounds", len(closes)],
    ]
    per_round = [int((e.get("extra") or {}).get("messages", 0)) for e in closes]
    if per_round:
        totals.append(["mean_messages_per_round", sum(per_round) / len(per_round)])
        totals.append(["max_messages_per_round", max(per_round)])
    lines.append(format_table(["metric", "value"], totals))
    if per_round:
        live = [(e.get("extra") or {}).get("live", "-") for e in closes]
        lines.append("")
        lines.append(
            format_series(
                "Per-round message counts",
                "round",
                [e.get("round", index) for index, e in enumerate(closes)],
                {"messages": per_round, "live_nodes": live},
            )
        )
    return "\n".join(lines)


#: The telemetry gauges worth a column in the plain-text series (the
#: full sample rows remain available in the trace / exporters).
_TELEMETRY_COLUMNS = (
    "live",
    "distinct_fingerprints",
    "quiescent_fraction",
    "total_quanta",
    "messages_window",
    "bytes_window",
    "em_iterations_window",
    "frames_window",
    "transport_bytes_window",
    "peer_count",
)


def _telemetry_section(events: list[dict[str, Any]]) -> str:
    samples = _of_kind(events, "telemetry")
    if not samples:
        return _empty("Convergence time series (telemetry samples)")
    x_values = [event.get("round", index) for index, event in enumerate(samples)]
    columns = {}
    for name in _TELEMETRY_COLUMNS:
        values = [(event.get("extra") or {}).get(name) for event in samples]
        if any(value is not None for value in values):
            columns[name] = [value if value is not None else "-" for value in values]
    return format_series(
        "Convergence time series (telemetry samples)", "round", x_values, columns
    )


def _convergence_section(events: list[dict[str, Any]]) -> str:
    probes = _of_kind(events, "probe")
    if not probes:
        return _empty("Convergence curves (probe samples)")
    names: list[str] = []
    for event in probes:
        for name in (event.get("extra") or {}):
            if name not in names:
                names.append(name)
    x_values = [event.get("round", index + 1) for index, event in enumerate(probes)]
    columns = {
        name: [(event.get("extra") or {}).get(name, float("nan")) for event in probes]
        for name in names
    }
    return format_series("Convergence curves (probe samples)", "round", x_values, columns)


def _em_section(events: list[dict[str, Any]]) -> str:
    steps = _of_kind(events, "em_step")
    if not steps:
        return _empty("EM iterations")
    rows = [
        [
            index + 1,
            step.get("items", "-"),
            (step.get("extra") or {}).get("log_likelihood", "-"),
        ]
        for index, step in enumerate(steps)
    ]
    # Long centralised fits would swamp the report; keep the tail.
    shown = rows[-25:]
    title = "EM iterations"
    if len(shown) < len(rows):
        title += f" (last {len(shown)} of {len(rows)})"
    return f"{banner(title)}\n{format_table(['#', 'iteration', 'log_likelihood'], shown)}"


def _fastpath_section(events: list[dict[str, Any]]) -> str:
    """Partition fast-path hit rate (``fastpath`` events vs merges run)."""
    hits = _of_kind(events, "fastpath")
    if not hits:
        return _empty("Partition fast path")
    partitions = len(_of_kind(events, "merge"))
    pooled = sum(event.get("items", 0) or 0 for event in hits)
    rows = [
        ["fastpath_hits", len(hits)],
        ["pooled_collections_adopted", pooled],
        ["merge_events", partitions],
    ]
    return f"{banner('Partition fast path')}\n{format_table(['metric', 'value'], rows)}"


def _cache_section(events: list[dict[str, Any]]) -> str:
    """Merge-cache activity (``cache`` events, by path)."""
    cached = _of_kind(events, "cache")
    if not cached:
        return _empty("Merge cache")
    paths = Counter(str((event.get("extra") or {}).get("path", "?")) for event in cached)
    receives = sum(1 for event in events if event.get("kind") in ("fastpath", "merge"))
    rows = [
        ["memoised_receives", paths.get("memo", 0)],
        ["certified_noop_receives", paths.get("noop", 0)],
        ["merge_events", receives],
    ]
    quiescent = [event for event in cached if (event.get("extra") or {}).get("path") == "quiescent"]
    if quiescent:
        rows.append(["quiescence_detected_at", _stamp(quiescent[0])])
    return f"{banner('Merge cache')}\n{format_table(['metric', 'value'], rows)}"


def _crash_section(events: list[dict[str, Any]]) -> str:
    crashes = _of_kind(events, "crash")
    if not crashes:
        return _empty("Crash timeline")
    rows = [[_stamp(event), event.get("node", "-")] for event in crashes]
    return f"{banner(f'Crash timeline ({len(crashes)} crashes)')}\n" + format_table(
        ["when", "node"], rows
    )


def _node_section(events: list[dict[str, Any]], limit: int) -> str:
    per_node: dict[int, Counter] = defaultdict(Counter)
    crashed_at: dict[int, str] = {}
    for event in events:
        kind = event.get("kind")
        node = event.get("node")
        if node is None:
            continue
        if kind in ("send", "split", "merge", "crash"):
            per_node[node][kind] += 1
        if kind in ("deliver", "drop"):
            peer = event.get("peer")
            if peer is not None:
                per_node[peer]["received" if kind == "deliver" else "lost"] += 1
        if kind == "crash":
            crashed_at[node] = _stamp(event)
    if not per_node:
        return _empty("Per-node timelines")
    ranked = sorted(per_node.items(), key=lambda item: (-item[1]["send"], item[0]))
    shown = ranked[: max(limit, 0)] or ranked
    rows = [
        [
            node,
            counts["send"],
            counts["received"],
            counts["lost"],
            counts["split"],
            counts["merge"],
            crashed_at.get(node, "-"),
        ]
        for node, counts in shown
    ]
    title = f"Per-node timelines (top {len(shown)} of {len(ranked)} nodes by sends)"
    headers = ["node", "sends", "received", "lost", "splits", "merges", "crashed"]
    return f"{banner(title)}\n{format_table(headers, rows)}"


def collapse_span_events(events: list[dict[str, Any]]) -> dict[tuple[str, ...], float]:
    """Aggregate ``span`` events into exclusive seconds per call path.

    Spans written by the stack-aware profiler carry ``extra.stack``
    (semicolon-joined path) and ``extra.self`` (exclusive seconds); older
    traces carry only name and duration, which degrade to a single-frame
    path with exclusive == inclusive.
    """
    totals: dict[tuple[str, ...], float] = defaultdict(float)
    for event in _of_kind(events, "span"):
        extra = event.get("extra") or {}
        name = str(extra.get("name", "?"))
        duration = float(extra.get("duration", 0.0))
        stack_text = extra.get("stack")
        stack = tuple(str(stack_text).split(";")) if stack_text else (name,)
        exclusive = float(extra.get("self", duration))
        totals[stack] += exclusive
    return dict(totals)


def write_collapsed(events: list[dict[str, Any]], path: str) -> int:
    """Write the flamegraph-ready collapsed-stack file; returns line count."""
    totals = collapse_span_events(events)
    with open(path, "w", encoding="utf-8") as handle:
        for stack in sorted(totals):
            handle.write(f"{';'.join(stack)} {int(totals[stack] * 1e6)}\n")
    return len(totals)


def _span_section(events: list[dict[str, Any]], top: int) -> str:
    spans = _of_kind(events, "span")
    if not spans:
        return _empty("Profiled spans")
    inclusive: dict[str, list[float]] = defaultdict(list)
    exclusive: dict[str, float] = defaultdict(float)
    for event in spans:
        extra = event.get("extra") or {}
        name = str(extra.get("name", "?"))
        duration = float(extra.get("duration", 0.0))
        inclusive[name].append(duration)
        exclusive[name] += float(extra.get("self", duration))
    rows = [
        [
            name,
            len(durations),
            sum(durations),
            exclusive[name],
            1e3 * sum(durations) / len(durations),
            1e3 * max(durations),
        ]
        for name, durations in inclusive.items()
    ]
    rows.sort(key=lambda row: -row[2])
    lines = [
        banner("Profiled spans"),
        format_table(
            ["span", "count", "total_s", "self_s", "mean_ms", "max_ms"], rows
        ),
    ]
    slowest = sorted(
        (
            (float((event.get("extra") or {}).get("duration", 0.0)), event)
            for event in spans
        ),
        key=lambda pair: -pair[0],
    )[: max(top, 0)]
    if slowest:
        lines.append("")
        lines.append(f"Top {len(slowest)} slowest spans:")
        lines.append(
            format_table(
                ["span", "duration_ms", "when"],
                [
                    [(event.get("extra") or {}).get("name", "?"), 1e3 * duration, _stamp(event)]
                    for duration, event in slowest
                ],
            )
        )
    return "\n".join(lines)


def _native_section() -> str:
    """Which receive/merge execution tier this interpreter would run.

    Environment-derived (``repro.native.status()``), not trace-derived:
    the tier that produced a trace is not recorded in it, so the report
    shows the tier *this* process resolves to — what a rerun would use.
    """
    from repro.native import status

    rows = [[name, value] for name, value in sorted(status().items())]
    return f"{banner('Execution tier (this interpreter)')}\n" + format_table(
        ["field", "value"], rows
    )


def _metrics_section(events: list[dict[str, Any]]) -> str:
    snapshots = _of_kind(events, "metrics")
    if not snapshots:
        return _empty("Final metrics snapshot")
    final = snapshots[-1]
    rows = [[name, value] for name, value in sorted((final.get("extra") or {}).items())]
    title = f"Final metrics snapshot ({_stamp(final)})"
    if not rows:
        return f"{banner(title)}\n{_NO_DATA}"
    return f"{banner(title)}\n{format_table(['metric', 'value'], rows)}"


def render_report(events: list[dict[str, Any]], top: int = 10, nodes: int = 10) -> str:
    """The full plain-text report for one parsed trace.

    Every section renders unconditionally; a section with no matching
    events carries a ``(no data)`` body, so empty, cache-less and
    crashed-early traces still produce the complete report skeleton.
    """
    sections: Iterable[str] = (
        _summary_section(events),
        _message_section(events),
        _telemetry_section(events),
        _convergence_section(events),
        _em_section(events),
        _fastpath_section(events),
        _cache_section(events),
        _crash_section(events),
        _node_section(events, nodes),
        _span_section(events, top),
        _metrics_section(events),
        _native_section(),
    )
    return "\n\n".join(sections)


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.obs.report",
        description="Summarise a JSONL event trace written with --trace / JsonlSink.",
    )
    parser.add_argument("trace", help="path to the .jsonl event log")
    parser.add_argument("--top", type=int, default=10, help="slowest spans to list")
    parser.add_argument("--nodes", type=int, default=10, help="nodes to show in timelines")
    parser.add_argument(
        "--collapsed",
        metavar="PATH",
        default=None,
        help="also write span events as a collapsed-stack file for flamegraph tools",
    )
    args = parser.parse_args(argv)
    try:
        events = load_events(args.trace)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    # The artifact is written before anything hits stdout, so piping the
    # report into head cannot lose the collapsed-stack file.
    written = (
        write_collapsed(events, args.collapsed) if args.collapsed is not None else None
    )
    try:
        print(render_report(events, top=args.top, nodes=args.nodes))
        if written is not None:
            print(f"\ncollapsed stacks: {written} paths -> {args.collapsed}")
    except BrokenPipeError:
        # Output piped into a consumer that stopped reading (head, grep -q).
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
    return 0


if __name__ == "__main__":
    sys.exit(main())
