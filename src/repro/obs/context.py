"""The process-wide tracing context.

Experiments build engines many layers below the CLI (``run_fig4`` alone
constructs four), so a ``--trace`` flag cannot realistically thread a sink
through every call signature.  Instead, a single module-level slot holds
the *ambient* sink: engines and nodes consult :func:`current_sink` at
construction time when no sink was passed explicitly, and hot code paths
(EM fits, profiling spans) consult it dynamically.

The default is ``None`` — no ambient sink, no behaviour change, and the
lookup is one global read.  :func:`tracing` installs a sink for the
duration of a ``with`` block and closes it on the way out.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.events import EventSink

__all__ = ["current_sink", "set_sink", "tracing"]

_SINK: Optional[EventSink] = None


def current_sink() -> Optional[EventSink]:
    """The ambient event sink, or ``None`` when tracing is off."""
    return _SINK


def set_sink(sink: Optional[EventSink]) -> Optional[EventSink]:
    """Install ``sink`` as the ambient sink; returns the previous one."""
    global _SINK
    previous = _SINK
    _SINK = sink
    return previous


@contextmanager
def tracing(sink: EventSink) -> Iterator[EventSink]:
    """Install ``sink`` for the duration of the block, then close it.

    Engines constructed inside the block pick the sink up automatically::

        with tracing(JsonlSink("trace.jsonl")):
            engine, nodes = build_classification_network(...)
            engine.run(50)
    """
    previous = set_sink(sink)
    try:
        yield sink
    finally:
        set_sink(previous)
        sink.close()
