"""Observability: event traces, telemetry time series, profiling, reports.

The paper's entire evaluation is about *observing* a distributed run —
error versus rounds, message complexity independent of ``n``, behaviour
under crashes.  This package is the reproduction's observability layer,
shared by both gossip engines:

- :mod:`repro.obs.events` — typed, stamped event records (``send``,
  ``deliver``, ``drop``, ``merge``, ``split``, ``crash``,
  ``round_close``, ``em_step``, ``probe``, ``span``, ``telemetry``,
  ``metrics``) and pluggable sinks (in-memory ring buffer, JSONL file,
  composite fan-out);
- :mod:`repro.obs.context` — the process-wide tracing context that lets
  ``python -m repro.experiments.run <exp> --trace out.jsonl`` capture
  every engine an experiment constructs without threading a sink
  through each call site;
- :mod:`repro.obs.timeseries` — the per-round convergence telemetry
  pipeline: a memory-bounded :class:`TimeSeriesRecorder` the kernel
  feeds at every closed round-equivalent, plus the ambient
  :func:`telemetry` scope mirroring :func:`tracing`;
- :mod:`repro.obs.exporters` — the recorded curves as JSONL, Prometheus
  text, or rows in the sweep store's ``timeseries`` table;
- :mod:`repro.obs.monitor` — ``python -m repro.obs.monitor trace.jsonl``
  tails a telemetry stream from a running experiment and renders live
  per-round convergence/health lines;
- :mod:`repro.obs.profiling` — near-zero-cost timer spans around the
  hot paths (EM fits, mixture reduction, protocol split/merge, engine
  rounds, transport) accumulated into a histogram-capable
  :class:`MetricsRegistry`, with stack-aware exclusive-time attribution
  and a collapsed-stack export for flamegraph tools;
- :mod:`repro.obs.report` — the CLI (``python -m repro.obs.report
  trace.jsonl``) that replays an event log into per-node timelines,
  message-complexity summaries, convergence series and the span phase
  breakdown.

Everything is off by default: with no sink installed, no telemetry scope
and profiling disabled, the instrumentation reduces to a handful of
``None`` checks per round.
"""

from repro.obs.context import current_sink, set_sink, tracing
from repro.obs.events import (
    EVENT_KINDS,
    CompositeSink,
    Event,
    EventSink,
    JsonlSink,
    RingBufferSink,
)
from repro.obs.profiling import (
    MetricsRegistry,
    TimerStats,
    current_registry,
    disable_profiling,
    enable_profiling,
    profiling,
    span,
)
from repro.obs.timeseries import (
    TelemetryConfig,
    TelemetryHub,
    TimeSeriesRecorder,
    current_hub,
    telemetry,
)

__all__ = [
    "CompositeSink",
    "EVENT_KINDS",
    "Event",
    "EventSink",
    "JsonlSink",
    "MetricsRegistry",
    "RingBufferSink",
    "TelemetryConfig",
    "TelemetryHub",
    "TimeSeriesRecorder",
    "TimerStats",
    "current_hub",
    "current_registry",
    "current_sink",
    "disable_profiling",
    "enable_profiling",
    "profiling",
    "set_sink",
    "span",
    "telemetry",
    "tracing",
]
