"""Observability: structured event traces, profiling, and run reports.

The paper's entire evaluation is about *observing* a distributed run —
error versus rounds, message complexity independent of ``n``, behaviour
under crashes.  This package is the reproduction's observability layer,
shared by both gossip engines:

- :mod:`repro.obs.events` — typed, stamped event records (``send``,
  ``deliver``, ``drop``, ``merge``, ``split``, ``crash``,
  ``round_close``, ``em_step``, ``probe``, ``span``) and pluggable
  sinks (in-memory ring buffer, JSONL file, composite fan-out);
- :mod:`repro.obs.context` — the process-wide tracing context that lets
  ``python -m repro.experiments.run <exp> --trace out.jsonl`` capture
  every engine an experiment constructs without threading a sink
  through each call site;
- :mod:`repro.obs.profiling` — near-zero-cost timer spans around the
  hot paths (EM fits, mixture reduction, protocol split/merge, engine
  rounds) accumulated into a histogram-capable :class:`MetricsRegistry`;
- :mod:`repro.obs.report` — the CLI (``python -m repro.obs.report
  trace.jsonl``) that replays an event log into per-node timelines,
  message-complexity summaries, convergence curves and top-k slowest
  spans.

Everything is off by default: with no sink installed and profiling
disabled, the instrumentation reduces to a handful of ``None`` checks
per round.
"""

from repro.obs.context import current_sink, set_sink, tracing
from repro.obs.events import (
    EVENT_KINDS,
    CompositeSink,
    Event,
    EventSink,
    JsonlSink,
    RingBufferSink,
)
from repro.obs.profiling import (
    MetricsRegistry,
    TimerStats,
    current_registry,
    disable_profiling,
    enable_profiling,
    profiling,
    span,
)

__all__ = [
    "CompositeSink",
    "EVENT_KINDS",
    "Event",
    "EventSink",
    "JsonlSink",
    "MetricsRegistry",
    "RingBufferSink",
    "TimerStats",
    "current_registry",
    "current_sink",
    "disable_profiling",
    "enable_profiling",
    "profiling",
    "set_sink",
    "span",
    "tracing",
]
