"""Hot-path profiling: timer spans and the metrics registry.

A *span* times one execution of a hot path — an EM fit, a mixture
reduction, a protocol split or merge, a full gossip round — and records
the duration twice over: into the active :class:`MetricsRegistry` (as a
log-scaled histogram per span name) and, when tracing is on, into the
ambient event sink as a ``span`` event so the report CLI can list the
top-k slowest executions.

Spans nest: a module-level stack tracks the chain of open spans, so each
completed span knows its call path and its *exclusive* time (duration
minus time spent inside child spans).  That is enough to aggregate the
existing instrumentation into an inclusive/exclusive phase breakdown
(receive / merge / partition / serialize / transport) and to export a
collapsed-stack file (``path;to;span <microseconds>`` per line) that
flamegraph tools consume directly — a sampling-profiler-shaped view with
no sampling thread, built entirely from the spans already in the code.

The design constraint is the disabled cost.  ``span(name)`` with neither
profiling nor tracing enabled performs two global reads and returns a
shared no-op context manager — no allocation, no clock read — so leaving
the instrumentation in production paths is free to within noise (the
micro-benchmarks hold this to <5%).

:class:`MetricsRegistry` subsumes the flat counter bag of
:class:`~repro.network.metrics.NetworkMetrics`: :meth:`absorb_network`
folds an engine's counters in next to the timer histograms, giving one
object that answers both "how many messages" and "where did the time go".
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from repro.obs import context
from repro.obs.events import Event, EventSink

__all__ = [
    "TimerStats",
    "MetricsRegistry",
    "span",
    "profiling",
    "enable_profiling",
    "disable_profiling",
    "current_registry",
]


@dataclass
class TimerStats:
    """Accumulated durations of one span name.

    Durations are aggregated exactly (count/total/min/max) and
    approximately as a base-2 log-scale histogram: bucket ``e`` counts
    durations in ``[2**(e-1), 2**e)`` seconds.  Log buckets cover the
    nanosecond-to-minute range in ~60 integers, which is all a "where did
    the time go" question needs.
    """

    count: int = 0
    total: float = 0.0
    minimum: float = math.inf
    maximum: float = 0.0
    buckets: dict[int, int] = field(default_factory=dict)

    def record(self, duration: float) -> None:
        """Fold one duration (seconds) into the statistics."""
        duration = max(duration, 0.0)
        self.count += 1
        self.total += duration
        if duration < self.minimum:
            self.minimum = duration
        if duration > self.maximum:
            self.maximum = duration
        exponent = math.frexp(duration)[1] if duration > 0.0 else -1074
        self.buckets[exponent] = self.buckets.get(exponent, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def histogram(self) -> list[tuple[float, float, int]]:
        """Sorted ``(low_seconds, high_seconds, count)`` bucket triples."""
        return [
            (math.ldexp(1.0, exponent - 1), math.ldexp(1.0, exponent), count)
            for exponent, count in sorted(self.buckets.items())
        ]

    def as_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum,
        }


class MetricsRegistry:
    """Named counters plus per-span timer histograms.

    The registry is deliberately schema-free: engines, protocols and
    callers register whatever names they need.  It extends the fixed
    counter bag of :class:`~repro.network.metrics.NetworkMetrics` (whose
    public fields and ``as_dict`` stay untouched for backward
    compatibility) with arbitrary counters and timing distributions.
    """

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.timers: dict[str, TimerStats] = {}
        #: Last-value instruments (e.g. the arena engine's per-round
        #: merge count, cache hit rate, and shard imbalance): unlike
        #: counters these overwrite, so readers always see the most
        #: recent observation.
        self.gauges: dict[str, float] = {}
        #: Exclusive (self) time per unique span call path, for the
        #: phase breakdown and the collapsed-stack export.
        self.stacks: dict[tuple[str, ...], TimerStats] = {}

    # ------------------------------------------------------------------
    # Counters and gauges
    # ------------------------------------------------------------------
    def inc(self, name: str, value: float = 1) -> None:
        """Add ``value`` to the named counter (creating it at 0)."""
        self.counters[name] = self.counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        """Set the named gauge to its latest observed value."""
        self.gauges[name] = float(value)

    def absorb_network(self, metrics: Any, prefix: str = "network.") -> None:
        """Fold a :class:`NetworkMetrics` snapshot into the counters.

        Every scalar entry of ``metrics.as_dict()`` is added under
        ``prefix``; non-scalar entries (the per-round message list) are
        skipped — they belong in an event trace, not a counter.
        """
        for name, value in metrics.as_dict().items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            self.inc(prefix + name, value)

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def timer(self, name: str) -> TimerStats:
        """The named timer's statistics (creating them empty)."""
        stats = self.timers.get(name)
        if stats is None:
            stats = self.timers[name] = TimerStats()
        return stats

    def record_span(self, name: str, duration: float) -> None:
        self.timer(name).record(duration)

    def record_stack(self, stack: tuple[str, ...], exclusive: float) -> None:
        """Fold one span execution's exclusive time into its call path."""
        stats = self.stacks.get(stack)
        if stats is None:
            stats = self.stacks[stack] = TimerStats()
        stats.record(exclusive)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary_rows(self) -> list[list[Any]]:
        """Per-timer rows (name, count, total_s, mean_ms, max_ms), slowest first."""
        rows = [
            [name, stats.count, stats.total, stats.mean * 1e3, stats.maximum * 1e3]
            for name, stats in self.timers.items()
        ]
        rows.sort(key=lambda row: -row[2])
        return rows

    def phase_rows(self) -> list[list[Any]]:
        """Per-phase rows ``[name, count, inclusive_s, exclusive_s]``.

        Inclusive time comes from the flat timers; exclusive time sums
        the self-time of every call path ending in the name.  Sorted by
        exclusive time, so the top row is where the time *actually*
        goes, not merely the outermost wrapper.
        """
        exclusive: dict[str, float] = {}
        for stack, stats in self.stacks.items():
            leaf = stack[-1]
            exclusive[leaf] = exclusive.get(leaf, 0.0) + stats.total
        rows = [
            [name, stats.count, stats.total, exclusive.get(name, stats.total)]
            for name, stats in self.timers.items()
        ]
        rows.sort(key=lambda row: -row[3])
        return rows

    def collapsed_stacks(self) -> list[str]:
        """Flamegraph-ready lines: ``root;child;leaf <microseconds>``.

        The value is the call path's total exclusive time in integer
        microseconds — the same shape ``flamegraph.pl`` and speedscope
        accept for externally-collected profiles.  Paths whose time
        rounds to zero microseconds are kept (value 0) so the stack
        structure survives even for very fast spans.
        """
        lines = [
            f"{';'.join(stack)} {int(stats.total * 1e6)}"
            for stack, stats in sorted(self.stacks.items())
        ]
        return lines

    def write_collapsed(self, path: str) -> int:
        """Write the collapsed-stack file; returns the line count."""
        lines = self.collapsed_stacks()
        with open(path, "w", encoding="utf-8") as handle:
            for line in lines:
                handle.write(line + "\n")
        return len(lines)

    def as_dict(self) -> dict[str, Any]:
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "timers": {name: stats.as_dict() for name, stats in self.timers.items()},
            "stacks": {
                ";".join(stack): stats.as_dict()
                for stack, stats in self.stacks.items()
            },
        }


# ----------------------------------------------------------------------
# The active profiler and the span primitive
# ----------------------------------------------------------------------
_ACTIVE: Optional[MetricsRegistry] = None


def current_registry() -> Optional[MetricsRegistry]:
    """The active profiling registry, or ``None`` when profiling is off."""
    return _ACTIVE


def enable_profiling(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Start routing spans into ``registry`` (a fresh one by default)."""
    global _ACTIVE
    _ACTIVE = registry if registry is not None else MetricsRegistry()
    return _ACTIVE


def disable_profiling() -> Optional[MetricsRegistry]:
    """Stop profiling; returns the registry that was collecting."""
    global _ACTIVE
    registry, _ACTIVE = _ACTIVE, None
    return registry


@contextmanager
def profiling(registry: Optional[MetricsRegistry] = None) -> Iterator[MetricsRegistry]:
    """Profile the block; restores the previously active registry after."""
    global _ACTIVE
    previous = _ACTIVE
    active = enable_profiling(registry)
    try:
        yield active
    finally:
        _ACTIVE = previous


class _NullSpan:
    """Shared no-op context manager returned when instrumentation is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


#: The chain of currently-open spans (innermost last).  Spans are context
#: managers, so entries push and pop strictly LIFO; the stack gives each
#: completed span its call path and lets parents subtract child time.
_STACK: list["_Span"] = []


class _Span:
    """A live timer: records on exit into the registry and/or sink."""

    __slots__ = ("name", "registry", "sink", "start", "stack", "child_total")

    def __init__(self, name: str, registry: Optional[MetricsRegistry], sink: Optional[EventSink]) -> None:
        self.name = name
        self.registry = registry
        self.sink = sink
        self.child_total = 0.0

    def __enter__(self) -> "_Span":
        if _STACK:
            self.stack = _STACK[-1].stack + (self.name,)
        else:
            self.stack = (self.name,)
        _STACK.append(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        duration = time.perf_counter() - self.start
        if _STACK and _STACK[-1] is self:
            _STACK.pop()
        if _STACK:
            _STACK[-1].child_total += duration
        exclusive = max(duration - self.child_total, 0.0)
        if self.registry is not None:
            self.registry.record_span(self.name, duration)
            self.registry.record_stack(self.stack, exclusive)
        if self.sink is not None:
            self.sink.emit(
                Event(
                    kind="span",
                    extra={
                        "name": self.name,
                        "duration": duration,
                        "self": exclusive,
                        "stack": ";".join(self.stack),
                    },
                )
            )
        return False


def span(name: str) -> Any:
    """A context manager timing one execution of the named hot path.

    Cheap no-op unless :func:`enable_profiling`/:func:`profiling` or an
    ambient tracing sink (:func:`repro.obs.context.tracing`) is active::

        with span("em.fit"):
            result = expensive_fit(...)
    """
    registry = _ACTIVE
    sink = context.current_sink()
    if registry is None and sink is None:
        return _NULL_SPAN
    return _Span(name, registry, sink)
