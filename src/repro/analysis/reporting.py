"""Plain-text reporting: the benchmarks' stand-in for the paper's plots.

Benches regenerate each figure's underlying series and print them as
fixed-width tables; these helpers keep every bench's output uniform and
diff-friendly.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

__all__ = ["format_value", "format_table", "format_series", "banner"]


def format_value(value: Any, precision: int = 4) -> str:
    """Render one cell: floats to fixed precision, the rest via str()."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    precision: int = 4,
) -> str:
    """Fixed-width table with a header rule.

    >>> print(format_table(["x", "y"], [[1, 2.0]], precision=1))
    x  y
    -  ---
    1  2.0
    """
    rendered = [[format_value(cell, precision) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(header.ljust(widths[index]) for index, header in enumerate(headers)).rstrip(),
        "  ".join("-" * widths[index] for index in range(len(headers))).rstrip(),
    ]
    for row in rendered:
        lines.append(
            "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row)).rstrip()
        )
    return "\n".join(lines)


def format_series(
    title: str,
    x_name: str,
    x_values: Sequence[Any],
    columns: Mapping[str, Sequence[Any]],
    precision: int = 4,
) -> str:
    """One figure's data: an x column plus one column per plotted line."""
    for name, values in columns.items():
        if len(values) != len(x_values):
            raise ValueError(f"column {name!r} length does not match x values")
    headers = [x_name, *columns.keys()]
    rows = [
        [x, *(columns[name][index] for name in columns)]
        for index, x in enumerate(x_values)
    ]
    return f"{banner(title)}\n{format_table(headers, rows, precision)}"


def banner(title: str) -> str:
    """A visually distinct section header."""
    rule = "=" * max(len(title), 8)
    return f"{rule}\n{title}\n{rule}"
