"""Accuracy metrics: mean-estimation error and mixture recovery.

The quantities the paper plots: per-node error of an estimated mean
against the true mean (Figures 3 and 4), and — implicitly in Figure 2's
"visibly a usable estimation" claim — how closely a recovered Gaussian
mixture matches the generating one, which this module makes quantitative
via an optimal component matching.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.ml.gmm import GaussianMixtureModel

__all__ = [
    "mean_error",
    "average_error",
    "ComponentMatch",
    "GmmRecovery",
    "match_mixtures",
]


def mean_error(estimate: np.ndarray, truth: np.ndarray) -> float:
    """L2 distance between an estimated and a true mean."""
    return float(np.linalg.norm(np.asarray(estimate, dtype=float) - np.asarray(truth, dtype=float)))


def average_error(estimates: Iterable[np.ndarray], truth: np.ndarray) -> float:
    """Average over nodes of the mean-estimation error.

    The paper's error metric: "the average over all nodes of the distance
    between the estimated mean and the true mean".
    """
    errors = [mean_error(estimate, truth) for estimate in estimates]
    if not errors:
        raise ValueError("average_error requires at least one estimate")
    return float(np.mean(errors))


@dataclass(frozen=True)
class ComponentMatch:
    """One matched (estimated, true) component pair."""

    estimated_index: int
    true_index: int
    mean_distance: float
    weight_error: float
    cov_frobenius_error: float


@dataclass(frozen=True)
class GmmRecovery:
    """How well an estimated mixture recovers a reference mixture."""

    matches: tuple[ComponentMatch, ...]
    unmatched_estimated: tuple[int, ...]
    unmatched_true: tuple[int, ...]

    @property
    def max_mean_distance(self) -> float:
        return max(match.mean_distance for match in self.matches)

    @property
    def max_weight_error(self) -> float:
        return max(match.weight_error for match in self.matches)

    @property
    def total_matched_weight_error(self) -> float:
        return sum(match.weight_error for match in self.matches)


def match_mixtures(
    estimated: GaussianMixtureModel,
    true: GaussianMixtureModel,
) -> GmmRecovery:
    """Optimal (Hungarian) matching of estimated to true components.

    Cost is the distance between component means — the same pseudo-metric
    ``d_S`` the GM scheme uses.  Every true component is matched when the
    estimate has at least as many components; surplus estimated
    components (e.g. the singleton x's of Figure 2c) stay unmatched.
    """
    cost = np.array(
        [
            [
                float(np.linalg.norm(estimated.means[i] - true.means[j]))
                for j in range(true.n_components)
            ]
            for i in range(estimated.n_components)
        ]
    )
    rows, cols = linear_sum_assignment(cost)
    matches = []
    for i, j in zip(rows.tolist(), cols.tolist()):
        matches.append(
            ComponentMatch(
                estimated_index=i,
                true_index=j,
                mean_distance=float(cost[i, j]),
                weight_error=float(abs(estimated.weights[i] - true.weights[j])),
                cov_frobenius_error=float(
                    np.linalg.norm(estimated.covs[i] - true.covs[j], ord="fro")
                ),
            )
        )
    matched_estimated = {match.estimated_index for match in matches}
    matched_true = {match.true_index for match in matches}
    return GmmRecovery(
        matches=tuple(matches),
        unmatched_estimated=tuple(
            i for i in range(estimated.n_components) if i not in matched_estimated
        ),
        unmatched_true=tuple(j for j in range(true.n_components) if j not in matched_true),
    )
