"""Outlier identification and robust averaging (Section 5.3.2).

The paper's robust-average application runs the GM algorithm with
``k = 2`` — "hopefully one [collection] for good values and one for
outliers" — and estimates the mean from the good collection only.  This
module implements that read-out plus the paper's density-threshold outlier
definition and the provenance-based missed-outlier measurement.
"""

from __future__ import annotations

import numpy as np

from repro.core.classification import Classification

__all__ = [
    "F_MIN",
    "good_collection_index",
    "robust_mean",
    "missed_outlier_fraction",
]

#: The paper's density threshold: values whose probability density under
#: the standard normal falls below this are outliers (Section 5.3.2).
F_MIN = 5e-5


def good_collection_index(classification: Classification) -> int:
    """Index of the collection treated as "good": the heaviest one.

    With 95% of the weight coming from the good distribution, the good
    collection dominates by weight; ties (pathological) resolve to the
    first.
    """
    quanta = [collection.quanta for collection in classification]
    return int(np.argmax(quanta))


def robust_mean(classification: Classification) -> np.ndarray:
    """Mean estimate with outliers removed: the good collection's mean.

    Requires Gaussian (or centroid) summaries exposing a mean; for
    centroid summaries the summary itself is the mean.
    """
    good = classification[good_collection_index(classification)]
    summary = good.summary
    mean = getattr(summary, "mean", None)
    if mean is not None and not callable(mean):
        # Gaussian-style summary: a (mu, sigma) object exposing .mean.
        return np.asarray(mean, dtype=float)
    # Centroid-style summary: the summary *is* the mean (note ndarray.mean
    # is a method, which is why callables are excluded above).
    return np.asarray(summary, dtype=float)


def missed_outlier_fraction(
    classification: Classification,
    outlier_indices: np.ndarray,
) -> float:
    """Share of outlier weight wrongly sitting in the good collection.

    Figure 3's dotted line: "the average weight ratio belonging to
    outliers yet incorrectly assigned to the good collection".  Measured
    through the auxiliary mixture vectors, which record exactly how much
    weight of each input value each collection holds — so this requires a
    run with ``track_aux=True``.
    """
    outlier_indices = np.asarray(outlier_indices, dtype=int)
    if outlier_indices.size == 0:
        return 0.0
    good_index = good_collection_index(classification)
    in_good = 0.0
    total = 0.0
    for index, collection in enumerate(classification):
        if collection.aux is None:
            raise ValueError("missed_outlier_fraction requires auxiliary tracking")
        outlier_mass = float(np.sum(collection.aux.components[outlier_indices]))
        total += outlier_mass
        if index == good_index:
            in_good += outlier_mass
    if total <= 0.0:
        return 0.0
    return in_good / total
