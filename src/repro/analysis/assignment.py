"""Provenance-based classification accuracy against ground-truth labels.

The auxiliary mixture vectors record exactly how much of each input
value's weight sits in each collection, so when the workload has known
class labels (synthetic generators return them) a node's classification
quality can be scored as *correctly assigned weight*: build the
collection-by-class weight matrix, find the best one-to-one matching of
collections to classes (Hungarian assignment), and report the matched
weight share.

This generalises clustering accuracy to the algorithm's weighted,
fractional setting — a value can be split across collections, and each
fragment is scored where it actually sits.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.core.classification import Classification
from repro.core.node import ClassifierNode

__all__ = [
    "weight_confusion_matrix",
    "classification_accuracy",
    "mean_node_accuracy",
]


def weight_confusion_matrix(
    classification: Classification,
    labels: np.ndarray,
) -> np.ndarray:
    """Collections-by-classes weight matrix from auxiliary provenance.

    Entry ``(j, c)`` is the quanta of class-``c`` input weight held by
    collection ``j``.  Requires a run with ``track_aux=True``.
    """
    labels = np.asarray(labels, dtype=int)
    if labels.min() < 0:
        raise ValueError("labels must be non-negative integers")
    n_classes = int(labels.max()) + 1
    class_indices = [np.where(labels == c)[0] for c in range(n_classes)]
    matrix = np.zeros((len(classification), n_classes))
    for j, collection in enumerate(classification):
        if collection.aux is None:
            raise ValueError("weight_confusion_matrix requires auxiliary tracking")
        if collection.aux.n_inputs != labels.shape[0]:
            raise ValueError("labels must cover every input value")
        for c in range(n_classes):
            matrix[j, c] = float(np.sum(collection.aux.components[class_indices[c]]))
    return matrix


def classification_accuracy(
    classification: Classification,
    labels: np.ndarray,
) -> float:
    """Best-matching correctly-assigned weight share in ``[0, 1]``.

    Collections are matched one-to-one to classes by maximising the
    matched weight (Hungarian assignment on the confusion matrix); weight
    in unmatched collections, or matched to the wrong class, counts as
    incorrect.  Perfect classification (each class exactly one
    collection) scores 1.
    """
    matrix = weight_confusion_matrix(classification, labels)
    total = matrix.sum()
    if total <= 0:
        raise ValueError("classification carries no weight")
    rows, cols = linear_sum_assignment(-matrix)
    return float(matrix[rows, cols].sum()) / float(total)


def mean_node_accuracy(
    nodes: Sequence[ClassifierNode],
    labels: np.ndarray,
) -> float:
    """Average :func:`classification_accuracy` across nodes."""
    if not nodes:
        raise ValueError("need at least one node")
    return float(
        np.mean([classification_accuracy(node.classification, labels) for node in nodes])
    )
