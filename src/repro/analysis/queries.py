"""Answering application queries from a converged classification.

The paper motivates distributed classification with *decisions*: a grid
machine asks "am I with the lightly- or heavily-loaded crowd?"; a sensor
operator asks "what fraction of readings exceed 30 degrees?".  Once the
gossip has converged, every node holds a Gaussian-Mixture description of
the global data and can answer such queries locally.  This module is that
read-out layer:

- :class:`MixtureQueries` wraps a node's classification (as a GMM) and
  answers marginal CDF / tail-fraction / interval-mass / membership
  queries in closed form (Gaussian marginals are Gaussian);
- queries cost O(k) arithmetic — no communication, no raw data.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.classification import Classification
from repro.ml.gmm import GaussianMixtureModel
from repro.schemes.gaussian import classification_to_gmm

__all__ = ["MixtureQueries"]


def _normal_cdf(z: np.ndarray) -> np.ndarray:
    """Standard normal CDF via erf (vectorised)."""
    return 0.5 * (1.0 + np.vectorize(math.erf)(z / math.sqrt(2.0)))


class MixtureQueries:
    """Closed-form queries over a Gaussian-Mixture classification.

    Parameters
    ----------
    model:
        The mixture to query.  Use :meth:`from_classification` to build
        one straight from a node's converged classification.
    min_std:
        Floor on per-dimension standard deviations.  Singleton
        collections have exactly zero variance; the floor turns their
        marginals into step functions with a tiny width instead of
        dividing by zero.
    """

    def __init__(self, model: GaussianMixtureModel, min_std: float = 1e-9) -> None:
        if min_std <= 0:
            raise ValueError("min_std must be positive")
        self.model = model
        self.min_std = min_std

    @classmethod
    def from_classification(
        cls, classification: Classification, min_std: float = 1e-9
    ) -> "MixtureQueries":
        """Build the query view of a node's (Gaussian-schemed) classification."""
        return cls(classification_to_gmm(classification), min_std=min_std)

    # ------------------------------------------------------------------
    # Marginal machinery
    # ------------------------------------------------------------------
    def _marginal(self, dimension: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(weights, means, stds) of the mixture's 1-D marginal."""
        if not 0 <= dimension < self.model.dimension:
            raise ValueError(
                f"dimension {dimension} out of range for d={self.model.dimension}"
            )
        means = self.model.means[:, dimension]
        variances = self.model.covs[:, dimension, dimension]
        stds = np.sqrt(np.maximum(variances, self.min_std**2))
        return self.model.weights, means, stds

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def cdf(self, dimension: int, threshold: float) -> float:
        """P(value_dimension <= threshold) under the mixture."""
        weights, means, stds = self._marginal(dimension)
        z = (threshold - means) / stds
        return float(np.sum(weights * _normal_cdf(z)))

    def fraction_above(self, dimension: int, threshold: float) -> float:
        """Estimated fraction of readings exceeding a threshold.

        The fence-fire operator's query: "what share of sensors read more
        than 30 degrees?"
        """
        return 1.0 - self.cdf(dimension, threshold)

    def interval_mass(self, dimension: int, low: float, high: float) -> float:
        """Estimated fraction of readings inside ``[low, high]``."""
        if high < low:
            raise ValueError("need high >= low")
        return self.cdf(dimension, high) - self.cdf(dimension, low)

    def component_membership(self, value: np.ndarray) -> int:
        """Which collection a value belongs with (max responsibility).

        The introduction's load-balancing decision: a machine classifies
        *its own* load against the global classification and acts on the
        answer.
        """
        return int(self.model.classify(np.atleast_2d(np.asarray(value, dtype=float)))[0])

    def membership_probabilities(self, value: np.ndarray) -> np.ndarray:
        """Posterior collection memberships of a value (sums to 1)."""
        return self.model.responsibilities(
            np.atleast_2d(np.asarray(value, dtype=float))
        )[0]

    def quantile(self, dimension: int, probability: float, tolerance: float = 1e-9) -> float:
        """Inverse marginal CDF by bisection (the mixture CDF is monotone)."""
        if not 0.0 < probability < 1.0:
            raise ValueError("probability must be strictly between 0 and 1")
        weights, means, stds = self._marginal(dimension)
        low = float(np.min(means - 12.0 * stds))
        high = float(np.max(means + 12.0 * stds))
        for _ in range(200):
            mid = (low + high) / 2.0
            if high - low < tolerance:
                break
            if self.cdf(dimension, mid) < probability:
                low = mid
            else:
                high = mid
        return (low + high) / 2.0
