"""Measurement and reporting utilities for the experiments."""

from repro.analysis.assignment import (
    classification_accuracy,
    mean_node_accuracy,
    weight_confusion_matrix,
)
from repro.analysis.accuracy import (
    ComponentMatch,
    GmmRecovery,
    average_error,
    match_mixtures,
    mean_error,
)
from repro.analysis.outliers import (
    F_MIN,
    good_collection_index,
    missed_outlier_fraction,
    robust_mean,
)
from repro.analysis.reporting import banner, format_series, format_table, format_value

__all__ = [
    "ComponentMatch",
    "F_MIN",
    "GmmRecovery",
    "average_error",
    "banner",
    "classification_accuracy",
    "format_series",
    "format_table",
    "format_value",
    "good_collection_index",
    "match_mixtures",
    "mean_error",
    "mean_node_accuracy",
    "weight_confusion_matrix",
    "missed_outlier_fraction",
    "robust_mean",
]
