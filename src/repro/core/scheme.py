"""The instantiation interface of the generic algorithm.

Algorithm 1 is generic: it is instantiated with a summary domain ``S`` and
three functions — ``valToSummary``, ``mergeSet`` and ``partition`` — plus a
pseudo-metric ``d_S`` on summaries.  This module defines that contract as
the :class:`SummaryScheme` strategy interface, together with a validator
for the structural rules ``partition`` must respect.

Section 4.2.1 places four requirements on instantiations; they are recorded
here so scheme implementations (and the property tests in
``tests/core/test_requirements.py``) can refer to them by name:

R1  Summaries are Lipschitz in the mixture space: collections whose mixture
    vectors are close in angle have summaries close in ``d_S``.
R2  ``valToSummary(val_i) == f(e_i)``: initial summaries agree with ``f``.
R3  ``f`` is scale-invariant: ``f(v) == f(alpha * v)`` for ``alpha > 0``.
    (This is why schemes may treat integer quanta counts as weights.)
R4  Merging summaries commutes with merging collections:
    ``mergeSet({(f(v), |v|_1)}) == f(sum v)``.

R2-R4 give Lemma 1 (the summaries a node maintains are exactly the
summaries of the collections its mixture vectors describe); R1 turns
mixture-space convergence into summary convergence (Corollary 1).
"""

from __future__ import annotations

import abc
from typing import Any, Generic, Sequence, TypeVar

from repro.core.collection import Collection
from repro.core.packed import PackedState
from repro.core.weights import Quantization

__all__ = ["SummaryScheme", "PartitionError", "validate_partition"]

S = TypeVar("S")


class PartitionError(ValueError):
    """Raised when a partition violates Algorithm 1's structural rules."""


class SummaryScheme(abc.ABC, Generic[S]):
    """Strategy object bundling the application-specific functions.

    Implementations must satisfy requirements R1-R4 above for the
    convergence theorem (Section 6) to apply; the repository ships
    machine checks for all four in the test suite.

    Besides the object-level contract, a scheme may opt into the packed
    hot path (``supports_packed``) by implementing the array-native
    entry points ``pack_summaries`` / ``partition_packed`` /
    ``merge_set_packed``, and may declare ``identity_below_k`` so nodes
    can skip ``partition`` outright on small pooled sets (see
    ``docs/performance.md`` for both contracts).
    """

    #: Fast-path contract: when true, ``partition(collections, k, q)``
    #: is guaranteed to return the identity partition — singleton groups
    #: in index order — whenever ``len(collections) <= k`` and either a
    #: single collection is given or no collection has minimum weight
    #: (conformance rule 2 never fires).  Nodes then skip the partition
    #: call entirely.  The shipped schemes all satisfy this: the EM
    #: reduction returns singletons at ``l <= k`` and the greedy
    #: closest-pair merge loop never runs below the bound.
    identity_below_k: bool = False

    #: True when the scheme implements the packed (array-native) entry
    #: points below; nodes then maintain a :class:`PackedState` mirror
    #: of their collections and route partition/merge through it.
    supports_packed: bool = False

    #: True when the scheme implements :meth:`summary_digest`, making its
    #: summaries content-addressable.  Nodes then maintain per-collection
    #: digests and participate in the run's merge cache and the kernel's
    #: quiescence probe (see :mod:`repro.core.fingerprint`).
    supports_fingerprints: bool = False

    #: How the scheme's ``partition`` groups a pooled set whose members
    #: are byte-identical copies of a few distinct "locations": ``"em"``
    #: (EM reduction: groups = locations in maximin seed order, subject
    #: to the certificate's margin check) or ``"greedy"`` (closest-pair
    #: merging: groups = locations in first-occurrence order, when the
    #: location count equals ``k``).  ``None`` disables the certified
    #: no-op receive path for the scheme.
    identity_partition_style: str | None = None

    @abc.abstractmethod
    def val_to_summary(self, value: Any) -> S:
        """Summarise a single whole input value (Algorithm 1 line 2)."""

    @abc.abstractmethod
    def merge_set(self, items: Sequence[tuple[S, float]]) -> S:
        """Summarise the union of collections given their (summary, weight) pairs.

        Weights may be given in any common scale (R3 guarantees the result
        is the same); the algorithm passes integer quanta counts.
        """

    @abc.abstractmethod
    def partition(
        self,
        collections: Sequence[Collection],
        k: int,
        quantization: Quantization,
    ) -> list[list[int]]:
        """Group collections for merging (Algorithm 1 line 10).

        Returns a partition of ``range(len(collections))`` into at most
        ``k`` groups.  Every minimum-weight collection (weight exactly
        ``q``) must share its group with at least one other collection
        whenever the input has more than one collection.
        """

    @abc.abstractmethod
    def distance(self, a: S, b: S) -> float:
        """The pseudo-metric ``d_S`` on the summary domain."""

    def summary_dimension(self, summary: S) -> int:
        """Best-effort dimensionality of a summary (for reporting only)."""
        try:
            return len(summary)  # type: ignore[arg-type]
        except TypeError:
            return 1

    # ------------------------------------------------------------------
    # Packed (array-native) entry points — optional, see supports_packed
    # ------------------------------------------------------------------
    def pack_summaries(self, summaries: Sequence[S]) -> dict[str, Any]:
        """Stack summaries into the scheme's packed column arrays.

        Every returned array must have leading dimension
        ``len(summaries)`` with row ``i`` encoding ``summaries[i]``
        exactly (same float values the object path would stack).
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the packed hot path"
        )

    def partition_packed(
        self,
        packed: PackedState,
        k: int,
        quantization: Quantization,
    ) -> list[list[int]]:
        """Array-native ``partition``: same contract, packed input.

        Must return exactly the groups ``partition`` would return for
        the equivalent collection list — the parity suite enforces this
        byte for byte.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the packed hot path"
        )

    def merge_set_packed(self, packed: PackedState, group: Sequence[int]) -> S:
        """Array-native ``merge_set`` over the packed rows in ``group``.

        Must reproduce ``merge_set`` on the corresponding
        ``(summary, float(quanta))`` pairs bit for bit.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the packed hot path"
        )

    # ------------------------------------------------------------------
    # Batch (whole-network) entry points — used by the arena engine
    # ------------------------------------------------------------------
    def pack_values(self, values: Sequence[Any]) -> dict[str, Any]:
        """Pack one summary row per input value, in one call.

        Must be byte-identical to
        ``pack_summaries([val_to_summary(v) for v in values])``; the
        default does exactly that.  Schemes override it with a
        vectorised construction so the arena engine can initialise a
        million-node arena without a million Python objects.
        """
        return self.pack_summaries([self.val_to_summary(value) for value in values])

    def unpack_summary(self, columns: dict[str, Any], index: int) -> S:
        """Reconstruct the summary object encoded by packed row ``index``.

        The inverse of ``pack_summaries`` for one row: packing the
        returned summary again must reproduce the row byte for byte.
        The returned object must own its arrays (no views into
        ``columns`` — arena rows are overwritten in place).
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the packed hot path"
        )

    def merge_groups_packed(
        self, packed: PackedState, groups: Sequence[Sequence[int]]
    ) -> list[S]:
        """Batch ``merge_set_packed`` over several groups of one pooled set.

        Returns one merged summary per group, in group order, each
        bit-identical to the corresponding ``merge_set_packed`` call.
        The default loops; schemes may override to amortise per-call
        setup when the arena engine merges many groups per round.
        """
        return [self.merge_set_packed(packed, group) for group in groups]

    def merge_groups_columns(
        self, packed: PackedState, groups: Sequence[Sequence[int]]
    ) -> dict[str, Any]:
        """Batch-merge groups straight to packed column rows.

        Returns the scheme's packed columns holding one merged row per
        group, in group order — byte-identical to packing the summaries
        ``merge_groups_packed`` would return.  The default does exactly
        that; schemes with array-native merges override it with the
        batched kernels in :mod:`repro.native.kernels` so the native
        receive tier never constructs summary objects at all.
        """
        return self.pack_summaries(self.merge_groups_packed(packed, groups))

    # ------------------------------------------------------------------
    # Content addressing — optional, see supports_fingerprints
    # ------------------------------------------------------------------
    def digest_row(self, columns: dict[str, Any], index: int) -> bytes:
        """Content digest of packed row ``index`` (see ``summary_digest``).

        Must equal ``summary_digest(unpack_summary(columns, index))``;
        the default computes exactly that.  Schemes override it to hash
        the row's column slices directly, skipping the intermediate
        summary object on the native receive tier.
        """
        return self.summary_digest(self.unpack_summary(columns, index))
    def summary_digest(self, summary: S) -> bytes:
        """Stable content digest of one summary.

        Two summaries must share a digest iff their packed rows are
        byte-identical — i.e. iff substituting one for the other leaves
        every downstream partition/merge bit-for-bit unchanged.  Schemes
        typically hash their packed column arrays via
        :func:`repro.core.fingerprint.digest_arrays`.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support content-addressed summaries"
        )


def validate_partition(
    groups: Sequence[Sequence[int]],
    collections: Sequence[Collection],
    k: int,
    quantization: Quantization,
) -> None:
    """Check a partition against Algorithm 1's two conformance rules.

    Rule 1: at most ``k`` groups.  Rule 2: no group consists of a single
    collection of minimum weight ``q`` (unless that collection is the only
    one in the input, in which case no merge partner exists).

    Additionally verifies the groups are an exact partition — every index
    exactly once — since weight conservation depends on it.

    Raises
    ------
    PartitionError
        On any violation.
    """
    if len(groups) > k:
        raise PartitionError(f"partition produced {len(groups)} groups, bound is k={k}")
    seen: set[int] = set()
    for group in groups:
        if not group:
            raise PartitionError("partition contains an empty group")
        for index in group:
            if index in seen:
                raise PartitionError(f"collection index {index} appears in two groups")
            if not 0 <= index < len(collections):
                raise PartitionError(f"collection index {index} out of range")
            seen.add(index)
    if len(seen) != len(collections):
        missing = set(range(len(collections))) - seen
        raise PartitionError(f"partition drops collection indices {sorted(missing)}")
    if len(collections) > 1:
        for group in groups:
            if len(group) == 1 and quantization.is_minimum(collections[group[0]].quanta):
                raise PartitionError(
                    "a minimum-weight collection was left unmerged "
                    f"(index {group[0]}); Section 4.1 rule 2 forbids this"
                )
